"""Scenario: an elastic training job growing and shrinking its group.

Uses the :class:`MulticastService` API: membership churn replans at the
source only — the switches' power-of-two rule set never changes, which is
the "deploy-once, touch-never" property that makes PEEL operable.

Run:  python examples/elastic_group.py
"""

from repro.core import MulticastService
from repro.topology import FatTree


def describe(tag: str, group) -> None:
    plan = group.plan
    pods = sorted({h.split(":")[1] for h in plan.destinations})
    print(f"{tag:<28} members={len(group.members):>3}  pods={pods}  "
          f"packets={plan.num_prefixes}  static/refined cost="
          f"{plan.static_cost()}/{plan.refined_cost()}")


def main() -> None:
    fabric = FatTree(8, hosts_per_tor=4)
    service = MulticastService(fabric)
    print(f"static data plane: {service.static_rules_per_switch} rules per "
          f"aggregation switch, installed once\n")

    # A job starts on one rack...
    group = service.create_group(
        "host:p2:t0:0", [f"host:p2:t0:{i}" for i in range(1, 4)]
    )
    describe("start (one rack)", group)

    # ...scales out to its whole pod...
    group.add_members(
        [f"host:p2:t{t}:{i}" for t in range(4) for i in range(4)]
    )
    describe("scale-out (whole pod)", group)

    # ...bursts into two more pods...
    group.add_members(
        [f"host:p{p}:t{t}:0" for p in (4, 5) for t in range(4)]
    )
    describe("burst (pods 2,4,5)", group)

    # ...then shrinks back as preemptions hit.
    group.remove_members([h for h in group.members if h.startswith("host:p5")])
    describe("after preemption", group)

    print(f"\nreplans at the source: {service.replans}")
    print(f"switch rule updates:    {service.switch_rule_updates} (always)")


if __name__ == "__main__":
    main()
