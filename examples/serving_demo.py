"""Scenario: an always-on multicast service shared by two tenants.

A k=8 fat-tree serves a 1,000-job stream of concurrent broadcasts from two
tenants — a training tenant pushing 16-GPU 256 KB collectives and an
inference tenant fanning 64 KB weights to 8 GPUs.  Every job passes through
admission (TCAM-budget- and link-load-aware), queues when the fabric is
busy, and runs overlapped with everything else already in flight.

The serving SLOs make the paper's deploy-once argument (§3) concrete:

* **peel** serves the whole stream with **zero** switch updates — the k-1
  prefix rules were installed once, before the first job — and its plan
  cache absorbs most planning work because schedulers keep producing the
  same group shapes;
* **orca** installs and removes per-group entries the whole time; with a
  small commodity TCAM slice the admission policy has to park most of the
  stream in the queue until entries free up, and every job also pays the
  controller's flow-setup delay in its tail;
* **ip-multicast** shares per-subset entries (cheaper than Orca) but still
  churns the control plane on every group arrival and departure.

Run:  python examples/serving_demo.py [--jobs 1000] [--check-invariants]
"""

import argparse

from repro.experiments.runner import segment_bytes_for
from repro.metrics import format_slo_table
from repro.serve import (
    SERVE_SCHEMES,
    CompositeAdmission,
    LinkLoadAdmission,
    TcamAdmission,
    serve_jobs,
)
from repro.sim import SimConfig
from repro.topology import FatTree
from repro.workloads import TenantSpec, generate_tenant_jobs

KB = 1024
TCAM_CAPACITY = 16  # multicast slice of a shared commodity TCAM
SCHEMES = ("peel", "orca", "ip-multicast")


def tenant_stream(topo, num_jobs: int, seed: int):
    """Two tenants sharing the fabric: training broadcasts + weight pushes."""
    train = (num_jobs * 3) // 5
    tenants = (
        TenantSpec("train", train, num_gpus=16, message_bytes=256 * KB,
                   offered_load=0.5),
        TenantSpec("infer", num_jobs - train, num_gpus=8, message_bytes=64 * KB,
                   offered_load=0.3),
    )
    return generate_tenant_jobs(topo, tenants, gpus_per_host=1, seed=seed)


def serve(topo, scheme, jobs, check_invariants):
    config = SimConfig(segment_bytes=segment_bytes_for(256 * KB))
    report, _runtime = serve_jobs(
        topo, scheme, jobs, config,
        admission=CompositeAdmission(
            TcamAdmission(), LinkLoadAdmission(8 * 256 * KB)
        ),
        tcam_capacity=TCAM_CAPACITY,
        check_invariants=check_invariants,
    )
    return report


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=1000,
                        help="stream length (default 1000)")
    parser.add_argument("--schemes", nargs="+", default=list(SCHEMES),
                        choices=SERVE_SCHEMES)
    parser.add_argument("--check-invariants", action="store_true",
                        help="attach the fabric invariant checker (slower)")
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    topo = FatTree(8, hosts_per_tor=4)
    jobs = tenant_stream(topo, args.jobs, args.seed)
    print(f"serving {len(jobs)} jobs from {len(set(j.tenant for j in jobs))} "
          f"tenants on a k=8 fat-tree ({len(topo.hosts)} hosts), "
          f"TCAM slice = {TCAM_CAPACITY} entries/switch\n")

    reports = {}
    for scheme in args.schemes:
        report = reports[scheme] = serve(topo, scheme, jobs, args.check_invariants)
        print(f"=== {scheme} ===")
        print(format_slo_table(report.tenants + [report.total]))
        print(f"switch updates: {report.switch_updates}, "
              f"peak entries/switch: {report.peak_entries_per_switch}, "
              f"queued: {report.queued_jobs}, "
              f"plan-cache hit rate: {report.cache_hit_rate:.1%}"
              + (" (invariants OK)" if args.check_invariants else ""))
        print()

    if "peel" in reports:
        peel = reports["peel"]
        assert peel.switch_updates == 0, "PEEL must never touch a switch"
        assert peel.cache_hit_rate > 0.5, "plan cache should absorb repeats"
        print(f"peel: zero switch updates across {len(jobs)} jobs; "
              f"{peel.cache_hit_rate:.1%} of plans served from cache")
    if "orca" in reports:
        orca = reports["orca"]
        parked = orca.queued_jobs + orca.total.rejected
        assert parked > 0, "small TCAM should have throttled orca"
        line = (f"orca: TCAM pressure queued/rejected {parked} jobs and "
                f"installed {orca.switch_updates} rule updates; "
                f"p99 CCT {orca.total.cct.p99_s * 1e3:.2f} ms")
        if "peel" in reports:
            line += (f" vs {reports['peel'].total.cct.p99_s * 1e3:.2f} ms "
                     f"for peel")
        print(line)


if __name__ == "__main__":
    main()
