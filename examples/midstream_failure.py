"""Scenario: a spine link dies while a Broadcast is in flight.

A 32-GPU, 8 MB PEEL Broadcast on a leaf-spine fabric; 40% of the way
through, a spine-leaf link the multicast trees depend on goes down.  The
fault injector blackholes every copy queued on or crossing the dead link,
re-peels the prefix-packet trees for the still-unfinished receivers on the
now-asymmetric topology, and selective-repeat repair re-multicasts whatever
the failure ate.  The collective completes, and the attached
InvariantChecker confirms the fabric never mis-accounted a byte along the
way (conservation, PFC quotas, exactly-once delivery, no deadlock).

Run:  python examples/midstream_failure.py
"""

from repro.collectives import CollectiveEnv, Gpu, Group, scheme_by_name
from repro.core import Peel
from repro.faults import FaultSchedule
from repro.sim import SimConfig
from repro.topology import LeafSpine

MB = 2**20
MESSAGE = 8 * MB


def build_group(hosts: list[str]) -> Group:
    members = tuple(Gpu(h, 0) for h in hosts)
    return Group(source=members[0], members=members)


def spine_link_in_plan(topo, source, receivers):
    """A spine-leaf link the static prefix-packet trees actually traverse."""
    for tree in Peel(topo).plan(source, receivers).static_trees:
        for child, parent in tree.parent.items():
            if parent is not None and parent.startswith("spine"):
                return parent, child
    raise RuntimeError("no spine link in plan")


def run(fault_schedule=None, label="clean"):
    topo = LeafSpine(4, 8, 4)
    group = build_group(topo.hosts[:32])
    env = CollectiveEnv(
        topo,
        SimConfig(segment_bytes=64 * 1024),
        fault_schedule=fault_schedule,
        check_invariants=True,
    )
    handle = scheme_by_name("peel").launch(env, group, MESSAGE, 0.0)
    env.run()
    violations = env.finalize_checks()

    print(f"--- {label} ---")
    print(f"completed:        {handle.complete}  (CCT {handle.cct_s * 1e3:.3f} ms)")
    print(f"blackholed copies: {env.network.failure_drops}")
    if env.fault_injector is not None:
        for t, name, link in env.fault_injector.repeels:
            print(f"re-peeled:        {name} at {t * 1e3:.3f} ms around "
                  f"{link[0]} -- {link[1]}")
    print(f"invariants:       {'OK' if not violations else violations}")
    print(env.invariants.summary())
    print()
    return handle.cct_s


def main() -> None:
    # Dry run: how long does the Broadcast take on a healthy fabric, and
    # which spine link does PEEL lean on?
    clean_cct = run(label="clean fabric")

    topo = LeafSpine(4, 8, 4)
    hosts = topo.hosts[:32]
    link = spine_link_in_plan(topo, hosts[0], hosts[1:])

    # Same Broadcast, but the link dies mid-flight and comes back much too
    # late to matter — PEEL must re-peel around it to finish.
    schedule = (
        FaultSchedule()
        .link_down(*link, at_s=0.4 * clean_cct)
        .link_up(*link, at_s=3.0 * clean_cct)
    )
    print(f"failing {link[0]} -- {link[1]} at {0.4 * clean_cct * 1e3:.3f} ms "
          f"(40% of clean CCT)\n")
    faulted_cct = run(fault_schedule=schedule, label="mid-stream spine failure")

    print(f"slowdown from mid-stream failure: {faulted_cct / clean_cct:.2f}x")


if __name__ == "__main__":
    main()
