"""Scenario: multicast trees that survive link failures (§2.3, Fig. 7).

Fails a growing fraction of spine-leaf links on the paper's 16x48
leaf-spine, shows the layer-peeling greedy re-routing around the damage,
and compares collective completion times against Ring and Binary Tree.

Run:  python examples/failure_resilience.py
"""

import random

from repro import ScenarioSpec, run
from repro.core import layer_peeling_tree
from repro.experiments.common import MB, paper_leafspine, sim_config
from repro.steiner import exact_steiner_cost
from repro.topology import fail_random_uplinks
from repro.workloads import generate_jobs


def show_tree_shape(fraction: float) -> None:
    fabric = paper_leafspine()
    failed = fail_random_uplinks(fabric, fraction, seed=42)
    rng = random.Random(0)
    src = fabric.hosts[0]
    dests = rng.sample(fabric.hosts[1:], 6)
    tree = layer_peeling_tree(fabric, src, dests)
    spines = sorted(n for n in tree.nodes if n.startswith("spine"))
    optimal = exact_steiner_cost(fabric.graph, src, dests)
    print(f"  {fraction:>4.0%} failed ({len(failed):>3} links): "
          f"greedy tree cost {tree.cost} (optimum {optimal}), "
          f"spines used: {spines}")


def main() -> None:
    print("Layer-peeling trees under increasing damage "
          "(6 receivers, 16x48 leaf-spine):")
    for fraction in (0.0, 0.02, 0.10, 0.25):
        show_tree_shape(fraction)

    print("\n64-GPU, 8 MB broadcasts on the damaged fabric "
          "(12 Poisson arrivals):")
    message = 8 * MB
    cfg = sim_config(message)
    print(f"{'failed':>8}  " + "".join(f"{s:>18}" for s in ("tree", "ring", "peel")))
    for pct in (1, 4, 10):
        fabric = paper_leafspine()
        fail_random_uplinks(fabric, pct / 100, seed=11)
        jobs = generate_jobs(fabric, 12, 64, message, offered_load=0.5,
                             gpus_per_host=1, seed=11)
        cells = []
        for scheme in ("tree", "ring", "peel"):
            result = run(ScenarioSpec(
                topology=fabric, scheme=scheme, jobs=tuple(jobs), config=cfg,
            ))
            cells.append(f"{result.stats.mean_s * 1e3:>10.2f} ms mean")
        print(f"{pct:>7}%  " + "".join(f"{c:>18}" for c in cells))


if __name__ == "__main__":
    main()
