"""Scenario: a persistent multicast control plane serving two tenants.

The paper's deploy-once fabric becomes a *service*: a `ControlPlane` owns
the topology, the installed peel rules, the plan cache and the simulator
clock, and clients talk to it over a unix-socket NDJSON protocol — create
groups, submit collectives, and churn membership while transfers are in
flight.  Joins graft the new receiver onto the installed trees (with
segment backfill), leaves prune it, and the congestion replanner watches
link utilization and moves running groups off hot spines.

The demo drives a short two-tenant campaign through a real socket server
with a live event/metrics subscription, then prints the service report,
the membership accounting, and a tail of the streamed events.

Run:  python examples/control_demo.py [--jobs 24] [--seed 7] [--local]
"""

import argparse
import random
import tempfile
import threading
import time

from repro.control import (
    CongestionReplanner,
    ControlPlane,
    ControlServer,
    LocalClient,
    SocketClient,
)
from repro.obs import Observability
from repro.sim import SimConfig
from repro.topology import LeafSpine

KB = 1024
MB = 1024 * KB

TENANTS = {
    "train": (4 * MB, 120e-6),  # big broadcasts, slower cadence
    "infer": (512 * KB, 60e-6),  # weight pushes, faster cadence
}


def build_control(seed: int) -> ControlPlane:
    return ControlPlane(
        LeafSpine(2, 4, 2),
        "peel",
        SimConfig(segment_bytes=64 * KB, seed=seed),
        check_invariants=True,
        obs=Observability(sample_interval_s=100e-6),
        replanner=CongestionReplanner(),
    )


def drive(client, num_jobs: int, seed: int) -> None:
    """The campaign: four shared groups, Poisson submits, periodic churn."""
    topo = LeafSpine(2, 4, 2)
    hosts = topo.hosts
    rng = random.Random(f"control-demo:{seed}")
    groups = [
        ("train", hosts[0], {hosts[1], hosts[2], hosts[4]}),
        ("train", hosts[3], {hosts[2], hosts[5], hosts[6]}),
        ("infer", hosts[7], {hosts[0], hosts[5]}),
        ("infer", hosts[4], {hosts[1], hosts[6], hosts[7]}),
    ]
    gids = [client.create_group(t, src, m) for t, src, m in groups]
    members = {g: set(m) for g, (_, _, m) in zip(gids, groups)}
    sources = {g: src for g, (_, src, _) in zip(gids, groups)}
    clocks = dict.fromkeys(TENANTS, 0.0)
    for index in range(num_jobs):
        gid = gids[index % len(gids)]
        tenant = groups[index % len(gids)][0]
        message_bytes, mean_gap = TENANTS[tenant]
        clocks[tenant] += rng.expovariate(1.0 / mean_gap)
        client.submit(gid, message_bytes, at_s=clocks[tenant])
        if index % 4 != 3:
            continue
        churn_at = clocks[tenant] + rng.uniform(10e-6, 80e-6)
        candidates = sorted(set(hosts) - members[gid] - {sources[gid]})
        if (index // 4) % 2 == 0 and candidates:
            host = rng.choice(candidates)
            members[gid].add(host)
            client.join(gid, host, at_s=churn_at)
        elif len(members[gid]) > 2:
            host = rng.choice(sorted(members[gid]))
            members[gid].discard(host)
            client.leave(gid, host, at_s=churn_at)
    client.run()


def print_outcome(report, stats, streamed) -> None:
    counters = stats["counters"]
    rejected = sum(t["rejected"] for t in report["tenants"].values())
    print(f"completed  : {report['completed']}  (rejected {rejected})")
    print(f"violations : {len(report['violations'])}")
    print(f"p99 CCT    : {report['p99_cct_s'] * 1e6:.1f} us")
    for tenant, row in sorted(report["tenants"].items()):
        print(f"  {tenant:<9}: {row['completed']} done, "
              f"p99 {row['p99_cct_s'] * 1e6:.1f} us")
    print(f"membership : {counters['joins']} joins, "
          f"{counters['leaves']} leaves -> {counters['grafts']} grafts, "
          f"{counters['prunes']} prunes, "
          f"{counters['full_repeels']} full re-peels")
    print(f"replans    : {stats.get('replans', 0)}  "
          f"(cache invalidations {report['cache_invalidations']})")
    if streamed is not None:
        events = [x for x in streamed if x.get("stream") == "event"]
        metrics = [x for x in streamed if x.get("stream") == "metrics"]
        print(f"subscribed : {len(events)} events, "
              f"{len(metrics)} metric snapshots streamed")
        for line in events[-4:]:
            tag = {k: v for k, v in line.items() if k != "stream"}
            print(f"  ... {tag}")


def run_local(args) -> None:
    client = LocalClient(build_control(args.seed))
    drive(client, args.jobs, args.seed)
    print_outcome(client.report(), client.stats(), None)


def run_socket(args) -> None:
    control = build_control(args.seed)
    with tempfile.TemporaryDirectory() as tmp:
        path = f"{tmp}/control.sock"
        server = ControlServer(control, path)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        for _ in range(100):
            try:
                client = SocketClient(path)
                break
            except (FileNotFoundError, ConnectionRefusedError):
                time.sleep(0.05)
        else:
            raise SystemExit("control server socket never came up")
        with client:
            client.subscribe()
            drive(client, args.jobs, args.seed)
            print_outcome(client.report(), client.stats(), client.stream)
            client.shutdown()
        thread.join(timeout=5)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=24)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--local", action="store_true",
                        help="in-process client, no socket server")
    args = parser.parse_args()
    if args.local:
        run_local(args)
    else:
        run_socket(args)


if __name__ == "__main__":
    main()
