"""Quickstart: plan and simulate one PEEL multicast on a small fat-tree.

Run:  python examples/quickstart.py
"""

from repro.collectives import CollectiveEnv, Gpu, Group, PeelBroadcast
from repro.core import Peel, PrefixRuleTable
from repro.sim import SimConfig
from repro.topology import FatTree

MB = 2**20


def main() -> None:
    # An 8-ary fat-tree with 4 endpoints per rack (full bisection).
    fabric = FatTree(8, hosts_per_tor=4)
    print(f"fabric: {fabric}")

    # A broadcast group: one source, receivers spread over two pods.
    source = "host:p0:t0:0"
    receivers = [
        "host:p0:t0:1", "host:p0:t1:0",
        "host:p2:t0:0", "host:p2:t1:0", "host:p2:t2:0", "host:p2:t3:0",
        "host:p3:t0:0", "host:p3:t1:0",
    ]

    # 1. Plan it with PEEL: which prefix packets does the source emit?
    plan = Peel(fabric).plan(source, receivers)
    print(f"\nPEEL plan: {plan.num_prefixes} prefix packet(s), "
          f"header {plan.header_bytes} B")
    for packet in plan.packets:
        width = packet.width
        print(f"  pods {list(packet.pods)}  ToR prefix "
              f"{packet.prefix.bitstring(width)}  covers "
              f"{list(packet.covered_edge_switches)}")
    print(f"  static cost {plan.static_cost()} link-crossings, "
          f"refined cost {plan.refined_cost()}")

    # 2. The data plane that serves it: k-1 pre-installed rules per switch.
    table = PrefixRuleTable(fabric.k)
    print(f"\nper-switch rule table: {len(table)} entries "
          f"(deploy once, touch never)")

    # 3. Simulate an 8 MB broadcast and read the completion time.
    env = CollectiveEnv(fabric, SimConfig())
    gpus = tuple(Gpu(h, 0) for h in [source] + receivers)
    group = Group(source=gpus[0], members=gpus)
    handle = PeelBroadcast().launch(env, group, 8 * MB, arrival_s=0.0)
    env.run()
    print(f"\n8 MB broadcast to {len(receivers)} receivers: "
          f"CCT = {handle.cct_s * 1e3:.3f} ms "
          f"(wire-serialization floor: {8 * MB * 8 / 100e9 * 1e3:.3f} ms)")


if __name__ == "__main__":
    main()
