"""Scenario: where did the bytes go?  Telemetry behind the CCT numbers.

Runs the same 128-GPU, 32 MB broadcast under Ring, Binary Tree and PEEL and
prints each run's per-tier utilization and hottest links — making visible
*why* the unicast schemes lose: they hammer the edge-up and core tiers the
multicast tree barely touches.

Run:  python examples/fabric_telemetry.py
"""

from repro.collectives import CollectiveEnv, Gpu, Group, scheme_by_name
from repro.sim import SimConfig, fabric_summary, format_summary
from repro.topology import FatTree

MB = 2**20


def main() -> None:
    for name in ("ring", "tree", "peel"):
        fabric = FatTree(8, hosts_per_tor=32)
        env = CollectiveEnv(fabric, SimConfig(segment_bytes=262144))
        hosts = sorted(fabric.hosts)[:128]
        gpus = tuple(Gpu(h, 0) for h in hosts)
        handle = scheme_by_name(name).launch(
            env, Group(gpus[0], gpus), 32 * MB, arrival_s=0.0
        )
        env.run()
        print(f"\n=== {name}: CCT {handle.cct_s * 1e3:.2f} ms ===")
        print(format_summary(fabric_summary(env.network, top_links=3)))


if __name__ == "__main__":
    main()
