"""Scenario: broadcasting model weights to a 512-GPU training job.

Reproduces the paper's motivating workload on its §4 fabric (8-ary
fat-tree, 4 servers/ToR, 8 GPUs each with a dedicated 100 Gb/s NIC) and
compares every collective scheme on the same Poisson workload.

Run:  python examples/training_job_broadcast.py [--gpus N] [--mb SIZE]
"""

import argparse

from repro import ScenarioSpec, run
from repro.experiments.common import MB, paper_fattree, sim_config
from repro.workloads import generate_jobs

SCHEMES = ("optimal", "peel", "peel+cores", "orca", "ring", "tree")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--gpus", type=int, default=512, help="job scale")
    parser.add_argument("--mb", type=int, default=64, help="message size (MB)")
    parser.add_argument("--jobs", type=int, default=8, help="collectives to run")
    parser.add_argument("--load", type=float, default=0.3, help="offered load")
    args = parser.parse_args()

    fabric = paper_fattree()
    message = args.mb * MB
    jobs = generate_jobs(
        fabric, args.jobs, args.gpus, message,
        offered_load=args.load, gpus_per_host=1, seed=7,
    )
    cfg = sim_config(message)

    print(f"{args.gpus}-GPU broadcast, {args.mb} MB messages, "
          f"{args.jobs} Poisson arrivals at {args.load:.0%} load\n")
    print(f"{'scheme':<12}{'mean CCT (ms)':>15}{'p99 CCT (ms)':>15}"
          f"{'fabric GiB':>12}")
    print("-" * 54)
    baseline = None
    for scheme in SCHEMES:
        result = run(ScenarioSpec(
            topology=fabric, scheme=scheme, jobs=tuple(jobs), config=cfg,
        ))
        if scheme == "optimal":
            baseline = result.stats.mean_s
        print(f"{scheme:<12}{result.stats.mean_s * 1e3:>15.2f}"
              f"{result.stats.p99_s * 1e3:>15.2f}"
              f"{result.total_bytes / 2**30:>12.1f}")
    print(f"\n(optimal mean = {baseline * 1e3:.2f} ms is the bandwidth floor)")


if __name__ == "__main__":
    main()
