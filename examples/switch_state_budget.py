"""Scenario: will multicast state fit in my switches? (§3, Fig. 3)

For fabrics from k=8 to k=128, compares the per-switch state and per-packet
header of naive IP multicast, RSBF-style Bloom headers, Orca, and PEEL —
and checks each against a commodity TCAM budget.

Run:  python examples/switch_state_budget.py
"""

from repro.core import hierarchical_header_bytes, preinstalled_rules, rule_count
from repro.state import (
    DEFAULT_CAPACITY,
    TcamOverflowError,
    TcamTable,
    compare_schemes,
    format_table,
    rsbf_header_bytes,
    worst_case_group_entries,
)


def tcam_fit(entries: int) -> str:
    return "fits" if entries <= DEFAULT_CAPACITY else "OVERFLOWS"


def main() -> None:
    print(f"commodity TCAM budget: {DEFAULT_CAPACITY} multicast entries\n")
    header = (f"{'k':>5}{'hosts':>9}{'PEEL rules':>12}{'fit':>11}"
              f"{'IP mcast':>12}{'fit':>11}{'PEEL hdr':>10}{'RSBF hdr':>10}")
    print(header)
    print("-" * len(header))
    for k in (8, 16, 32, 64, 128):
        peel = rule_count(k)
        ip = worst_case_group_entries(k)
        print(f"{k:>5}{k**3 // 4:>9}{peel:>12}{tcam_fit(peel):>11}"
              f"{ip:>12.2g}{tcam_fit(ip):>11}"
              f"{hierarchical_header_bytes(k):>9}B"
              f"{rsbf_header_bytes(k, 0.05):>9}B")

    # Actually install PEEL's rules into the TCAM model and prove they fit.
    table = TcamTable()
    for rule in preinstalled_rules(128):
        table.install((rule.prefix.value, rule.prefix.length), rule.out_ports)
    print(f"\ninstalled k=128 PEEL rule set: {len(table)} entries, "
          f"{table.utilization:.1%} of the TCAM")

    # And show that even a modest per-group scheme cannot.
    per_group = TcamTable()
    try:
        for group_id in range(DEFAULT_CAPACITY + 1):
            per_group.install(("group", group_id), (0,))
    except TcamOverflowError as exc:
        print(f"per-group state at {DEFAULT_CAPACITY + 1} concurrent "
              f"collectives: {exc}")

    print("\nfull scheme comparison at k=64:")
    print(format_table(compare_schemes(64)))


if __name__ == "__main__":
    main()
