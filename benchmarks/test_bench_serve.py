"""Serving-runtime throughput: sustained jobs/sec on a shared k=8 fat-tree.

Unlike the figure benches (one batch, one scheme at a time) this measures
the always-on path: a 600-job stream flowing through admission, the plan
cache, per-switch TCAM accounting and concurrent collectives on one fabric.
"""

import time

from repro.experiments.runner import segment_bytes_for
from repro.serve import (
    CompositeAdmission,
    LinkLoadAdmission,
    TcamAdmission,
    serve_jobs,
)
from repro.sim import SimConfig
from repro.topology import FatTree
from repro.workloads import generate_jobs

KB = 1024
NUM_JOBS = 600
MESSAGE = 256 * KB


def _serve(scheme: str):
    topo = FatTree(8, hosts_per_tor=4)
    jobs = generate_jobs(
        topo, NUM_JOBS, 16, MESSAGE, offered_load=0.5, gpus_per_host=1, seed=5
    )
    config = SimConfig(segment_bytes=segment_bytes_for(MESSAGE))
    start = time.perf_counter()
    report, _ = serve_jobs(
        topo, scheme, jobs, config,
        admission=CompositeAdmission(
            TcamAdmission(), LinkLoadAdmission(8 * MESSAGE)
        ),
        tcam_capacity=24,
    )
    return report, NUM_JOBS / (time.perf_counter() - start)


def test_bench_serve_peel_stream(once):
    report, jobs_per_s = once(lambda: _serve("peel"))
    print()
    print(f"peel: {jobs_per_s:8.0f} jobs/s, "
          f"cache hit rate {report.cache_hit_rate:.1%}, "
          f"p99 CCT {report.total.cct.p99_s * 1e3:.3f} ms")
    assert report.total.submitted == NUM_JOBS
    assert report.switch_updates == 0  # deploy-once: serving never touches a switch
    assert report.cache_hit_rate > 0.5  # schedulers repeat group shapes


def test_bench_serve_scheme_sweep(once):
    def sweep():
        return {name: _serve(name) for name in ("peel", "orca", "ip-multicast")}

    results = once(sweep)
    print()
    for name, (report, jobs_per_s) in results.items():
        print(f"{name:<14} {jobs_per_s:8.0f} jobs/s  "
              f"updates={report.switch_updates:<6} "
              f"queued={report.queued_jobs:<5} "
              f"p99={report.total.cct.p99_s * 1e3:8.3f} ms")
    peel = results["peel"][0]
    orca = results["orca"][0]
    # The control-plane gap the paper's §3 predicts, end to end.
    assert peel.switch_updates == 0 < orca.switch_updates
    assert orca.total.cct.p99_s > peel.total.cct.p99_s
