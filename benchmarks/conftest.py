"""Benchmark defaults: each scenario is one deterministic simulation, so a
single round per benchmark is the meaningful unit."""

import pytest


@pytest.fixture
def once(benchmark):
    """Run a (possibly expensive) scenario exactly once under timing."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
