"""State under churn: thousands of concurrent multicast groups (§1/§3)."""

from repro.experiments import state_churn


def test_bench_state_churn(once):
    rows = once(state_churn.run, num_jobs=1500, arrival_rate_per_s=3000.0)
    print()
    print(state_churn.format_table(rows))
    by = {r.scheme: r for r in rows}
    # PEEL's state is static: no updates, ever, regardless of churn.
    assert by["peel"].rule_updates == 0
    assert by["peel"].peak_entries_per_switch == 7  # k-1 at k=8
    # Orca's per-group entries scale with concurrency and churn both
    # (entries spread over all 32 agg switches, so the per-switch peak is
    # the concurrency that funnels through the single hottest agg).
    assert by["orca"].peak_entries_per_switch > 10 * by["peel"].peak_entries_per_switch
    assert by["orca"].rule_updates > 1000
    # IP multicast state is bounded here only because k=8 has 15 possible
    # ToR subsets per pod; the k=64 worst case is the 4x10^9 analytic row.
    assert by["ip-multicast"].rule_updates > 0
