"""§4 DCQCN ablation: sender-side guard timer vs per-CNP reaction."""

from repro.experiments import guard_timer


def test_bench_guard_timer_ablation(once):
    rows = once(guard_timer.run, num_jobs=16, offered_load=0.8)
    print()
    for r in rows:
        print(
            f"{r.variant:<12} mean={r.mean_s * 1e3:8.2f}ms "
            f"p99={r.p99_s * 1e3:8.2f}ms ({r.rate_reactions})"
        )
    improvement = guard_timer.tail_improvement(rows)
    print(f"tail improvement: {improvement:.1f}x")
    # Paper: the guard timer slashes p99 CCT (12x in their testbed); the
    # naive per-CNP variant must be clearly worse.
    assert improvement > 1.5
