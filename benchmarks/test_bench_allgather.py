"""Allgather: the multi-group extension (each rank multicasts its shard)."""

from repro.collectives import CollectiveEnv, Gpu, Group, scheme_by_name
from repro.sim import SimConfig
from repro.topology import FatTree


def _run_allgather(name: str, num_hosts: int, message_bytes: int):
    topo = FatTree(8, hosts_per_tor=4)
    env = CollectiveEnv(topo, SimConfig(segment_bytes=262144))
    hosts = sorted(topo.hosts)[:num_hosts]
    gpus = tuple(Gpu(h, 0) for h in hosts)
    handle = scheme_by_name(name).launch(env, Group(gpus[0], gpus), message_bytes, 0.0)
    env.run()
    assert handle.complete
    return handle.cct_s, env.network.total_bytes_sent()


def test_bench_allgather_ring_vs_peel(once):
    def pair():
        return {
            name: _run_allgather(name, 32, 64 * 2**20)
            for name in ("allgather-ring", "allgather-peel")
        }

    results = once(pair)
    print()
    for name, (cct, total) in results.items():
        print(f"{name:<16} cct={cct * 1e3:8.2f}ms fabric={total / 2**30:6.2f} GiB")
    ring_cct, ring_bytes = results["allgather-ring"]
    peel_cct, peel_bytes = results["allgather-peel"]
    # Allgather's floor is each NIC receiving (N-1)/N of the message, so
    # CCTs are comparable — the win is fabric bytes (freed core capacity).
    assert peel_bytes < 0.7 * ring_bytes
    assert peel_cct < 2.0 * ring_cct


def test_bench_allreduce_ring_vs_peel(once):
    def pair():
        return {
            name: _run_allgather(name, 32, 64 * 2**20)
            for name in ("allreduce-ring", "allreduce-peel")
        }

    results = once(pair)
    print()
    for name, (cct, total) in results.items():
        print(f"{name:<16} cct={cct * 1e3:8.2f}ms fabric={total / 2**30:6.2f} GiB")
    ring_cct, ring_bytes = results["allreduce-ring"]
    peel_cct, peel_bytes = results["allreduce-peel"]
    # The allgather half rides PEEL multicast: fewer fabric bytes at
    # comparable CCT (reduce-scatter dominates and is identical).
    assert peel_bytes < ring_bytes
    assert peel_cct < 1.5 * ring_cct
