"""Figure 3: RSBF Bloom-header size sweep vs PEEL."""

from repro.experiments import fig3_rsbf


def test_bench_fig3_rsbf_headers(benchmark):
    rows = benchmark(fig3_rsbf.run)
    print()
    print(fig3_rsbf.format_table(rows))
    at = {(r.k, r.fpr): r for r in rows}
    # Paper: "exceeds one full MTU once k > 32; even at a generous FPR".
    assert at[(64, 0.20)].exceeds_mtu
    assert at[(64, 0.01)].exceeds_mtu
    assert not at[(32, 0.20)].exceeds_mtu
    assert all(r.peel_header_bytes < 8 for r in rows)
