"""Figure 5: CCT vs message size, all schemes, 512-GPU broadcasts."""

from repro.experiments import fig5_message_size, format_cct_table
from repro.experiments.common import rows_for

SIZES_MB = (2, 16, 64)


def test_bench_fig5_message_size(once):
    rows = once(
        fig5_message_size.run, sizes_mb=SIZES_MB, num_jobs=8, num_gpus=512
    )
    print()
    print(format_cct_table(rows, "msg (MB)"))
    for size in SIZES_MB:
        at = {r.scheme: r for r in rows if r.x == size}
        # Paper ordering: optimal <= peel+cores/peel < orca/ring < tree.
        assert at["optimal"].mean_s <= at["peel"].mean_s * 1.05, size
        assert at["peel"].mean_s < at["ring"].mean_s, size
        assert at["peel"].mean_s < at["tree"].mean_s, size
        assert at["peel"].mean_s < at["orca"].mean_s, size
    # PEEL stays within a small factor of the bandwidth-optimal baseline.
    peel = rows_for(rows, "peel")
    optimal = {r.x: r for r in rows_for(rows, "optimal")}
    for row in peel:
        assert row.mean_s < 3.5 * optimal[row.x].mean_s
