"""Figure 6: scale independence at fixed 64 MB messages."""

from repro.experiments import fig6_scale, format_cct_table
from repro.experiments.common import rows_for

SCALES = (64, 256)


def test_bench_fig6_scale(once):
    rows = once(fig6_scale.run, scales=SCALES, num_jobs=6)
    print()
    print(format_cct_table(rows, "GPUs"))
    for scale in SCALES:
        at = {r.scheme: r for r in rows if r.x == scale}
        assert at["peel"].mean_s < at["ring"].mean_s, scale
        assert at["peel"].mean_s < at["tree"].mean_s, scale
        assert at["peel"].mean_s < at["orca"].mean_s, scale
    # Paper at 256 GPUs: PEEL ~5x below Ring, far below Tree, ~2.5x below
    # Orca; ratios should be in that neighbourhood.
    at256 = {r.scheme: r for r in rows if r.x == 256}
    assert at256["ring"].mean_s / at256["peel"].mean_s > 3.0
    assert at256["tree"].mean_s / at256["peel"].mean_s > 4.0
    # Ring cost grows with scale (GPU-granular chain); PEEL barely moves.
    ring = {r.x: r.mean_s for r in rows_for(rows, "ring")}
    peel = {r.x: r.mean_s for r in rows_for(rows, "peel")}
    assert ring[256] / ring[64] > 2.0
    assert peel[256] / peel[64] < 2.5
