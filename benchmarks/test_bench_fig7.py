"""Figure 7: robustness to random spine-leaf link failures."""

from repro.experiments import fig7_failures, format_cct_table

PCTS = (1, 4, 10)


def test_bench_fig7_failures(once):
    rows = once(fig7_failures.run, failure_pcts=PCTS, num_jobs=10)
    print()
    print(format_cct_table(rows, "failed %"))
    for pct in PCTS:
        at = {r.scheme: r for r in rows if r.x == pct}
        # Paper: PEEL stays fastest across the whole failure range.
        assert at["peel"].mean_s < at["ring"].mean_s, pct
        assert at["peel"].mean_s < at["tree"].mean_s, pct
        assert at["peel"].p99_s < at["ring"].p99_s, pct
        assert at["peel"].p99_s < at["tree"].p99_s, pct
