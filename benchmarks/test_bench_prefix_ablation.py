"""Design-choice ablations around §3.4: fragmentation vs prefix packing."""

import random

from repro.experiments import fragmentation


def test_bench_fragmentation_ablation(once):
    rows = once(fragmentation.run)
    print()
    print(fragmentation.format_table(rows))
    by = {(r.window_racks, r.policy): r for r in rows}
    windows = sorted({r.window_racks for r in rows})
    dense, sparse = windows[0], windows[-1]
    # Sparser placement splinters the prefix ranges -> more packets.
    assert by[(sparse, "exact")].mean_packets > by[(dense, "exact")].mean_packets
    # Exact covers never over-cover.
    assert all(r.mean_wasted_tors == 0 for r in rows if r.policy == "exact")
    # Adaptive packing trades packets for over-covered ToRs.
    assert (
        by[(sparse, "budget-1")].mean_packets
        <= by[(sparse, "exact")].mean_packets
    )
    assert by[(sparse, "budget-1")].mean_wasted_tors > 0
    # The refined (programmable-core) cost is immune to the packing policy.
    assert (
        by[(sparse, "budget-1")].mean_refined_cost
        == by[(sparse, "exact")].mean_refined_cost
    )


def test_bench_exact_cover_speed(benchmark):
    """Cover computation is data-plane-setup cost; keep it microseconds."""
    from repro.core import exact_cover

    rng = random.Random(0)
    ids = set(rng.sample(range(32), 17))
    cover = benchmark(exact_cover, ids, 5)
    assert cover
