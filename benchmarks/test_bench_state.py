"""§1/§3.2 headline table: switch state, header size, aggregate bandwidth."""

from repro.experiments import headline


def test_bench_state_table(benchmark):
    rows = benchmark(headline.state_table)
    print()
    print(headline.format_state_table(rows))
    at64 = next(r for r in rows if r.k == 64)
    # "required entries plummet from over 4x10^9 to fewer than 64".
    assert at64.peel_rules == 63
    assert at64.ip_multicast_entries > 4e9
    # "<8 B of header" up to k=128.
    assert all(r.header_bytes < 8 for r in rows)


def test_bench_bandwidth_headline(once):
    bw = once(headline.bandwidth_headline, num_gpus=64, trials=20)
    print()
    print(
        f"ring={bw.ring_traversals} peel={bw.peel_static_traversals} "
        f"optimal={bw.optimal_traversals} "
        f"saving vs ring={bw.peel_saving_vs_ring:.0%} "
        f"overhead vs optimal={bw.peel_overhead_vs_optimal:.1%}"
    )
    # Paper: "uses 23% less aggregate bandwidth than unicast rings" and
    # lands close to the Steiner optimum.
    assert bw.peel_saving_vs_ring > 0.10
    assert bw.peel_overhead_vs_optimal < 0.30
