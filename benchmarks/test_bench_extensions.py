"""Benches for the paper's §2.3/§3.4 open-question extensions."""

from repro.experiments import deployment


def test_bench_incremental_deployment(once):
    rows = once(deployment.run, num_jobs=6)
    print()
    print(deployment.format_table(rows))
    by = {r.stage: r for r in rows}
    # Each upgrade stage pays off, monotonically.
    assert by["static"].mean_s < by["unicast"].mean_s
    assert by["cores"].mean_s < by["static"].mean_s
    assert by["full"].mean_s <= by["cores"].mean_s * 1.05
    # And multicast stages move far fewer bytes than unicast.
    assert by["static"].fabric_bytes < 0.7 * by["unicast"].fabric_bytes


def test_bench_multipath_striping(once):
    """§2.3 open question: striping over diverse trees lowers the hottest
    core link's load at equal delivered bytes."""
    from repro.collectives import (
        CollectiveEnv,
        Gpu,
        Group,
        OptimalBroadcast,
        StripedMulticastBroadcast,
    )
    from repro.sim import SimConfig
    from repro.topology import FatTree

    def hottest_core_link(scheme):
        topo = FatTree(8, hosts_per_tor=4)
        env = CollectiveEnv(topo, SimConfig(segment_bytes=65536))
        hosts = [h for h in topo.hosts if h.startswith(("host:p1", "host:p2"))]
        gpus = tuple(Gpu(h, 0) for h in [topo.hosts[0]] + hosts)
        handle = scheme.launch(env, Group(gpus[0], gpus), 32 * 2**20, 0.0)
        env.run()
        assert handle.complete
        core_loads = [
            p.bytes_sent
            for (u, v), p in env.network.ports.items()
            if (u.startswith("core") or v.startswith("core")) and p.bytes_sent
        ]
        return handle.cct_s, max(core_loads)

    def run_pair():
        return hottest_core_link(OptimalBroadcast()), hottest_core_link(
            StripedMulticastBroadcast(num_trees=4)
        )

    (single_cct, single_peak), (striped_cct, striped_peak) = once(run_pair)
    print()
    print(f"single tree : cct={single_cct * 1e3:.2f}ms peak core link "
          f"{single_peak / 2**20:.0f} MiB")
    print(f"striped x4  : cct={striped_cct * 1e3:.2f}ms peak core link "
          f"{striped_peak / 2**20:.0f} MiB")
    assert striped_peak < 0.5 * single_peak
