"""Tree construction: polynomial-time claim and quality vs the optimum."""

import random

from repro.core import Peel, layer_peeling_tree, optimal_symmetric_tree
from repro.experiments import tree_quality
from repro.topology import FatTree, LeafSpine, asymmetric
from repro.workloads import place_job


def test_bench_layer_peeling_large_fabric(benchmark):
    """The §2.3 greedy must stay fast on a big asymmetric fabric (the paper's
    pitch is polynomial tree construction at cloud scale)."""
    topo, _ = asymmetric(LeafSpine(16, 48, 16), 0.05, seed=1)
    rng = random.Random(0)
    hosts = topo.hosts
    src = hosts[0]
    dests = rng.sample(hosts[1:], 256)
    tree = benchmark(layer_peeling_tree, topo, src, dests)
    assert tree.cost >= len(dests)


def test_bench_symmetric_optimal_64ary(benchmark):
    """Lemma 2.1's O(|D|) construction on a 64-ary fat-tree (65,536 hosts
    at the paper's headline scale, subsampled destinations)."""
    ft = FatTree(64, hosts_per_tor=8)  # 16,384 hosts; full graph still large
    rng = random.Random(0)
    dests = rng.sample(ft.hosts, 512)
    src = dests.pop()
    tree = benchmark(optimal_symmetric_tree, ft, src, dests)
    assert tree.cost > len(dests)


def test_bench_peel_planning(benchmark):
    """Full PEEL plan (tree + hierarchical covers) for a 512-GPU job."""
    topo = FatTree(8, hosts_per_tor=32)
    group = place_job(topo, 512, gpus_per_host=1, rng=random.Random(2))
    peel = Peel(topo)
    plan = benchmark(peel.plan, group.source.host, group.receiver_hosts)
    assert plan.num_prefixes >= 1
    print(f"\nprefix packets: {plan.num_prefixes}, "
          f"static/refined cost: {plan.static_cost()}/{plan.refined_cost()}")


def test_bench_tree_quality(once):
    """Greedy vs exact Steiner on randomized failed fabrics (§2.3)."""
    rows = once(tree_quality.run, failure_fractions=(0.05, 0.2), trials=8)
    print()
    print(tree_quality.format_table(rows))
    for row in rows:
        assert row.mean_ratio_vs_exact < 1.3
        assert row.worst_ratio_vs_exact < 1.8
