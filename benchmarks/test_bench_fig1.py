"""Figure 1: unicast vs multicast bandwidth on the intro's leaf-spine."""

from repro.experiments import fig1_bandwidth


def test_bench_fig1_bandwidth(benchmark):
    rows = benchmark(fig1_bandwidth.run)
    print()
    print(fig1_bandwidth.format_table(rows))
    by = {r.scheme: r for r in rows}
    # Paper: rings/trees overshoot the optimum substantially (70-80% in the
    # paper's closed-ring accounting; our open NCCL chain gives 60-120%).
    assert by["ring"].overshoot_vs_optimal > 0.3
    assert by["tree"].overshoot_vs_optimal > 0.8
    assert by["optimal"].overshoot_vs_optimal == 0
