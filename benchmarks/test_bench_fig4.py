"""Figure 4: Orca's controller flow-setup delay inflates CCT."""

from repro.experiments import fig4_orca, format_cct_table

SIZES_MB = (2, 8, 32)


def test_bench_fig4_orca_setup_delay(once):
    rows = once(fig4_orca.run, sizes_mb=SIZES_MB, num_jobs=8, num_gpus=512)
    print()
    print(format_cct_table(rows, "msg (MB)"))
    for size in SIZES_MB:
        inflation = fig4_orca.tail_inflation(rows, size)
        print(f"p99 inflation at {size} MB: {inflation:.1f}x")
    # Paper: p99 CCT of a 32 MB Broadcast rises ~8x with controller
    # overhead; small messages inflate the most, large ones amortize.
    assert fig4_orca.tail_inflation(rows, 2) > fig4_orca.tail_inflation(rows, 32)
    assert fig4_orca.tail_inflation(rows, 32) > 1.15
    assert fig4_orca.tail_inflation(rows, 2) > 3.0
