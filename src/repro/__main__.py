"""``python -m repro`` dispatches to the experiment CLI."""

from .cli import main

if __name__ == "__main__":
    raise SystemExit(main())
