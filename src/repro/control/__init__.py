"""repro.control: the persistent multicast control-plane service.

The paper's deployment story needs more than one-shot experiment runs: a
*service* that owns long-lived multicast groups, absorbs membership churn
with incremental tree maintenance (graft/prune against the installed peel
trees, full re-peel past a delta threshold), and re-plans around measured
congestion — all while staying byte-deterministic under the repo's golden
and checkpoint/replay infrastructure.  See DESIGN.md "Control plane".

Layering:

* :mod:`~repro.control.membership` — pure tree surgery + churn timelines;
* :mod:`~repro.control.service` — :class:`ControlPlane` over the serving
  runtime (groups, epochs, cache/TCAM invalidation);
* :mod:`~repro.control.replanner` — the congestion-watching app;
* :mod:`~repro.control.protocol` / :mod:`~repro.control.server` /
  :mod:`~repro.control.client` — the JSON line protocol, its asyncio unix
  socket front end, and the two client transports.
"""

from .client import (
    ControlPlaneRequestError,
    ControlRequestError,
    LocalClient,
    MembershipRequestError,
    ProtocolRequestError,
    SocketClient,
)
from .membership import (
    ChurnDriver,
    ChurnEvent,
    ChurnPolicy,
    ChurnSchedule,
    MembershipError,
    covered_hosts,
    graft_host,
    prune_host,
)
from .protocol import ProtocolError
from .replanner import CongestionReplanner
from .server import ControlServer, Dispatcher
from .service import ControlError, ControlPlane, ManagedGroup

__all__ = [
    "ChurnDriver",
    "ChurnEvent",
    "ChurnPolicy",
    "ChurnSchedule",
    "CongestionReplanner",
    "ControlError",
    "ControlPlane",
    "ControlPlaneRequestError",
    "ControlRequestError",
    "ControlServer",
    "Dispatcher",
    "LocalClient",
    "ManagedGroup",
    "MembershipError",
    "MembershipRequestError",
    "ProtocolError",
    "ProtocolRequestError",
    "SocketClient",
    "covered_hosts",
    "graft_host",
    "prune_host",
]
