"""Serving the control plane: a sync dispatcher plus an asyncio front end.

:class:`Dispatcher` is the protocol brain — a synchronous, deterministic
mapping from request dicts to response dicts over one
:class:`~repro.control.service.ControlPlane`.  Both front ends share it:

* :class:`~repro.control.client.LocalClient` calls it in-process (what the
  experiments and property tests use — zero I/O, fully deterministic);
* :class:`ControlServer` exposes it over a unix domain socket with
  newline-delimited JSON.  Requests are handled strictly sequentially in
  arrival order — the simulator is single-threaded state, so the server
  never interleaves two requests — which keeps socket-driven campaigns as
  deterministic as in-process ones for a single client.

Subscribers: a connection that sends ``subscribe`` gets, after every
subsequent state-advancing request, one extra line per new control-plane
event (joins, leaves, completions, replans) plus periodic
:mod:`repro.obs` metric snapshots — the streaming half of the protocol.
"""

from __future__ import annotations

import asyncio
import json

from .membership import MembershipError
from .protocol import ProtocolError, decode, encode, error, ok, require
from .service import ControlError, ControlPlane


class Dispatcher:
    """Synchronous request handler over one control plane."""

    def __init__(self, control: ControlPlane) -> None:
        self.control = control
        #: Event-stream cursor for subscriber broadcasts.
        self._cursor = 0
        self.shutdown_requested = False

    def handle(self, req: dict) -> dict:
        """One request dict -> one response dict; never raises for
        domain errors (they become ``{"ok": false}`` responses)."""
        try:
            return self._dispatch(req)
        except ProtocolError as exc:
            return error(str(exc), kind="protocol")
        except ControlError as exc:
            return error(str(exc), kind="control")
        except MembershipError as exc:
            return error(str(exc), kind="membership")
        except ValueError as exc:
            return error(str(exc), kind="value")
        except KeyError as exc:
            return error(f"unknown key: {exc}", kind="unknown-key")

    def _dispatch(self, req: dict) -> dict:
        control = self.control
        op = req["op"]
        if op == "ping":
            return ok(t_s=control.now)
        if op == "create":
            gid = control.create_group(
                require(req, "tenant", str),
                require(req, "source", str),
                req.get("members", ()),
            )
            return ok(group=gid)
        if op in ("join", "leave"):
            fn = control.join if op == "join" else control.leave
            fn(
                require(req, "group", int),
                require(req, "host", str),
                req.get("at_s"),
            )
            return ok(group=req["group"], host=req["host"])
        if op == "submit":
            job = control.submit(
                require(req, "group", int),
                require(req, "message_bytes", int),
                req.get("at_s"),
            )
            return ok(job=job)
        if op == "advance":
            processed = control.advance(
                until=req.get("until_s"), max_events=req.get("max_events")
            )
            return ok(processed=processed, t_s=control.now)
        if op == "run":
            processed = control.run()
            return ok(processed=processed, t_s=control.now)
        if op == "stats":
            return ok(stats=control.stats())
        if op == "events":
            events, cursor = control.drain_events(req.get("cursor", 0))
            return ok(events=events, cursor=cursor)
        if op == "metrics":
            obs = control.runtime.obs
            if obs is None:
                return error("service was started without observability")
            return ok(metrics=json.loads(obs.registry.to_json()))
        if op == "subscribe":
            # Connection-level concern; the async server intercepts this op.
            return ok(subscribed=True)
        if op == "report":
            violations = control.finalize_checks()
            report = control.report()
            return ok(
                scheme=report.scheme,
                violations=[str(v) for v in violations],
                tenants={
                    row.tenant: {
                        "completed": row.completed,
                        "rejected": row.rejected,
                        "p50_cct_s": row.cct.p50_s,
                        "p99_cct_s": row.cct.p99_s,
                        "mean_queue_s": row.mean_queue_s,
                    }
                    for row in report.tenants
                },
                completed=report.total.completed,
                p99_cct_s=report.total.cct.p99_s,
                cache_hits=report.cache_hits,
                cache_invalidations=report.cache_invalidations,
                switch_updates=report.switch_updates,
            )
        if op == "shutdown":
            self.shutdown_requested = True
            return ok(shutdown=True)
        raise ProtocolError(f"unhandled op {op!r}")  # pragma: no cover

    def drain_new_events(self) -> list[dict]:
        """Control-plane events since the last drain (subscriber feed)."""
        events, self._cursor = self.control.drain_events(self._cursor)
        return events


class ControlServer:
    """Asyncio unix-socket front end over a :class:`Dispatcher`."""

    def __init__(self, control: ControlPlane, path: str) -> None:
        self.dispatcher = Dispatcher(control)
        self.path = path
        self._subscribers: list[asyncio.StreamWriter] = []
        self._done: asyncio.Event | None = None

    async def serve(self) -> None:
        """Serve until a client sends ``shutdown``."""
        self._done = asyncio.Event()
        server = await asyncio.start_unix_server(self._client, path=self.path)
        async with server:
            await self._done.wait()
        for writer in self._subscribers:
            writer.close()

    def serve_forever(self) -> None:
        """Blocking entry point (what ``scripts``/CI use)."""
        asyncio.run(self.serve())

    async def _client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while not self.dispatcher.shutdown_requested:
                line = await reader.readline()
                if not line:
                    break
                try:
                    req = decode(line.decode("utf-8"))
                except ProtocolError as exc:
                    await self._send(writer, error(str(exc), kind="protocol"))
                    continue
                resp = self.dispatcher.handle(req)
                if req.get("op") == "subscribe" and resp.get("ok"):
                    self._subscribers.append(writer)
                await self._send(writer, resp)
                await self._broadcast()
                if self.dispatcher.shutdown_requested:
                    self._done.set()
        finally:
            if writer not in self._subscribers:
                writer.close()

    async def _send(self, writer: asyncio.StreamWriter, obj: dict) -> None:
        writer.write((encode(obj) + "\n").encode("utf-8"))
        await writer.drain()

    async def _broadcast(self) -> None:
        """Push new control-plane events (and a metric snapshot, when obs
        is attached) to every subscriber."""
        if not self._subscribers:
            return
        events = self.dispatcher.drain_new_events()
        if not events:
            return
        lines = [encode({"stream": "event", **event}) for event in events]
        obs = self.dispatcher.control.runtime.obs
        if obs is not None:
            lines.append(
                encode(
                    {
                        "stream": "metrics",
                        "t_s": self.dispatcher.control.now,
                        "metrics": json.loads(obs.registry.to_json()),
                    }
                )
            )
        payload = ("\n".join(lines) + "\n").encode("utf-8")
        for writer in list(self._subscribers):
            try:
                writer.write(payload)
                await writer.drain()
            except (ConnectionResetError, BrokenPipeError):
                self._subscribers.remove(writer)
