"""Incremental multicast-tree maintenance under membership churn.

The paper's elasticity story (§3.2) is that PEEL's static prefix rules make
group membership *cheap*: a joining ToR is usually already covered by some
prefix-packet tree, so the controller grafts the host locally instead of
re-planning.  This module is that controller logic, factored as pure
functions over :class:`~repro.steiner.tree.MulticastTree` lists so both the
:class:`~repro.control.service.ControlPlane` and the scenario-level
:class:`ChurnDriver` share one implementation (and the hypothesis property
test can compare it against a from-scratch re-peel directly):

* :func:`graft_host` — attach a joining host under its ToR when any
  installed tree already reaches it (the free case), else merge a shortest
  source path into a tree, else add an auxiliary unicast branch;
* :func:`prune_host` — detach a leaving host and strip the now-childless
  switch chain above it (other receivers' paths are never touched);
* :class:`ChurnPolicy` — when accumulated deltas warrant a full re-peel.

:class:`ChurnSchedule` / :class:`ChurnEvent` describe a join/leave/submit
timeline the way :class:`repro.faults.FaultSchedule` describes link flaps:
plain frozen values with a JSON round-trip, schedulable into a simulation.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

import networkx as nx

from ..steiner import MulticastTree
from ..topology.addressing import NodeKind, kind_of

if TYPE_CHECKING:  # pragma: no cover
    from ..topology import Topology

CHURN_OPS = ("join", "leave", "submit")


class MembershipError(ValueError):
    """A membership operation that cannot be realized on the fabric."""


# -- tree surgery ---------------------------------------------------------------


def covered_hosts(trees: list[MulticastTree]) -> set[str]:
    """Every receiver host some tree currently delivers to."""
    out: set[str] = set()
    for tree in trees:
        out.update(
            n
            for n in tree.parent
            if kind_of(n) is NodeKind.HOST and n != tree.root
        )
    return out


def graft_host(
    topo: "Topology",
    trees: list[MulticastTree],
    source: str,
    host: str,
) -> tuple[list[MulticastTree], str]:
    """Attach ``host`` to the installed trees; returns ``(trees, kind)``.

    ``kind`` reports the cost class of the graft:

    * ``"noop"`` — some tree already delivers to the host;
    * ``"covered"`` — its ToR is on a tree, so the graft is one
      host-attachment edge (the paper's free case: the prefix rule at the
      ToR already matches);
    * ``"branch"`` — no tree reaches the ToR; a shortest source→host path
      is merged into the first conflict-free tree, or appended as an
      auxiliary unicast branch.  Branches accumulate toward the
      :class:`ChurnPolicy` full re-peel threshold.

    The input list is never mutated; modified trees are rebuilt.
    """
    if host == source:
        raise MembershipError("the source host cannot join its own group")
    if kind_of(host) is not NodeKind.HOST:
        raise MembershipError(f"{host!r} is not a host")
    for tree in trees:
        if host in tree.parent:
            return trees, "noop"
    try:
        tor = topo.tor_of(host)
    except ValueError as exc:  # detached from its ToR entirely
        raise MembershipError(
            f"joining host {host!r} is disconnected from the fabric"
        ) from exc
    for i, tree in enumerate(trees):
        if tor in tree.nodes:
            parent = dict(tree.parent)
            parent[host] = tor
            out = list(trees)
            out[i] = MulticastTree(tree.root, parent)
            return out, "covered"
    try:
        path = nx.shortest_path(topo.graph, source, host)
    except (nx.NetworkXNoPath, nx.NodeNotFound) as exc:
        raise MembershipError(
            f"no path from {source!r} to joining host {host!r} on the "
            "current fabric"
        ) from exc
    for i, tree in enumerate(trees):
        parent = dict(tree.parent)
        compatible = True
        for par, child in zip(path, path[1:]):
            if child == tree.root:
                compatible = False
                break
            existing = parent.get(child)
            if existing is not None and existing != par:
                compatible = False
                break
            parent[child] = par
        if compatible:
            out = list(trees)
            out[i] = MulticastTree(tree.root, parent)
            return out, "branch"
    branch = MulticastTree(
        source, {child: par for par, child in zip(path, path[1:])}
    )
    return [*trees, branch], "branch"


def prune_host(
    trees: list[MulticastTree], host: str
) -> tuple[list[MulticastTree], bool]:
    """Detach ``host`` from every tree; returns ``(trees, changed)``.

    The switch chain above the departed host is stripped exactly as far as
    it serves nobody else — nodes with surviving children (or the root)
    stop the walk, so concurrent receivers keep their paths bit-identical.
    Trees reduced to a bare root are dropped from the list entirely.
    """
    out: list[MulticastTree] = []
    changed = False
    for tree in trees:
        if host == tree.root:
            raise MembershipError("cannot prune a tree's source")
        if host not in tree.parent:
            out.append(tree)
            continue
        changed = True
        parent = dict(tree.parent)
        children: dict[str, set[str]] = {}
        for child, par in parent.items():
            children.setdefault(par, set()).add(child)
        if children.get(host):
            raise MembershipError(
                f"{host!r} relays to downstream nodes; only leaf receivers "
                "can be pruned"
            )
        node = parent.pop(host)
        children[node].discard(host)
        while (
            node != tree.root
            and not children.get(node)
            and kind_of(node) is not NodeKind.HOST
        ):
            par = parent.pop(node)
            children[par].discard(node)
            node = par
        if parent:
            out.append(MulticastTree(tree.root, parent))
    return out, changed


# -- re-peel policy -------------------------------------------------------------


@dataclass(frozen=True)
class ChurnPolicy:
    """When incremental maintenance should give way to a full re-peel.

    ``max_delta_fraction`` bounds accumulated grafts+prunes relative to the
    group size (0.5 → re-peel once half the group has churned since the
    last plan); ``max_branch_grafts`` bounds the expensive out-of-cover
    grafts, which degrade the trees toward unicast, independently of size.
    """

    max_delta_fraction: float = 0.5
    max_branch_grafts: int = 2

    def __post_init__(self) -> None:
        if self.max_delta_fraction <= 0:
            raise ValueError("max_delta_fraction must be positive")
        if self.max_branch_grafts < 0:
            raise ValueError("max_branch_grafts must be >= 0")

    def needs_full_repeel(
        self, ops_since_plan: int, branch_grafts: int, group_size: int
    ) -> bool:
        if branch_grafts > self.max_branch_grafts:
            return True
        budget = max(1, math.ceil(self.max_delta_fraction * max(group_size, 1)))
        return ops_since_plan > budget


# -- churn timelines ------------------------------------------------------------


@dataclass(frozen=True)
class ChurnEvent:
    """One timed membership or submit operation against a group.

    ``group`` is a group id in the control-plane service, or a job index in
    the :class:`ChurnDriver` scenario path.  ``host`` names the joining or
    leaving endpoint for membership ops; ``message_bytes`` sizes a
    ``submit``.
    """

    at_s: float
    group: int
    op: str
    host: str | None = None
    message_bytes: int | None = None

    def __post_init__(self) -> None:
        if self.op not in CHURN_OPS:
            raise ValueError(f"op must be one of {CHURN_OPS}, got {self.op!r}")
        if self.op in ("join", "leave") and not self.host:
            raise ValueError(f"{self.op} event needs a host")
        if self.op == "submit" and (
            self.message_bytes is None or self.message_bytes <= 0
        ):
            raise ValueError("submit event needs positive message_bytes")
        if self.at_s < 0:
            raise ValueError("at_s must be non-negative")

    def to_dict(self) -> dict:
        out = {"at_s": self.at_s, "group": self.group, "op": self.op}
        if self.host is not None:
            out["host"] = self.host
        if self.message_bytes is not None:
            out["message_bytes"] = self.message_bytes
        return out

    @classmethod
    def from_dict(cls, raw: dict) -> "ChurnEvent":
        return cls(
            at_s=raw["at_s"],
            group=raw["group"],
            op=raw["op"],
            host=raw.get("host"),
            message_bytes=raw.get("message_bytes"),
        )


@dataclass(frozen=True)
class ChurnSchedule:
    """A time-ordered churn timeline, JSON round-trippable like
    :class:`repro.faults.FaultSchedule`."""

    events: tuple[ChurnEvent, ...] = ()

    def __post_init__(self) -> None:
        ordered = tuple(
            sorted(self.events, key=lambda e: (e.at_s, e.group, e.op, e.host or ""))
        )
        object.__setattr__(self, "events", ordered)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def to_json(self) -> str:
        return json.dumps(
            [e.to_dict() for e in self.events], sort_keys=True
        )

    @classmethod
    def from_json(cls, text: str) -> "ChurnSchedule":
        return cls(tuple(ChurnEvent.from_dict(raw) for raw in json.loads(text)))

    def save(self, path) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json())

    @classmethod
    def load(cls, path) -> "ChurnSchedule":
        with open(path, encoding="utf-8") as fh:
            return cls.from_json(fh.read())


MEMBERSHIP_COUNTERS = ("joins", "leaves", "grafts", "prunes", "full_repeels")


class ChurnDriver:
    """Applies join/leave churn to a live scenario's collectives.

    The :class:`repro.api.ScenarioSpec` path: each event targets the job at
    index ``event.group``; joins graft the host onto the running transfer's
    trees (backfilling missed segments), leaves prune it.  Everything is a
    bound-method simulator callback on a plain object, so checkpointed runs
    replay churn byte-identically.
    """

    def __init__(self, env, schedule: ChurnSchedule, policy: ChurnPolicy | None = None):
        self.env = env
        self.schedule = schedule
        self.policy = policy or ChurnPolicy()
        self.handles: list = []
        self.counters = dict.fromkeys(MEMBERSHIP_COUNTERS, 0)
        self.ignored = 0
        #: per-job (ops_since_plan, branch_grafts) toward the re-peel policy.
        self._pressure: dict[int, list[int]] = {}

    def install(self, handles: list) -> None:
        """Bind the launched handles and schedule every churn event."""
        if self.env.protection > 0:
            raise MembershipError(
                "churn cannot be combined with protection > 0: backup "
                "subtrees are planned against launch-time trees, and a "
                "grafted or pruned membership would silently void the "
                "F-resilience guarantee"
            )
        self.handles = handles
        for event in self.schedule:
            if not 0 <= event.group < len(handles):
                raise MembershipError(
                    f"churn event targets job {event.group}, but the "
                    f"scenario has {len(handles)} jobs"
                )
            if event.op == "submit":
                raise MembershipError(
                    "submit events need the control-plane service; scenario "
                    "churn is join/leave only"
                )
            self.env.sim.schedule_at(event.at_s, self._apply, event)

    # -- event application -----------------------------------------------------

    def _count(self, name: str) -> None:
        self.counters[name] += 1

    def _apply(self, event: ChurnEvent) -> None:
        handle = self.handles[event.group]
        transfers = [t for t in handle.transfers if not t.complete]
        if handle.complete or not transfers:
            self.ignored += 1  # collective already finished: nothing to do
            return
        if event.op == "join":
            self._join(event.group, handle, transfers, event.host)
        else:
            self._leave(handle, transfers, event.host)

    def _join(self, index: int, handle, transfers, host: str) -> None:
        self._count("joins")
        for transfer in transfers:
            if host in transfer.receivers or host == transfer.src_host:
                continue
            pressure = self._pressure.setdefault(index, [0, 0])
            trees, kind = graft_host(
                self.env.topo, transfer.static_trees, transfer.src_host, host
            )
            pressure[0] += 1
            if kind == "branch":
                pressure[1] += 1
            if self.policy.needs_full_repeel(
                pressure[0], pressure[1], len(transfer.receivers) + 1
            ):
                remaining = sorted(
                    (transfer.receivers - transfer.finished_hosts) | {host}
                )
                trees = self.env.peel().plan(
                    transfer.src_host, remaining
                ).static_trees
                self._pressure[index] = [0, 0]
                self._count("full_repeels")
            else:
                self._count("grafts")
            transfer.add_receiver(host)
            handle.add_pending(host)
            transfer.set_route_trees(trees)
            transfer.catch_up(host)

    def _leave(self, handle, transfers, host: str) -> None:
        now = self.env.sim.now
        self._count("leaves")
        for transfer in transfers:
            if host not in transfer.receivers:
                continue
            trees, changed = prune_host(transfer.static_trees, host)
            transfer.remove_receiver(host)
            handle.drop_pending(host, now)
            if changed:
                self._count("prunes")
            if trees and not transfer.complete:
                transfer.set_route_trees(trees)
