"""Clients for the control-plane service: in-process and unix-socket.

:class:`LocalClient` talks straight to a :class:`Dispatcher` — no I/O, no
event loop, fully deterministic; it is what the experiments and property
tests drive.  :class:`SocketClient` speaks the same newline-delimited JSON
over the unix socket a :class:`~repro.control.server.ControlServer`
listens on (the demo and CI smoke job exercise that path).  Both expose
the identical convenience surface, so a campaign script works unchanged
against either.
"""

from __future__ import annotations

import socket

from .protocol import ProtocolError, decode, encode, error


class ControlRequestError(RuntimeError):
    """The service answered ``{"ok": false}``.

    :attr:`kind` carries the response's error kind (which exception family
    the dispatcher caught server-side), and :func:`raise_for_response`
    raises the matching subclass — so callers can catch, say,
    :class:`MembershipRequestError` across both transports without
    string-matching the message.
    """

    #: The response's ``kind`` field; ``None`` when the server sent none.
    kind: str | None = None

    def __init__(self, message: str, kind: str | None = None) -> None:
        super().__init__(message)
        if kind is not None:
            self.kind = kind


class ProtocolRequestError(ControlRequestError):
    """The request itself was malformed (``kind == "protocol"``)."""

    kind = "protocol"


class ControlPlaneRequestError(ControlRequestError):
    """The control plane refused the operation (``kind == "control"``)."""

    kind = "control"


class MembershipRequestError(ControlRequestError):
    """A membership change cannot be realized (``kind == "membership"``)."""

    kind = "membership"


_ERRORS_BY_KIND = {
    cls.kind: cls
    for cls in (
        ProtocolRequestError,
        ControlPlaneRequestError,
        MembershipRequestError,
    )
}


def raise_for_response(resp: dict) -> None:
    """Raise the typed error for a ``{"ok": false}`` response."""
    kind = resp.get("kind")
    cls = _ERRORS_BY_KIND.get(kind, ControlRequestError)
    raise cls(resp.get("error", "request failed"), kind=kind)


class _ClientApi:
    """Convenience methods shared by both transports."""

    def request(self, op: str, **fields) -> dict:  # pragma: no cover - ABC
        raise NotImplementedError

    def _checked(self, op: str, **fields) -> dict:
        resp = self.request(op, **fields)
        if not resp.get("ok"):
            raise_for_response(resp)
        return resp

    def ping(self) -> float:
        return self._checked("ping")["t_s"]

    def create_group(self, tenant: str, source: str, members=()) -> int:
        return self._checked(
            "create", tenant=tenant, source=source, members=sorted(members)
        )["group"]

    def join(self, group: int, host: str, at_s: float | None = None) -> None:
        fields = {"group": group, "host": host}
        if at_s is not None:
            fields["at_s"] = at_s
        self._checked("join", **fields)

    def leave(self, group: int, host: str, at_s: float | None = None) -> None:
        fields = {"group": group, "host": host}
        if at_s is not None:
            fields["at_s"] = at_s
        self._checked("leave", **fields)

    def submit(
        self, group: int, message_bytes: int, at_s: float | None = None
    ) -> int:
        fields = {"group": group, "message_bytes": message_bytes}
        if at_s is not None:
            fields["at_s"] = at_s
        return self._checked("submit", **fields)["job"]

    def advance(
        self, until_s: float | None = None, max_events: int | None = None
    ) -> int:
        fields = {}
        if until_s is not None:
            fields["until_s"] = until_s
        if max_events is not None:
            fields["max_events"] = max_events
        return self._checked("advance", **fields)["processed"]

    def run(self) -> int:
        return self._checked("run")["processed"]

    def stats(self) -> dict:
        return self._checked("stats")["stats"]

    def events(self, cursor: int = 0) -> tuple[list[dict], int]:
        resp = self._checked("events", cursor=cursor)
        return resp["events"], resp["cursor"]

    def metrics(self) -> dict:
        return self._checked("metrics")["metrics"]

    def report(self) -> dict:
        return self._checked("report")

    def shutdown(self) -> None:
        self._checked("shutdown")


class LocalClient(_ClientApi):
    """In-process client over a dispatcher (or a bare control plane)."""

    def __init__(self, control_or_dispatcher) -> None:
        from .server import Dispatcher
        from .service import ControlPlane

        if isinstance(control_or_dispatcher, ControlPlane):
            self.dispatcher = Dispatcher(control_or_dispatcher)
        else:
            self.dispatcher = control_or_dispatcher

    @property
    def control(self):
        return self.dispatcher.control

    def request(self, op: str, **fields) -> dict:
        try:
            req = decode(encode({"op": op, **fields}))
        except ProtocolError as exc:
            return error(str(exc), kind="protocol")
        return self.dispatcher.handle(req)


class SocketClient(_ClientApi):
    """Blocking unix-socket client (demo / CI smoke path).

    Responses are matched to requests by order; stream lines pushed to a
    subscribed connection (``{"stream": ...}``) are collected into
    :attr:`stream` as they interleave with responses.
    """

    def __init__(self, path: str, timeout_s: float = 30.0) -> None:
        self.sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self.sock.settimeout(timeout_s)
        self.sock.connect(path)
        self._file = self.sock.makefile("rwb")
        #: Stream lines (events / metric snapshots) received so far.
        self.stream: list[dict] = []

    def request(self, op: str, **fields) -> dict:
        self._file.write((encode({"op": op, **fields}) + "\n").encode("utf-8"))
        self._file.flush()
        while True:
            line = self._file.readline()
            if not line:
                raise ConnectionError("server closed the connection")
            obj = decode_response(line.decode("utf-8"))
            if "stream" in obj:
                self.stream.append(obj)
                continue
            return obj

    def subscribe(self) -> None:
        self._checked("subscribe")

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self.sock.close()

    def __enter__(self) -> "SocketClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def decode_response(line: str) -> dict:
    """Parse one response/stream line (no op validation — responses have
    none)."""
    import json

    obj = json.loads(line)
    if not isinstance(obj, dict):
        raise ProtocolError("response must be a JSON object")
    return obj
