"""Congestion-aware replanning: move running groups off hot links.

:class:`CongestionReplanner` is the control plane's built-in app.  On a
fixed simulated-time cadence (the :class:`~repro.obs.fabric.PeriodicSampler`
pattern — the tick reschedules itself only while other events remain, so it
never keeps the loop alive on its own) it reads windowed link utilization
and ECN deltas straight off the fabric's port counters, flags switch-switch
links above threshold, and re-plans the trees of running collectives that
cross them: the hot links are masked out of the *planning* topology (the
live fabric is untouched), the remaining receivers are re-planned, and the
transfer adopts the new trees via
:meth:`~repro.sim.transfer.Transfer.set_route_trees` — copies already in
flight finish on the old path (nothing was lost, unlike a fault), while
every not-yet-injected segment rides the cold links.

Replans are charged like admissions: per-group schemes must fit the new
trees' switch entries through
:meth:`~repro.serve.state.FabricState.update_group`, and a delta that would
overflow a switch cancels the replan.  A per-group cooldown stops the app
from thrashing a group between two equally loaded paths.
"""

from __future__ import annotations

import networkx as nx

from ..topology.addressing import NodeKind, kind_of


class CongestionReplanner:
    """Watches port counters, re-plans running groups around hot links."""

    def __init__(
        self,
        interval_s: float = 200e-6,
        utilization_threshold: float = 0.7,
        ecn_threshold: int = 32,
        max_hot_links: int = 2,
        cooldown_s: float = 2e-3,
        persistence: int = 2,
    ) -> None:
        if interval_s <= 0:
            raise ValueError("interval_s must be positive")
        if not 0 < utilization_threshold <= 1:
            raise ValueError("utilization_threshold must be in (0, 1]")
        if persistence < 1:
            raise ValueError("persistence must be >= 1")
        self.interval_s = interval_s
        self.utilization_threshold = utilization_threshold
        self.ecn_threshold = ecn_threshold
        self.max_hot_links = max_hot_links
        self.cooldown_s = cooldown_s
        #: Consecutive hot scans required before a link is acted on.  One
        #: window over threshold is routinely a transient burst; replanning
        #: on it ping-pongs groups between equally loaded paths.
        self.persistence = persistence
        self.control = None
        self.replans = 0
        self.rejected = 0
        self.ticks = 0
        self._started = False
        self._last_scan_s = 0.0
        self._last_bytes: dict[tuple[str, str], int] = {}
        self._last_ecn: dict[tuple[str, str], int] = {}
        self._last_replan: dict[int, float] = {}
        self._hot_streak: dict[tuple[str, str], int] = {}

    def bind(self, control) -> None:
        """Attach to a :class:`~repro.control.service.ControlPlane`."""
        self.control = control

    # -- self-terminating tick --------------------------------------------------

    def start(self) -> None:
        """(Re)arm the tick; idempotent, called on every submit so the app
        wakes whenever there is work and dies with the event queue."""
        if self.control is None:
            raise RuntimeError("replanner is not bound to a control plane")
        if not self._started:
            self._started = True
            self.control.sim.post(self.interval_s, self._tick)

    def _tick(self) -> None:
        sim = self.control.sim
        self.ticks += 1
        self._scan(sim.now)
        # Stop on "no unresolved jobs" rather than "no pending events": the
        # obs sampler uses the latter, and two self-rescheduling tickers
        # each seeing the other's pending entry would keep an idle loop
        # alive forever.  Every submit re-arms us via start().
        if any(
            r.status in ("pending", "queued", "running")
            for r in self.control.runtime.records
        ):
            sim.post(self.interval_s, self._tick)
        else:
            self._started = False

    # -- hot-link detection -----------------------------------------------------

    def _scan(self, now: float) -> None:
        window = now - self._last_scan_s
        self._last_scan_s = now
        network = self.control.env.network
        hot: list[tuple[float, int, tuple[str, str]]] = []
        for key in sorted(network.ports):
            port = network.ports[key]
            delta_bytes = port.bytes_sent - self._last_bytes.get(key, 0)
            delta_ecn = port.ecn_marks - self._last_ecn.get(key, 0)
            self._last_bytes[key] = port.bytes_sent
            self._last_ecn[key] = port.ecn_marks
            if window <= 0:
                continue
            # Only inter-switch links are avoidable; a congested host
            # attachment has no alternative path to route around.
            if (
                kind_of(key[0]) is NodeKind.HOST
                or kind_of(key[1]) is NodeKind.HOST
            ):
                continue
            utilization = delta_bytes * 8 / (port.capacity_bps * window)
            if (
                utilization >= self.utilization_threshold
                or delta_ecn >= self.ecn_threshold
            ):
                streak = self._hot_streak.get(key, 0) + 1
                self._hot_streak[key] = streak
                if streak >= self.persistence:
                    hot.append((utilization, delta_ecn, key))
            else:
                self._hot_streak.pop(key, None)
        if not hot or window <= 0:
            return
        hot.sort(key=lambda item: (-item[0], -item[1], item[2]))
        hot_links = [key for _, _, key in hot[: self.max_hot_links]]
        self._replan_groups(now, hot_links)

    # -- replanning -------------------------------------------------------------

    def _replan_groups(self, now: float, hot_links: list[tuple[str, str]]) -> None:
        control = self.control
        hot_set = set(hot_links)
        for gid in sorted(control.groups):
            group = control.groups[gid]
            if now - self._last_replan.get(gid, -1.0) < self.cooldown_s:
                continue
            for index in sorted(group.active):
                record = control.runtime.records[index]
                if record.status != "running" or record.handle is None:
                    continue
                for transfer in record.handle.transfers:
                    if transfer.complete:
                        continue
                    edges = {
                        e for tree in transfer.static_trees for e in tree.edges
                    }
                    if not edges & hot_set:
                        continue
                    if self._replan_transfer(record, transfer, hot_links):
                        self._last_replan[gid] = now
                        self._note(gid, transfer, hot_links, now)

    def _replan_transfer(self, record, transfer, hot_links) -> bool:
        control = self.control
        env = control.env
        remaining = sorted(transfer.receivers - transfer.finished_hosts)
        if not remaining:
            return False
        topo = env.topo
        masked: list[tuple[str, str]] = []
        # Mask hot links out of the *planning* graph only — the live fabric
        # keeps forwarding, and no observer (so no plan-cache invalidation)
        # fires.  Nothing else runs inside this callback, and the planner is
        # called directly (never through the cache), so the degraded graph
        # cannot leak into a cached plan.
        for u, v in hot_links:
            if topo.graph.has_edge(u, v):
                topo.fail_link(u, v)
                masked.append((u, v))
        try:
            if control.runtime.scheme_name.startswith("peel"):
                trees = env.peel().plan(transfer.src_host, remaining).static_trees
            else:
                from ..collectives.multicast import _steiner_tree

                trees = [_steiner_tree(env, transfer.src_host, remaining)]
        except (ValueError, nx.NetworkXNoPath, nx.NodeNotFound):
            self.rejected += 1
            return False
        finally:
            for u, v in masked:
                topo.restore_link(u, v)
        if not control._charge_state(record, trees):
            self.rejected += 1
            return False
        # set_route_trees, not reroute: nothing was lost — copies already in
        # flight on the hot path still arrive, only not-yet-injected segments
        # move to the cold links.  reroute's re-multicast of every injected
        # segment is for blackholes and would double the load we're relieving.
        transfer.set_route_trees(trees)
        self.replans += 1
        return True

    def _note(self, gid: int, transfer, hot_links, now: float) -> None:
        control = self.control
        control._emit(
            "replanned",
            group=gid,
            transfer=transfer.name,
            avoided=[list(link) for link in hot_links],
        )
        obs = control.runtime.obs
        if obs is not None:
            obs.registry.counter("control.replans").inc()
            obs.tracer.instant(
                f"replan {transfer.name} avoiding "
                + ", ".join(f"{u}--{v}" for u, v in hot_links),
                now,
                "control",
            )
