"""Newline-delimited JSON protocol for the control-plane service.

One request per line, one response per line.  Requests are JSON objects
with an ``op`` field; responses are ``{"ok": true, ...}`` or
``{"ok": false, "error": "..."}``.  All JSON is serialized with sorted
keys and compact separators so byte-level comparisons of protocol
transcripts are meaningful (the control-smoke CI job diffs them).

Ops (see :class:`~repro.control.server.Dispatcher` for semantics):

==============  =================================================given
``ping``        liveness check
``create``      ``tenant``, ``source``, ``members`` -> ``group``
``join``        ``group``, ``host``, optional ``at_s``
``leave``       ``group``, ``host``, optional ``at_s``
``submit``      ``group``, ``message_bytes``, optional ``at_s`` -> ``job``
``advance``     optional ``until_s`` / ``max_events`` -> events processed
``run``         drain the simulation completely
``stats``       service introspection snapshot
``events``      drain the event stream from ``cursor``
``metrics``     current obs metric snapshot (requires ``obs``)
``subscribe``   mark this connection as a snapshot subscriber
``report``      end-of-run per-tenant SLO report
``shutdown``    stop the server after responding
==============  =================================================given
"""

from __future__ import annotations

import json

OPS = (
    "ping",
    "create",
    "join",
    "leave",
    "submit",
    "advance",
    "run",
    "stats",
    "events",
    "metrics",
    "subscribe",
    "report",
    "shutdown",
)


class ProtocolError(ValueError):
    """A malformed or unsupported protocol request."""


def encode(obj: dict) -> str:
    """Canonical one-line JSON encoding (sorted keys, compact)."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def decode(line: str) -> dict:
    """Parse one request line; raises :class:`ProtocolError` on garbage."""
    line = line.strip()
    if not line:
        raise ProtocolError("empty request line")
    try:
        obj = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"request is not valid JSON: {exc}") from exc
    if not isinstance(obj, dict):
        raise ProtocolError("request must be a JSON object")
    op = obj.get("op")
    if op not in OPS:
        raise ProtocolError(f"unknown op {op!r}; expected one of {OPS}")
    return obj


def ok(**fields) -> dict:
    return {"ok": True, **fields}


#: Error kinds a ``{"ok": false}`` response may carry.  The kind names
#: the *class* of refusal (which exception family the dispatcher caught),
#: so clients can branch without parsing message text — see
#: :class:`~repro.control.client.ControlRequestError` and its subclasses.
ERROR_KINDS = ("protocol", "control", "membership", "value", "unknown-key")


def error(message: str, kind: str | None = None) -> dict:
    if kind is not None and kind not in ERROR_KINDS:
        raise ValueError(f"unknown error kind {kind!r}")
    resp = {"ok": False, "error": message}
    if kind is not None:
        resp["kind"] = kind
    return resp


def require(req: dict, field: str, kind=None):
    """Fetch a required request field, type-checked when ``kind`` given."""
    if field not in req:
        raise ProtocolError(f"op {req.get('op')!r} requires field {field!r}")
    value = req[field]
    if kind is not None and not isinstance(value, kind):
        raise ProtocolError(
            f"field {field!r} must be {getattr(kind, '__name__', kind)}, "
            f"got {type(value).__name__}"
        )
    return value
