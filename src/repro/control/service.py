"""The persistent multicast control plane: groups that outlive collectives.

:class:`ControlPlane` wraps a :class:`~repro.serve.runtime.ServeRuntime`
with the piece the one-shot serving path lacks: *named, long-lived groups*
whose membership changes over time.  Tenants create a group once, then
submit collectives against it and join/leave hosts — including while a
collective is in flight.  The simulator is the service's clock: every
operation either applies at the current frontier or is scheduled as a
simulator event, so campaigns are byte-deterministic and the whole service
(groups, queue, fabric, in-flight transfers) checkpoints through the
:mod:`repro.replay` snapshot machinery.

Membership changes are *incremental* against the installed trees
(:func:`~repro.control.membership.graft_host` /
:func:`~repro.control.membership.prune_host`), falling back to a full
re-peel when the accumulated delta crosses the
:class:`~repro.control.membership.ChurnPolicy` threshold.  Each change
bumps the group's epoch, drops the affected
:class:`~repro.serve.cache.PlanCache` entries, and re-points per-group
TCAM state through :meth:`~repro.serve.state.FabricState.update_group`
so switch-update accounting reflects the true delta.

Not supported: ``protection > 0`` — fast-failover backup subtrees are
planned against launch-time trees, and grafted trees would silently void
the resilience guarantee, so the constructor refuses the combination.
"""

from __future__ import annotations

import dataclasses

from ..collectives.base import Gpu, Group
from ..serve.admission import AdmissionPolicy
from ..serve.runtime import JobRecord, ServeReport, ServeRuntime
from ..sim import SimConfig
from ..state import DEFAULT_CAPACITY
from ..topology import Topology
from ..workloads import CollectiveJob
from .membership import (
    MEMBERSHIP_COUNTERS,
    ChurnPolicy,
    graft_host,
    prune_host,
)


class ControlError(ValueError):
    """A control-plane request that cannot be honored."""


class ManagedGroup:
    """One long-lived multicast group the service manages."""

    __slots__ = ("gid", "tenant", "source", "members", "epoch", "active")

    def __init__(self, gid: int, tenant: str, source: str, members: set[str]):
        self.gid = gid
        self.tenant = tenant
        self.source = source
        #: Receiver hosts (source excluded).
        self.members = members
        #: Bumped on every join/leave; keys cache/state invalidation.
        self.epoch = 0
        #: Record indices of unfinished collectives submitted to this group.
        self.active: set[int] = set()

    def snapshot(self) -> dict:
        return {
            "gid": self.gid,
            "tenant": self.tenant,
            "source": self.source,
            "members": sorted(self.members),
            "epoch": self.epoch,
            "active": len(self.active),
        }


class ControlPlane:
    """Deterministic in-simulator multicast control-plane service.

    Synchronous core: every public method is safe to call between
    simulator events (the line-protocol server and the in-process client
    both funnel through here).  The object graph is picklable — scheduled
    callbacks are bound methods — so :meth:`snapshot` freezes a running
    campaign for SIGKILL-resume soaks.
    """

    def __init__(
        self,
        topo: Topology,
        scheme="peel",  # str | SchemeSpec | BroadcastScheme (see registry)
        config: SimConfig | None = None,
        admission: AdmissionPolicy | None = None,
        tcam_capacity: int = DEFAULT_CAPACITY,
        plan_cache=True,
        check_invariants: bool = False,
        obs=None,
        churn_policy: ChurnPolicy | None = None,
        protection: int = 0,
        replanner=None,
    ) -> None:
        if protection > 0:
            raise ControlError(
                "the control plane does not support protection > 0: "
                "fast-failover slots are bound to launch-time trees and "
                "membership grafts would void the F-resilience guarantee"
            )
        self.runtime = ServeRuntime(
            topo,
            scheme,
            config,
            admission=admission,
            tcam_capacity=tcam_capacity,
            plan_cache=plan_cache,
            check_invariants=check_invariants,
            obs=obs,
        )
        self.env = self.runtime.env
        # Mid-flight grafts backfill missed segments, which needs the
        # per-receiver bitmaps; must be set before any transfer exists.
        self.env.network.fault_tolerant = True
        self.policy = churn_policy or ChurnPolicy()
        self.groups: dict[int, ManagedGroup] = {}
        self._next_gid = 0
        #: record index -> owning gid (records submitted through a group).
        self._record_group: dict[int, int] = {}
        #: record index -> [ops_since_plan, branch_grafts] re-peel pressure.
        self._pressure: dict[int, list[int]] = {}
        self.counters = dict.fromkeys(
            MEMBERSHIP_COUNTERS + ("submits", "graft_rejects"), 0
        )
        #: Completion/operation stream, drained by protocol subscribers.
        self.events: list[dict] = []
        self.runtime.on_job_done = self._job_done
        self.replanner = replanner
        if replanner is not None:
            replanner.bind(self)

    # -- small plumbing ---------------------------------------------------------

    @property
    def sim(self):
        return self.env.sim

    @property
    def now(self) -> float:
        return self.env.sim.now

    def _count(self, name: str) -> None:
        self.counters[name] += 1
        if self.runtime.obs is not None:
            self.runtime.obs.registry.counter(f"membership.{name}").inc()

    def _emit(self, event: str, **fields) -> None:
        self.events.append({"event": event, "t_s": self.now, **fields})

    def _group(self, gid: int) -> ManagedGroup:
        group = self.groups.get(gid)
        if group is None:
            raise ControlError(f"unknown group {gid}")
        return group

    def _check_host(self, host: str) -> None:
        if host not in self.env.topo.hosts:
            raise ControlError(f"unknown host {host!r}")

    def _group_of(self, group: ManagedGroup) -> Group:
        members = [Gpu(group.source, 0)]
        members.extend(Gpu(h, 0) for h in sorted(group.members))
        return Group(source=Gpu(group.source, 0), members=tuple(members))

    # -- group lifecycle --------------------------------------------------------

    def create_group(
        self, tenant: str, source: str, members=()
    ) -> int:
        """Register a long-lived group; returns its id.  ``members`` are
        the initial receiver hosts (the source is implicit)."""
        self._check_host(source)
        receivers = set(members) - {source}
        for host in sorted(receivers):
            self._check_host(host)
        gid = self._next_gid
        self._next_gid += 1
        self.groups[gid] = ManagedGroup(gid, tenant, source, receivers)
        self._emit("group_created", group=gid, tenant=tenant, source=source,
                   members=sorted(receivers))
        return gid

    def submit(self, gid: int, message_bytes: int, at_s: float | None = None) -> int:
        """Submit one collective against the group's *current* membership;
        returns the runtime job index.  Until the job's arrival event fires,
        later membership changes still re-shape it."""
        group = self._group(gid)
        if message_bytes <= 0:
            raise ControlError("message_bytes must be positive")
        at = self.now if at_s is None else max(at_s, self.now)
        job = CollectiveJob(
            arrival_s=at,
            group=self._group_of(group),
            message_bytes=message_bytes,
            tenant=group.tenant,
        )
        record = self.runtime.submit(job)
        group.active.add(record.index)
        self._record_group[record.index] = gid
        self.counters["submits"] += 1
        self._emit("submitted", group=gid, job=record.index,
                   message_bytes=message_bytes, arrival_s=at)
        if self.replanner is not None:
            self.replanner.start()
        return record.index

    def join(self, gid: int, host: str, at_s: float | None = None) -> None:
        """Add ``host`` to the group, now or at a scheduled time.  Running
        collectives graft it mid-flight and backfill what it missed."""
        self._membership_op(gid, host, "join", at_s)

    def leave(self, gid: int, host: str, at_s: float | None = None) -> None:
        """Remove ``host``, now or at a scheduled time.  Running
        collectives prune it and stop waiting for its delivery."""
        self._membership_op(gid, host, "leave", at_s)

    def _membership_op(
        self, gid: int, host: str, op: str, at_s: float | None
    ) -> None:
        self._group(gid)  # fail fast on unknown groups
        self._check_host(host)
        if at_s is not None and at_s > self.now:
            self.sim.schedule_at(at_s, self._apply_membership, gid, host, op)
        else:
            self._apply_membership(gid, host, op)

    # -- membership application -------------------------------------------------

    def _apply_membership(self, gid: int, host: str, op: str) -> None:
        group = self._group(gid)
        if op == "join":
            if host == group.source or host in group.members:
                return  # idempotent
            group.members.add(host)
            self._count("joins")
        else:
            if host not in group.members:
                return  # idempotent
            group.members.discard(host)
            self._count("leaves")
        group.epoch += 1
        cache = self.env.plan_cache
        if cache is not None:
            # Folded into the obs `cache.invalidations` counter at report
            # time through observe_plan_cache, like fault-driven ones.
            cache.invalidate_hosts({host})
        self._emit(op, group=gid, host=host, epoch=group.epoch)
        # Scrub finished/rejected records, then re-shape the live ones.
        for index in sorted(group.active):
            record = self.runtime.records[index]
            if record.status in ("done", "rejected"):
                group.active.discard(index)
                continue
            if record.status in ("pending", "queued"):
                self._reshape_waiting(record, group)
            elif op == "join":
                self._graft_running(record, group, host)
            else:
                self._prune_running(record, host)

    def _reshape_waiting(self, record: JobRecord, group: ManagedGroup) -> None:
        """A not-yet-launched job simply gets the new group shape; cached
        admission demand/route derivations are stale and recompute lazily."""
        record.job = dataclasses.replace(record.job, group=self._group_of(group))
        record._demand = None
        record._route_edges = None

    def _graft_running(
        self, record: JobRecord, group: ManagedGroup, host: str
    ) -> None:
        handle = record.handle
        if handle is None or handle.complete:
            return
        for transfer in handle.transfers:
            if (
                transfer.complete
                or host in transfer.receivers
                or host == transfer.src_host
            ):
                continue
            trees, kind = graft_host(
                self.env.topo, transfer.static_trees, transfer.src_host, host
            )
            pressure = self._pressure.setdefault(record.index, [0, 0])
            pressure[0] += 1
            if kind == "branch":
                pressure[1] += 1
            if self.policy.needs_full_repeel(
                pressure[0], pressure[1], len(transfer.receivers) + 1
            ):
                remaining = sorted(
                    (transfer.receivers - transfer.finished_hosts) | {host}
                )
                # Bypass the plan cache: these trees are transfer-specific
                # (remaining receivers only) and must not seed entries a
                # fresh full-group lookup could alias.
                trees = self.env.peel().plan(
                    transfer.src_host, remaining
                ).static_trees
                self._pressure[record.index] = [0, 0]
                self._count("full_repeels")
            else:
                self._count("grafts")
            if not self._charge_state(record, trees):
                # The graft's switch entries don't fit: this in-flight
                # collective completes to its old receiver set; the join
                # still shapes every subsequent submit.
                self.counters["graft_rejects"] += 1
                self._emit("graft_rejected", group=group.gid,
                           job=record.index, host=host)
                continue
            transfer.add_receiver(host)
            handle.add_pending(host)
            transfer.set_route_trees(trees)
            transfer.catch_up(host)

    def _prune_running(self, record: JobRecord, host: str) -> None:
        handle = record.handle
        if handle is None or handle.complete:
            return
        now = self.now
        for transfer in handle.transfers:
            if transfer.complete or host not in transfer.receivers:
                continue
            trees, changed = prune_host(transfer.static_trees, host)
            transfer.remove_receiver(host)
            if changed:
                self._count("prunes")
            self._charge_state(record, trees)
            if trees and not transfer.complete:
                transfer.set_route_trees(trees)
            # Last: may complete the collective (and free its accounting).
            handle.drop_pending(host, now)

    def _charge_state(self, record: JobRecord, trees) -> bool:
        """Re-point the record's per-group TCAM entries at the new trees.

        Per-group schemes (orca, ip-multicast) pay for the delta through
        :meth:`FabricState.update_group`; returns False when the fresh
        entries would overflow a switch.  Deploy-once schemes (peel) have
        nothing to charge.
        """
        runtime = self.runtime
        if not runtime.state_policy.per_group:
            return True
        from ..serve.state import tree_switch_fanouts

        fanouts = []
        for tree in trees:
            fanouts.extend(tree_switch_fanouts(tree))
        demand = runtime.state_policy.demand(record.index, fanouts)
        if not runtime.state.update_group(record.index, demand):
            return False
        record._demand = demand
        return True

    # -- job retirement ---------------------------------------------------------

    def _job_done(self, record: JobRecord, now: float) -> None:
        gid = self._record_group.get(record.index)
        self._pressure.pop(record.index, None)
        if gid is None:
            return
        group = self.groups.get(gid)
        if group is not None:
            group.active.discard(record.index)
        self._emit("job_done", group=gid, job=record.index,
                   tenant=record.job.tenant, cct_s=record.cct_s)

    # -- driving / reporting ----------------------------------------------------

    def advance(self, until: float | None = None, max_events: int | None = None) -> int:
        """Process simulator events (arrivals, transfers, churn, ticks)."""
        return self.runtime.run(until=until, max_events=max_events)

    def run(self) -> int:
        """Drain the simulation completely."""
        return self.runtime.run()

    def finalize_checks(self) -> list:
        return self.runtime.finalize_checks()

    def report(self) -> ServeReport:
        return self.runtime.report()

    def stats(self) -> dict:
        """Introspection snapshot for the ``stats`` protocol op."""
        out = {
            "t_s": self.now,
            "groups": [self.groups[g].snapshot() for g in sorted(self.groups)],
            "counters": dict(self.counters),
            "jobs": len(self.runtime.records),
            "running": self.runtime.running,
            "queued": len(self.runtime._queue),
        }
        if self.replanner is not None:
            out["replans"] = self.replanner.replans
        return out

    def drain_events(self, cursor: int = 0) -> tuple[list[dict], int]:
        """Event-stream entries at/after ``cursor`` plus the new cursor."""
        events = self.events[cursor:]
        return events, cursor + len(events)

    def snapshot(self):
        """Freeze the whole service (groups, queue, fabric, transfers) into
        a :class:`repro.replay.Snapshot` at a safe point."""
        from ..replay import Snapshot

        return Snapshot.capture(self, sim=self.sim)
