"""Two-tier leaf-spine fabric construction.

Every leaf connects to every spine (full bipartite mesh); hosts hang off
leaves.  The paper's §4 failure study uses 16 spines, 48 leaves, 2 servers
per leaf; its Figure 1 example uses 2 spines, 2 leaves, 4 hosts per leaf.
"""

from __future__ import annotations

import networkx as nx

from . import addressing as addr
from .base import DEFAULT_LINK_BPS, Topology, add_link


class LeafSpine(Topology):
    """A two-tier leaf-spine Clos."""

    def __init__(
        self,
        num_spines: int,
        num_leaves: int,
        hosts_per_leaf: int,
        link_bps: float = DEFAULT_LINK_BPS,
    ) -> None:
        if min(num_spines, num_leaves, hosts_per_leaf) < 1:
            raise ValueError("leaf-spine dimensions must all be >= 1")
        graph = nx.Graph()
        for leaf in range(num_leaves):
            leaf_node = addr.leaf_name(leaf)
            for h in range(hosts_per_leaf):
                add_link(graph, addr.leafspine_host_name(leaf, h), leaf_node, link_bps)
            for spine in range(num_spines):
                add_link(graph, leaf_node, addr.spine_name(spine), link_bps)
        super().__init__(graph, name=f"leafspine-{num_spines}x{num_leaves}")
        self.num_spines = num_spines
        self.num_leaves = num_leaves
        self.hosts_per_leaf = hosts_per_leaf
        self.link_bps = link_bps

    @property
    def spines(self) -> list[str]:
        return [addr.spine_name(i) for i in range(self.num_spines)]

    @property
    def leaves(self) -> list[str]:
        return [addr.leaf_name(i) for i in range(self.num_leaves)]

    def hosts_under_leaf(self, leaf: str) -> list[str]:
        index = addr.parse(leaf).index
        return [
            addr.leafspine_host_name(index, h) for h in range(self.hosts_per_leaf)
        ]

    def leaf_identifier(self, leaf: str) -> int:
        """Identifier used when PEEL's prefix scheme runs on a leaf-spine."""
        return addr.parse(leaf).index

    def spine_leaf_links(self) -> list[tuple[str, str]]:
        """All spine--leaf links (the tier §4's failure sweep breaks)."""
        return [
            (u, v)
            for u, v in self.graph.edges
            if {addr.kind_of(u), addr.kind_of(v)}
            == {addr.NodeKind.SPINE, addr.NodeKind.LEAF}
        ]
