"""k-ary fat-tree construction.

A k-ary fat-tree (k even) has:

* ``k`` pods, each with ``k/2`` ToR (edge) switches and ``k/2`` aggregation
  switches, fully meshed within the pod;
* ``(k/2)^2`` core switches arranged in ``k/2`` groups of ``k/2``; core
  ``(g, j)`` connects to aggregation switch ``g`` of every pod;
* each ToR serves ``hosts_per_tor`` endpoints (default ``k/2``, the
  classic full-bisection configuration).  Values above ``k/2`` model
  oversubscribed racks — the paper's §4 fat-tree attaches 4 servers x 8
  GPU-NICs = 32 endpoints to each 8-ary ToR, an 8:1 oversubscription.

Full capacity at the default density: ``k^3/4`` hosts.
"""

from __future__ import annotations

import networkx as nx

from . import addressing as addr
from .base import DEFAULT_LINK_BPS, Topology, add_link


class FatTree(Topology):
    """A k-ary fat-tree with configurable hosts per ToR."""

    def __init__(
        self,
        k: int,
        hosts_per_tor: int | None = None,
        link_bps: float = DEFAULT_LINK_BPS,
    ) -> None:
        if k < 2 or k % 2:
            raise ValueError(f"fat-tree arity must be even and >= 2, got {k}")
        half = k // 2
        if hosts_per_tor is None:
            hosts_per_tor = half
        if hosts_per_tor < 1:
            raise ValueError(f"hosts_per_tor must be >= 1, got {hosts_per_tor}")

        graph = nx.Graph()
        for pod in range(k):
            for i in range(half):
                tor = addr.tor_name(pod, i)
                agg = addr.agg_name(pod, i)
                graph.add_node(tor)
                graph.add_node(agg)
                for h in range(hosts_per_tor):
                    add_link(graph, addr.fattree_host_name(pod, i, h), tor, link_bps)
            for i in range(half):  # intra-pod full mesh
                for j in range(half):
                    add_link(
                        graph, addr.tor_name(pod, i), addr.agg_name(pod, j), link_bps
                    )
        for group in range(half):
            for j in range(half):
                core = addr.core_name(group, j)
                for pod in range(k):
                    add_link(graph, core, addr.agg_name(pod, group), link_bps)

        super().__init__(graph, name=f"fattree-k{k}")
        self.k = k
        self.hosts_per_tor = hosts_per_tor
        self.link_bps = link_bps

    # -- structure helpers used by PEEL's prefix scheme ---------------------

    @property
    def num_pods(self) -> int:
        return self.k

    @property
    def tors_per_pod(self) -> int:
        return self.k // 2

    def tors_in_pod(self, pod: int) -> list[str]:
        return [addr.tor_name(pod, i) for i in range(self.tors_per_pod)]

    def aggs_in_pod(self, pod: int) -> list[str]:
        return [addr.agg_name(pod, i) for i in range(self.tors_per_pod)]

    def tor_identifier(self, tor: str) -> int:
        """The ``log2(k/2)``-bit identifier PEEL assigns each ToR in a pod."""
        parsed = addr.parse(tor)
        if parsed.kind is not addr.NodeKind.TOR:
            raise ValueError(f"{tor!r} is not a ToR")
        return parsed.index

    def hosts_under_tor(self, tor: str) -> list[str]:
        parsed = addr.parse(tor)
        return [
            addr.fattree_host_name(parsed.pod, parsed.index, h)
            for h in range(self.hosts_per_tor)
        ]

    def core_agg_links(self) -> list[tuple[str, str]]:
        """All core--aggregation links (the tier §2's failures target)."""
        return [
            (u, v)
            for u, v in self.graph.edges
            if {addr.kind_of(u), addr.kind_of(v)}
            == {addr.NodeKind.CORE, addr.NodeKind.AGG}
        ]

    def agg_tor_links(self) -> list[tuple[str, str]]:
        return [
            (u, v)
            for u, v in self.graph.edges
            if {addr.kind_of(u), addr.kind_of(v)}
            == {addr.NodeKind.AGG, addr.NodeKind.TOR}
        ]
