"""Node naming and addressing for Clos fabrics.

Every node in a topology is identified by a readable string:

* fat-tree: ``core:{g}:{j}``, ``agg:p{pod}:{i}``, ``tor:p{pod}:{i}``,
  ``host:p{pod}:t{tor}:{h}``
* leaf-spine: ``spine:{i}``, ``leaf:{i}``, ``host:l{leaf}:{h}``

The helpers here build and parse those names, and expose the pieces PEEL's
prefix scheme needs: the pod a node lives in and the ToR identifier used as
the power-of-two prefix key.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from functools import lru_cache


class NodeKind(str, Enum):
    """Role of a node in the fabric."""

    HOST = "host"
    TOR = "tor"  # top-of-rack (fat-tree edge tier)
    AGG = "agg"  # aggregation tier
    CORE = "core"
    LEAF = "leaf"  # leaf-spine edge tier
    SPINE = "spine"


#: Distance of each kind from the host tier; used to orient links up/down.
TIER_RANK = {
    NodeKind.HOST: 0,
    NodeKind.TOR: 1,
    NodeKind.LEAF: 1,
    NodeKind.AGG: 2,
    NodeKind.SPINE: 2,
    NodeKind.CORE: 3,
}


@dataclass(frozen=True)
class Address:
    """Parsed form of a node name."""

    kind: NodeKind
    pod: int | None = None
    tor: int | None = None
    index: int = 0

    @property
    def is_switch(self) -> bool:
        return self.kind is not NodeKind.HOST


def core_name(group: int, index: int) -> str:
    return f"core:{group}:{index}"


def agg_name(pod: int, index: int) -> str:
    return f"agg:p{pod}:{index}"


def tor_name(pod: int, index: int) -> str:
    return f"tor:p{pod}:{index}"


def fattree_host_name(pod: int, tor: int, index: int) -> str:
    return f"host:p{pod}:t{tor}:{index}"


def spine_name(index: int) -> str:
    return f"spine:{index}"


def leaf_name(index: int) -> str:
    return f"leaf:{index}"


def leafspine_host_name(leaf: int, index: int) -> str:
    return f"host:l{leaf}:{index}"


@lru_cache(maxsize=None)
def parse(name: str) -> Address:
    """Parse a node name into an :class:`Address` (memoized: names are
    interned strings and :class:`Address` is frozen, so sharing is safe).

    Raises ``ValueError`` for names this module did not produce.
    """
    parts = name.split(":")
    kind = parts[0]
    if kind == "core" and len(parts) == 3:
        # Core (g, j) is flattened into index = g * width + j by the caller
        # when a single index is needed; keep both via pod=None.
        return Address(NodeKind.CORE, tor=int(parts[1]), index=int(parts[2]))
    if kind in ("agg", "tor") and len(parts) == 3 and parts[1].startswith("p"):
        return Address(NodeKind(kind), pod=int(parts[1][1:]), index=int(parts[2]))
    if kind == "host" and len(parts) == 4 and parts[1].startswith("p"):
        return Address(
            NodeKind.HOST,
            pod=int(parts[1][1:]),
            tor=int(parts[2][1:]),
            index=int(parts[3]),
        )
    if kind == "host" and len(parts) == 3 and parts[1].startswith("l"):
        return Address(NodeKind.HOST, tor=int(parts[1][1:]), index=int(parts[2]))
    if kind in ("spine", "leaf") and len(parts) == 2:
        return Address(NodeKind(kind), index=int(parts[1]))
    raise ValueError(f"unrecognized node name: {name!r}")


@lru_cache(maxsize=None)
def kind_of(name: str) -> NodeKind:
    """Return the :class:`NodeKind` encoded in ``name`` (cheap prefix check,
    memoized — planners resolve the same node names millions of times)."""
    return NodeKind(name.split(":", 1)[0])


def tier_rank(name: str) -> int:
    """Distance of ``name``'s tier from the host tier (host=0, core=3)."""
    return TIER_RANK[kind_of(name)]
