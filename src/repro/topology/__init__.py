"""Clos fabric substrates: fat-tree and leaf-spine topologies, addressing,
link failures, and the hop-layer decomposition used by PEEL's tree builder."""

from .addressing import Address, NodeKind, kind_of, parse, tier_rank
from .base import DEFAULT_LINK_BPS, Topology
from .failures import asymmetric, fail_random_uplinks, fail_switch
from .fattree import FatTree
from .layers import farthest_destination_layer, hop_layers
from .leafspine import LeafSpine
from .rail import RailOptimized

__all__ = [
    "Address",
    "NodeKind",
    "kind_of",
    "parse",
    "tier_rank",
    "DEFAULT_LINK_BPS",
    "Topology",
    "FatTree",
    "LeafSpine",
    "RailOptimized",
    "asymmetric",
    "fail_random_uplinks",
    "fail_switch",
    "hop_layers",
    "farthest_destination_layer",
]
