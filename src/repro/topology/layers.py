"""Hop-layer computation for the layer-peeling heuristic (§2.3).

Layer ``l_j`` holds every node at BFS distance ``j`` from the source host.
Even in an asymmetric Clos, every node at distance ``j > 0`` has at least one
neighbor at distance ``j - 1`` (its BFS parent), which is the invariant the
greedy peeling relies on.
"""

from __future__ import annotations

from collections.abc import Iterable

import networkx as nx


def hop_layers(graph: nx.Graph, source: str) -> list[set[str]]:
    """Concentric hop layers around ``source``.

    Returns ``layers`` with ``layers[j] = {v | dist(source, v) = j}``;
    unreachable nodes appear in no layer.  ``layers[0] == {source}``.
    """
    dist = nx.single_source_shortest_path_length(graph, source)
    if not dist:
        return []
    radius = max(dist.values())
    layers: list[set[str]] = [set() for _ in range(radius + 1)]
    for node, d in dist.items():
        layers[d].add(node)
    return layers


def farthest_destination_layer(
    graph: nx.Graph, source: str, destinations: Iterable[str]
) -> int:
    """``F`` from §2.3: the hop distance of the farthest destination.

    Raises ``ValueError`` if any destination is unreachable from the source.
    """
    dist = nx.single_source_shortest_path_length(graph, source)
    farthest = 0
    for d in destinations:
        if d not in dist:
            raise ValueError(f"destination {d!r} unreachable from {source!r}")
        farthest = max(farthest, dist[d])
    return farthest
