"""Rail-optimized topology (the §2.1 extension target, ref [28]).

In a rail-optimized cluster every server exposes one NIC per GPU, and NIC
``r`` of every server connects to *rail switch* ``r`` — GPU ``r``s across
servers form an isolated full-bisection plane.  Optionally the rails are
joined by a spine tier so traffic can cross rails.

Node naming reuses the leaf-spine vocabulary so the rest of the library
(layer peeling, validation, the simulator) works unchanged:

* rail switch ``r``  -> ``leaf:{r}``
* spine ``j``        -> ``spine:{j}``
* NIC ``r`` of server ``s`` -> ``host:l{r}:{s}``  (rail-major)

The multicast consequence the paper hints at ("require additional
bookkeeping"): a broadcast group living on one rail has an optimal
single-switch tree, while a group spanning rails must either cross the
spine tier or hop between rails through a server (which this model does
not allow — servers are endpoints), so the spine tier is mandatory for
inter-rail multicast.
"""

from __future__ import annotations

import networkx as nx

from . import addressing as addr
from .base import DEFAULT_LINK_BPS, Topology, add_link


class RailOptimized(Topology):
    """``num_rails`` isolated planes over ``num_servers`` servers, with an
    optional shared spine tier joining the rail switches."""

    def __init__(
        self,
        num_rails: int,
        num_servers: int,
        num_spines: int = 0,
        link_bps: float = DEFAULT_LINK_BPS,
    ) -> None:
        if num_rails < 1 or num_servers < 1:
            raise ValueError("need at least one rail and one server")
        if num_spines < 0:
            raise ValueError("num_spines must be non-negative")
        graph = nx.Graph()
        for rail in range(num_rails):
            rail_switch = addr.leaf_name(rail)
            for server in range(num_servers):
                add_link(
                    graph,
                    addr.leafspine_host_name(rail, server),
                    rail_switch,
                    link_bps,
                )
            for spine in range(num_spines):
                add_link(graph, rail_switch, addr.spine_name(spine), link_bps)
        super().__init__(graph, name=f"rail-{num_rails}x{num_servers}")
        self.num_rails = num_rails
        self.num_servers = num_servers
        self.num_spines = num_spines
        self.link_bps = link_bps

    @property
    def rails(self) -> list[str]:
        return [addr.leaf_name(r) for r in range(self.num_rails)]

    def rail_of(self, nic: str) -> int:
        """The rail plane a NIC endpoint lives on."""
        info = addr.parse(nic)
        if info.kind is not addr.NodeKind.HOST or info.tor is None:
            raise ValueError(f"{nic!r} is not a rail NIC")
        return info.tor

    def server_nics(self, server: int) -> list[str]:
        """All NICs of one server, one per rail."""
        if not 0 <= server < self.num_servers:
            raise ValueError(f"server index out of range: {server}")
        return [
            addr.leafspine_host_name(rail, server) for rail in range(self.num_rails)
        ]

    def nics_on_rail(self, rail: int) -> list[str]:
        if not 0 <= rail < self.num_rails:
            raise ValueError(f"rail index out of range: {rail}")
        return [
            addr.leafspine_host_name(rail, server)
            for server in range(self.num_servers)
        ]

    def same_rail(self, nics: list[str]) -> bool:
        return len({self.rail_of(n) for n in nics}) <= 1
