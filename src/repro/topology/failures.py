"""Link-failure injection: turning a symmetric Clos into an asymmetric one.

The paper's robustness study (§4, Fig. 7) fails a random 1–10 % of
spine-to-leaf links.  We also support failing core--aggregation links on
fat-trees and DoR (Disable-on-Repair) style maintenance that takes down all
links of a switch at once.
"""

from __future__ import annotations

import random
from collections.abc import Sequence

from .base import Topology
from .fattree import FatTree
from .leafspine import LeafSpine


def _fail_sample(
    topo: Topology,
    candidates: Sequence[tuple[str, str]],
    fraction: float,
    rng: random.Random,
    keep_connected_hosts: bool = True,
) -> list[tuple[str, str]]:
    """Fail ``fraction`` of ``candidates``, never disconnecting any host.

    Links are drawn without replacement; a draw that would disconnect a host
    from the rest of the fabric is skipped (real operators drain, they do not
    strand racks).  Returns the failed links.
    """
    if not 0 <= fraction <= 1:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    target = round(fraction * len(candidates))
    order = list(candidates)
    rng.shuffle(order)
    failed: list[tuple[str, str]] = []
    for u, v in order:
        if len(failed) == target:
            break
        topo.graph.remove_edge(u, v)
        if keep_connected_hosts and not _hosts_connected(topo):
            topo.graph.add_edge(u, v, capacity_bps=topo.link_bps)
            continue
        topo.failed_links.append((u, v))
        failed.append((u, v))
    return failed


def _hosts_connected(topo: Topology) -> bool:
    import networkx as nx

    hosts = topo.hosts
    if not hosts:
        return True
    component = nx.node_connected_component(topo.graph, hosts[0])
    return all(h in component for h in hosts)


def fail_random_uplinks(
    topo: Topology, fraction: float, seed: int | None = None
) -> list[tuple[str, str]]:
    """Fail a fraction of the fabric's upper-tier links in place.

    For a :class:`LeafSpine` this targets spine--leaf links (the paper's
    Fig. 7 sweep); for a :class:`FatTree` it targets core--agg links.
    """
    rng = random.Random(seed)
    if isinstance(topo, LeafSpine):
        candidates = topo.spine_leaf_links()
    elif isinstance(topo, FatTree):
        candidates = topo.core_agg_links()
    else:
        raise TypeError(f"unsupported topology type: {type(topo).__name__}")
    return _fail_sample(topo, candidates, fraction, rng)


def fail_switch(topo: Topology, switch: str) -> list[tuple[str, str]]:
    """DoR-style maintenance: fail every link of one switch."""
    links = [(switch, v) for v in list(topo.graph.neighbors(switch))]
    for u, v in links:
        topo.fail_link(u, v)
    return links


def asymmetric(
    topo: Topology, fraction: float, seed: int | None = None
) -> tuple[Topology, list[tuple[str, str]]]:
    """Return a failed *copy* of ``topo`` plus the list of failed links."""
    dup = topo.copy()
    failed = fail_random_uplinks(dup, fraction, seed=seed)
    return dup, failed
