"""Base topology abstraction shared by fat-tree and leaf-spine fabrics."""

from __future__ import annotations

import copy
from collections.abc import Iterable

import networkx as nx

from .addressing import NodeKind, kind_of, parse, tier_rank

#: Default physical link speed used throughout the paper's evaluation (§4).
DEFAULT_LINK_BPS = 100e9


class Topology:
    """A Clos fabric: a networkx graph plus fabric-level metadata.

    Nodes are named strings (see :mod:`repro.topology.addressing`).  Edges
    carry a ``capacity_bps`` attribute.  Failed links are *removed* from the
    graph but remembered in :attr:`failed_links`, turning a symmetric Clos
    into the asymmetric variant the paper studies in §2.2–2.3.
    """

    def __init__(self, graph: nx.Graph, name: str = "clos") -> None:
        self.graph = graph
        self.name = name
        self.failed_links: list[tuple[str, str]] = []
        self._failed_capacity: dict[frozenset[str], float] = {}

    # -- node accessors ----------------------------------------------------

    def nodes_of_kind(self, kind: NodeKind) -> list[str]:
        return [n for n in self.graph.nodes if kind_of(n) is kind]

    @property
    def hosts(self) -> list[str]:
        return self.nodes_of_kind(NodeKind.HOST)

    @property
    def switches(self) -> list[str]:
        return [n for n in self.graph.nodes if kind_of(n) is not NodeKind.HOST]

    def tor_of(self, host: str) -> str:
        """The edge switch a host hangs off (its only neighbor)."""
        if kind_of(host) is not NodeKind.HOST:
            raise ValueError(f"{host!r} is not a host")
        neighbors = list(self.graph.neighbors(host))
        if not neighbors:
            raise ValueError(f"host {host!r} is disconnected")
        return neighbors[0]

    def pod_of(self, node: str) -> int | None:
        """Pod index for fat-tree nodes; ``None`` for core/leaf-spine nodes."""
        return parse(node).pod

    # -- link orientation --------------------------------------------------

    def up_neighbors(self, node: str) -> list[str]:
        """Neighbors one tier closer to the core."""
        rank = tier_rank(node)
        return [v for v in self.graph.neighbors(node) if tier_rank(v) > rank]

    def down_neighbors(self, node: str) -> list[str]:
        """Neighbors one tier closer to the hosts."""
        rank = tier_rank(node)
        return [v for v in self.graph.neighbors(node) if tier_rank(v) < rank]

    def capacity_bps(self, u: str, v: str) -> float:
        return self.graph.edges[u, v]["capacity_bps"]

    # -- failures ----------------------------------------------------------

    def fail_link(self, u: str, v: str) -> None:
        """Remove a link, recording it as failed."""
        if not self.graph.has_edge(u, v):
            raise ValueError(f"no such link: {u!r} -- {v!r}")
        self._failed_capacity[frozenset((u, v))] = self.graph.edges[u, v][
            "capacity_bps"
        ]
        self.graph.remove_edge(u, v)
        self.failed_links.append((u, v))

    def restore_link(self, u: str, v: str) -> None:
        """Re-add a previously failed link (a repair or the end of a flap)."""
        if (u, v) in self.failed_links:
            self.failed_links.remove((u, v))
        elif (v, u) in self.failed_links:
            self.failed_links.remove((v, u))
        else:
            raise ValueError(f"link {u!r} -- {v!r} is not failed")
        cap = self._failed_capacity.pop(
            frozenset((u, v)), getattr(self, "link_bps", DEFAULT_LINK_BPS)
        )
        self.graph.add_edge(u, v, capacity_bps=cap)

    @property
    def is_symmetric(self) -> bool:
        """True iff no link has been failed (the §2.1 regime)."""
        return not self.failed_links

    def copy(self) -> "Topology":
        dup = copy.copy(self)
        dup.graph = self.graph.copy()
        dup.failed_links = list(self.failed_links)
        dup._failed_capacity = dict(self._failed_capacity)
        return dup

    # -- convenience -------------------------------------------------------

    def distances_from(self, source: str) -> dict[str, int]:
        """Hop distance from ``source`` to every reachable node."""
        return nx.single_source_shortest_path_length(self.graph, source)

    def reachable(self, source: str, targets: Iterable[str]) -> bool:
        dist = self.distances_from(source)
        return all(t in dist for t in targets)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<{type(self).__name__} {self.name}: "
            f"{len(self.hosts)} hosts, {len(self.switches)} switches, "
            f"{self.graph.number_of_edges()} links, "
            f"{len(self.failed_links)} failed>"
        )


def add_link(graph: nx.Graph, u: str, v: str, capacity_bps: float) -> None:
    graph.add_edge(u, v, capacity_bps=capacity_bps)
