"""Unified scenario facade: one spec object, one ``run()`` call.

Every way of running a scenario in this repo — the figure scripts, the
CLI subcommands, the observability demo, the soak harness — used to funnel
through ``run_broadcast_scenario(...)`` and its nine positional-ish
keywords.  This module replaces that with a small, typed surface:

* :class:`ScenarioSpec` — a frozen description of *what* to run: fabric,
  scheme, jobs, simulator config, and the optional correctness tooling
  (invariants, fault schedule, golden trace, observability).
* :func:`run` — ``run(spec) -> ScenarioResult``, the one-call entry point.
  Byte-identical to the legacy runner for the same inputs (the legacy
  function is now a deprecation shim over this one).
* :class:`ScenarioRun` — the launched-but-unfinished middle state, exposed
  because it is the checkpoint seam: ``prepare -> run_until -> snapshot``
  lets :mod:`repro.replay` freeze a scenario mid-flight and resume it in
  another process (see DESIGN.md "Checkpoint/replay").

>>> from repro.api import ScenarioSpec, run
>>> from repro.collectives import SchemeSpec
>>> spec = ScenarioSpec(
...     topology=fabric, scheme=SchemeSpec("elmo", header_bytes=64), jobs=jobs
... )
>>> result = run(spec)
>>> result.stats.p99

``scheme`` accepts any form the scheme registry resolves: a
:class:`~repro.collectives.SchemeSpec`, a ``"name:param=value"`` string,
a bare registered name, or a live scheme instance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from .collectives import BroadcastScheme, CollectiveEnv, SchemeSpec, resolve_scheme
from .faults import Failover, FaultSchedule, Repeel
from .metrics import CctStats, summarize_ccts
from .sim import SimConfig, Violation
from .topology import Topology
from .workloads import CollectiveJob

if TYPE_CHECKING:  # pragma: no cover
    from .obs import Observability
    from .replay import Snapshot

__all__ = [
    "MIN_SEGMENT_BYTES",
    "ReplayInfo",
    "ScenarioResult",
    "ScenarioRun",
    "ScenarioSpec",
    "run",
    "segment_bytes_for",
]

#: Below one MTU the simulator cannot segment (store-and-forward floor).
MIN_SEGMENT_BYTES = 1500


@dataclass(frozen=True)
class ScenarioSpec:
    """Everything one scenario run needs, as a frozen value.

    The spec itself is immutable (safe to share, hash by identity, stash in
    sweep points); the attached objects are *used*, not copied — except the
    topology, which is copied per-run whenever a ``fault_schedule`` is set,
    because dynamic faults mutate the planning graph.

    ``scheme`` takes anything the scheme registry resolves: a
    :class:`~repro.collectives.BroadcastScheme` instance, a frozen
    :class:`~repro.collectives.SchemeSpec`, or a string — a bare name
    (``"peel"``) or the parameterized ``"name:param=value"`` syntax
    (``"elmo:header_bytes=64"``); see
    :func:`repro.collectives.resolve_scheme`.

    ``event_digest`` additionally folds every fired simulator event into a
    rolling :class:`~repro.sim.engine.EventDigest` — the replay tests use
    it to prove a resumed run is event-for-event identical; it never
    changes behaviour, only observes it.

    ``churn`` attaches a :class:`repro.control.ChurnSchedule` of timed
    join/leave events (``event.group`` indexes into ``jobs``): mid-flight
    joins graft the host onto the running transfer's trees and backfill
    missed segments, leaves prune it.  Like dynamic faults, churn switches
    the fabric to per-receiver segment tracking.
    """

    topology: Topology
    scheme: BroadcastScheme | SchemeSpec | str
    jobs: tuple[CollectiveJob, ...]
    config: SimConfig | None = None
    max_events: int | None = None
    check_invariants: bool = False
    fault_schedule: FaultSchedule | None = None
    record_trace: bool = False
    keep_trace_events: bool = False
    obs: "Observability | None" = None
    event_digest: bool = False
    #: Resilience level F: every protected link of a peel tree gets F
    #: pre-installed edge-disjoint backup subtrees; cuts on protected links
    #: fail over locally instead of waiting out the detection window.
    protection: int = 0
    #: Timed membership churn (a ChurnSchedule or iterable of ChurnEvents).
    churn: "object | None" = None
    #: Run the scenario across N parallel shards (see :mod:`repro.shard`):
    #: the fabric and workload are partitioned into traffic-closed slices
    #: synchronized by a conservative window barrier, and the merged run is
    #: byte-identical to ``shards=1`` — same golden trace, same digests,
    #: same metrics exports.  Requires a partitionable spec (``run`` raises
    #: :class:`repro.shard.ShardError` otherwise, never degrades silently).
    shards: int = 1
    #: The invariant checker's deadlock watchdog schedules real simulator
    #: events; sharded runs (and their serial comparators) set this False so
    #: both sides fire the same event stream.
    invariant_watchdog: bool = True

    def __post_init__(self) -> None:
        # Accept any iterable of jobs; store the canonical tuple.
        object.__setattr__(self, "jobs", tuple(self.jobs))
        if self.churn is not None:
            from .control.membership import ChurnSchedule

            if not isinstance(self.churn, ChurnSchedule):
                object.__setattr__(
                    self, "churn", ChurnSchedule(tuple(self.churn))
                )

    @property
    def scheme_name(self) -> str:
        """The scheme's registry name (canonical ``name:param=value`` form
        for a parameterized :class:`~repro.collectives.SchemeSpec`)."""
        if isinstance(self.scheme, str):
            return self.scheme
        if isinstance(self.scheme, SchemeSpec):
            return str(self.scheme)
        return self.scheme.name


@dataclass(frozen=True)
class ReplayInfo:
    """How a result was produced, checkpoint-wise.

    Attached to every :class:`ScenarioResult`: ``resumed`` is False for a
    straight-through run; after a :class:`~repro.replay.Snapshot` restore
    it records where the run picked back up.  ``event_digest`` is the hex
    digest of the fired-event sequence when the spec asked for one.
    """

    resumed: bool = False
    resumed_at_s: float | None = None
    snapshots_taken: int = 0
    events_processed: int = 0
    event_digest: str | None = None


@dataclass
class ScenarioResult:
    """Outcome of one scenario: CCT samples plus fabric-level accounting."""

    scheme: str
    ccts: list[float]
    total_bytes: int
    wasted_bytes: int
    pfc_pause_events: int
    invariant_violations: list[Violation] = field(default_factory=list)
    trace_digest: str | None = None
    failure_drops: int = 0
    repeels: list[Repeel] = field(default_factory=list)
    replay: ReplayInfo | None = None
    failovers: list[Failover] = field(default_factory=list)
    protection: int = 0
    #: Fast-failover entries pre-installed across the fabric, reported
    #: against the per-switch static-rule budget (the paper's k−1 bound).
    backup_tcam_entries: int = 0
    backup_tcam_peak_per_switch: int = 0
    static_rule_budget: int = 0
    #: Membership-churn accounting (joins/leaves/grafts/prunes/full_repeels)
    #: when the spec carried a churn schedule; empty otherwise.
    membership: dict = field(default_factory=dict)
    #: Header bytes the scheme charged on the wire (source-routed schemes:
    #: encoding bytes × segments sent, retransmissions included); zero for
    #: schemes that carry no multicast encoding in the packet.
    header_overhead_bytes: int = 0
    #: Peak per-switch *per-group* forwarding entries any switch held
    #: (ip-multicast subsets, Elmo s-rule fallback, Orca group entries
    #: under serving); zero for stateless-dataplane schemes — the Fig 3
    #: switch-state axis.
    per_group_tcam_peak: int = 0
    stats: CctStats = field(init=False)

    def __post_init__(self) -> None:
        self.stats = summarize_ccts(self.ccts)


class ScenarioRun:
    """A scenario after launch, before completion — the checkpoint seam.

    Constructing one performs the same setup sequence the legacy runner
    did (copy topology under faults, build the env, attach observability,
    launch every job, track the handles), then stops at a safe point
    without processing any events.  From there:

    * :meth:`finish` drains the event queue and builds the result —
      ``ScenarioRun(spec).finish()`` is exactly :func:`run`;
    * :meth:`run_until` advances the clock partway, after which
      :meth:`snapshot` pickles the whole live object graph (simulator
      heap, fabric, transfers, RNGs, observers) for
      :class:`repro.replay.Snapshot` to resume — in this process or a
      fresh one.

    A run is single-use: :meth:`finish` may only be called once.
    """

    def __init__(self, spec: ScenarioSpec) -> None:
        self.spec = spec
        scheme = resolve_scheme(spec.scheme)
        self.scheme = scheme
        topo = spec.topology
        if spec.fault_schedule is not None:
            topo = topo.copy()  # dynamic faults mutate the planning topology
        self.env = CollectiveEnv(
            topo,
            spec.config,
            fault_schedule=spec.fault_schedule,
            check_invariants=spec.check_invariants,
            record_trace=spec.record_trace,
            keep_trace_events=spec.keep_trace_events,
            protection=spec.protection,
            invariant_watchdog=spec.invariant_watchdog,
        )
        if spec.event_digest:
            self.env.sim.attach_digest()
        obs = spec.obs
        if obs is not None:
            obs.attach(self.env.network)
        if spec.churn is not None:
            # Joins/leaves need per-receiver segment tracking (graft +
            # backfill); must be set before any transfer is constructed.
            self.env.network.fault_tolerant = True
        self.handles = []
        for i, job in enumerate(spec.jobs):
            # Per-job ECMP streams key on this index, not launch order.
            self.env.job_seq = i
            self.handles.append(
                scheme.launch(self.env, job.group, job.message_bytes, job.arrival_s)
            )
        if obs is not None:
            for handle in self.handles:
                obs.track_collective(handle)
        self.churn_driver = None
        if spec.churn is not None:
            from .control.membership import ChurnDriver

            self.churn_driver = ChurnDriver(self.env, spec.churn)
            self.churn_driver.install(self.handles)
        self.resumed_at_s: float | None = None
        self.snapshots_taken = 0
        self.finished = False

    # -- stepping ---------------------------------------------------------------

    def run_until(self, until: float) -> int:
        """Process events up to ``until`` (inclusive); returns the count.

        Leaves the run at a safe point — callable any number of times
        before :meth:`finish`, with a :meth:`snapshot` between any two.
        """
        if self.finished:
            raise RuntimeError("scenario already finished")
        return self.env.run(until=until)

    def snapshot(self) -> "Snapshot":
        """Freeze the entire run into a :class:`repro.replay.Snapshot`."""
        from .replay import Snapshot

        if self.finished:
            raise RuntimeError("cannot snapshot a finished scenario")
        self.snapshots_taken += 1
        return Snapshot.capture(self)

    def mark_resumed(self, at_s: float) -> None:
        """Called by :meth:`repro.replay.Snapshot.restore`: records where
        this run picked back up (surfaces in the result's ReplayInfo)."""
        self.resumed_at_s = at_s

    # -- completion -------------------------------------------------------------

    def finish(self) -> ScenarioResult:
        """Drain remaining events, finalize checks, build the result.

        Mirrors the legacy runner's exact operation order so results are
        byte-identical whichever door a scenario came in through.  Any
        ``max_events`` budget counts events processed *across* checkpoints
        (a resumed run inherits the simulator's processed count).
        """
        if self.finished:
            raise RuntimeError("scenario already finished")
        self.finished = True
        spec = self.spec
        env = self.env
        remaining = None
        if spec.max_events is not None:
            remaining = max(0, spec.max_events - env.sim.processed)
        env.run(max_events=remaining)
        obs = spec.obs
        membership: dict = {}
        if self.churn_driver is not None:
            membership = dict(self.churn_driver.counters)
            if obs is not None:
                for name in sorted(membership):
                    obs.registry.counter(f"membership.{name}").inc(
                        membership[name]
                    )
        if obs is not None:
            obs.observe_plan_cache(env.plan_cache)
            obs.finalize()
        violations = env.finalize_checks()
        unfinished = [h for h in self.handles if not h.complete]
        if unfinished:
            raise RuntimeError(
                f"{len(unfinished)} of {len(self.handles)} collectives never "
                f"completed ({self.scheme.name}); simulation stalled or "
                f"max_events too low"
            )
        digest = env.sim.event_digest
        header_overhead = sum(
            t.header_bytes * (t.num_segments + t.retransmissions)
            for h in self.handles
            for t in h.transfers
            if t.header_bytes
        )
        group_tcam_peak = (
            env.group_state.peak_entries_per_switch
            if env.group_state is not None
            else 0
        )
        backup_entries = 0
        backup_peak = 0
        if env.protection_state is not None:
            backup_entries = sum(
                len(t) for t in env.protection_state.tables.values()
            )
            backup_peak = env.protection_state.peak_entries_per_switch
        return ScenarioResult(
            scheme=self.scheme.name,
            ccts=[h.cct_s for h in self.handles],
            total_bytes=env.network.total_bytes_sent(),
            wasted_bytes=env.network.wasted_bytes,
            pfc_pause_events=env.network.pfc_pause_events,
            invariant_violations=list(violations),
            trace_digest=env.trace.digest() if env.trace is not None else None,
            failure_drops=env.network.failure_drops,
            repeels=(
                list(env.fault_injector.repeels)
                if env.fault_injector is not None
                else []
            ),
            replay=ReplayInfo(
                resumed=self.resumed_at_s is not None,
                resumed_at_s=self.resumed_at_s,
                snapshots_taken=self.snapshots_taken,
                events_processed=env.sim.processed,
                event_digest=(
                    digest.hexdigest() if digest is not None else None
                ),
            ),
            failovers=(
                list(env.fault_injector.failovers)
                if env.fault_injector is not None
                else []
            ),
            protection=env.protection,
            backup_tcam_entries=backup_entries,
            backup_tcam_peak_per_switch=backup_peak,
            static_rule_budget=(
                env.static_rule_budget() if env.protection else 0
            ),
            membership=membership,
            header_overhead_bytes=header_overhead,
            per_group_tcam_peak=group_tcam_peak,
        )


def run(spec: ScenarioSpec) -> ScenarioResult:
    """Run every job in ``spec`` under its scheme on a fresh fabric.

    All jobs share the fabric, so concurrent collectives contend — this is
    how the Poisson-load experiments produce queueing and tail effects.
    Returns all CCTs plus fabric accounting; see :class:`ScenarioSpec` for
    the correctness tooling the spec can switch on.

    ``spec.shards > 1`` routes through :mod:`repro.shard`: the same
    scenario partitioned across parallel shard simulators, with a
    byte-identical result or a loud :class:`~repro.shard.ShardError`.
    """
    if spec.shards > 1:
        from .shard import run_sharded

        return run_sharded(spec)
    return ScenarioRun(spec).finish()


def segment_bytes_for(message_bytes: int, target_segments: int = 64) -> int:
    """Pick a store-and-forward granularity bounding event counts.

    Mid-sized messages use 64 KiB segments; large ones are split into about
    ``target_segments`` pieces so simulated event counts stay flat across
    the paper's 2 MB - 512 MB sweep (see DESIGN.md on granularity).  The
    granularity never exceeds the message itself (a 1 KiB message is one
    1 KiB segment, not a 64 KiB one) except for the one-MTU floor
    :class:`~repro.sim.config.SimConfig` requires — sub-MTU messages still
    travel as a single short segment.
    """
    if message_bytes <= 0:
        raise ValueError("message_bytes must be positive")
    granularity = max(65536, message_bytes // target_segments)
    return max(MIN_SEGMENT_BYTES, min(granularity, message_bytes))
