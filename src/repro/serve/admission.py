"""Admission control for the serving runtime.

A policy looks at one pending job plus the runtime's live fabric view and
answers: run it now (``ADMIT``), hold it in the FIFO queue until capacity
frees up (``QUEUE``), or turn it away for good (``REJECT`` — the job could
never run even on an idle fabric, or the queue is full).

Three policies ship:

* :class:`FifoAdmission` — admit everything immediately (baseline; the
  fabric itself queues, as in the figure experiments);
* :class:`TcamAdmission` — admit only when the scheme's per-group switch
  entries fit every involved TCAM (the budget pressure Orca and IP
  multicast feel; PEEL's empty demand always fits);
* :class:`LinkLoadAdmission` — admit only while every link the job's trees
  cross stays under an outstanding-bytes budget, a scheme-agnostic brake
  on fabric overload.

Policies compose via :class:`CompositeAdmission` (most restrictive wins).
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from .runtime import JobRecord, ServeRuntime


class Decision(enum.Enum):
    """An admission verdict: run now, wait in the queue, or turn away."""

    ADMIT = "admit"
    QUEUE = "queue"
    REJECT = "reject"


class AdmissionPolicy:
    """Decides whether one job may enter the fabric right now."""

    name = "abstract"

    def decide(self, record: "JobRecord", runtime: "ServeRuntime") -> Decision:
        raise NotImplementedError


class FifoAdmission(AdmissionPolicy):
    """Admit every job on arrival; contention resolves in the fabric."""

    name = "fifo"

    def decide(self, record: "JobRecord", runtime: "ServeRuntime") -> Decision:
        return Decision.ADMIT


class TcamAdmission(AdmissionPolicy):
    """TCAM-budget-aware: queue while the group's entries don't fit.

    Jobs whose demand could not fit even an empty fabric are rejected
    outright (queueing would deadlock the FIFO head forever).
    """

    name = "tcam"

    def decide(self, record: "JobRecord", runtime: "ServeRuntime") -> Decision:
        demand = runtime.demand_for(record)
        if not demand:
            return Decision.ADMIT
        if runtime.state.fits(demand):
            return Decision.ADMIT
        if not runtime.state.feasible(demand):
            return Decision.REJECT
        return Decision.QUEUE


class LinkLoadAdmission(AdmissionPolicy):
    """Link-load-aware: cap the outstanding bytes in flight per link.

    ``max_outstanding_bytes`` bounds the sum of admitted-but-unfinished
    message bytes crossing any one directed link; a job bigger than the
    budget on its own is rejected.
    """

    name = "link-load"

    def __init__(self, max_outstanding_bytes: int) -> None:
        if max_outstanding_bytes < 1:
            raise ValueError("max_outstanding_bytes must be >= 1")
        self.max_outstanding_bytes = max_outstanding_bytes

    def decide(self, record: "JobRecord", runtime: "ServeRuntime") -> Decision:
        if record.job.message_bytes > self.max_outstanding_bytes:
            return Decision.REJECT
        budget = self.max_outstanding_bytes - record.job.message_bytes
        for edge in runtime.route_edges_for(record):
            if runtime.link_outstanding.get(edge, 0) > budget:
                return Decision.QUEUE
        return Decision.ADMIT


class CompositeAdmission(AdmissionPolicy):
    """Every sub-policy must admit; otherwise the most restrictive verdict
    (REJECT beats QUEUE beats ADMIT) applies."""

    name = "composite"

    def __init__(self, *policies: AdmissionPolicy) -> None:
        if not policies:
            raise ValueError("composite needs at least one policy")
        self.policies = policies
        self.name = "+".join(p.name for p in policies)

    def decide(self, record: "JobRecord", runtime: "ServeRuntime") -> Decision:
        worst = Decision.ADMIT
        for policy in self.policies:
            verdict = policy.decide(record, runtime)
            if verdict is Decision.REJECT:
                return Decision.REJECT
            if verdict is Decision.QUEUE:
                worst = Decision.QUEUE
        return worst
