"""The always-on serving runtime: admit, queue, run, account, report.

:class:`ServeRuntime` layers a multi-tenant job service on one
:class:`~repro.collectives.env.CollectiveEnv`.  Jobs submitted from a
:mod:`repro.workloads` stream arrive as simulator events; each arrival is
put before the :mod:`admission <repro.serve.admission>` policy and either
launched immediately, parked in a FIFO queue until capacity frees up, or
rejected.  Admitted collectives run *concurrently* on the shared fabric —
their trees contend for links, DCQCN and PFC exactly like the figure
experiments — while the runtime mirrors each group's switch-state demand
into per-switch :class:`~repro.state.tcam.TcamTable` models and tracks
per-link outstanding bytes for load-aware admission.

Completion of any collective frees its state and link budget and re-drains
the queue head-first, so queueing delay is an emergent property of the
admission policy, not a modelled constant.  :meth:`ServeRuntime.report`
folds everything into per-tenant SLO rows (p50/p99 CCT, queueing delay,
goodput, reject rate) plus fabric-level counters (plan-cache hit rate,
switch updates, TCAM peaks/overflows).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from ..collectives import (
    BroadcastScheme,
    CollectiveEnv,
    CollectiveHandle,
    SchemeSpec,
    resolve_scheme,
)
from ..metrics import SloSummary, summarize_slo
from ..sim import SimConfig
from ..state import DEFAULT_CAPACITY
from ..steiner import MAX_EXACT_TERMINALS, exact_steiner_tree, metric_closure_tree
from ..topology import Topology
from ..workloads import CollectiveJob
from .admission import AdmissionPolicy, Decision, FifoAdmission
from .cache import PlanCache
from .state import Demand, FabricState, policy_for, tree_switch_fanouts

#: Serving scheme -> the dataplane realization it launches, as a canonical
#: registry spec string.  IP multicast forwards single copies along a
#: per-group tree (same dataplane as the optimal baseline) but pays
#: per-subset switch state for it — the runtime's state ledger charges the
#: subsets, so its dataplane must not double-charge them.  The
#: source-routed schemes (elmo/bert/rsbf/lipsin) launch themselves: their
#: header bytes and residual state ride the collectives layer.
DATAPLANE = {
    "peel": "peel",
    "peel+cores": "peel:programmable_cores=true",
    "orca": "orca",
    "ip-multicast": "optimal",
    "elmo": "elmo",
    "bert": "bert",
    "rsbf": "rsbf",
    "lipsin": "lipsin",
}

SERVE_SCHEMES = tuple(DATAPLANE)


def resolve_serving_scheme(scheme) -> tuple[str, BroadcastScheme]:
    """Resolve a serving-scheme argument to ``(report_name, dataplane)``.

    Accepts a :data:`SERVE_SCHEMES` name (kept as the report name, so
    ``"peel+cores"`` and ``"ip-multicast"`` reports read as before), or
    anything the scheme registry resolves — a :class:`SchemeSpec`, a
    ``"name:param=value"`` string, or a live scheme instance.
    """
    if isinstance(scheme, str) and scheme in DATAPLANE:
        return scheme, resolve_scheme(SchemeSpec.parse(DATAPLANE[scheme]))
    if isinstance(scheme, BroadcastScheme):
        return scheme.name, scheme
    spec = SchemeSpec.coerce(scheme)  # alias strings warn once here
    return str(spec), resolve_scheme(spec)


@dataclass
class JobRecord:
    """One submitted job's lifecycle inside the runtime."""

    index: int
    job: CollectiveJob
    status: str = "pending"  # pending -> queued? -> running -> done|rejected
    admitted_s: float | None = None
    completed_s: float | None = None
    cct_s: float | None = None
    handle: CollectiveHandle | None = None
    _demand: Demand | None = field(default=None, repr=False)
    _route_edges: tuple | None = field(default=None, repr=False)

    @property
    def queue_delay_s(self) -> float:
        if self.admitted_s is None:
            return 0.0
        return self.admitted_s - self.job.arrival_s

    @property
    def delivered_bytes(self) -> int:
        """Payload bytes this job put onto receiver NICs."""
        return self.job.message_bytes * len(self.job.group.receiver_hosts)


class _JobCompletion:
    """Picklable ``on_complete`` binding for an admitted job's handle
    (a lambda here would break :mod:`repro.replay` checkpoints)."""

    __slots__ = ("runtime", "record")

    def __init__(self, runtime: "ServeRuntime", record: JobRecord) -> None:
        self.runtime = runtime
        self.record = record

    def __call__(self, handle: CollectiveHandle, now: float) -> None:
        del handle  # the record already holds it
        self.runtime._on_collective_done(self.record, now)


@dataclass(frozen=True)
class ServeReport:
    """End-of-run summary: per-tenant SLOs plus fabric-level accounting."""

    scheme: str
    tenants: list[SloSummary]
    total: SloSummary
    queued_jobs: int
    cache_hits: int
    cache_misses: int
    cache_invalidations: int
    switch_updates: int
    peak_entries_per_switch: int
    tcam_overflow_events: int

    @property
    def cache_hit_rate(self) -> float:
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0


class ServeRuntime:
    """Multi-tenant collective serving on one shared simulated fabric."""

    def __init__(
        self,
        topo: Topology,
        scheme: "str | SchemeSpec | BroadcastScheme" = "peel",
        config: SimConfig | None = None,
        admission: AdmissionPolicy | None = None,
        tcam_capacity: int = DEFAULT_CAPACITY,
        plan_cache: PlanCache | bool = True,
        max_queue: int = 4096,
        check_invariants: bool = False,
        record_trace: bool = False,
        fault_schedule=None,
        raise_on_violation: bool = True,
        obs=None,
        protection: int = 0,
        sim=None,
        invariant_watchdog: bool = True,
    ) -> None:
        if max_queue < 0:
            raise ValueError("max_queue must be non-negative")
        self.scheme_name, self.scheme = resolve_serving_scheme(scheme)
        #: Resilience level F: peel plans carry pre-installed backup
        #: subtrees whose fast-failover entries join each group's TCAM
        #: demand (and therefore its admission cost).
        self.protection = protection
        self.admission = admission or FifoAdmission()
        self.max_queue = max_queue
        if plan_cache is True:
            plan_cache = PlanCache()
        elif plan_cache is False:
            plan_cache = None
        if fault_schedule is not None:
            topo = topo.copy()  # dynamic faults mutate the planning topology
        self.env = CollectiveEnv(
            topo,
            config,
            fault_schedule=fault_schedule,
            check_invariants=check_invariants,
            record_trace=record_trace,
            raise_on_violation=raise_on_violation,
            plan_cache=plan_cache,
            protection=protection,
            sim=sim,
            invariant_watchdog=invariant_watchdog,
        )
        self.state_policy = policy_for(self.scheme_name)
        self.state = FabricState(capacity=tcam_capacity, strict=False)
        if self.state_policy.static_rules:
            self._preinstall_static_rules()
        #: Admitted-but-unfinished message bytes per directed link.
        self.link_outstanding: dict[tuple[str, str], int] = {}
        self.records: list[JobRecord] = []
        self._queue: deque[JobRecord] = deque()
        self.peak_queue_len = 0
        self.total_queued = 0
        self.running = 0
        #: Optional :class:`repro.obs.Observability`: fabric metrics + span
        #: tracing plus a periodic serve-level snapshot (queue length,
        #: running collectives, TCAM occupancy) on the sampler cadence.
        self.obs = obs
        #: One dict per sampler tick when ``obs`` is attached.
        self.obs_snapshots: list[dict] = []
        self._obs_folded = False
        #: Optional hook fired as ``on_job_done(record, now)`` after a job's
        #: accounting is released and before the queue re-drains — the
        #: control plane uses it to retire group state and stream completion
        #: events to subscribers.  Must be picklable (a bound method of a
        #: picklable object) to survive :mod:`repro.replay` checkpoints.
        self.on_job_done = None
        if obs is not None:
            obs.attach(self.env.network)
            obs.add_sample_hook(self._obs_sample)

    def _obs_sample(self, now: float) -> None:
        """Periodic serve-level snapshot, exported into metrics + timeline."""
        obs = self.obs
        snapshot = {
            "t_s": now,
            "queue_len": len(self._queue),
            "running": self.running,
            "peak_tcam_entries": self.state.peak_entries_per_switch,
            "outstanding_links": len(self.link_outstanding),
        }
        self.obs_snapshots.append(snapshot)
        obs.registry.gauge("serve.queue_len.peak", "max").set(len(self._queue))
        obs.registry.gauge("serve.running.peak", "max").set(self.running)
        obs.registry.gauge("serve.tcam.peak_entries", "max").set(
            self.state.peak_entries_per_switch
        )
        tracer = obs.tracer
        tracer.sample("serve_queue_len", now, len(self._queue), "serve")
        tracer.sample("serve_running", now, self.running, "serve")
        tracer.sample(
            "serve_outstanding_links", now, len(self.link_outstanding), "serve"
        )

    # -- static state ----------------------------------------------------------

    def _preinstall_static_rules(self) -> None:
        """Deploy-once PEEL prefix rules on every switch; churn counters are
        zeroed afterwards so serving-time updates start at zero."""
        try:
            width = self.env.peel().identifier_width
        except (TypeError, ValueError):
            return  # fabric PEEL cannot plan on: no static rules to model
        keys = [
            ("prefix", value, length)
            for length in range(width + 1)
            for value in range(1 << length)
        ]
        for switch in self.env.topo.switches:
            table = self.state.table(switch)
            for key in keys:
                table.install(key)
        self.state.reset_counters()

    # -- job intake ------------------------------------------------------------

    def submit(self, job: CollectiveJob) -> JobRecord:
        """Register one job; its admission decision happens at arrival time
        inside the simulation."""
        record = JobRecord(index=len(self.records), job=job)
        self.records.append(record)
        at = max(job.arrival_s, self.env.sim.now)
        self.env.sim.schedule_at(at, self._on_arrival, record)
        return record

    def submit_all(self, jobs: list[CollectiveJob]) -> list[JobRecord]:
        return [self.submit(job) for job in jobs]

    def run(self, until: float | None = None, max_events: int | None = None) -> int:
        """Drive the simulation (arrivals, collectives, completions)."""
        return self.env.run(until=until, max_events=max_events)

    def snapshot(self) -> "object":
        """Freeze the whole runtime — fabric, queue, records, TCAM state —
        into a :class:`repro.replay.Snapshot` at a safe point (between
        :meth:`run` calls); restore resumes the exact event sequence."""
        from ..replay import Snapshot

        return Snapshot.capture(self, sim=self.env.sim)

    # -- admission plumbing ----------------------------------------------------

    def demand_for(self, record: JobRecord) -> Demand:
        """The per-switch entries this job's group needs (cached)."""
        if record._demand is None:
            if not self.state_policy.per_group:
                record._demand = self._protection_demand(record)
            else:
                tree = self._group_tree(record)
                record._demand = self.state_policy.demand(
                    record.index, tree_switch_fanouts(tree)
                )
        return record._demand

    def _protection_demand(self, record: JobRecord) -> Demand:
        """Fast-failover entries a protected peel group pre-installs; the
        only *per-group* state a static-rule scheme has, so it rides the
        install/remove lifecycle (and admission cost) like per-group rules."""
        if not self.protection or not self.scheme_name.startswith("peel"):
            return {}
        group = record.job.group
        receivers = group.receiver_hosts
        if not receivers:
            return {}
        plan = self.env.plan_broadcast(group.source.host, receivers)
        if plan.protection is None:
            return {}
        return plan.protection.tcam_demand(record.index)

    def route_edges_for(self, record: JobRecord) -> tuple:
        """Directed links this job's copies will cross (cached)."""
        if record._route_edges is None:
            group = record.job.group
            receivers = group.receiver_hosts
            if not receivers:
                record._route_edges = ()
            elif self.scheme_name.startswith("peel"):
                plan = self.env.plan_broadcast(group.source.host, receivers)
                record._route_edges = tuple(
                    dict.fromkeys(e for t in plan.static_trees for e in t.edges)
                )
            else:
                record._route_edges = tuple(self._group_tree(record).edges)
        return record._route_edges

    def _group_tree(self, record: JobRecord):
        """The controller-view multicast tree for a group (state + load
        accounting; per-group schemes install entries along it)."""
        group = record.job.group
        source = group.source.host
        receivers = group.receiver_hosts
        topo = self.env.topo
        if topo.is_symmetric:
            from ..core import optimal_symmetric_tree

            return optimal_symmetric_tree(topo, source, receivers)
        if len(receivers) + 1 <= MAX_EXACT_TERMINALS:
            return exact_steiner_tree(topo.graph, source, receivers)
        return metric_closure_tree(topo.graph, source, receivers)

    # -- event handlers --------------------------------------------------------

    def _on_arrival(self, record: JobRecord) -> None:
        if not record.job.group.receiver_hosts:
            # Degenerate single-host group: nothing crosses the network.
            record.status = "done"
            record.admitted_s = self.env.sim.now
            record.completed_s = self.env.sim.now
            record.cct_s = 0.0
            return
        decision = self.admission.decide(record, self)
        if decision is Decision.ADMIT:
            self._launch(record)
        elif decision is Decision.QUEUE:
            if len(self._queue) >= self.max_queue:
                self._reject(record)
            else:
                record.status = "queued"
                self._queue.append(record)
                self.total_queued += 1
                self.peak_queue_len = max(self.peak_queue_len, len(self._queue))
        else:
            self._reject(record)

    def _launch(self, record: JobRecord) -> None:
        now = self.env.sim.now
        record.status = "running"
        record.admitted_s = now
        demand = self.demand_for(record)
        if demand:
            self.state.install_group(record.index, demand)
        msg = record.job.message_bytes
        for edge in self.route_edges_for(record):
            self.link_outstanding[edge] = self.link_outstanding.get(edge, 0) + msg
        # Per-job ECMP streams key on the submit index, not launch order.
        self.env.job_seq = record.index
        handle = self.scheme.launch(self.env, record.job.group, msg, now)
        record.handle = handle
        self.running += 1
        if self.obs is not None:
            self.obs.track_collective(
                handle, f"{record.job.tenant}/job-{record.index}"
            )
        if handle.complete:
            self._on_collective_done(record, now)
        else:
            handle.on_complete = _JobCompletion(self, record)

    def _on_collective_done(self, record: JobRecord, now: float) -> None:
        record.status = "done"
        record.completed_s = now
        record.cct_s = record.handle.cct_s if record.handle is not None else 0.0
        self.running -= 1
        if self.obs is not None:
            tenant = record.job.tenant
            registry = self.obs.registry
            registry.histogram(f"serve.cct_s.{tenant}").observe(record.cct_s)
            registry.histogram(f"serve.queue_delay_s.{tenant}").observe(
                record.queue_delay_s
            )
            registry.counter(f"serve.completed.{tenant}").inc()
        if record._demand:
            self.state.remove_group(record.index)
        msg = record.job.message_bytes
        for edge in self.route_edges_for(record):
            remaining = self.link_outstanding.get(edge, 0) - msg
            if remaining > 0:
                self.link_outstanding[edge] = remaining
            else:
                self.link_outstanding.pop(edge, None)
        if self.on_job_done is not None:
            self.on_job_done(record, now)
        self._drain_queue()

    def _reject(self, record: JobRecord) -> None:
        record.status = "rejected"
        if self.obs is not None:
            self.obs.registry.counter(
                f"serve.rejected.{record.job.tenant}"
            ).inc()

    def _drain_queue(self) -> None:
        """Head-of-line retry: admit in FIFO order until the head must keep
        waiting (strict ordering, no overtaking)."""
        while self._queue:
            record = self._queue[0]
            decision = self.admission.decide(record, self)
            if decision is Decision.ADMIT:
                self._queue.popleft()
                self._launch(record)
            elif decision is Decision.REJECT:
                self._queue.popleft()
                self._reject(record)
            else:
                break

    # -- reporting -------------------------------------------------------------

    def finalize_checks(self) -> list:
        return self.env.finalize_checks()

    def report(self) -> ServeReport:
        """Per-tenant SLO summaries plus fabric accounting for the run."""
        done = [r for r in self.records if r.status == "done"]
        stuck = [
            r for r in self.records if r.status in ("pending", "running", "queued")
        ]
        if stuck:
            raise RuntimeError(
                f"{len(stuck)} jobs still in flight; run() the simulation to "
                "completion (or reject them) before reporting"
            )
        if not self.records:
            raise RuntimeError("nothing submitted; cannot summarize SLOs")
        first = min(r.job.arrival_s for r in self.records)
        end = max((r.completed_s for r in done), default=first)
        span = max(end - first, 1e-9)

        def summary(tag: str, records: list[JobRecord], rejected: int) -> SloSummary:
            return summarize_slo(
                tag,
                [r.cct_s for r in records],
                [r.queue_delay_s for r in records],
                rejected,
                sum(r.delivered_bytes for r in records),
                span,
            )

        tenants: dict[str, list[JobRecord]] = {}
        rejects: dict[str, int] = {}
        for record in self.records:
            tenants.setdefault(record.job.tenant, [])
            rejects.setdefault(record.job.tenant, 0)
            if record.status == "done":
                tenants[record.job.tenant].append(record)
            else:
                rejects[record.job.tenant] += 1
        rows = [
            summary(tenant, records, rejects[tenant])
            for tenant, records in sorted(tenants.items())
        ]
        cache = self.env.plan_cache  # careful: an empty cache is falsy
        if self.obs is not None and not self._obs_folded:
            self._obs_folded = True  # report() may run more than once
            self.obs.observe_plan_cache(cache)
            registry = self.obs.registry
            registry.counter("serve.switch_updates").inc(self.state.total_updates)
            registry.counter("serve.tcam.overflow_events").inc(
                self.state.overflow_events
            )
            registry.gauge("serve.tcam.peak_entries", "max").set(
                self.state.peak_entries_per_switch
            )
            self.obs.finalize()
        return ServeReport(
            scheme=self.scheme_name,
            tenants=rows,
            total=summary("TOTAL", done, len(self.records) - len(done)),
            queued_jobs=self.total_queued,
            cache_hits=cache.hits if cache is not None else 0,
            cache_misses=cache.misses if cache is not None else 0,
            cache_invalidations=cache.invalidations if cache is not None else 0,
            switch_updates=self.state.total_updates,
            peak_entries_per_switch=self.state.peak_entries_per_switch,
            tcam_overflow_events=self.state.overflow_events,
        )


def serve_jobs(
    topo: Topology,
    scheme: str,
    jobs: list[CollectiveJob],
    config: SimConfig | None = None,
    **runtime_kwargs,
) -> tuple[ServeReport, ServeRuntime]:
    """Convenience one-shot: build a runtime, serve a job list, report."""
    runtime = ServeRuntime(topo, scheme, config, **runtime_kwargs)
    runtime.submit_all(jobs)
    runtime.run()
    violations = runtime.finalize_checks()
    if violations:
        raise RuntimeError(f"invariant violations during serving: {violations}")
    return runtime.report(), runtime
