"""Fabric-wide switch-state accounting for concurrent multicast groups.

One :class:`~repro.state.tcam.TcamTable` per switch, plus the refcounting
and per-scheme installation policies the serving runtime and the
``state_churn`` experiment share.  Capacity, churn (``updates``) and
overflow accounting all live in :class:`TcamTable`; this module only
decides *which* entries each scheme needs:

* **peel** — ``k - 1`` prefix rules per switch, installed once at boot and
  never touched again (zero updates under any churn);
* **orca** — one per-group entry at every switch of the group's multicast
  tree, installed at admission and removed at completion;
* **ip-multicast** — one entry per *distinct* receiver subset a switch
  serves, refcounted across groups (best case for IP multicast).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..state import DEFAULT_CAPACITY, TcamTable

#: Entry demand of one group: switch -> entry keys to install there.
Demand = dict[str, list[object]]


class FabricState:
    """Per-switch TCAM tables with refcounted, group-tagged entries.

    Entries are refcounted by ``(switch, key)`` so schemes whose entries are
    shared across groups (IP multicast's subset entries) only install on the
    first reference and remove on the last; per-group keys (Orca) trivially
    have refcount one.  ``install_group`` tags the references with a group
    id so ``remove_group`` can undo them without the caller re-deriving the
    demand.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY, strict: bool = False) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.strict = strict
        self.tables: dict[str, TcamTable] = {}
        self._refs: dict[tuple[str, object], int] = {}
        self._groups: dict[object, Demand] = {}

    def table(self, switch: str) -> TcamTable:
        table = self.tables.get(switch)
        if table is None:
            table = TcamTable(capacity=self.capacity, strict=self.strict)
            self.tables[switch] = table
        return table

    # -- group lifecycle -------------------------------------------------------

    def new_entries(self, demand: Demand) -> dict[str, int]:
        """Per-switch count of entries the demand would actually install
        (already-referenced shared entries are free)."""
        out: dict[str, int] = {}
        for switch, keys in demand.items():
            fresh = sum(1 for k in set(keys) if (switch, k) not in self._refs)
            if fresh:
                out[switch] = fresh
        return out

    def fits(self, demand: Demand) -> bool:
        """Whether installing ``demand`` stays within every switch's TCAM."""
        return all(
            self.table(switch).would_fit(count)
            for switch, count in self.new_entries(demand).items()
        )

    def feasible(self, demand: Demand) -> bool:
        """Whether the demand could fit an *empty* fabric (admission's
        distinction between "queue and wait" and "reject outright")."""
        return all(
            len(set(keys)) <= self.capacity for keys in demand.values()
        )

    def install_group(self, group_id: object, demand: Demand) -> None:
        if group_id in self._groups:
            raise ValueError(f"group {group_id!r} already installed")
        for switch, keys in demand.items():
            for key in set(keys):
                ref = (switch, key)
                count = self._refs.get(ref, 0)
                if count == 0:
                    self.table(switch).install(key)
                self._refs[ref] = count + 1
        self._groups[group_id] = demand

    def update_group(self, group_id: object, demand: Demand) -> bool:
        """Re-point an installed group at a new demand, applying only the
        delta (shared entries that survive the change are never touched, so
        TCAM ``updates`` counts real churn, not a remove+reinstall).

        Returns False — leaving the old demand installed — when the fresh
        entries the new demand needs would not fit some switch; the caller
        treats that like a rejected admission.  Installing an unknown group
        is allowed (equivalent to :meth:`install_group`).
        """
        old = self._groups.get(group_id)
        if old is None:
            if not self.fits(demand):
                return False
            self.install_group(group_id, demand)
            return True
        old_keys = {(s, k) for s, keys in old.items() for k in set(keys)}
        new_keys = {(s, k) for s, keys in demand.items() for k in set(keys)}
        added = new_keys - old_keys
        fresh: dict[str, int] = {}
        for switch, key in added:
            if (switch, key) not in self._refs:
                fresh[switch] = fresh.get(switch, 0) + 1
        if not all(
            self.table(switch).would_fit(count)
            for switch, count in fresh.items()
        ):
            return False
        # Iteration order within the add/remove sets is unobservable (adds
        # all precede removes, tables are keyed, nothing is scheduled), so
        # plain set iteration keeps this deterministic where it matters.
        for switch, key in added:
            ref = (switch, key)
            count = self._refs.get(ref, 0)
            if count == 0:
                self.table(switch).install(key)
            self._refs[ref] = count + 1
        for switch, key in old_keys - new_keys:
            ref = (switch, key)
            self._refs[ref] -= 1
            if self._refs[ref] == 0:
                del self._refs[ref]
                self.table(switch).remove(key)
        self._groups[group_id] = demand
        return True

    def remove_group(self, group_id: object) -> None:
        demand = self._groups.pop(group_id, None)
        if demand is None:
            return
        for switch, keys in demand.items():
            for key in set(keys):
                ref = (switch, key)
                self._refs[ref] -= 1
                if self._refs[ref] == 0:
                    del self._refs[ref]
                    self.table(switch).remove(key)

    def reset_counters(self) -> None:
        """Zero churn counters (after boot-time pre-installs: deploy-once
        rules should not count as serving-time updates)."""
        for table in self.tables.values():
            table.updates = 0
            table.overflow_events = 0

    # -- aggregates ------------------------------------------------------------

    @property
    def peak_entries_per_switch(self) -> int:
        return max((t.peak for t in self.tables.values()), default=0)

    @property
    def total_updates(self) -> int:
        return sum(t.updates for t in self.tables.values())

    @property
    def overflow_events(self) -> int:
        return sum(t.overflow_events for t in self.tables.values())

    @property
    def overflowed(self) -> bool:
        return any(t.overflowed for t in self.tables.values())


# -- per-scheme policies -------------------------------------------------------


@dataclass(frozen=True)
class StatePolicy:
    """How a scheme maps one group onto switch entries.

    ``per_group`` distinguishes deploy-once schemes (PEEL: empty demand,
    nothing ever installed or removed per group) from per-group state
    (Orca, IP multicast).  ``static_rules`` marks the schemes whose
    deploy-once rules are PEEL prefix rules the runtime pre-installs at
    boot; source-routed schemes (Elmo, Bert, the Bloom-filter headers)
    are also ``per_group=False`` but carry their tree in the packet, so
    nothing is pre-installed for them.
    """

    name: str
    per_group: bool = True
    static_rules: bool = False

    def demand(self, group_id: object, tree_switch_fanouts) -> Demand:
        """Entries for one group given ``(switch, downstream-subset)`` pairs
        of its multicast tree (see :func:`tree_switch_fanouts`)."""
        raise NotImplementedError


class PeelStatePolicy(StatePolicy):
    """Deploy-once prefix rules: no per-group entries, ever.

    Also models any scheme without in-network group state (ring/tree host
    relays, the idealized optimal baseline) — pass the scheme's name.
    """

    def __init__(self, name: str = "peel") -> None:
        # Only actual peel variants pre-install prefix rules; stateless
        # dataplanes (relays, source routing) have nothing to deploy.
        super().__init__(
            name=name, per_group=False, static_rules=name.startswith("peel")
        )

    def demand(self, group_id: object, tree_switch_fanouts) -> Demand:
        return {}


class OrcaStatePolicy(StatePolicy):
    """One per-group entry at every switch the group's tree branches at."""

    def __init__(self) -> None:
        super().__init__(name="orca")

    def demand(self, group_id: object, tree_switch_fanouts) -> Demand:
        return {
            switch: [("group", group_id)]
            for switch, _subset in tree_switch_fanouts
        }


class IpMulticastStatePolicy(StatePolicy):
    """One entry per distinct downstream subset, shared across groups."""

    def __init__(self) -> None:
        super().__init__(name="ip-multicast")

    def demand(self, group_id: object, tree_switch_fanouts) -> Demand:
        out: Demand = {}
        for switch, subset in tree_switch_fanouts:
            out.setdefault(switch, []).append(("subset", subset))
        return out


def tree_switch_fanouts(tree) -> list[tuple[str, frozenset[str]]]:
    """(switch, frozenset-of-children) pairs for every replicating switch of
    a multicast tree — the entries a per-group dataplane would install."""
    from ..topology.addressing import NodeKind, kind_of

    out: list[tuple[str, frozenset[str]]] = []
    for node in sorted(tree.nodes):
        if kind_of(node) is NodeKind.HOST:
            continue
        children = tree.children(node)
        if children:
            out.append((node, frozenset(children)))
    return out


def policy_for(scheme: str) -> StatePolicy:
    """The switch-state policy a serving scheme implies."""
    if scheme.startswith("peel"):
        return PeelStatePolicy()
    if scheme.startswith("orca"):
        return OrcaStatePolicy()
    if scheme == "ip-multicast":
        return IpMulticastStatePolicy()
    # Host-relay schemes (ring, tree), the idealized optimal baseline and
    # the source-routed schemes (elmo, bert, rsbf, lipsin) keep no
    # per-group entries in this ledger; source-routed residual state (the
    # Elmo s-rule fallback) is charged to ``CollectiveEnv.group_state``
    # by the scheme itself at launch.
    return PeelStatePolicy(name=scheme)
