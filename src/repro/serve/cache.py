"""Plan caching: amortize PEEL planning across repeated group shapes.

Serving workloads repeat themselves — schedulers bin-pack jobs into the
same contiguous rack runs over and over — so the planner keeps being asked
for the same (source, receiver-set) shape.  :class:`PlanCache` is an LRU
over :class:`~repro.core.peel.PeelPlan` keyed by :class:`PlanKey`: the
canonical (source-ToR, receiver-ToR-set) shape plus the exact host layout
(two groups sharing the ToR shape but differing in host attachment must not
alias) and the *topology epoch*.

The epoch is what keeps cached plans sound under faults: the cache is a
:class:`~repro.sim.observer.FabricObserver`, so every dynamic link-state
change the :class:`~repro.faults.FaultInjector` pushes through the fabric
(``on_link_down`` / ``on_link_up``) bumps the epoch and drops every stored
plan.  A plan handed out by the cache is therefore always byte-identical to
what a fresh peel of the current topology would produce.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..sim.observer import FabricObserver

if TYPE_CHECKING:  # pragma: no cover
    from ..core.peel import Peel, PeelPlan
    from ..sim.network import Network

DEFAULT_CACHE_SIZE = 512


@dataclass(frozen=True)
class PlanKey:
    """Canonical identity of one multicast planning request.

    ``source_tor`` / ``receiver_tors`` are the shape the paper's state
    argument cares about; ``hosts`` (source followed by the sorted receiver
    set) pins the host-level attachment edges so a hit is byte-identical to
    a fresh plan; ``epoch`` ties the entry to one topology generation;
    ``resilience`` keeps plans with different backup-subtree levels from
    aliasing when planners of several protection levels share one cache;
    ``scheme`` is the registry scheme the plan was built for (canonical
    ``SchemeSpec`` string form), so one cache can hold plans for several
    schemes without aliasing.
    """

    source_tor: str
    receiver_tors: frozenset[str]
    hosts: tuple[str, ...]
    epoch: int
    resilience: int = 0
    scheme: str = "peel"


class PlanCache(FabricObserver):
    """LRU cache of PEEL plans, invalidated on every topology change."""

    def __init__(self, maxsize: int = DEFAULT_CACHE_SIZE) -> None:
        if maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        self.maxsize = maxsize
        self._plans: "OrderedDict[PlanKey, PeelPlan]" = OrderedDict()
        #: Topology generation; bumped by every link down/up event.
        self.epoch = 0
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.evictions = 0

    # -- keying ----------------------------------------------------------------

    def key_for(
        self,
        planner: "Peel",
        source: str,
        receivers: list[str],
        scheme: str = "peel",
    ) -> PlanKey:
        topo = planner.topo
        dests = tuple(sorted(set(receivers) - {source}))
        return PlanKey(
            source_tor=topo.tor_of(source),
            receiver_tors=frozenset(topo.tor_of(r) for r in dests),
            hosts=(source, *dests),
            epoch=self.epoch,
            resilience=getattr(planner, "resilience", 0),
            scheme=scheme,
        )

    # -- lookup ----------------------------------------------------------------

    def get(self, planner: "Peel", source: str, receivers: list[str]) -> "PeelPlan":
        """The plan for this group: cached when the shape repeats within one
        topology epoch, freshly peeled (and stored) otherwise.

        Misses peel the *canonical* request (``key.hosts`` ordering), so the
        returned plan is byte-for-byte identical no matter which receiver
        ordering the caller used — a hit and a fresh plan can never diverge
        by iteration order.
        """
        key = self.key_for(planner, source, receivers)
        plan = self._plans.get(key)
        if plan is not None:
            self._plans.move_to_end(key)
            self.hits += 1
            return plan
        self.misses += 1
        plan = planner.plan(key.hosts[0], list(key.hosts[1:]))
        self._plans[key] = plan
        if len(self._plans) > self.maxsize:
            self._plans.popitem(last=False)
            self.evictions += 1
        return plan

    def invalidate(self) -> None:
        """Drop every cached plan and start a new topology epoch."""
        self.epoch += 1
        self.invalidations += 1
        self._plans.clear()

    def invalidate_hosts(self, hosts) -> int:
        """Targeted invalidation for a membership-epoch bump: drop every
        entry whose host set intersects ``hosts`` and return the count.

        Used by the control plane when a group's membership changes — the
        old-shape entries will never be requested again, and dropping them
        guarantees no stale tree can alias a future lookup whatever key the
        caller constructs.  The topology epoch is *not* bumped (the fabric
        did not change), so unrelated entries stay hot.
        """
        hosts = frozenset(hosts)
        dropped = [
            key for key in self._plans if hosts.intersection(key.hosts)
        ]
        for key in dropped:
            del self._plans[key]
        if dropped:
            self.invalidations += 1
        return len(dropped)

    # -- observer hooks (PR-1 layer): any fabric change kills the cache --------

    def on_link_down(self, u: str, v: str) -> None:
        self.invalidate()

    def on_link_up(self, u: str, v: str) -> None:
        self.invalidate()

    # -- introspection ---------------------------------------------------------

    def attach(self, network: "Network") -> "PlanCache":
        """Register for fabric change notifications; returns self."""
        network.add_observer(self)
        return self

    def __len__(self) -> int:
        return len(self._plans)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
