"""Multi-tenant collective serving runtime.

The paper's deploy-once argument (§3) only fully materializes under
sustained multi-tenant churn — thousands of groups joining and leaving on
one shared fabric, the regime Elmo and Bert evaluate against.  This package
provides that regime: :class:`ServeRuntime` admits a stream of
:class:`~repro.workloads.CollectiveJob` requests through pluggable
:mod:`admission <repro.serve.admission>` policies, runs admitted
collectives concurrently on one :class:`~repro.collectives.env.CollectiveEnv`,
mirrors per-group switch state into :class:`~repro.state.tcam.TcamTable`
models (:mod:`repro.serve.state`), amortizes planning with a fault-aware
:class:`PlanCache`, and reports per-tenant SLOs through
:mod:`repro.metrics`.
"""

from .admission import (
    AdmissionPolicy,
    CompositeAdmission,
    Decision,
    FifoAdmission,
    LinkLoadAdmission,
    TcamAdmission,
)
from .cache import DEFAULT_CACHE_SIZE, PlanCache, PlanKey
from .runtime import (
    DATAPLANE,
    SERVE_SCHEMES,
    JobRecord,
    ServeReport,
    ServeRuntime,
    serve_jobs,
)
from .state import (
    FabricState,
    IpMulticastStatePolicy,
    OrcaStatePolicy,
    PeelStatePolicy,
    StatePolicy,
    policy_for,
    tree_switch_fanouts,
)

__all__ = [
    "AdmissionPolicy",
    "CompositeAdmission",
    "Decision",
    "FifoAdmission",
    "LinkLoadAdmission",
    "TcamAdmission",
    "DEFAULT_CACHE_SIZE",
    "PlanCache",
    "PlanKey",
    "DATAPLANE",
    "SERVE_SCHEMES",
    "JobRecord",
    "ServeReport",
    "ServeRuntime",
    "serve_jobs",
    "FabricState",
    "IpMulticastStatePolicy",
    "OrcaStatePolicy",
    "PeelStatePolicy",
    "StatePolicy",
    "policy_for",
    "tree_switch_fanouts",
]
