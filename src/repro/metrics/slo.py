"""Per-tenant serving SLOs: completion tails, queueing, goodput, rejects.

The serving runtime (:mod:`repro.serve`) records, per tenant, every
collective's completion time and queueing delay plus the admission
outcomes; :func:`summarize_slo` folds one tenant's samples into an
:class:`SloSummary` row of the kind an operator dashboard would alarm on.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from .cct import CctStats, percentile, summarize_ccts


@dataclass(frozen=True)
class SloSummary:
    """One tenant's (or one run's aggregate) serving SLO snapshot."""

    tenant: str
    submitted: int
    completed: int
    rejected: int
    cct: CctStats
    mean_queue_s: float
    p99_queue_s: float
    #: Payload bytes delivered to receiver NICs per second of serving time.
    goodput_bps: float

    @property
    def reject_rate(self) -> float:
        return self.rejected / self.submitted if self.submitted else 0.0


def summarize_slo(
    tenant: str,
    ccts: Sequence[float],
    queue_delays: Sequence[float],
    rejected: int,
    delivered_bytes: int,
    span_s: float,
) -> SloSummary:
    """Fold one tenant's serving samples into an SLO row.

    ``span_s`` is the wall (simulated) time the samples cover; goodput is
    delivered payload over that span.
    """
    if len(ccts) != len(queue_delays):
        raise ValueError("need one queueing delay per completed collective")
    if rejected < 0:
        raise ValueError("rejected must be non-negative")
    if span_s <= 0:
        raise ValueError("span_s must be positive")
    delays = np.asarray(queue_delays, dtype=float) if queue_delays else np.zeros(1)
    if (delays < 0).any():
        raise ValueError("queueing delays must be non-negative")
    return SloSummary(
        tenant=tenant,
        submitted=len(ccts) + rejected,
        completed=len(ccts),
        rejected=rejected,
        cct=summarize_ccts(ccts) if ccts else CctStats(0, 0.0, 0.0, 0.0, 0.0),
        mean_queue_s=float(delays.mean()) if queue_delays else 0.0,
        p99_queue_s=percentile(delays, 99) if queue_delays else 0.0,
        goodput_bps=delivered_bytes * 8 / span_s,
    )


def format_slo_table(rows: Sequence[SloSummary]) -> str:
    """Fixed-width table, one tenant per line."""
    header = (
        f"{'tenant':<10}{'done':>6}{'rej':>5}{'p50 CCT(ms)':>13}"
        f"{'p99 CCT(ms)':>13}{'queue(ms)':>11}{'p99 q(ms)':>11}"
        f"{'goodput(Gb/s)':>15}"
    )
    lines = [header, "-" * len(header)]
    for r in rows:
        lines.append(
            f"{r.tenant:<10}{r.completed:>6}{r.rejected:>5}"
            f"{r.cct.p50_s * 1e3:>13.3f}{r.cct.p99_s * 1e3:>13.3f}"
            f"{r.mean_queue_s * 1e3:>11.3f}{r.p99_queue_s * 1e3:>11.3f}"
            f"{r.goodput_bps / 1e9:>15.2f}"
        )
    return "\n".join(lines)
