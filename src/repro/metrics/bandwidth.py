"""Aggregate-bandwidth accounting: who moved how many bytes where.

Supports both analytic accounting (link traversal counts of a plan or
logical topology, as in Figure 1) and measured accounting (byte counters of
a finished simulation)."""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from ..steiner import MulticastTree
from ..topology import Topology
from ..topology.addressing import NodeKind, kind_of


def tree_link_loads(trees: Iterable[MulticastTree]) -> dict[tuple[str, str], int]:
    """Message copies crossing each directed link for a set of trees."""
    loads: dict[tuple[str, str], int] = {}
    for tree in trees:
        for edge in tree.edges:
            loads[edge] = loads.get(edge, 0) + 1
    return loads


def chain_link_loads(
    topo: Topology, chain: list[str], router=None
) -> dict[tuple[str, str], int]:
    """Link loads of a unicast relay chain (a logical ring or path)."""
    from ..sim import UnicastRouter

    router = router or UnicastRouter(topo)
    loads: dict[tuple[str, str], int] = {}
    for src, dst in zip(chain, chain[1:]):
        path = router.path(src, dst)
        for edge in zip(path, path[1:]):
            loads[edge] = loads.get(edge, 0) + 1
    return loads


@dataclass(frozen=True)
class BandwidthSummary:
    total_traversals: int
    core_traversals: int  # copies over above-edge-tier links
    max_link_traversals: int

    def overshoot_vs(self, optimal: "BandwidthSummary") -> float:
        """Fractional extra total bytes vs a reference (0.0 == equal)."""
        if optimal.total_traversals == 0:
            raise ValueError("reference summary has no traffic")
        return self.total_traversals / optimal.total_traversals - 1.0


def summarize_loads(loads: dict[tuple[str, str], int]) -> BandwidthSummary:
    """Aggregate per-link traversal counts into a summary."""
    total = sum(loads.values())
    core = sum(
        count
        for (u, v), count in loads.items()
        if kind_of(u) is not NodeKind.HOST and kind_of(v) is not NodeKind.HOST
    )
    return BandwidthSummary(
        total_traversals=total,
        core_traversals=core,
        max_link_traversals=max(loads.values(), default=0),
    )
