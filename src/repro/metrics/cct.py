"""Collective-completion-time statistics (mean and tail, as in §4)."""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class CctStats:
    count: int
    mean_s: float
    p50_s: float
    p99_s: float
    max_s: float

    def __str__(self) -> str:
        return (
            f"n={self.count} mean={self.mean_s * 1e3:.3f}ms "
            f"p50={self.p50_s * 1e3:.3f}ms p99={self.p99_s * 1e3:.3f}ms"
        )


def summarize_ccts(ccts: Sequence[float]) -> CctStats:
    """Mean/median/p99/max over a sample of CCTs (seconds)."""
    if not ccts:
        raise ValueError("cannot summarize an empty CCT sample")
    arr = np.asarray(ccts, dtype=float)
    if (arr < 0).any():
        raise ValueError("CCTs must be non-negative")
    return CctStats(
        count=len(arr),
        mean_s=float(arr.mean()),
        p50_s=float(np.percentile(arr, 50)),
        p99_s=float(np.percentile(arr, 99)),
        max_s=float(arr.max()),
    )
