"""Collective-completion-time statistics (mean and tail, as in §4)."""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np


def percentile(samples: Sequence[float], q: float) -> float:
    """The repo's single percentile convention: linear interpolation
    between closest ranks, with rank ``q/100 * (n - 1)`` over the sorted
    sample (what numpy calls ``method="linear"``).

    Every tail statistic in :mod:`repro.metrics` — CCT p50/p99 and the
    serving SLO queueing tails — goes through this one function, so
    changing the convention changes every figure at once, loudly, instead
    of two modules silently disagreeing on what "p99" means.
    """
    if not 0 <= q <= 100:
        raise ValueError(f"q must be in [0, 100], got {q}")
    xs = sorted(float(x) for x in samples)
    if not xs:
        raise ValueError("cannot take a percentile of an empty sample")
    rank = q / 100 * (len(xs) - 1)
    lo = math.floor(rank)
    hi = math.ceil(rank)
    return xs[lo] + (xs[hi] - xs[lo]) * (rank - lo)


@dataclass(frozen=True)
class CctStats:
    count: int
    mean_s: float
    p50_s: float
    p99_s: float
    max_s: float

    def __str__(self) -> str:
        return (
            f"n={self.count} mean={self.mean_s * 1e3:.3f}ms "
            f"p50={self.p50_s * 1e3:.3f}ms p99={self.p99_s * 1e3:.3f}ms"
        )


def summarize_ccts(ccts: Sequence[float]) -> CctStats:
    """Mean/median/p99/max over a sample of CCTs (seconds)."""
    if not ccts:
        raise ValueError("cannot summarize an empty CCT sample")
    arr = np.asarray(ccts, dtype=float)
    if (arr < 0).any():
        raise ValueError("CCTs must be non-negative")
    return CctStats(
        count=len(arr),
        mean_s=float(arr.mean()),
        p50_s=percentile(arr, 50),
        p99_s=percentile(arr, 99),
        max_s=float(arr.max()),
    )
