"""Measurement helpers: CCT statistics, bandwidth accounting, serving SLOs."""

from .bandwidth import (
    BandwidthSummary,
    chain_link_loads,
    summarize_loads,
    tree_link_loads,
)
from .cct import CctStats, percentile, summarize_ccts
from .slo import SloSummary, format_slo_table, summarize_slo

__all__ = [
    "BandwidthSummary",
    "chain_link_loads",
    "summarize_loads",
    "tree_link_loads",
    "CctStats",
    "percentile",
    "summarize_ccts",
    "SloSummary",
    "format_slo_table",
    "summarize_slo",
]
