"""Measurement helpers: CCT statistics and bandwidth accounting."""

from .bandwidth import (
    BandwidthSummary,
    chain_link_loads,
    summarize_loads,
    tree_link_loads,
)
from .cct import CctStats, summarize_ccts

__all__ = [
    "BandwidthSummary",
    "chain_link_loads",
    "summarize_loads",
    "tree_link_loads",
    "CctStats",
    "summarize_ccts",
]
