"""RSBF-style Bloom-filter header sizing (the Fig. 3 study).

RSBF [18] pushes the multicast tree into the packet header: the outgoing
ports of every switch on the tree are encoded in a Bloom filter sized for a
target false-positive ratio.  The header therefore grows linearly with the
number of directed links in the distribution tree and explodes with fabric
degree.

The reference workload matches the paper's framing: a large bin-packed
training job spanning ``num_pods`` pods of a k-ary fat-tree (default 4),
receiving on every host of those pods.  Per-element cost is the classic
``1.44 log2(1/p)`` bits.
"""

from __future__ import annotations

import math

MTU_BYTES = 1500


def tree_links_for_job(k: int, num_pods: int = 4) -> int:
    """Directed links a pod-spanning broadcast tree must encode.

    Per destination pod: one core->agg entry, ``k/2`` agg->ToR links and
    ``(k/2)^2`` ToR->host links.  The up-funnel adds a constant handful and
    is ignored.
    """
    if k < 2 or k % 2:
        raise ValueError(f"fat-tree arity must be even and >= 2, got {k}")
    pods = min(num_pods, k)
    half = k // 2
    return pods * (1 + half + half * half)


def bloom_header_bits(num_elements: int, fpr: float) -> int:
    """Bits to encode ``num_elements`` at false-positive ratio ``fpr``."""
    if not 0 < fpr < 1:
        raise ValueError(f"fpr must be in (0, 1), got {fpr}")
    if num_elements < 0:
        raise ValueError("num_elements must be non-negative")
    return math.ceil(num_elements * 1.44 * math.log2(1 / fpr))


def rsbf_header_bytes(k: int, fpr: float, num_pods: int = 4) -> int:
    """Per-packet Bloom header for the reference job on a k-ary fat-tree."""
    return math.ceil(bloom_header_bits(tree_links_for_job(k, num_pods), fpr) / 8)


def rsbf_bandwidth_overhead(k: int, fpr: float, num_pods: int = 4) -> float:
    """Header bytes as a fraction of an MTU payload (1.0 == 100 %)."""
    return rsbf_header_bytes(k, fpr, num_pods) / MTU_BYTES


def exceeds_mtu(k: int, fpr: float, num_pods: int = 4) -> bool:
    """True when the RSBF header alone no longer fits one MTU."""
    return rsbf_header_bytes(k, fpr, num_pods) > MTU_BYTES


def false_positive_extra_links(
    tree_ports: int, non_tree_ports: int, fpr: float
) -> float:
    """Expected redundant link transmissions per packet from BF false
    positives: every non-tree port a switch tests fires with probability
    ``fpr`` (§3.1's "spray redundant traffic onto links outside the tree")."""
    if tree_ports < 0 or non_tree_ports < 0:
        raise ValueError("port counts must be non-negative")
    return non_tree_ports * fpr
