"""A TCAM-backed multicast table model with a hard capacity.

Commodity switches expose only a few thousand multicast entries (§3, refs
[12, 18]); this model lets experiments observe when a scheme overflows that
budget.  Beyond raw occupancy the table accounts *control-plane churn*: the
``updates`` counter ticks on every install, overwrite and remove, which is
the quantity the paper's deploy-once argument is about (PEEL's prefix rules
never update; per-group schemes update twice per group per switch).
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: A generous commodity budget: "a few thousand multicast entries".
DEFAULT_CAPACITY = 4096


class TcamOverflowError(RuntimeError):
    """Raised when rule installation exceeds the switch's TCAM capacity."""


@dataclass
class TcamTable:
    """Per-switch rule storage with capacity and churn accounting.

    ``strict`` (the default) raises :class:`TcamOverflowError` when an
    install would exceed ``capacity``.  With ``strict=False`` the table
    keeps accepting entries but counts each breach in ``overflow_events`` —
    the mode accounting experiments use to *measure* how far a scheme
    overshoots a commodity budget instead of crashing at the first breach.
    """

    capacity: int = DEFAULT_CAPACITY
    strict: bool = True
    _rules: dict[object, tuple[int, ...]] = field(default_factory=dict)
    #: Control-plane operations: installs + overwrites + removes.
    updates: int = 0
    #: High-water mark of concurrent entries over the table's lifetime.
    peak: int = 0
    #: Installs that exceeded ``capacity`` (non-strict mode only).
    overflow_events: int = 0

    def install(self, key: object, out_ports: tuple[int, ...] = ()) -> None:
        if key not in self._rules and len(self._rules) >= self.capacity:
            if self.strict:
                raise TcamOverflowError(
                    f"TCAM full: {len(self._rules)}/{self.capacity} entries"
                )
            self.overflow_events += 1
        self.updates += 1
        self._rules[key] = out_ports
        self.peak = max(self.peak, len(self._rules))

    def remove(self, key: object) -> None:
        if key in self._rules:
            del self._rules[key]
            self.updates += 1

    def lookup(self, key: object) -> tuple[int, ...] | None:
        return self._rules.get(key)

    def __contains__(self, key: object) -> bool:
        return key in self._rules

    def __len__(self) -> int:
        return len(self._rules)

    def would_fit(self, new_entries: int = 1) -> bool:
        """Whether ``new_entries`` *additional* entries fit the capacity."""
        if new_entries < 0:
            raise ValueError("new_entries must be non-negative")
        return len(self._rules) + new_entries <= self.capacity

    @property
    def utilization(self) -> float:
        return len(self._rules) / self.capacity if self.capacity else 1.0

    @property
    def overflowed(self) -> bool:
        """Whether the table ever held more entries than its capacity."""
        return self.peak > self.capacity
