"""A TCAM-backed multicast table model with a hard capacity.

Commodity switches expose only a few thousand multicast entries (§3, refs
[12, 18]); this model lets experiments observe when a scheme overflows that
budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: A generous commodity budget: "a few thousand multicast entries".
DEFAULT_CAPACITY = 4096


class TcamOverflowError(RuntimeError):
    """Raised when rule installation exceeds the switch's TCAM capacity."""


@dataclass
class TcamTable:
    """Per-switch rule storage with capacity accounting."""

    capacity: int = DEFAULT_CAPACITY
    _rules: dict[object, tuple[int, ...]] = field(default_factory=dict)

    def install(self, key: object, out_ports: tuple[int, ...]) -> None:
        if key not in self._rules and len(self._rules) >= self.capacity:
            raise TcamOverflowError(
                f"TCAM full: {len(self._rules)}/{self.capacity} entries"
            )
        self._rules[key] = out_ports

    def remove(self, key: object) -> None:
        self._rules.pop(key, None)

    def lookup(self, key: object) -> tuple[int, ...] | None:
        return self._rules.get(key)

    def __len__(self) -> int:
        return len(self._rules)

    @property
    def utilization(self) -> float:
        return len(self._rules) / self.capacity if self.capacity else 1.0
