"""Switch-state substrates and competitor models: TCAM capacity, naive IP
multicast accounting, Bloom filters, the RSBF header-size model (Fig. 3),
and the cross-scheme comparison table."""

from .bloom import BloomFilter, optimal_bits, optimal_hashes
from .comparison import SchemeRow, compare_schemes, format_table
from .ipmulticast import (
    entries_for_groups,
    state_reduction_factor,
    worst_case_group_entries,
)
from .rsbf import (
    MTU_BYTES,
    bloom_header_bits,
    exceeds_mtu,
    false_positive_extra_links,
    rsbf_bandwidth_overhead,
    rsbf_header_bytes,
    tree_links_for_job,
)
from .tcam import DEFAULT_CAPACITY, TcamOverflowError, TcamTable

__all__ = [
    "BloomFilter",
    "optimal_bits",
    "optimal_hashes",
    "SchemeRow",
    "compare_schemes",
    "format_table",
    "entries_for_groups",
    "state_reduction_factor",
    "worst_case_group_entries",
    "MTU_BYTES",
    "bloom_header_bits",
    "exceeds_mtu",
    "false_positive_extra_links",
    "rsbf_bandwidth_overhead",
    "rsbf_header_bytes",
    "tree_links_for_job",
    "DEFAULT_CAPACITY",
    "TcamOverflowError",
    "TcamTable",
]
