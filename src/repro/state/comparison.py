"""Side-by-side scheme comparison: the paper's scalability argument in one
table (per-switch state, per-packet header, setup latency class)."""

from __future__ import annotations

from dataclasses import dataclass

from ..core.header import header_bytes as peel_header_bytes
from ..core.rules import rule_count as peel_rule_count
from .ipmulticast import worst_case_group_entries
from .rsbf import rsbf_header_bytes


@dataclass(frozen=True)
class SchemeRow:
    scheme: str
    switch_entries: int
    header_bytes: int
    setup_latency: str  # qualitative class: "none" | "controller" | "join"


def compare_schemes(k: int, fpr: float = 0.01, active_groups: int = 1000) -> list[SchemeRow]:
    """State/header/latency comparison for a k-ary fat-tree.

    * IP multicast: worst-case one entry per distinct receiver subset, plus
      multi-second group-join latency (§5 reports up to 23 s).
    * RSBF: near-zero switch state but a Bloom header sized for the tree.
    * Orca: entries only for *active* groups via an SDN controller, paying
      its flow-setup delay on every collective start.
    * PEEL: ``k - 1`` static entries, ``O(log k)``-byte header, no setup.
    """
    return [
        SchemeRow(
            "ip-multicast", worst_case_group_entries(k), 0, "join"
        ),
        SchemeRow("rsbf", 0, rsbf_header_bytes(k, fpr), "none"),
        SchemeRow("orca", active_groups, 0, "controller"),
        SchemeRow("peel", peel_rule_count(k), peel_header_bytes(k), "none"),
    ]


def format_table(rows: list[SchemeRow]) -> str:
    """Render the comparison as a fixed-width text table."""
    header = f"{'scheme':<14}{'switch entries':>16}{'header B':>10}{'setup':>12}"
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row.scheme:<14}{row.switch_entries:>16}"
            f"{row.header_bytes:>10}{row.setup_latency:>12}"
        )
    return "\n".join(lines)
