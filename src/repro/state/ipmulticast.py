"""State accounting for naive per-group IP multicast (§1, §3.2).

Each distinct receiver subset a switch may have to serve needs its own
forwarding entry, so the worst-case per-switch state is exponential in the
fan-out: ``2^(k/2)`` possible ToR subsets per pod — about ``4 x 10^9`` for a
64-ary fat-tree, versus PEEL's ``k - 1``.
"""

from __future__ import annotations


def worst_case_group_entries(k: int) -> int:
    """Distinct ToR subsets an aggregation switch can be asked to serve."""
    if k < 2 or k % 2:
        raise ValueError(f"fat-tree arity must be even and >= 2, got {k}")
    return 2 ** (k // 2)


def entries_for_groups(groups: list[frozenset[int]]) -> int:
    """Entries a switch actually needs for a concrete set of active groups
    (one per *distinct* receiver subset — best case for IP multicast)."""
    return len(set(groups))


def state_reduction_factor(k: int) -> float:
    """How much PEEL shrinks worst-case state: ``2^(k/2) / (k - 1)``."""
    return worst_case_group_entries(k) / (k - 1)
