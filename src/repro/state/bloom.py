"""A real Bloom filter, used to *simulate* (not just size) BF-based multicast
forwarding and its false-positive redundant traffic (§3.1, §5)."""

from __future__ import annotations

import hashlib
import math
from collections.abc import Iterable


def optimal_bits(num_elements: int, fpr: float) -> int:
    """Bits for a target false-positive rate: ``-n ln p / (ln 2)^2``."""
    if num_elements < 0:
        raise ValueError("num_elements must be non-negative")
    if not 0 < fpr < 1:
        raise ValueError(f"fpr must be in (0, 1), got {fpr}")
    if num_elements == 0:
        return 1
    return max(1, math.ceil(-num_elements * math.log(fpr) / math.log(2) ** 2))


def optimal_hashes(bits: int, num_elements: int) -> int:
    """Hash-function count minimizing FPR: ``(m/n) ln 2``."""
    if num_elements == 0:
        return 1
    return max(1, round(bits / num_elements * math.log(2)))


class BloomFilter:
    """Plain Bloom filter over arbitrary hashable items.

    Deterministic (SHA-256 double hashing), so simulations are repeatable.
    """

    def __init__(self, bits: int, num_hashes: int) -> None:
        if bits < 1 or num_hashes < 1:
            raise ValueError("bits and num_hashes must both be >= 1")
        self.bits = bits
        self.num_hashes = num_hashes
        self._array = bytearray((bits + 7) // 8)
        self.count = 0

    @classmethod
    def for_capacity(cls, num_elements: int, fpr: float) -> "BloomFilter":
        bits = optimal_bits(num_elements, fpr)
        return cls(bits, optimal_hashes(bits, num_elements))

    def _positions(self, item: object) -> list[int]:
        digest = hashlib.sha256(repr(item).encode()).digest()
        h1 = int.from_bytes(digest[:8], "big")
        h2 = int.from_bytes(digest[8:16], "big") | 1
        return [(h1 + i * h2) % self.bits for i in range(self.num_hashes)]

    def add(self, item: object) -> None:
        for pos in self._positions(item):
            self._array[pos // 8] |= 1 << (pos % 8)
        self.count += 1

    def update(self, items: Iterable[object]) -> None:
        for item in items:
            self.add(item)

    def __contains__(self, item: object) -> bool:
        return all(
            self._array[pos // 8] & (1 << (pos % 8)) for pos in self._positions(item)
        )

    @property
    def nbytes(self) -> int:
        return len(self._array)

    def expected_fpr(self) -> float:
        """Theoretical FPR at the current fill level."""
        if self.count == 0:
            return 0.0
        exponent = -self.num_hashes * self.count / self.bits
        return (1 - math.exp(exponent)) ** self.num_hashes
