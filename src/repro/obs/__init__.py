"""Observability layer: metrics registry, span tracing, timeline export.

Three pieces (see DESIGN.md "Observability"):

* :mod:`repro.obs.metrics` — :class:`MetricsRegistry` of counters, gauges
  and fixed-bucket mergeable histograms that sim components publish into;
* :mod:`repro.obs.spans` — :class:`SpanTracer` recording nested collective
  → layer-peel round → segment-transfer spans, exported as Chrome-trace /
  Perfetto JSON (open in ``chrome://tracing``);
* :mod:`repro.obs.fabric` — :class:`Observability`, the facade wiring both
  onto a live :class:`~repro.sim.network.Network` through the existing
  observer layer, plus in-loop periodic sampling.  Zero-cost when not
  attached.
"""

from .fabric import (
    DETAIL_LEVELS,
    FabricMetricsObserver,
    Observability,
    PeriodicSampler,
)
from .metrics import (
    BYTES_BOUNDS,
    RATIO_BOUNDS,
    SECONDS_BOUNDS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    SampleRing,
)
from .spans import Span, SpanTracer, nesting_violations

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SampleRing",
    "Span",
    "SpanTracer",
    "nesting_violations",
    "FabricMetricsObserver",
    "Observability",
    "PeriodicSampler",
    "DETAIL_LEVELS",
    "BYTES_BOUNDS",
    "RATIO_BOUNDS",
    "SECONDS_BOUNDS",
]
