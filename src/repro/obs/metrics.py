"""Metrics primitives: counters, gauges and fixed-bucket histograms.

A :class:`MetricsRegistry` is the single publication point sim components
write into — per-link utilization and queue-depth samples, PFC pause time,
ECN marks, DCQCN rate updates, TCAM occupancy, plan-cache hit rate,
per-tenant SLO latencies.  Three properties drive the design:

* **determinism** — :meth:`MetricsRegistry.snapshot` is a plain dict whose
  JSON serialization (``sort_keys=True``) is byte-identical across runs of
  the same scenario, so snapshots double as golden regression fixtures;
* **mergeability** — registries from independent sweep points (possibly
  other processes) fold together with :meth:`MetricsRegistry.merge`:
  counters add, histograms add bucket-wise, gauges keep the extremum they
  were declared with.  Histogram merge is associative and commutative and
  conserves the total sample count (property-tested);
* **bounded cardinality** — histograms use *fixed* bucket bounds chosen at
  creation, so a metric's memory footprint never depends on run length.
"""

from __future__ import annotations

import json
import math
from collections.abc import Sequence

#: Default histogram bounds for [0, 1]-ish ratios (utilization, hit rates).
RATIO_BOUNDS = (0.01, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0)

#: Default power-of-four byte-size bounds (queue depths, message sizes).
BYTES_BOUNDS = tuple(4**k * 1024 for k in range(10))  # 1 KiB .. 256 MiB

#: Default latency bounds in seconds (SLO tails, span durations).
SECONDS_BOUNDS = tuple(10**e for e in range(-7, 3))  # 100 ns .. 100 s


class Counter:
    """A monotonically increasing sum (int or float)."""

    kind = "counter"
    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease by {amount}")
        self.value += amount

    def merge(self, other: "Counter") -> None:
        self.value += other.value

    def to_dict(self) -> dict:
        return {"kind": self.kind, "value": self.value}


class Gauge:
    """A point-in-time value; merging keeps the declared extremum.

    ``mode="last"`` gauges track the most recent :meth:`set` (and refuse to
    merge across registries, since "last" is meaningless between shards);
    ``mode="max"``/``"min"`` gauges are peak/floor trackers and merge by
    taking the extremum, which is associative and commutative.
    """

    kind = "gauge"
    __slots__ = ("name", "mode", "value", "updates")

    def __init__(self, name: str, mode: str = "last") -> None:
        if mode not in ("last", "max", "min"):
            raise ValueError(f"gauge mode must be last/max/min, got {mode!r}")
        self.name = name
        self.mode = mode
        self.value: float | None = None
        self.updates = 0

    def set(self, value: float) -> None:
        self.updates += 1
        if self.value is None:
            self.value = value
        elif self.mode == "max":
            self.value = max(self.value, value)
        elif self.mode == "min":
            self.value = min(self.value, value)
        else:
            self.value = value

    def merge(self, other: "Gauge") -> None:
        if self.mode != other.mode:
            raise ValueError(
                f"gauge {self.name}: cannot merge mode {other.mode!r} into "
                f"{self.mode!r}"
            )
        if self.mode == "last":
            raise ValueError(
                f"gauge {self.name}: 'last' gauges are shard-local and do "
                "not merge; declare mode='max' or 'min'"
            )
        if other.value is not None:
            self.updates += other.updates
            if self.value is None:
                self.value = other.value
            else:
                op = max if self.mode == "max" else min
                self.value = op(self.value, other.value)

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "mode": self.mode,
            "updates": self.updates,
            "value": self.value,
        }


class Histogram:
    """Fixed-bucket histogram: ``len(bounds) + 1`` counts plus sum/min/max.

    Bucket ``i`` counts samples with ``value <= bounds[i]`` (first matching
    bound); the final bucket is the implicit ``+inf`` overflow.  Bounds are
    fixed at creation, which is what makes two histograms of the same
    metric mergeable by plain bucket-wise addition.
    """

    kind = "histogram"
    __slots__ = ("name", "bounds", "counts", "total", "sum", "min", "max")

    def __init__(self, name: str, bounds: Sequence[float]) -> None:
        if not bounds:
            raise ValueError(f"histogram {name} needs at least one bound")
        bounds = tuple(float(b) for b in bounds)
        if list(bounds) != sorted(set(bounds)):
            raise ValueError(f"histogram {name} bounds must strictly increase")
        if not all(math.isfinite(b) for b in bounds):
            raise ValueError(f"histogram {name} bounds must be finite")
        self.name = name
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.total = 0
        self.sum = 0.0
        self.min: float | None = None
        self.max: float | None = None

    def observe(self, value: float) -> None:
        lo, hi = 0, len(self.bounds)
        while lo < hi:  # bisect_left over bounds: first bound >= value
            mid = (lo + hi) // 2
            if self.bounds[mid] < value:
                lo = mid + 1
            else:
                hi = mid
        self.counts[lo] += 1
        self.total += 1
        self.sum += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    def observe_many(self, values: Sequence[float]) -> None:
        """Bulk :meth:`observe`, byte-identical to observing each value in
        order (``sum`` is float accumulation, so replay order matters)."""
        if not values:
            return
        bounds = self.bounds
        nbounds = len(bounds)
        counts = self.counts
        acc = self.sum
        for value in values:
            lo, hi = 0, nbounds
            while lo < hi:
                mid = (lo + hi) // 2
                if bounds[mid] < value:
                    lo = mid + 1
                else:
                    hi = mid
            counts[lo] += 1
            acc += value
        self.sum = acc
        self.total += len(values)
        low, high = min(values), max(values)
        self.min = low if self.min is None else min(self.min, low)
        self.max = high if self.max is None else max(self.max, high)

    def merge(self, other: "Histogram") -> None:
        if other.bounds != self.bounds:
            raise ValueError(
                f"histogram {self.name}: bucket bounds differ; cannot merge"
            )
        for i, count in enumerate(other.counts):
            self.counts[i] += count
        self.total += other.total
        self.sum += other.sum
        for attr, op in (("min", min), ("max", max)):
            theirs = getattr(other, attr)
            if theirs is not None:
                ours = getattr(self, attr)
                setattr(self, attr, theirs if ours is None else op(ours, theirs))

    @property
    def mean(self) -> float:
        return self.sum / self.total if self.total else 0.0

    def quantile(self, q: float) -> float:
        """Bucket-resolution quantile: the upper bound of the bucket holding
        the q-th sample (``max`` for the overflow bucket)."""
        if not 0 <= q <= 1:
            raise ValueError("q must be in [0, 1]")
        if not self.total:
            return 0.0
        rank = q * (self.total - 1)
        seen = 0
        for i, count in enumerate(self.counts):
            seen += count
            if count and seen > rank:
                if i < len(self.bounds):
                    return self.bounds[i]
                return self.max if self.max is not None else self.bounds[-1]
        return self.max if self.max is not None else self.bounds[-1]

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "total": self.total,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
        }


class SampleRing:
    """Preallocated append-only buffer for deferred histogram bucketing.

    Hot-path recording is one list store plus an index bump — no bisect,
    no histogram bookkeeping, no per-sample allocation (the buffer doubles
    in place when full).  :meth:`flush_into` replays the samples into a
    histogram *in recording order* at export time, which keeps the
    deferred path byte-identical to live observation: bucket counts and
    min/max are order-independent, and the float ``sum`` accumulates in
    the exact same sequence.
    """

    __slots__ = ("buf", "n")

    def __init__(self, capacity: int = 4096) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.buf: list[float] = [0.0] * capacity
        self.n = 0

    def __len__(self) -> int:
        return self.n

    def append(self, value: float) -> None:
        buf = self.buf
        n = self.n
        if n == len(buf):
            buf.extend(buf)
        buf[n] = value
        self.n = n + 1

    def values(self) -> list[float]:
        """The recorded samples, oldest first."""
        return self.buf[: self.n]

    def flush_into(self, histogram: Histogram) -> int:
        """Replay all buffered samples into ``histogram`` and reset;
        returns how many samples were flushed."""
        n = self.n
        if n:
            histogram.observe_many(self.buf[:n])
            self.n = 0
        return n


class MetricsRegistry:
    """Named metrics, created on first use and snapshotted deterministically.

    ``counter(name)`` / ``gauge(name)`` / ``histogram(name, bounds)`` are
    get-or-create: repeated calls with the same name return the same object
    (and raise if the name is already bound to a different kind or shape),
    so independent components can publish into one registry without
    coordinating creation order.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __getitem__(self, name: str) -> Counter | Gauge | Histogram:
        return self._metrics[name]

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def _get_or_create(self, name: str, factory, check) -> object:
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = factory()
        else:
            check(metric)
        return metric

    def counter(self, name: str) -> Counter:
        def check(metric):
            if not isinstance(metric, Counter):
                raise TypeError(f"{name!r} is a {metric.kind}, not a counter")

        return self._get_or_create(name, lambda: Counter(name), check)

    def gauge(self, name: str, mode: str = "last") -> Gauge:
        def check(metric):
            if not isinstance(metric, Gauge):
                raise TypeError(f"{name!r} is a {metric.kind}, not a gauge")
            if metric.mode != mode:
                raise ValueError(
                    f"gauge {name!r} already declared with mode {metric.mode!r}"
                )

        return self._get_or_create(name, lambda: Gauge(name, mode), check)

    def histogram(
        self, name: str, bounds: Sequence[float] = SECONDS_BOUNDS
    ) -> Histogram:
        bounds = tuple(float(b) for b in bounds)

        def check(metric):
            if not isinstance(metric, Histogram):
                raise TypeError(f"{name!r} is a {metric.kind}, not a histogram")
            if metric.bounds != bounds:
                raise ValueError(
                    f"histogram {name!r} already declared with other bounds"
                )

        return self._get_or_create(name, lambda: Histogram(name, bounds), check)

    # -- folding and serialization --------------------------------------------

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold ``other`` into this registry (see each metric's merge rule);
        returns self for chaining."""
        for name in sorted(other._metrics):
            theirs = other._metrics[name]
            mine = self._metrics.get(name)
            if mine is None:
                # Adopt a structural copy so later merges never alias.
                self._metrics[name] = mine = _fresh_like(theirs)
            if mine.kind != theirs.kind:
                raise TypeError(
                    f"{name!r}: cannot merge a {theirs.kind} into a {mine.kind}"
                )
            mine.merge(theirs)
        return self

    def snapshot(self) -> dict:
        """JSON-serializable state of every metric, keyed by name."""
        return {name: m.to_dict() for name, m in sorted(self._metrics.items())}

    def to_json(self, indent: int | None = 2) -> str:
        """Deterministic serialization (stable ordering, exact floats)."""
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True) + "\n"

    def save(self, path) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json())


def _fresh_like(metric: Counter | Gauge | Histogram):
    """An empty metric with the same shape, ready to merge into."""
    if isinstance(metric, Counter):
        return Counter(metric.name)
    if isinstance(metric, Gauge):
        return Gauge(metric.name, metric.mode)
    return Histogram(metric.name, metric.bounds)
