"""Wiring metrics + spans onto a live simulation: the observability layer.

:class:`Observability` is the one object callers hold: it owns a
:class:`~repro.obs.metrics.MetricsRegistry` and a
:class:`~repro.obs.spans.SpanTracer`, attaches a
:class:`FabricMetricsObserver` to the network's existing observer layer,
and runs a :class:`PeriodicSampler` inside the event loop.  Everything is
strictly opt-in: an unobserved simulation keeps the empty-``observers``
fast path (one truthiness test per event) and schedules no sampler events,
so disabled-mode overhead is zero by construction — the perf harness
(``scripts/bench_report.py``, scenario ``obs``) records the enabled vs
disabled events/sec delta every run.

Span hierarchy (cf. §4's CCT-shape arguments):

* **collective** — one span per tracked :class:`CollectiveHandle`, from
  arrival to CCT completion (NVLink hop included);
* **transfer** — one span per :class:`~repro.sim.transfer.Transfer`, from
  its first injected copy to completion, parented to its collective;
* **layer** (``<transfer>/L<i>``) — one span per layer-peel round (route
  tree) of a transfer, first inject to last accepted delivery;
* **segment** (``detail="segment"``) — one span per (receiver, segment),
  inject to acceptance, on the receiving host's track.
"""

from __future__ import annotations

import operator
from typing import TYPE_CHECKING

from ..sim.observer import FabricObserver
from ..sim.stats import _tier as link_tier
from .metrics import (
    BYTES_BOUNDS,
    RATIO_BOUNDS,
    SECONDS_BOUNDS,
    MetricsRegistry,
    SampleRing,
)
from .spans import Span, SpanTracer

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.network import HostNode, Network, Port, SwitchNode
    from ..sim.packet import Segment
    from ..sim.transfer import Transfer

#: Rate histogram bounds in Gb/s (DCQCN operating range on 100G links).
GBPS_BOUNDS = (1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 75.0, 90.0, 100.0)

#: C-level slot reader for the sampler's per-tick depth sweep.
_GET_QUEUE_BYTES = operator.attrgetter("queue_bytes")

DETAIL_LEVELS = ("transfer", "segment")


class FabricMetricsObserver(FabricObserver):
    """Publishes fabric lifecycle events into a registry and span tracer.

    Only the state needed for retroactive span construction is tracked
    live (first-inject times, per-layer activity windows, open PFC pauses);
    aggregate counters are folded in once at finalize from the counters the
    fabric already maintains, keeping the per-event work minimal.
    """

    def __init__(self, obs: "Observability", network: "Network") -> None:
        self.obs = obs
        self.network = network
        #: Hot-path alias: every hook needs ``sim.now`` and the engine
        #: object is stable for the network's lifetime.
        self._sim = network.sim
        self.registry = obs.registry
        self.tracer = obs.tracer
        self.segment_detail = obs.detail == "segment"
        #: transfer name -> first on_inject time.
        self.first_inject: dict[str, float] = {}
        #: transfer name -> {route tree: layer index} (identity-keyed: trees
        #: define no __eq__; keying the object rather than id() keeps the
        #: mapping valid across replay-checkpoint pickling).
        self._layer_index: dict[str, dict] = {}
        #: (transfer name, layer) -> [first_s, last_s] activity window.
        self.layer_window: dict[tuple[str, int], list[float]] = {}
        #: (transfer name, seq) -> inject time (segment detail only).
        self._seg_start: dict[tuple[str, int], float] = {}
        #: finished segment spans: (tname, layer, seq, host, t0, t1).
        self.segment_records: list[tuple[str, int, int, str, float, float]] = []
        #: (switch name, ingress port src) -> pause start time.
        self._open_pauses: dict[tuple[str, str], float] = {}
        self._pause_seconds = 0.0
        # Copy-lifecycle tallies as plain int attributes (fold_counters
        # publishes them once at the end of the run).  Fork and deliver
        # are not hooked at all: they fire once per copy per hop and were
        # pure counters, so the forwarding path bumps shared cells in
        # ``Network.copy_counters`` instead of paying a per-copy callback;
        # this observer reads the deltas since it attached.
        self._n_injected = 0
        self._n_accepted = 0
        self._n_wasted = 0
        self._n_lost = 0
        cells = network.copy_counters
        if cells is None:
            cells = network.copy_counters = [0, 0]
        self._copy_cells = cells
        self._base_forked = cells[0]
        self._base_delivered = cells[1]
        # One-entry (transfer name, route) -> (layer, window) cache:
        # acceptances arrive in long same-transfer same-tree bursts (every
        # receiver accepts segment k at nearby times), so the common case
        # skips three dict lookups and a tuple allocation.  Windows are
        # mutated in place and never replaced, so aliasing one is safe.
        self._lt_name: str | None = None
        self._lt_route = None
        self._lt_layer = 0
        self._lt_window: list[float] | None = None
        network.add_observer(self)

    # -- live event handling ---------------------------------------------------

    def _touch_layer(self, transfer_name: str, route, now: float) -> int:
        if route is self._lt_route and transfer_name == self._lt_name:
            self._lt_window[1] = now
            return self._lt_layer
        layers = self._layer_index.get(transfer_name)
        if layers is None:
            layers = self._layer_index[transfer_name] = {}
        layer = layers.get(route)
        if layer is None:
            # Layers are numbered in first-use order, which matches the
            # plan's static-tree order for multi-tree PEEL transfers (the
            # first segment rides every tree) and appends re-peeled trees.
            layer = layers[route] = len(layers)
        window = self.layer_window.get((transfer_name, layer))
        if window is None:
            window = self.layer_window[transfer_name, layer] = [now, now]
        else:
            window[1] = now
        self._lt_name = transfer_name
        self._lt_route = route
        self._lt_layer = layer
        self._lt_window = window
        return layer

    def on_inject(self, host: "HostNode", segment: "Segment") -> None:
        now = self._sim.now
        self._n_injected += 1
        name = segment.transfer.name
        if name not in self.first_inject:
            self.first_inject[name] = now
        self._touch_layer(name, segment.route, now)
        if self.segment_detail:
            self._seg_start.setdefault((name, segment.seq), now)

    def on_accept(self, transfer: "Transfer", host: str, segment: "Segment") -> None:
        now = self._sim.now
        self._n_accepted += 1
        route = segment.route
        name = transfer.name
        if route is self._lt_route and name == self._lt_name:
            # Inlined _touch_layer cache hit (the overwhelmingly common
            # case on the acceptance path).
            self._lt_window[1] = now
            layer = self._lt_layer
        else:
            layer = self._touch_layer(name, route, now)
        if self.segment_detail:
            start = self._seg_start.get((transfer.name, segment.seq), now)
            self.segment_records.append(
                (transfer.name, layer, segment.seq, host, start, now)
            )

    def on_wasted(self, switch: "SwitchNode", segment: "Segment") -> None:
        self._n_wasted += 1

    def on_lost(self, port: "Port", segment: "Segment") -> None:
        self._n_lost += 1

    def on_pfc_pause(self, switch: "SwitchNode", port: "Port") -> None:
        self._open_pauses[switch.name, port.src] = self.network.sim.now

    def on_pfc_resume(self, switch: "SwitchNode", port: "Port") -> None:
        started = self._open_pauses.pop((switch.name, port.src), None)
        if started is not None:
            self._pause_seconds += self.network.sim.now - started

    def on_link_down(self, u: str, v: str) -> None:
        self.registry.counter("fabric.link_down_events").inc()
        self.tracer.instant(f"link-down {u} -- {v}", self.network.sim.now, "fabric")

    def on_link_up(self, u: str, v: str) -> None:
        self.registry.counter("fabric.link_up_events").inc()
        self.tracer.instant(f"link-up {u} -- {v}", self.network.sim.now, "fabric")

    def on_reroute(self, transfer: "Transfer", num_trees: int) -> None:
        self.registry.counter("fabric.reroutes").inc()
        self.tracer.instant(
            f"reroute {transfer.name} ({num_trees} trees)",
            self.network.sim.now,
            "fabric",
        )

    def on_failover(self, transfer: "Transfer", link: tuple[str, str]) -> None:
        self.registry.counter("failover.local_recoveries").inc()
        self.tracer.instant(
            f"failover {transfer.name} around {link[0]} -- {link[1]}",
            self.network.sim.now,
            "fabric",
        )

    # -- finalize --------------------------------------------------------------

    def close_pauses(self, now: float) -> None:
        for key in sorted(self._open_pauses):
            self._pause_seconds += now - self._open_pauses.pop(key)

    def copy_counts(self) -> dict[str, int]:
        """Live copy-lifecycle tallies, keyed like ``fabric.copies.*``."""
        cells = self._copy_cells
        return {
            "accepted": self._n_accepted,
            "delivered": cells[1] - self._base_delivered,
            "forked": cells[0] - self._base_forked,
            "injected": self._n_injected,
            "lost": self._n_lost,
            "wasted": self._n_wasted,
        }

    def fold_counters(self) -> None:
        """End-of-run aggregates from fabric- and port-level counters."""
        registry = self.registry
        network = self.network
        for kind, count in self.copy_counts().items():
            registry.counter(f"fabric.copies.{kind}").inc(count)
        registry.counter("fabric.pfc.pause_events").inc(network.pfc_pause_events)
        registry.counter("fabric.pfc.pause_seconds").inc(self._pause_seconds)
        registry.counter("fabric.wasted_bytes").inc(network.wasted_bytes)
        registry.counter("fabric.lost_segments").inc(network.lost_segments)
        registry.counter("fabric.failure_drops").inc(network.failure_drops)
        elapsed = network.sim.now
        total_bytes = 0
        total_marks = 0
        for key in sorted(network.ports):
            port = network.ports[key]
            total_bytes += port.bytes_sent
            total_marks += port.ecn_marks
            if not port.bytes_sent and not port.peak_queue_bytes:
                continue
            tier = link_tier(port.src, port.dst)
            if elapsed > 0:
                registry.histogram(
                    f"link.utilization.{tier}", RATIO_BOUNDS
                ).observe(port.bytes_sent * 8 / (port.capacity_bps * elapsed))
            registry.histogram("link.peak_queue_bytes", BYTES_BOUNDS).observe(
                port.peak_queue_bytes
            )
        registry.counter("fabric.bytes_sent").inc(total_bytes)
        registry.counter("fabric.ecn_marks").inc(total_marks)
        reactions = sum(t.dcqcn.reactions for t in network.transfers)
        notifications = sum(t.dcqcn.notifications for t in network.transfers)
        retransmissions = sum(t.retransmissions for t in network.transfers)
        registry.counter("dcqcn.rate_updates").inc(reactions)
        registry.counter("dcqcn.notifications").inc(notifications)
        registry.counter("fabric.retransmissions").inc(retransmissions)


class PeriodicSampler:
    """Samples time-varying fabric state on a fixed simulated-time cadence.

    The tick reschedules itself only while *other* live events remain, so
    an attached sampler never keeps the event loop alive on its own and
    ``env.run()`` still terminates.  Each tick records queue-depth and
    DCQCN-rate samples, emits Chrome counter events, and invokes any
    caller-registered hooks (the serving runtime adds one for queue
    length, TCAM occupancy and cache hit rate).

    The hot path is allocation-light: the sorted port walk is precomputed
    once (the port set is fixed at :class:`~repro.sim.network.Network`
    construction — link faults flip ``Port.down``, they never add or
    remove ports), and raw depth/rate samples land in preallocated
    append-only :class:`~repro.obs.metrics.SampleRing` buffers.  Histogram
    bucketing is deferred to :meth:`flush` (run by
    ``Observability.finalize``), which replays the rings in recording
    order so the exported registry is byte-identical to live observation.
    """

    def __init__(self, obs: "Observability", network: "Network") -> None:
        self.obs = obs
        self.network = network
        self.interval_s = obs.sample_interval_s
        self.ticks = 0
        self._started = False
        self._ports = [network.ports[key] for key in sorted(network.ports)]
        # Histogram/gauge handles are bound lazily on the first tick so a
        # run with zero ticks leaves the registry exactly as empty as the
        # per-tick get-or-create used to.
        self._queue_hist = None
        self._rate_hist = None
        self._peak_gauge = None
        self._queue_ring = SampleRing()
        self._rate_ring = SampleRing()

    def start(self) -> None:
        if not self._started:
            self._started = True
            self.network.sim.post(self.interval_s, self._tick)

    def _tick(self) -> None:
        sim = self.network.sim
        self.ticks += 1
        self.sample(sim.now)
        # Our own entry already fired, so pending counts everyone else.
        if sim.pending > 0:
            sim.post(self.interval_s, self._tick)
        else:
            self._started = False

    def sample(self, now: float) -> None:
        queue_hist = self._queue_hist
        if queue_hist is None:
            registry = self.obs.registry
            queue_hist = self._queue_hist = registry.histogram(
                "sample.queue_bytes", BYTES_BOUNDS
            )
            self._rate_hist = registry.histogram("dcqcn.rate_gbps", GBPS_BOUNDS)
            self._peak_gauge = registry.gauge("sample.queued_bytes.peak", "max")
        tracer = self.obs.tracer
        # C-speed depth sweep: attrgetter+map+sum touch every port without
        # a Python-level loop; the per-port Python loop runs only when at
        # least one queue is nonempty, and then over plain ints.
        depths = list(map(_GET_QUEUE_BYTES, self._ports))
        queued_total = sum(depths)
        if queued_total:
            ring = self._queue_ring
            buf = ring.buf
            n = ring.n
            for depth in depths:
                if depth:
                    if n == len(buf):
                        buf.extend(buf)
                    buf[n] = depth
                    n += 1
            ring.n = n
        self._peak_gauge.set(queued_total)
        tracer.sample("queued_bytes", now, queued_total)
        ring = self._rate_ring
        buf = ring.buf
        n = ring.n
        slowest = None
        for transfer in self.network.transfers:
            if not transfer.complete:
                rate = transfer.dcqcn.current_rate_bps / 1e9
                if n == len(buf):
                    buf.extend(buf)
                buf[n] = rate
                n += 1
                slowest = rate if slowest is None else min(slowest, rate)
        ring.n = n
        if slowest is not None:
            tracer.sample("dcqcn_min_rate_gbps", now, slowest)
        for hook in self.obs.sample_hooks:
            hook(now)

    def flush(self) -> None:
        """Replay ring-buffered samples into their histograms.

        Recording order is preserved, so the deferred bucketing serializes
        byte-identically to the old per-tick ``observe`` calls.  Idempotent
        between ticks (the rings reset on flush).
        """
        if self._queue_hist is not None:
            self._queue_ring.flush_into(self._queue_hist)
            self._rate_ring.flush_into(self._rate_hist)


class Observability:
    """Metrics + tracing for one simulation run (see module docstring).

    Usage::

        obs = Observability(sample_interval_s=100e-6)
        env = CollectiveEnv(topo, cfg)
        obs.attach(env.network)
        handle = scheme.launch(env, group, msg, 0.0)
        obs.track_collective(handle)
        env.run()
        obs.finalize()
        obs.save_trace("run.trace.json")     # open in chrome://tracing
        obs.save_metrics("run.metrics.json")

    Experiment entry points (:func:`repro.api.run` via
    ``ScenarioSpec(obs=...)``, :class:`repro.serve.ServeRuntime`, the
    ``repro obs`` CLI) accept an ``obs=`` argument and do all of the above.
    """

    def __init__(
        self,
        sample_interval_s: float = 100e-6,
        detail: str = "transfer",
        registry: MetricsRegistry | None = None,
        tracer: SpanTracer | None = None,
        periodic_sampling: bool = True,
    ) -> None:
        if sample_interval_s <= 0:
            raise ValueError("sample_interval_s must be positive")
        if detail not in DETAIL_LEVELS:
            raise ValueError(f"detail must be one of {DETAIL_LEVELS}, got {detail!r}")
        self.sample_interval_s = sample_interval_s
        self.detail = detail
        #: The sampler schedules real simulator events; sharded runs build
        #: their obs with ``periodic_sampling=False`` so the fired-event
        #: stream contains fabric work only (see repro.shard).
        self.periodic_sampling = periodic_sampling
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else SpanTracer()
        self.sample_hooks: list = []
        self.network: "Network | None" = None
        self.observer: FabricMetricsObserver | None = None
        self.sampler: PeriodicSampler | None = None
        self._handles: list = []
        self._labels: list[str] = []
        self._finalized = False

    # -- wiring ----------------------------------------------------------------

    def attach(self, network: "Network") -> "Observability":
        """Register on a network's observer layer and start sampling."""
        if self.network is not None:
            raise RuntimeError("Observability is already attached")
        self.network = network
        self.observer = FabricMetricsObserver(self, network)
        if self.periodic_sampling:
            self.sampler = PeriodicSampler(self, network)
            self.sampler.start()
        return self

    def track_collective(self, handle, label: str | None = None) -> None:
        """Record a collective handle so finalize() emits its span."""
        self._handles.append(handle)
        self._labels.append(label or f"{handle.scheme_name}-{len(self._handles)}")

    def add_sample_hook(self, hook) -> None:
        """``hook(now_s)`` runs on every sampler tick (serve snapshots)."""
        self.sample_hooks.append(hook)

    def observe_plan_cache(self, cache) -> None:
        """Fold a :class:`~repro.serve.cache.PlanCache`'s counters in."""
        if cache is None:
            return
        self.registry.counter("plan_cache.hits").inc(cache.hits)
        self.registry.counter("plan_cache.misses").inc(cache.misses)
        self.registry.counter("plan_cache.invalidations").inc(cache.invalidations)
        # Scheme-agnostic alias covering both fault-driven (epoch bump) and
        # membership-driven (invalidate_hosts) invalidation events.
        self.registry.counter("cache.invalidations").inc(cache.invalidations)
        lookups = cache.hits + cache.misses
        if lookups:
            self.registry.gauge("plan_cache.hit_rate", "max").set(
                cache.hits / lookups
            )

    # -- finalize --------------------------------------------------------------

    def finalize(self) -> "Observability":
        """Fold end-of-run state into the registry and emit the span tree.

        Idempotent; exports call it automatically.  Incomplete collectives
        and transfers (a run stopped early) get spans closed at the current
        simulated time and a ``*.incomplete`` counter.
        """
        if self._finalized:
            return self
        if self.network is None:
            raise RuntimeError("Observability was never attached to a network")
        self._finalized = True
        observer = self.observer
        now = self.network.sim.now
        if self.sampler is not None:
            self.sampler.flush()
        observer.close_pauses(now)
        observer.fold_counters()

        cct_hist = self.registry.histogram("collective.cct_s", SECONDS_BOUNDS)
        collective_spans: dict[int, Span] = {}
        for handle, label in zip(self._handles, self._labels):
            if handle.complete:
                end = handle.arrival_s + handle.cct_s
            else:
                end = max(now, handle.arrival_s)
                self.registry.counter("collective.incomplete").inc()
            span = self.tracer.add(
                label,
                handle.arrival_s,
                end,
                track="collectives",
                cat="collective",
                receivers=len(handle.group.receiver_hosts),
                message_bytes=handle.message_bytes,
            )
            collective_spans[id(handle)] = span
            if handle.complete:
                cct_hist.observe(handle.cct_s)

        duration_hist = self.registry.histogram("transfer.duration_s", SECONDS_BOUNDS)
        transfer_spans: dict[str, Span] = {}
        for transfer in self.network.transfers:
            start = observer.first_inject.get(transfer.name, transfer.start_at)
            if transfer.complete:
                end = transfer.complete_at
            else:
                end = max(now, start)
                self.registry.counter("transfer.incomplete").inc()
            parent = collective_spans.get(id(getattr(transfer.on_host_done, "__self__", None)))
            if parent is not None:
                start = max(start, parent.start_s)
            span = self.tracer.add(
                transfer.name,
                start,
                max(end, start),
                track="transfers",
                cat="transfer",
                parent=parent,
                segments=transfer.num_segments,
                retransmissions=transfer.retransmissions,
            )
            transfer_spans[transfer.name] = span
            duration_hist.observe(span.duration_s)

        layer_spans: dict[tuple[str, int], Span] = {}
        for (tname, layer), (first, last) in sorted(observer.layer_window.items()):
            parent = transfer_spans.get(tname)
            if parent is not None:
                first = max(first, parent.start_s)
                last = min(max(last, first), parent.end_s)
            layer_spans[tname, layer] = self.tracer.add(
                f"{tname}/L{layer}",
                first,
                last,
                track="transfers",
                cat="layer",
                parent=parent,
            )
        for tname, layer, seq, host, t0, t1 in observer.segment_records:
            parent = layer_spans.get((tname, layer))
            if parent is not None:
                t0 = max(t0, parent.start_s)
                t1 = min(max(t1, t0), parent.end_s)
            self.tracer.add(
                f"{tname}#s{seq}",
                t0,
                t1,
                track=host,
                cat="segment",
                parent=parent,
            )
        self.tracer.close_all(now)
        return self

    # -- export ----------------------------------------------------------------

    def metrics_json(self) -> str:
        self.finalize()
        return self.registry.to_json()

    def trace_json(self) -> str:
        self.finalize()
        return self.tracer.to_json()

    def save_metrics(self, path) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.metrics_json())

    def save_trace(self, path) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.trace_json())

    def summary(self) -> str:
        """A few headline numbers for CLI output."""
        self.finalize()
        reg = self.registry
        spans = len(self.tracer.spans)
        ticks = self.sampler.ticks if self.sampler is not None else 0
        parts = [
            f"{spans} spans",
            f"{ticks} sampler ticks",
            f"{len(reg)} metrics",
        ]
        if "fabric.bytes_sent" in reg:
            parts.append(f"{reg['fabric.bytes_sent'].value / 2**20:.1f} MiB sent")
        if "fabric.ecn_marks" in reg:
            parts.append(f"{int(reg['fabric.ecn_marks'].value)} ECN marks")
        if "dcqcn.rate_updates" in reg:
            parts.append(f"{int(reg['dcqcn.rate_updates'].value)} rate updates")
        return " | ".join(parts)
