"""Wiring metrics + spans onto a live simulation: the observability layer.

:class:`Observability` is the one object callers hold: it owns a
:class:`~repro.obs.metrics.MetricsRegistry` and a
:class:`~repro.obs.spans.SpanTracer`, attaches a
:class:`FabricMetricsObserver` to the network's existing observer layer,
and runs a :class:`PeriodicSampler` inside the event loop.  Everything is
strictly opt-in: an unobserved simulation keeps the empty-``observers``
fast path (one truthiness test per event) and schedules no sampler events,
so disabled-mode overhead is zero by construction — the perf harness
(``scripts/bench_report.py``, scenario ``obs``) records the enabled vs
disabled events/sec delta every run.

Span hierarchy (cf. §4's CCT-shape arguments):

* **collective** — one span per tracked :class:`CollectiveHandle`, from
  arrival to CCT completion (NVLink hop included);
* **transfer** — one span per :class:`~repro.sim.transfer.Transfer`, from
  its first injected copy to completion, parented to its collective;
* **layer** (``<transfer>/L<i>``) — one span per layer-peel round (route
  tree) of a transfer, first inject to last accepted delivery;
* **segment** (``detail="segment"``) — one span per (receiver, segment),
  inject to acceptance, on the receiving host's track.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..sim.observer import FabricObserver
from ..sim.stats import _tier as link_tier
from .metrics import BYTES_BOUNDS, RATIO_BOUNDS, SECONDS_BOUNDS, MetricsRegistry
from .spans import Span, SpanTracer

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.network import HostNode, Network, Port, SwitchNode
    from ..sim.packet import Segment
    from ..sim.transfer import Transfer

#: Rate histogram bounds in Gb/s (DCQCN operating range on 100G links).
GBPS_BOUNDS = (1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 75.0, 90.0, 100.0)

DETAIL_LEVELS = ("transfer", "segment")


class FabricMetricsObserver(FabricObserver):
    """Publishes fabric lifecycle events into a registry and span tracer.

    Only the state needed for retroactive span construction is tracked
    live (first-inject times, per-layer activity windows, open PFC pauses);
    aggregate counters are folded in once at finalize from the counters the
    fabric already maintains, keeping the per-event work minimal.
    """

    def __init__(self, obs: "Observability", network: "Network") -> None:
        self.obs = obs
        self.network = network
        self.registry = obs.registry
        self.tracer = obs.tracer
        self.segment_detail = obs.detail == "segment"
        #: transfer name -> first on_inject time.
        self.first_inject: dict[str, float] = {}
        #: transfer name -> {route tree: layer index} (identity-keyed: trees
        #: define no __eq__; keying the object rather than id() keeps the
        #: mapping valid across replay-checkpoint pickling).
        self._layer_index: dict[str, dict] = {}
        #: (transfer name, layer) -> [first_s, last_s] activity window.
        self.layer_window: dict[tuple[str, int], list[float]] = {}
        #: (transfer name, seq) -> inject time (segment detail only).
        self._seg_start: dict[tuple[str, int], float] = {}
        #: finished segment spans: (tname, layer, seq, host, t0, t1).
        self.segment_records: list[tuple[str, int, int, str, float, float]] = []
        #: (switch name, ingress port src) -> pause start time.
        self._open_pauses: dict[tuple[str, str], float] = {}
        self._pause_seconds = 0.0
        self._copy_counts = dict.fromkeys(
            ("injected", "forked", "delivered", "accepted", "wasted", "lost"), 0
        )
        network.add_observer(self)

    # -- live event handling ---------------------------------------------------

    def _layer_of(self, transfer_name: str, route) -> int:
        layers = self._layer_index.setdefault(transfer_name, {})
        index = layers.get(route)
        if index is None:
            # Layers are numbered in first-use order, which matches the
            # plan's static-tree order for multi-tree PEEL transfers (the
            # first segment rides every tree) and appends re-peeled trees.
            index = layers[route] = len(layers)
        return index

    def _touch_layer(self, transfer_name: str, route, now: float) -> int:
        layer = self._layer_of(transfer_name, route)
        window = self.layer_window.get((transfer_name, layer))
        if window is None:
            self.layer_window[transfer_name, layer] = [now, now]
        else:
            window[1] = now
        return layer

    def on_inject(self, host: "HostNode", segment: "Segment") -> None:
        now = self.network.sim.now
        self._copy_counts["injected"] += 1
        name = segment.transfer.name
        self.first_inject.setdefault(name, now)
        self._touch_layer(name, segment.route, now)
        if self.segment_detail:
            self._seg_start.setdefault((name, segment.seq), now)

    def on_fork(self, switch: "SwitchNode", segment: "Segment") -> None:
        self._copy_counts["forked"] += 1

    def on_deliver(self, host: "HostNode", segment: "Segment") -> None:
        self._copy_counts["delivered"] += 1

    def on_accept(self, transfer: "Transfer", host: str, segment: "Segment") -> None:
        now = self.network.sim.now
        self._copy_counts["accepted"] += 1
        layer = self._touch_layer(transfer.name, segment.route, now)
        if self.segment_detail:
            start = self._seg_start.get((transfer.name, segment.seq), now)
            self.segment_records.append(
                (transfer.name, layer, segment.seq, host, start, now)
            )

    def on_wasted(self, switch: "SwitchNode", segment: "Segment") -> None:
        self._copy_counts["wasted"] += 1

    def on_lost(self, port: "Port", segment: "Segment") -> None:
        self._copy_counts["lost"] += 1

    def on_pfc_pause(self, switch: "SwitchNode", port: "Port") -> None:
        self._open_pauses[switch.name, port.src] = self.network.sim.now

    def on_pfc_resume(self, switch: "SwitchNode", port: "Port") -> None:
        started = self._open_pauses.pop((switch.name, port.src), None)
        if started is not None:
            self._pause_seconds += self.network.sim.now - started

    def on_link_down(self, u: str, v: str) -> None:
        self.registry.counter("fabric.link_down_events").inc()
        self.tracer.instant(f"link-down {u} -- {v}", self.network.sim.now, "fabric")

    def on_link_up(self, u: str, v: str) -> None:
        self.registry.counter("fabric.link_up_events").inc()
        self.tracer.instant(f"link-up {u} -- {v}", self.network.sim.now, "fabric")

    def on_reroute(self, transfer: "Transfer", num_trees: int) -> None:
        self.registry.counter("fabric.reroutes").inc()
        self.tracer.instant(
            f"reroute {transfer.name} ({num_trees} trees)",
            self.network.sim.now,
            "fabric",
        )

    def on_failover(self, transfer: "Transfer", link: tuple[str, str]) -> None:
        self.registry.counter("failover.local_recoveries").inc()
        self.tracer.instant(
            f"failover {transfer.name} around {link[0]} -- {link[1]}",
            self.network.sim.now,
            "fabric",
        )

    # -- finalize --------------------------------------------------------------

    def close_pauses(self, now: float) -> None:
        for key in sorted(self._open_pauses):
            self._pause_seconds += now - self._open_pauses.pop(key)

    def fold_counters(self) -> None:
        """End-of-run aggregates from fabric- and port-level counters."""
        registry = self.registry
        network = self.network
        for kind in sorted(self._copy_counts):
            registry.counter(f"fabric.copies.{kind}").inc(self._copy_counts[kind])
        registry.counter("fabric.pfc.pause_events").inc(network.pfc_pause_events)
        registry.counter("fabric.pfc.pause_seconds").inc(self._pause_seconds)
        registry.counter("fabric.wasted_bytes").inc(network.wasted_bytes)
        registry.counter("fabric.lost_segments").inc(network.lost_segments)
        registry.counter("fabric.failure_drops").inc(network.failure_drops)
        elapsed = network.sim.now
        total_bytes = 0
        total_marks = 0
        for key in sorted(network.ports):
            port = network.ports[key]
            total_bytes += port.bytes_sent
            total_marks += port.ecn_marks
            if not port.bytes_sent and not port.peak_queue_bytes:
                continue
            tier = link_tier(port.src, port.dst)
            if elapsed > 0:
                registry.histogram(
                    f"link.utilization.{tier}", RATIO_BOUNDS
                ).observe(port.bytes_sent * 8 / (port.capacity_bps * elapsed))
            registry.histogram("link.peak_queue_bytes", BYTES_BOUNDS).observe(
                port.peak_queue_bytes
            )
        registry.counter("fabric.bytes_sent").inc(total_bytes)
        registry.counter("fabric.ecn_marks").inc(total_marks)
        reactions = sum(t.dcqcn.reactions for t in network.transfers)
        notifications = sum(t.dcqcn.notifications for t in network.transfers)
        retransmissions = sum(t.retransmissions for t in network.transfers)
        registry.counter("dcqcn.rate_updates").inc(reactions)
        registry.counter("dcqcn.notifications").inc(notifications)
        registry.counter("fabric.retransmissions").inc(retransmissions)


class PeriodicSampler:
    """Samples time-varying fabric state on a fixed simulated-time cadence.

    The tick reschedules itself only while *other* live events remain, so
    an attached sampler never keeps the event loop alive on its own and
    ``env.run()`` still terminates.  Each tick records queue-depth and
    DCQCN-rate samples into the registry, emits Chrome counter events, and
    invokes any caller-registered hooks (the serving runtime adds one for
    queue length, TCAM occupancy and cache hit rate).
    """

    def __init__(self, obs: "Observability", network: "Network") -> None:
        self.obs = obs
        self.network = network
        self.interval_s = obs.sample_interval_s
        self.ticks = 0
        self._started = False

    def start(self) -> None:
        if not self._started:
            self._started = True
            self.network.sim.post(self.interval_s, self._tick)

    def _tick(self) -> None:
        sim = self.network.sim
        self.ticks += 1
        self.sample(sim.now)
        # Our own entry already fired, so pending counts everyone else.
        if sim.pending > 0:
            sim.post(self.interval_s, self._tick)
        else:
            self._started = False

    def sample(self, now: float) -> None:
        registry = self.obs.registry
        tracer = self.obs.tracer
        network = self.network
        queued_total = 0
        queue_hist = registry.histogram("sample.queue_bytes", BYTES_BOUNDS)
        for key in sorted(network.ports):
            depth = network.ports[key].queue_bytes
            if depth:
                queued_total += depth
                queue_hist.observe(depth)
        registry.gauge("sample.queued_bytes.peak", "max").set(queued_total)
        tracer.sample("queued_bytes", now, queued_total)
        rate_hist = registry.histogram("dcqcn.rate_gbps", GBPS_BOUNDS)
        slowest = None
        for transfer in network.transfers:
            if not transfer.complete:
                rate = transfer.dcqcn.current_rate_bps / 1e9
                rate_hist.observe(rate)
                slowest = rate if slowest is None else min(slowest, rate)
        if slowest is not None:
            tracer.sample("dcqcn_min_rate_gbps", now, slowest)
        for hook in self.obs.sample_hooks:
            hook(now)


class Observability:
    """Metrics + tracing for one simulation run (see module docstring).

    Usage::

        obs = Observability(sample_interval_s=100e-6)
        env = CollectiveEnv(topo, cfg)
        obs.attach(env.network)
        handle = scheme.launch(env, group, msg, 0.0)
        obs.track_collective(handle)
        env.run()
        obs.finalize()
        obs.save_trace("run.trace.json")     # open in chrome://tracing
        obs.save_metrics("run.metrics.json")

    Experiment entry points (:func:`repro.api.run` via
    ``ScenarioSpec(obs=...)``, :class:`repro.serve.ServeRuntime`, the
    ``repro obs`` CLI) accept an ``obs=`` argument and do all of the above.
    """

    def __init__(
        self,
        sample_interval_s: float = 100e-6,
        detail: str = "transfer",
        registry: MetricsRegistry | None = None,
        tracer: SpanTracer | None = None,
    ) -> None:
        if sample_interval_s <= 0:
            raise ValueError("sample_interval_s must be positive")
        if detail not in DETAIL_LEVELS:
            raise ValueError(f"detail must be one of {DETAIL_LEVELS}, got {detail!r}")
        self.sample_interval_s = sample_interval_s
        self.detail = detail
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else SpanTracer()
        self.sample_hooks: list = []
        self.network: "Network | None" = None
        self.observer: FabricMetricsObserver | None = None
        self.sampler: PeriodicSampler | None = None
        self._handles: list = []
        self._labels: list[str] = []
        self._finalized = False

    # -- wiring ----------------------------------------------------------------

    def attach(self, network: "Network") -> "Observability":
        """Register on a network's observer layer and start sampling."""
        if self.network is not None:
            raise RuntimeError("Observability is already attached")
        self.network = network
        self.observer = FabricMetricsObserver(self, network)
        self.sampler = PeriodicSampler(self, network)
        self.sampler.start()
        return self

    def track_collective(self, handle, label: str | None = None) -> None:
        """Record a collective handle so finalize() emits its span."""
        self._handles.append(handle)
        self._labels.append(label or f"{handle.scheme_name}-{len(self._handles)}")

    def add_sample_hook(self, hook) -> None:
        """``hook(now_s)`` runs on every sampler tick (serve snapshots)."""
        self.sample_hooks.append(hook)

    def observe_plan_cache(self, cache) -> None:
        """Fold a :class:`~repro.serve.cache.PlanCache`'s counters in."""
        if cache is None:
            return
        self.registry.counter("plan_cache.hits").inc(cache.hits)
        self.registry.counter("plan_cache.misses").inc(cache.misses)
        self.registry.counter("plan_cache.invalidations").inc(cache.invalidations)
        # Scheme-agnostic alias covering both fault-driven (epoch bump) and
        # membership-driven (invalidate_hosts) invalidation events.
        self.registry.counter("cache.invalidations").inc(cache.invalidations)
        lookups = cache.hits + cache.misses
        if lookups:
            self.registry.gauge("plan_cache.hit_rate", "max").set(
                cache.hits / lookups
            )

    # -- finalize --------------------------------------------------------------

    def finalize(self) -> "Observability":
        """Fold end-of-run state into the registry and emit the span tree.

        Idempotent; exports call it automatically.  Incomplete collectives
        and transfers (a run stopped early) get spans closed at the current
        simulated time and a ``*.incomplete`` counter.
        """
        if self._finalized:
            return self
        if self.network is None:
            raise RuntimeError("Observability was never attached to a network")
        self._finalized = True
        observer = self.observer
        now = self.network.sim.now
        observer.close_pauses(now)
        observer.fold_counters()

        cct_hist = self.registry.histogram("collective.cct_s", SECONDS_BOUNDS)
        collective_spans: dict[int, Span] = {}
        for handle, label in zip(self._handles, self._labels):
            if handle.complete:
                end = handle.arrival_s + handle.cct_s
            else:
                end = max(now, handle.arrival_s)
                self.registry.counter("collective.incomplete").inc()
            span = self.tracer.add(
                label,
                handle.arrival_s,
                end,
                track="collectives",
                cat="collective",
                receivers=len(handle.group.receiver_hosts),
                message_bytes=handle.message_bytes,
            )
            collective_spans[id(handle)] = span
            if handle.complete:
                cct_hist.observe(handle.cct_s)

        duration_hist = self.registry.histogram("transfer.duration_s", SECONDS_BOUNDS)
        transfer_spans: dict[str, Span] = {}
        for transfer in self.network.transfers:
            start = observer.first_inject.get(transfer.name, transfer.start_at)
            if transfer.complete:
                end = transfer.complete_at
            else:
                end = max(now, start)
                self.registry.counter("transfer.incomplete").inc()
            parent = collective_spans.get(id(getattr(transfer.on_host_done, "__self__", None)))
            if parent is not None:
                start = max(start, parent.start_s)
            span = self.tracer.add(
                transfer.name,
                start,
                max(end, start),
                track="transfers",
                cat="transfer",
                parent=parent,
                segments=transfer.num_segments,
                retransmissions=transfer.retransmissions,
            )
            transfer_spans[transfer.name] = span
            duration_hist.observe(span.duration_s)

        layer_spans: dict[tuple[str, int], Span] = {}
        for (tname, layer), (first, last) in sorted(observer.layer_window.items()):
            parent = transfer_spans.get(tname)
            if parent is not None:
                first = max(first, parent.start_s)
                last = min(max(last, first), parent.end_s)
            layer_spans[tname, layer] = self.tracer.add(
                f"{tname}/L{layer}",
                first,
                last,
                track="transfers",
                cat="layer",
                parent=parent,
            )
        for tname, layer, seq, host, t0, t1 in observer.segment_records:
            parent = layer_spans.get((tname, layer))
            if parent is not None:
                t0 = max(t0, parent.start_s)
                t1 = min(max(t1, t0), parent.end_s)
            self.tracer.add(
                f"{tname}#s{seq}",
                t0,
                t1,
                track=host,
                cat="segment",
                parent=parent,
            )
        self.tracer.close_all(now)
        return self

    # -- export ----------------------------------------------------------------

    def metrics_json(self) -> str:
        self.finalize()
        return self.registry.to_json()

    def trace_json(self) -> str:
        self.finalize()
        return self.tracer.to_json()

    def save_metrics(self, path) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.metrics_json())

    def save_trace(self, path) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.trace_json())

    def summary(self) -> str:
        """A few headline numbers for CLI output."""
        self.finalize()
        reg = self.registry
        spans = len(self.tracer.spans)
        ticks = self.sampler.ticks if self.sampler is not None else 0
        parts = [
            f"{spans} spans",
            f"{ticks} sampler ticks",
            f"{len(reg)} metrics",
        ]
        if "fabric.bytes_sent" in reg:
            parts.append(f"{reg['fabric.bytes_sent'].value / 2**20:.1f} MiB sent")
        if "fabric.ecn_marks" in reg:
            parts.append(f"{int(reg['fabric.ecn_marks'].value)} ECN marks")
        if "dcqcn.rate_updates" in reg:
            parts.append(f"{int(reg['dcqcn.rate_updates'].value)} rate updates")
        return " | ".join(parts)
