"""Span tracing: nested timed intervals exported as a Chrome trace.

A :class:`SpanTracer` records *spans* — named intervals of simulated time,
organized in a parent/child tree (collective → layer-peel round → segment
transfer) — plus counter samples and instant markers.  Everything exports
to the Chrome-trace / Perfetto JSON event format, so any run can be opened
in ``chrome://tracing`` or https://ui.perfetto.dev.

Spans can be opened and closed live (:meth:`SpanTracer.begin` /
:meth:`SpanTracer.end`) or recorded retroactively with
:meth:`SpanTracer.add` once both endpoints are known — the export is
identical, since Chrome "complete" (``ph: "X"``) events carry their own
``ts`` and ``dur``.  Export ordering is deterministic: events sort by
timestamp with recording order as the tie-break, never by dict or id()
order, so two identical runs serialize byte-identically.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

#: Simulated seconds -> Chrome trace microseconds.
_US = 1e6


@dataclass
class Span:
    """One named interval on a track; ``end_s`` is None while still open."""

    span_id: int
    name: str
    track: str
    cat: str
    start_s: float
    end_s: float | None = None
    parent_id: int | None = None
    args: dict = field(default_factory=dict)

    @property
    def duration_s(self) -> float:
        if self.end_s is None:
            raise RuntimeError(f"span {self.name!r} is still open")
        return self.end_s - self.start_s


class SpanTracer:
    """Collects spans, counter samples and instants for one run."""

    def __init__(self, process_name: str = "repro") -> None:
        self.process_name = process_name
        self.spans: list[Span] = []
        self._open: dict[int, Span] = {}
        #: (time_s, track, series_name, value) counter samples.
        self._counters: list[tuple[float, str, str, float]] = []
        #: (time_s, track, name) instant markers.
        self._instants: list[tuple[float, str, str]] = []

    # -- recording -------------------------------------------------------------

    def begin(
        self,
        name: str,
        t: float,
        track: str = "main",
        cat: str = "",
        parent: Span | int | None = None,
        **args,
    ) -> Span:
        """Open a span at simulated time ``t``; close it with :meth:`end`."""
        span = self._new_span(name, t, track, cat, parent, args)
        self._open[span.span_id] = span
        return span

    def end(self, span: Span | int, t: float) -> Span:
        span_id = span.span_id if isinstance(span, Span) else span
        opened = self._open.pop(span_id, None)
        if opened is None:
            raise KeyError(f"span {span_id} is not open")
        if t < opened.start_s:
            raise ValueError(
                f"span {opened.name!r} cannot end at {t} before start "
                f"{opened.start_s}"
            )
        opened.end_s = t
        return opened

    def add(
        self,
        name: str,
        start_s: float,
        end_s: float,
        track: str = "main",
        cat: str = "",
        parent: Span | int | None = None,
        **args,
    ) -> Span:
        """Record a finished span retroactively (both endpoints known)."""
        if end_s < start_s:
            raise ValueError(f"span {name!r}: end {end_s} before start {start_s}")
        span = self._new_span(name, start_s, track, cat, parent, args)
        span.end_s = end_s
        return span

    def _new_span(self, name, t, track, cat, parent, args) -> Span:
        parent_id = parent.span_id if isinstance(parent, Span) else parent
        span = Span(
            span_id=len(self.spans),
            name=name,
            track=track,
            cat=cat,
            start_s=t,
            parent_id=parent_id,
            args=dict(args),
        )
        self.spans.append(span)
        return span

    def sample(self, series: str, t: float, value: float, track: str = "counters") -> None:
        """One point of a counter time-series (queue depth, rate, ...)."""
        self._counters.append((t, track, series, value))

    def instant(self, name: str, t: float, track: str = "main") -> None:
        """A zero-duration marker (link down/up, reroute, ...)."""
        self._instants.append((t, track, name))

    @property
    def open_spans(self) -> list[Span]:
        return sorted(self._open.values(), key=lambda s: s.span_id)

    def close_all(self, t: float) -> int:
        """Close every still-open span at ``t`` (end-of-run cleanup)."""
        open_ids = sorted(self._open)
        for span_id in open_ids:
            self.end(span_id, t)
        return len(open_ids)

    # -- export ----------------------------------------------------------------

    def to_chrome_trace(self) -> dict:
        """The run as a Chrome-trace JSON object (``traceEvents`` format).

        Spans become ``ph: "X"`` complete events, counter samples ``ph: "C"``
        counter events, instants ``ph: "i"``.  Tracks map to thread ids in
        first-use order, with thread-name metadata so the viewer shows the
        track names instead of bare tids.
        """
        if self._open:
            names = ", ".join(repr(s.name) for s in self.open_spans[:5])
            raise RuntimeError(
                f"{len(self._open)} span(s) still open ({names}); "
                "call close_all() before exporting"
            )
        tids: dict[str, int] = {}
        events: list[dict] = []

        def tid(track: str) -> int:
            got = tids.get(track)
            if got is None:
                got = tids[track] = len(tids)
            return got

        for span in self.spans:
            event = {
                "name": span.name,
                "cat": span.cat or "span",
                "ph": "X",
                "ts": span.start_s * _US,
                "dur": span.duration_s * _US,
                "pid": 0,
                "tid": tid(span.track),
            }
            args = dict(span.args)
            if span.parent_id is not None:
                args["parent"] = self.spans[span.parent_id].name
            if args:
                event["args"] = args
            events.append(event)
        for t, track, series, value in self._counters:
            events.append(
                {
                    "name": series,
                    "cat": "counter",
                    "ph": "C",
                    "ts": t * _US,
                    "pid": 0,
                    "tid": tid(track),
                    "args": {"value": value},
                }
            )
        for t, track, name in self._instants:
            events.append(
                {
                    "name": name,
                    "cat": "instant",
                    "ph": "i",
                    "s": "p",
                    "ts": t * _US,
                    "pid": 0,
                    "tid": tid(track),
                }
            )
        # Stable order: timestamp first, recording order as tie-break.
        events = [
            e for _, e in sorted(enumerate(events), key=lambda p: (p[1]["ts"], p[0]))
        ]
        meta: list[dict] = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": 0,
                "args": {"name": self.process_name},
            }
        ]
        for track, track_tid in tids.items():
            meta.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": 0,
                    "tid": track_tid,
                    "args": {"name": track},
                }
            )
        return {"traceEvents": meta + events, "displayTimeUnit": "ms"}

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_chrome_trace(), indent=indent, sort_keys=True) + "\n"

    def save(self, path) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json())


def nesting_violations(tracer: SpanTracer) -> list[str]:
    """Check the span tree is well-nested; returns human-readable problems.

    Two rules: a child span's interval must lie within its parent's, and a
    span's parent must exist and be recorded before it (no forward edges).
    Used by the hypothesis property suite and the golden tests.
    """
    problems: list[str] = []
    for span in tracer.spans:
        if span.end_s is None:
            problems.append(f"{span.name!r} never closed")
            continue
        if span.parent_id is None:
            continue
        if not 0 <= span.parent_id < span.span_id:
            problems.append(f"{span.name!r} has forward/dangling parent")
            continue
        parent = tracer.spans[span.parent_id]
        if parent.end_s is None:
            problems.append(f"{span.name!r}: parent {parent.name!r} never closed")
        elif span.start_s < parent.start_s or span.end_s > parent.end_s:
            problems.append(
                f"{span.name!r} [{span.start_s}, {span.end_s}] escapes parent "
                f"{parent.name!r} [{parent.start_s}, {parent.end_s}]"
            )
    return problems
