"""Unicast Binary-Tree broadcast (NCCL-style, pipelined).

Hosts are arranged in a heap-ordered binary tree rooted at the source (in
locality order, so subtrees stay rack-local).  Interior hosts forward each
received segment to both children; the two unicasts share the host's single
NIC, which is the serialization penalty Figure 1b illustrates (some links
carry the message three times).
"""

from __future__ import annotations

from ..sim import Transfer
from .base import BroadcastScheme, CollectiveHandle, Group, nccl_chunk_bytes
from .env import CollectiveEnv
from .registry import register_scheme


@register_scheme("tree", description="NCCL-style pipelined binary tree")
class BinaryTreeBroadcast(BroadcastScheme):
    """NCCL-style pipelined binary tree (see module docstring)."""
    name = "tree"
    shardable = True  # ECMP draws come from the per-job stream

    def launch(
        self,
        env: CollectiveEnv,
        group: Group,
        message_bytes: int,
        arrival_s: float,
    ) -> CollectiveHandle:
        handle = self._handle(env, group, message_bytes, arrival_s)
        order = [group.source.host] + group.receiver_hosts
        if len(order) == 1:
            return handle

        chunk = nccl_chunk_bytes(message_bytes, env.config.mtu_bytes)
        ecmp = env.ecmp_rng()
        inbound: dict[int, Transfer] = {}
        for parent in range(len(order)):
            for child in (2 * parent + 1, 2 * parent + 2):
                if child >= len(order):
                    continue
                src, dst = order[parent], order[child]
                transfer = Transfer(
                    env.network,
                    env.next_transfer_name(f"tree-{src}"),
                    src,
                    message_bytes,
                    [env.router.path_tree(src, dst, ecmp)],
                    start_at=arrival_s,
                    is_relay=parent != 0,
                    on_host_done=handle.host_done,
                    relay_chunk_bytes=chunk,
                )
                if parent != 0:
                    inbound[parent].add_relay_child(src, transfer)
                transfer.start()
                inbound[child] = transfer
        return handle
