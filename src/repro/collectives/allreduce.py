"""AllReduce: reduce-scatter followed by allgather.

The dominant data-parallel collective.  The reduce-scatter half is a
gather — each rank ends up owning the reduced version of one shard — and
multicast cannot accelerate it (aggregation needs either host relaying or
in-network compute, which the paper scopes out).  The allgather half *is*
a broadcast per shard, so PEEL applies there:

* :class:`RingAllReduce` — ring reduce-scatter + ring allgather (NCCL's
  classic 2(N-1)/N-bytes-per-NIC algorithm);
* :class:`PeelAllReduce` — ring reduce-scatter + per-owner PEEL multicast
  for the allgather half, cutting the fabric bytes of the second phase.

Reduction compute is modelled as free (the network is the bottleneck under
study); correctness of the data flow — every shard visits every rank — is
what the structure enforces.
"""

from __future__ import annotations

from ..sim import Transfer
from .allgather import PeelAllgather, RingAllgather, shard_bytes
from .base import BroadcastScheme, CollectiveHandle, Group, nccl_chunk_bytes
from .env import CollectiveEnv
from .registry import register_scheme


class _AllReduceScheme(BroadcastScheme):
    """Ring reduce-scatter stage shared by both variants.

    In ring reduce-scatter, shard ``j`` travels ``N-1`` hops around the
    ring, accumulating partial sums, and finishes at its owner rank
    ``(j + N - 1) mod N``.  On the wire this is exactly a relay chain of
    shard-sized transfers per shard — same bytes and timing as the
    allgather ring, different ownership bookkeeping.
    """

    allgather_cls: type[BroadcastScheme]

    def launch(
        self,
        env: CollectiveEnv,
        group: Group,
        message_bytes: int,
        arrival_s: float,
    ) -> CollectiveHandle:
        hosts = group.hosts
        n = len(hosts)
        if n <= 1:
            handle = self._handle(env, group, message_bytes, arrival_s)
            return handle

        shard = shard_bytes(message_bytes, n)
        chunk = nccl_chunk_bytes(shard, env.config.mtu_bytes)

        # Phase 2 (allgather) starts per-owner, as soon as that owner's
        # reduced shard is complete; completion tracking lives there.
        allgather = self.allgather_cls()
        handle, counters, needed = allgather._allgather_handle(
            env, group, message_bytes, arrival_s
        )
        sink = allgather._shard_sink(handle, counters, needed)
        # One ECMP stream per job, shared by both phases: phase-2 draws
        # happen at completion events, but only this job's, in an order
        # fixed by the deterministic simulation.
        ecmp = env.ecmp_rng()
        phase2_starter = self._phase2_starter(env, group, shard, sink, ecmp)

        # Phase 1: ring reduce-scatter, one relay chain per shard.
        for owner in range(n):
            previous: Transfer | None = None
            final_host = hosts[(owner + n - 1) % n]
            for step in range(n - 1):
                src = hosts[(owner + step) % n]
                dst = hosts[(owner + step + 1) % n]
                is_last = step == n - 2

                def on_done(host, now, owner=owner, final=final_host, last=is_last):
                    if last and host == final:
                        phase2_starter(owner, final, now)

                transfer = Transfer(
                    env.network,
                    env.next_transfer_name(f"ar-rs-{owner}"),
                    src,
                    shard,
                    [env.router.path_tree(src, dst, ecmp)],
                    start_at=arrival_s,
                    is_relay=previous is not None,
                    on_host_done=on_done,
                    relay_chunk_bytes=chunk,
                )
                if previous is not None:
                    previous.add_relay_child(src, transfer)
                transfer.start()
                previous = transfer
        return handle

    def _phase2_starter(self, env, group, shard, sink, ecmp):
        raise NotImplementedError


@register_scheme("allreduce-ring", description="ring reduce-scatter + ring allgather")
class RingAllReduce(_AllReduceScheme):
    """Classic ring allreduce: both phases are rings."""

    name = "allreduce-ring"
    allgather_cls = RingAllgather
    shardable = True  # ECMP draws come from the per-job stream

    def _phase2_starter(self, env: CollectiveEnv, group: Group, shard: int, sink, ecmp):
        hosts = group.hosts
        n = len(hosts)
        chunk = nccl_chunk_bytes(shard, env.config.mtu_bytes)

        def start(owner: int, owner_host: str, now: float) -> None:
            sink(owner_host, now)  # the owner already holds its shard
            previous: Transfer | None = None
            start_idx = hosts.index(owner_host)
            for step in range(n - 1):
                src = hosts[(start_idx + step) % n]
                dst = hosts[(start_idx + step + 1) % n]
                transfer = Transfer(
                    env.network,
                    env.next_transfer_name(f"ar-ag-{owner}"),
                    src,
                    shard,
                    [env.router.path_tree(src, dst, ecmp)],
                    start_at=now,
                    is_relay=previous is not None,
                    on_host_done=sink,
                    relay_chunk_bytes=chunk,
                )
                if previous is not None:
                    previous.add_relay_child(src, transfer)
                transfer.start()
                previous = transfer

        return start


@register_scheme(
    "allreduce-peel",
    description="ring reduce-scatter + PEEL multicast allgather",
)
class PeelAllReduce(_AllReduceScheme):
    """Ring reduce-scatter + PEEL multicast allgather (§3 applied to the
    broadcast half of allreduce)."""

    name = "allreduce-peel"
    allgather_cls = PeelAllgather
    shardable = True  # ring phase uses the per-job stream; PEEL is RNG-free

    def _phase2_starter(self, env: CollectiveEnv, group: Group, shard: int, sink, ecmp):
        hosts = group.hosts
        peel = env.peel()

        def start(owner: int, owner_host: str, now: float) -> None:
            sink(owner_host, now)
            others = [h for h in hosts if h != owner_host]
            plan = peel.plan(owner_host, others)
            transfer = Transfer(
                env.network,
                env.next_transfer_name(f"ar-agp-{owner}"),
                owner_host,
                shard,
                plan.static_trees,
                receivers=set(others),
                start_at=now,
                on_host_done=sink,
            )
            transfer.start()

        return start
