"""Striped multicast: the §2.3 "multicast vs multipath" reconciliation.

Builds several diverse near-optimal trees and stripes message segments
round-robin across them, so one collective's bytes spread over many core
links instead of funnelling onto a single tree — at the price of every tree
needing every receiver (no bandwidth saving, but better load spreading).
"""

from __future__ import annotations

from ..core.multipath import diverse_trees
from ..sim import Transfer
from .base import BroadcastScheme, CollectiveHandle, Group
from .env import CollectiveEnv
from .registry import register_scheme


@register_scheme(
    "striped",
    params=("num_trees",),
    description="segment striping over diverse multicast trees",
)
class StripedMulticastBroadcast(BroadcastScheme):
    """Multicast over ``num_trees`` diverse trees with segment striping."""

    def __init__(self, num_trees: int = 4) -> None:
        if num_trees < 1:
            raise ValueError("num_trees must be >= 1")
        self.num_trees = num_trees
        self.name = f"striped-{num_trees}"

    def launch(
        self,
        env: CollectiveEnv,
        group: Group,
        message_bytes: int,
        arrival_s: float,
    ) -> CollectiveHandle:
        handle = self._handle(env, group, message_bytes, arrival_s)
        receivers = group.receiver_hosts
        if not receivers:
            return handle
        source = group.source.host
        trees = diverse_trees(env.topo, source, receivers, self.num_trees)
        transfer = Transfer(
            env.network,
            env.next_transfer_name(self.name),
            source,
            message_bytes,
            trees,
            receivers=set(receivers),
            start_at=arrival_s,
            on_host_done=handle.host_done,
            stripe=True,
        )
        transfer.start()
        return handle
