"""Allgather collectives: every rank's shard reaches every other rank.

The paper's motivation ("AI training floods fabrics with thousands of
simultaneous collectives") extends beyond Broadcast; Allgather is the
bandwidth-heavy phase of sharded training (ref [23] targets it directly).
Two realizations on the same group:

* :class:`RingAllgather` — the deployed unicast baseline: each shard walks
  the ring, N-1 forwarding steps, every host NIC both sends and receives
  the full (N-1)/N of the message.
* :class:`PeelAllgather` — each rank multicasts its shard through PEEL's
  static prefix packets: N concurrent multicast groups and still *zero*
  per-group switch state (the point of §3).

Completion: a host finishes when it holds all N shards (its own plus N-1
received); the collective finishes when every member host does.
"""

from __future__ import annotations

from ..sim import Transfer
from .base import BroadcastScheme, CollectiveHandle, Group, nccl_chunk_bytes
from .env import CollectiveEnv
from .registry import register_scheme


def shard_bytes(message_bytes: int, num_ranks: int) -> int:
    """Per-rank shard size (the message is the *result* size)."""
    if num_ranks < 1:
        raise ValueError("num_ranks must be >= 1")
    return max(1, -(-message_bytes // num_ranks))


class _AllgatherScheme(BroadcastScheme):
    """Shared completion bookkeeping for allgather variants."""

    def _allgather_handle(
        self, env: CollectiveEnv, group: Group, message_bytes: int, arrival_s: float
    ) -> tuple[CollectiveHandle, dict[str, int], int]:
        hosts = group.hosts
        if len(group.members) > len(hosts):
            nvlink_s = message_bytes / env.config.nvlink_bytes_per_s
        else:
            nvlink_s = 0.0
        pending = set(hosts) if len(hosts) > 1 else set()
        handle = CollectiveHandle(
            self.name, group, message_bytes, arrival_s, nvlink_s,
            pending_hosts=pending,
        )
        return handle, {h: 0 for h in hosts}, len(hosts) - 1

    @staticmethod
    def _shard_sink(handle, counters, needed):
        def on_shard_done(host: str, now: float) -> None:
            counters[host] += 1
            if counters[host] == needed:
                handle.host_done(host, now)

        return on_shard_done


@register_scheme("allgather-ring", description="unicast ring allgather")
class RingAllgather(_AllgatherScheme):
    """Unicast ring allgather (the deployed baseline)."""
    name = "allgather-ring"
    shardable = True  # ECMP draws come from the per-job stream

    def launch(
        self,
        env: CollectiveEnv,
        group: Group,
        message_bytes: int,
        arrival_s: float,
    ) -> CollectiveHandle:
        handle, counters, needed = self._allgather_handle(
            env, group, message_bytes, arrival_s
        )
        hosts = group.hosts
        n = len(hosts)
        if n <= 1:
            return handle
        shard = shard_bytes(message_bytes, n)
        chunk = nccl_chunk_bytes(shard, env.config.mtu_bytes)
        sink = self._shard_sink(handle, counters, needed)
        ecmp = env.ecmp_rng()

        for owner in range(n):
            previous: Transfer | None = None
            for step in range(n - 1):
                src = hosts[(owner + step) % n]
                dst = hosts[(owner + step + 1) % n]
                transfer = Transfer(
                    env.network,
                    env.next_transfer_name(f"ag-ring-{owner}"),
                    src,
                    shard,
                    [env.router.path_tree(src, dst, ecmp)],
                    start_at=arrival_s,
                    is_relay=previous is not None,
                    on_host_done=sink,
                    relay_chunk_bytes=chunk,
                )
                if previous is not None:
                    previous.add_relay_child(src, transfer)
                transfer.start()
                previous = transfer
        return handle


@register_scheme("allgather-peel", description="per-rank PEEL multicast allgather")
class PeelAllgather(_AllgatherScheme):
    """Per-rank PEEL multicast allgather: N groups, zero group state."""
    name = "allgather-peel"
    shardable = True  # PEEL planning is RNG-free

    def launch(
        self,
        env: CollectiveEnv,
        group: Group,
        message_bytes: int,
        arrival_s: float,
    ) -> CollectiveHandle:
        handle, counters, needed = self._allgather_handle(
            env, group, message_bytes, arrival_s
        )
        hosts = group.hosts
        n = len(hosts)
        if n <= 1:
            return handle
        shard = shard_bytes(message_bytes, n)
        sink = self._shard_sink(handle, counters, needed)
        peel = env.peel()

        for owner in hosts:
            others = [h for h in hosts if h != owner]
            plan = peel.plan(owner, others)
            transfer = Transfer(
                env.network,
                env.next_transfer_name(f"ag-peel-{owner}"),
                owner,
                shard,
                plan.static_trees,
                receivers=set(others),
                start_at=arrival_s,
                on_host_done=sink,
            )
            transfer.start()
        return handle
