"""Unicast Ring broadcast (NCCL-style, pipelined).

Hosts form a chain in locality order starting at the source; each host
forwards segments it has fully received while still receiving the rest
(the paper's chunked pipelining — our store-and-forward segments give the
same effect at finer grain).  The ring schedules unicasts; it does not
reduce total bytes: every hop carries the full message, which is exactly
the §1 bandwidth overshoot PEEL attacks.
"""

from __future__ import annotations

from ..sim import Transfer
from .base import BroadcastScheme, CollectiveHandle, Group, nccl_chunk_bytes
from .env import CollectiveEnv
from .registry import register_scheme


@register_scheme("ring", description="NCCL-style pipelined unicast ring")
class RingBroadcast(BroadcastScheme):
    """NCCL-style pipelined unicast ring (see module docstring)."""
    name = "ring"
    shardable = True  # ECMP draws come from the per-job stream

    def launch(
        self,
        env: CollectiveEnv,
        group: Group,
        message_bytes: int,
        arrival_s: float,
    ) -> CollectiveHandle:
        handle = self._handle(env, group, message_bytes, arrival_s)
        chain = [group.source.host] + group.receiver_hosts
        if len(chain) == 1:
            return handle

        chunk = nccl_chunk_bytes(message_bytes, env.config.mtu_bytes)
        ecmp = env.ecmp_rng()
        previous: Transfer | None = None
        for src, dst in zip(chain, chain[1:]):
            transfer = Transfer(
                env.network,
                env.next_transfer_name(f"ring-{src}"),
                src,
                message_bytes,
                [env.router.path_tree(src, dst, ecmp)],
                start_at=arrival_s,
                is_relay=previous is not None,
                on_host_done=handle.host_done,
                relay_chunk_bytes=chunk,
            )
            if previous is not None:
                previous.add_relay_child(src, transfer)
            transfer.start()
            previous = transfer
        return handle
