"""Shared runtime for collectives: the simulated fabric plus planners."""

from __future__ import annotations

import random
from typing import TYPE_CHECKING

from ..core import ControllerModel, Peel
from ..sim import InvariantChecker, Network, SimConfig, Simulator, TraceRecorder, UnicastRouter
from ..topology import Topology

if TYPE_CHECKING:  # pragma: no cover
    from ..core.peel import PeelPlan
    from ..faults import FaultInjector, FaultSchedule
    from ..serve.cache import PlanCache


class CollectiveEnv:
    """One simulation environment: network, router, PEEL planner, controller.

    All schemes launched into the same env share the fabric (and therefore
    contend for it), which is how the Poisson-arrival experiments create
    background load.

    Correctness tooling (all optional, see DESIGN.md "Correctness tooling"):

    * ``fault_schedule`` — a :class:`repro.faults.FaultSchedule` of dynamic
      link/switch faults, installed as :attr:`fault_injector` before any
      transfer exists (multicast schemes then self-register for re-peeling);
    * ``check_invariants`` — attach an
      :class:`~repro.sim.invariants.InvariantChecker` (:attr:`invariants`);
    * ``record_trace`` — attach a
      :class:`~repro.sim.trace.TraceRecorder` (:attr:`trace`) producing a
      deterministic golden-trace digest; ``keep_trace_events`` implies it
      and additionally retains the readable event log (what
      :func:`repro.replay.verify_scenario_replay` diffs to localize a
      divergence).

    ``plan_cache`` attaches a :class:`repro.serve.PlanCache`:
    :meth:`plan_broadcast` then reuses plans across repeated group shapes,
    and dynamic faults invalidate the cache through the observer layer.
    """

    def __init__(
        self,
        topo: Topology,
        config: SimConfig | None = None,
        controller: ControllerModel | None = None,
        fault_schedule: "FaultSchedule | None" = None,
        check_invariants: bool = False,
        record_trace: bool = False,
        keep_trace_events: bool = False,
        raise_on_violation: bool = True,
        plan_cache: "PlanCache | None" = None,
        protection: int = 0,
        sim: Simulator | None = None,
        invariant_watchdog: bool = True,
    ) -> None:
        if protection < 0:
            raise ValueError(f"protection must be >= 0, got {protection}")
        self.topo = topo
        #: Resilience level F: PEEL plans carry F edge-disjoint backup
        #: subtrees per protected link (0 = reactive recovery only).
        self.protection = protection
        #: Lazily-created :class:`repro.serve.state.FabricState` holding the
        #: fast-failover entries of every protected group (TCAM accounting).
        self.protection_state = None
        #: Lazily-created :class:`repro.serve.state.FabricState` holding
        #: *per-group* forwarding entries schemes install (ip-multicast
        #: subsets, Elmo's s-rule fallback).  Stays ``None`` for schemes
        #: that keep the fabric stateless — the Fig 3 axis.
        self.group_state = None
        self.config = config or SimConfig()
        self.network = Network(topo, self.config, sim)
        self.sim: Simulator = self.network.sim
        self.rng = random.Random(self.config.seed + 0x5EED)
        self.router = UnicastRouter(topo, random.Random(self.config.seed + 1))
        self.controller = controller or ControllerModel(
            rng=random.Random(self.config.seed + 2)
        )
        self._peel_planners: dict[int | None, Peel] = {}
        self._transfer_counter = 0
        #: Global index of the job currently being launched.  Every
        #: launcher (``ScenarioRun``, the shard builder, ``ServeRuntime``)
        #: sets it before ``scheme.launch`` so :meth:`ecmp_rng` streams
        #: depend only on ``(seed, job)`` — never on launch order.
        self.job_seq = 0

        self.invariants: InvariantChecker | None = None
        if check_invariants:
            self.invariants = InvariantChecker(
                self.network,
                raise_immediately=raise_on_violation,
                watchdog=invariant_watchdog,
            )
        self.trace: TraceRecorder | None = None
        if record_trace or keep_trace_events:
            self.trace = TraceRecorder(
                self.network, keep_events=keep_trace_events
            )
        self.plan_cache: "PlanCache | None" = None
        if plan_cache is not None:
            # Registered as an observer so dynamic faults invalidate it.
            self.plan_cache = plan_cache.attach(self.network)
        self.fault_injector: "FaultInjector | None" = None
        if fault_schedule is not None:
            from ..faults import FaultInjector

            self.fault_injector = FaultInjector(self, fault_schedule)

    def peel(self, max_prefixes_per_fanout: int | None = None) -> Peel:
        planner = self._peel_planners.get(max_prefixes_per_fanout)
        if planner is None:
            planner = Peel(
                self.topo, max_prefixes_per_fanout, resilience=self.protection
            )
            self._peel_planners[max_prefixes_per_fanout] = planner
        return planner

    def plan_broadcast(
        self,
        source: str,
        receivers: list[str],
        max_prefixes_per_fanout: int | None = None,
    ) -> "PeelPlan":
        """A PEEL plan for this group, via the plan cache when one is
        attached (repeated group shapes amortize planning cost)."""
        planner = self.peel(max_prefixes_per_fanout)
        if self.plan_cache is not None and max_prefixes_per_fanout is None:
            return self.plan_cache.get(planner, source, receivers)
        return planner.plan(source, receivers)

    def ecmp_rng(self) -> random.Random:
        """A fresh per-job RNG stream for ECMP tie-breaks.

        Seeded ``f"ecmp:{seed}:{job}"`` (string seeding hashes through
        SHA-512 — deterministic across processes), so the paths a job draws
        are identical whether it runs beside 0 or 10,000 other jobs.  This
        is what makes the ECMP-routed baselines (ring/tree/orca's relays)
        shardable: the shared router RNG stays untouched.
        """
        return random.Random(f"ecmp:{self.config.seed}:{self.job_seq}")

    def account_group_state(self, group_id: str, demand: dict) -> None:
        """Charge a scheme's *per-group* forwarding entries to the lazily
        created group-state ledger (plain switch tables, non-strict).
        Empty demand is free — the ledger is only materialized when a
        scheme actually installs state, so ``group_state is None`` is the
        honest zero for source-routed schemes."""
        if not demand:
            return
        from ..serve.state import FabricState

        if self.group_state is None:
            self.group_state = FabricState(strict=False)
        self.group_state.install_group(group_id, demand)

    def account_protection(self, group_id: str, protection) -> None:
        """Charge a protected group's fast-failover entries to the per-switch
        TCAM accounting (lazily created; plain switch tables, non-strict)."""
        from ..serve.state import FabricState

        if self.protection_state is None:
            self.protection_state = FabricState(strict=False)
        self.protection_state.install_group(
            group_id, protection.tcam_demand(group_id)
        )

    def static_rule_budget(self) -> int:
        """The paper's per-switch static-rule budget (2^(w+1) − 1 prefix
        rules, i.e. the k−1 bound): the yardstick backup entries are
        reported against.  0 when the topology has no PEEL id space."""
        try:
            width = self.peel().identifier_width
        except (ValueError, AttributeError):
            return 0
        return (1 << (width + 1)) - 1

    def next_transfer_name(self, prefix: str) -> str:
        self._transfer_counter += 1
        return f"{prefix}-{self._transfer_counter}"

    def run(self, until: float | None = None, max_events: int | None = None) -> int:
        return self.sim.run(until=until, max_events=max_events)

    def finalize_checks(self) -> list:
        """Run the invariant checker's end-of-run sweep (no-op otherwise)."""
        if self.invariants is None:
            return []
        return self.invariants.finalize()
