"""Shared runtime for collectives: the simulated fabric plus planners."""

from __future__ import annotations

import random

from ..core import ControllerModel, Peel
from ..sim import Network, SimConfig, Simulator, UnicastRouter
from ..topology import Topology


class CollectiveEnv:
    """One simulation environment: network, router, PEEL planner, controller.

    All schemes launched into the same env share the fabric (and therefore
    contend for it), which is how the Poisson-arrival experiments create
    background load.
    """

    def __init__(
        self,
        topo: Topology,
        config: SimConfig | None = None,
        controller: ControllerModel | None = None,
    ) -> None:
        self.topo = topo
        self.config = config or SimConfig()
        self.network = Network(topo, self.config)
        self.sim: Simulator = self.network.sim
        self.rng = random.Random(self.config.seed + 0x5EED)
        self.router = UnicastRouter(topo, random.Random(self.config.seed + 1))
        self.controller = controller or ControllerModel(
            rng=random.Random(self.config.seed + 2)
        )
        self._peel_planners: dict[int | None, Peel] = {}
        self._transfer_counter = 0

    def peel(self, max_prefixes_per_fanout: int | None = None) -> Peel:
        planner = self._peel_planners.get(max_prefixes_per_fanout)
        if planner is None:
            planner = Peel(self.topo, max_prefixes_per_fanout)
            self._peel_planners[max_prefixes_per_fanout] = planner
        return planner

    def next_transfer_name(self, prefix: str) -> str:
        self._transfer_counter += 1
        return f"{prefix}-{self._transfer_counter}"

    def run(self, until: float | None = None, max_events: int | None = None) -> int:
        return self.sim.run(until=until, max_events=max_events)
