"""Collective abstractions: GPU groups, completion tracking, scheme ABC.

A *collective* here is one Broadcast instance: a source GPU and a set of
member GPUs spread over hosts.  Hosts are the network endpoints (one NIC per
server, §4); GPUs on a delivered host finish after one NVLink/NVSwitch hop.
The collective-completion time (CCT) is measured "from collective initiation
until the message has reached all GPUs" — including any controller setup
delay a scheme pays.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from ..topology import addressing as addr

if TYPE_CHECKING:  # pragma: no cover
    from .env import CollectiveEnv


@dataclass(frozen=True, order=True)
class Gpu:
    host: str
    index: int


@dataclass(frozen=True)
class Group:
    """A collective group: the source GPU plus all members (source included)."""

    source: Gpu
    members: tuple[Gpu, ...]

    def __post_init__(self) -> None:
        if self.source not in self.members:
            raise ValueError("source GPU must be a group member")

    @property
    def size(self) -> int:
        return len(self.members)

    @property
    def hosts(self) -> list[str]:
        """Distinct hosts in locality order."""
        return sorted({g.host for g in self.members}, key=locality_key)

    @property
    def receiver_hosts(self) -> list[str]:
        """Hosts that must receive over the network (everyone but the
        source's own server)."""
        return [h for h in self.hosts if h != self.source.host]

    def gpus_on(self, host: str) -> list[Gpu]:
        return [g for g in self.members if g.host == host]


def locality_key(host: str) -> tuple[int, int, int]:
    """Sort key grouping hosts by pod, then rack, then slot."""
    info = addr.parse(host)
    return (info.pod if info.pod is not None else -1, info.tor or 0, info.index)


class CollectiveHandle:
    """Tracks one collective to completion and computes its CCT."""

    def __init__(
        self,
        scheme_name: str,
        group: Group,
        message_bytes: int,
        arrival_s: float,
        nvlink_s: float,
        pending_hosts: set[str] | None = None,
    ) -> None:
        self.scheme_name = scheme_name
        self.group = group
        self.message_bytes = message_bytes
        self.arrival_s = arrival_s
        self.nvlink_s = nvlink_s
        # Broadcast completes when every non-source host has the message;
        # all-to-all collectives (Allgather) pass an explicit pending set
        # because the source's host must receive too.
        if pending_hosts is None:
            pending_hosts = set(group.receiver_hosts)
        self.pending_hosts = pending_hosts
        self.host_done_at: dict[str, float] = {}
        #: The network transfers realizing this collective, in launch order.
        #: Tree-based schemes (PEEL, the optimal baseline) populate it so
        #: the control plane can graft/prune live membership changes; relay
        #: schemes leave it empty (no mid-flight membership support).
        self.transfers: list = []
        self.network_complete_s: float | None = None
        #: Optional hook fired once, at network completion, with
        #: ``(handle, now)`` — the serving runtime uses it to free admission
        #: resources.  Set it right after ``launch`` returns; degenerate
        #: groups (no network receivers) complete before it can be set, so
        #: callers must check :attr:`complete` first.
        self.on_complete: "Callable[[CollectiveHandle, float], None] | None" = None
        if not self.pending_hosts:
            self.network_complete_s = arrival_s

    def host_done(self, host: str, now: float) -> None:
        if host not in self.pending_hosts:
            return
        self.pending_hosts.discard(host)
        self.host_done_at[host] = now
        if not self.pending_hosts:
            self.network_complete_s = now
            if self.on_complete is not None:
                self.on_complete(self, now)

    # -- dynamic membership -----------------------------------------------------

    def add_pending(self, host: str) -> None:
        """A mid-collective join: completion now also waits for ``host``."""
        if self.complete:
            raise RuntimeError(
                "collective already complete; membership changes must target "
                "the next collective"
            )
        self.pending_hosts.add(host)

    def drop_pending(self, host: str, now: float) -> None:
        """A mid-collective leave: stop waiting for ``host``.  Unlike
        :meth:`host_done` no delivery is recorded, but removing the last
        pending host does complete the collective."""
        if host not in self.pending_hosts:
            return
        self.pending_hosts.discard(host)
        if not self.pending_hosts and self.network_complete_s is None:
            self.network_complete_s = now
            if self.on_complete is not None:
                self.on_complete(self, now)

    @property
    def complete(self) -> bool:
        return self.network_complete_s is not None

    @property
    def cct_s(self) -> float:
        """Collective-completion time including the intra-host NVLink hop."""
        if self.network_complete_s is None:
            raise RuntimeError("collective has not completed")
        return self.network_complete_s + self.nvlink_s - self.arrival_s


#: NCCL-style pipelining: "each message is divided into eight chunks" (§4).
NCCL_CHUNKS = 8


def nccl_chunk_bytes(message_bytes: int, mtu_bytes: int, chunks: int = NCCL_CHUNKS) -> int:
    """Relay granularity for Ring/Tree: an eighth of the message, but never
    below one MTU."""
    return max(mtu_bytes, -(-message_bytes // chunks))


class BroadcastScheme(ABC):
    """A way of realizing a Broadcast collective on the fabric."""

    name: str = "abstract"
    #: True when planning and launch draw no shared RNG (router/controller
    #: draws whose *order* couples jobs): such schemes produce identical
    #: per-job work regardless of which other jobs run beside them, the
    #: property ``repro.shard`` needs for pods-as-shards execution.
    #: Schemes with per-instance behavior override this as a property.
    shardable: bool = False

    @abstractmethod
    def launch(
        self,
        env: "CollectiveEnv",
        group: Group,
        message_bytes: int,
        arrival_s: float,
    ) -> CollectiveHandle:
        """Create the transfers for one Broadcast; returns its handle."""

    def _handle(
        self, env: "CollectiveEnv", group: Group, message_bytes: int, arrival_s: float
    ) -> CollectiveHandle:
        # An NVLink stage only exists when several GPUs share an endpoint;
        # in the per-GPU-NIC model (one GPU per host) delivery to the NIC
        # *is* delivery to the GPU.
        if len(group.members) > len(group.hosts):
            nvlink_s = message_bytes / env.config.nvlink_bytes_per_s
        else:
            nvlink_s = 0.0
        return CollectiveHandle(self.name, group, message_bytes, arrival_s, nvlink_s)
