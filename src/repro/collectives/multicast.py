"""In-network multicast broadcasts: the Optimal baseline and PEEL.

* :class:`OptimalBroadcast` — bandwidth-optimal Steiner-tree multicast
  (constructive optimum on symmetric fabrics, exact DP on small asymmetric
  groups, metric-closure otherwise).  An idealized scheme: no setup cost,
  single copy everywhere.
* :class:`PeelBroadcast` — PEEL static mode: one copy per prefix packet,
  zero setup (§3.2); optionally PEEL + programmable cores (§3.3): static
  start, then single-copy refined trees once the modelled controller
  finishes, at ``arrival + N(10ms, 5ms)``.
"""

from __future__ import annotations

from ..sim import Transfer
from ..steiner import MAX_EXACT_TERMINALS, exact_steiner_tree, metric_closure_tree
from .base import BroadcastScheme, CollectiveHandle, Group
from .env import CollectiveEnv
from .registry import SchemeSpec, register_alias, register_scheme


def _steiner_tree(env: CollectiveEnv, source: str, receivers: list[str]):
    """Best available multicast tree on the env's *current* topology."""
    if env.topo.is_symmetric:
        from ..core import optimal_symmetric_tree

        return optimal_symmetric_tree(env.topo, source, receivers)
    if len(receivers) + 1 <= MAX_EXACT_TERMINALS:
        return exact_steiner_tree(env.topo.graph, source, receivers)
    return metric_closure_tree(env.topo.graph, source, receivers)


class SteinerReplan:
    """Fault replanner for single-tree multicast (picklable, no closure —
    replanners live in the fault injector's recovery registry, which must
    survive :mod:`repro.replay` checkpoints)."""

    __slots__ = ("env", "source")

    def __init__(self, env: CollectiveEnv, source: str) -> None:
        self.env = env
        self.source = source

    def __call__(self, remaining: list[str]) -> list:
        return [_steiner_tree(self.env, self.source, remaining)]


class PeelReplan:
    """Re-peel replanner: fresh static prefix trees for the unfinished
    receivers on the (already degraded) topology (§2.3)."""

    __slots__ = ("env", "source", "max_prefixes")

    def __init__(
        self, env: CollectiveEnv, source: str, max_prefixes: int | None
    ) -> None:
        self.env = env
        self.source = source
        self.max_prefixes = max_prefixes

    def __call__(self, remaining: list[str]) -> list:
        plan = self.env.peel(self.max_prefixes).plan(self.source, remaining)
        return plan.static_trees


@register_scheme(
    "optimal",
    description="bandwidth-optimal Steiner-tree multicast (idealized)",
)
class OptimalBroadcast(BroadcastScheme):
    """Bandwidth-optimal Steiner-tree multicast (idealized baseline)."""
    name = "optimal"
    shardable = True  # Steiner planning is RNG-free

    def launch(
        self,
        env: CollectiveEnv,
        group: Group,
        message_bytes: int,
        arrival_s: float,
    ) -> CollectiveHandle:
        handle = self._handle(env, group, message_bytes, arrival_s)
        receivers = group.receiver_hosts
        if not receivers:
            return handle
        source = group.source.host
        tree = _steiner_tree(env, source, receivers)
        transfer = Transfer(
            env.network,
            env.next_transfer_name("optimal"),
            source,
            message_bytes,
            [tree],
            start_at=arrival_s,
            on_host_done=handle.host_done,
        )
        handle.transfers.append(transfer)
        if env.fault_injector is not None:
            env.fault_injector.register(transfer, SteinerReplan(env, source))
        transfer.start()
        return handle


@register_scheme(
    "peel",
    params=("programmable_cores", "max_prefixes_per_fanout"),
    description="PEEL static prefix multicast (optionally + programmable cores)",
)
class PeelBroadcast(BroadcastScheme):
    """PEEL multicast; set ``programmable_cores=True`` for §3.3's two-stage
    refinement."""

    def __init__(
        self,
        programmable_cores: bool = False,
        max_prefixes_per_fanout: int | None = None,
    ) -> None:
        self.programmable_cores = programmable_cores
        self.max_prefixes_per_fanout = max_prefixes_per_fanout
        self.name = "peel+cores" if programmable_cores else "peel"

    @property
    def shardable(self) -> bool:
        # Refinement readiness draws the shared controller RNG at launch.
        return not self.programmable_cores

    def launch(
        self,
        env: CollectiveEnv,
        group: Group,
        message_bytes: int,
        arrival_s: float,
    ) -> CollectiveHandle:
        handle = self._handle(env, group, message_bytes, arrival_s)
        receivers = group.receiver_hosts
        if not receivers:
            return handle
        source = group.source.host
        plan = env.plan_broadcast(source, receivers, self.max_prefixes_per_fanout)

        refined_tree = None
        refinement_ready_at = None
        if self.programmable_cores:
            refined_tree = plan.refined_tree
            refinement_ready_at = arrival_s + env.controller.setup_delay()

        transfer = Transfer(
            env.network,
            env.next_transfer_name(self.name),
            source,
            message_bytes,
            plan.static_trees,
            refined_tree=refined_tree,
            refinement_ready_at=refinement_ready_at,
            receivers=set(receivers),
            start_at=arrival_s,
            on_host_done=handle.host_done,
        )
        handle.transfers.append(transfer)
        if env.fault_injector is not None:
            env.fault_injector.register(
                transfer, PeelReplan(env, source, self.max_prefixes_per_fanout)
            )
        if plan.protection is not None and plan.protection.entries:
            env.account_protection(transfer.name, plan.protection)
            if env.fault_injector is not None:
                env.fault_injector.protect(transfer, plan.protection)
        transfer.start()
        return handle


register_alias("peel+cores", SchemeSpec("peel", programmable_cores=True))
