"""Source-routed multicast schemes: the header-bytes side of Fig 3.

PEEL's frontier (Fig 3) trades per-switch TCAM state against packet-header
overhead.  The schemes here occupy the header-heavy end: the *packet*
carries the multicast tree, so switches keep (near-)zero per-group entries
— and every segment honestly pays the encoding in bytes on the wire:

* :class:`ElmoBroadcast` — Elmo (SIGCOMM'19): bitmap-encoded p-rules
  packed into a bounded header budget, one rule per tree switch.  Rules
  that do not fit default to per-group s-rules at those switches (Elmo's
  default-to-spine fallback), charged to :attr:`CollectiveEnv.group_state`.
  Each switch strips its own p-rule, so copies shrink hop by hop.
* :class:`BertBroadcast` — label-stack source routing: the header carries
  one label per (switch, child) branch.  A ToR forwarding to *every* host
  under it uses one shared, pre-installed subtree label instead — static
  O(1) state, zero per-group entries.
* :class:`RsbfBroadcast` / :class:`LipsinBroadcast` — in-packet Bloom
  filters (§2.2's stateless baselines): a fixed or FPR-sized header that
  travels intact (nothing to strip), zero switch state.
* :class:`IpMulticastBroadcast` — the inverse corner: zero header, one
  per-group subset entry at every replicating switch.

All of these plan on the same precise Steiner tree as the optimal
baseline; what differs is who pays — the header (via
``Transfer(header_bytes=...)``, which inflates every segment) or the
switch tables (via :meth:`CollectiveEnv.account_group_state`).
"""

from __future__ import annotations

import math
from typing import NamedTuple

from ..sim import Transfer
from ..state.rsbf import bloom_header_bits
from ..topology.addressing import NodeKind, kind_of
from .base import BroadcastScheme, CollectiveHandle, Group
from .env import CollectiveEnv
from .multicast import _steiner_tree
from .registry import register_scheme


class Encoding(NamedTuple):
    """How one multicast tree maps onto header bytes and switch state."""

    #: Total header bytes prepended to every segment of the transfer.
    header_bytes: int
    #: ``switch -> bytes`` that switch strips from passing segments (its
    #: own consumed p-rule / labels); empty for travel-intact headers.
    strip_bytes: dict[str, int]
    #: Per-group entries the fabric must install (``switch -> keys``);
    #: empty is the honest zero of a fully source-routed group.
    demand: dict[str, list]


def _tree_switches(tree) -> list[tuple[str, list[str]]]:
    """(switch, children) for every forwarding switch, in (depth, name)
    order — shallow switches first, which is the order Elmo packs p-rules
    (upstream rules matter most; leftovers default to s-rules)."""
    out = [
        (node, tree.children(node))
        for node in tree.nodes
        if kind_of(node) is not NodeKind.HOST and tree.children(node)
    ]
    out.sort(key=lambda item: (tree.depth_of(item[0]), item[0]))
    return out


class SourceRoutedReplan:
    """Fault replanner for source-routed schemes (picklable, no closure).

    Re-plans the Steiner tree for the unfinished receivers and re-encodes
    it.  The in-flight segments were sized for the *original* header, so
    the fresh strip map is only attached when no root-to-leaf path strips
    more than the transfer carries; otherwise the repair copies deliver
    unstripped (conservative — the invariant checker expects full-size
    deliveries on strip-less routes).
    """

    __slots__ = ("env", "scheme", "source", "header_bytes")

    def __init__(
        self,
        env: CollectiveEnv,
        scheme: "SourceRoutedBroadcast",
        source: str,
        header_bytes: int,
    ) -> None:
        self.env = env
        self.scheme = scheme
        self.source = source
        self.header_bytes = header_bytes

    def __call__(self, remaining: list[str]) -> list:
        tree = _steiner_tree(self.env, self.source, remaining)
        enc = self.scheme._encode(self.env, tree, group_id=None)
        if enc.strip_bytes:
            worst = max(
                (
                    sum(enc.strip_bytes.get(n, 0) for n in tree.path_from_root(leaf))
                    for leaf in tree.leaves
                ),
                default=0,
            )
            if worst <= self.header_bytes:
                tree.strip_bytes = enc.strip_bytes
        return [tree]


class SourceRoutedBroadcast(BroadcastScheme):
    """Steiner-tree multicast where the tree rides in the packet header.

    Subclasses define :meth:`_encode`; launch charges the encoding's header
    bytes to every segment (so CCTs pay for it) and its residual state (if
    any) to the per-group ledger.
    """

    shardable = True  # Steiner planning and encoding are RNG-free

    def _encode(self, env: CollectiveEnv, tree, group_id: str | None) -> Encoding:
        """Map ``tree`` onto (header bytes, per-switch strips, state demand).

        ``group_id`` is ``None`` on fault re-encodes — per-group demand is
        only charged for the initial plan.
        """
        raise NotImplementedError

    def launch(
        self,
        env: CollectiveEnv,
        group: Group,
        message_bytes: int,
        arrival_s: float,
    ) -> CollectiveHandle:
        handle = self._handle(env, group, message_bytes, arrival_s)
        receivers = group.receiver_hosts
        if not receivers:
            return handle
        source = group.source.host
        tree = _steiner_tree(env, source, receivers)
        name = env.next_transfer_name(self.name)
        enc = self._encode(env, tree, group_id=name)
        if enc.strip_bytes:
            tree.strip_bytes = enc.strip_bytes
        transfer = Transfer(
            env.network,
            name,
            source,
            message_bytes,
            [tree],
            start_at=arrival_s,
            on_host_done=handle.host_done,
            header_bytes=enc.header_bytes,
        )
        handle.transfers.append(transfer)
        if env.fault_injector is not None:
            env.fault_injector.register(
                transfer,
                SourceRoutedReplan(env, self, source, enc.header_bytes),
            )
        env.account_group_state(name, enc.demand)
        transfer.start()
        return handle


@register_scheme(
    "elmo",
    params=("header_bytes",),
    description="Elmo bitmap p-rules in a bounded header, s-rule fallback",
)
class ElmoBroadcast(SourceRoutedBroadcast):
    """Elmo: per-switch bitmap p-rules packed into ``header_bytes``.

    One p-rule per forwarding switch — a one-byte rule id plus an output
    bitmap of ``ceil(degree / 8)`` bytes.  Rules pack shallowest-first
    until the budget is spent; switches whose rule does not fit fall back
    to a per-group s-rule installed in their tables (the accounting the
    frontier experiment measures as Elmo leaving the zero-state corner).
    """

    def __init__(self, header_bytes: int = 64) -> None:
        if header_bytes < 0:
            raise ValueError(f"header_bytes must be >= 0, got {header_bytes}")
        self.header_bytes = header_bytes
        self.name = "elmo"

    def _rule_bytes(self, env: CollectiveEnv, switch: str) -> int:
        degree = env.topo.graph.degree(switch)
        return 1 + math.ceil(degree / 8)

    def _encode(self, env: CollectiveEnv, tree, group_id: str | None) -> Encoding:
        total = 0
        strip: dict[str, int] = {}
        demand: dict[str, list] = {}
        for switch, _children in _tree_switches(tree):
            cost = self._rule_bytes(env, switch)
            if total + cost <= self.header_bytes:
                total += cost
                strip[switch] = cost
            elif group_id is not None:
                demand[switch] = [("group", group_id)]
        return Encoding(total, strip, demand)


@register_scheme(
    "bert",
    params=("label_bytes",),
    description="label-stack source routing with shared sub-tree labels",
)
class BertBroadcast(SourceRoutedBroadcast):
    """Label-stack source routing: one label per tree branch.

    A switch forwarding to ``c`` children consumes ``label_bytes * c`` of
    header — except a ToR whose children are *all* the hosts under it,
    which matches one shared "whole rack" subtree label (``label_bytes``
    in the header, pre-installed once per ToR: static O(1) state that is
    never per-group, so the per-group ledger stays empty).
    """

    def __init__(self, label_bytes: int = 2) -> None:
        if label_bytes < 1:
            raise ValueError(f"label_bytes must be >= 1, got {label_bytes}")
        self.label_bytes = label_bytes
        self.name = "bert"

    def _encode(self, env: CollectiveEnv, tree, group_id: str | None) -> Encoding:
        total = 0
        strip: dict[str, int] = {}
        for switch, children in _tree_switches(tree):
            hosts_under = [
                n
                for n in env.topo.graph.neighbors(switch)
                if kind_of(n) is NodeKind.HOST
            ]
            if hosts_under and set(children) == set(hosts_under):
                cost = self.label_bytes  # shared whole-rack subtree label
            else:
                cost = self.label_bytes * len(children)
            total += cost
            strip[switch] = cost
        return Encoding(total, strip, {})


@register_scheme(
    "rsbf",
    params=("fpr",),
    description="rack-scoped Bloom-filter header sized to the tree and FPR",
)
class RsbfBroadcast(SourceRoutedBroadcast):
    """In-packet Bloom filter sized for the tree's directed links at a
    target false-positive ratio (§2.2).  The header travels intact —
    every switch tests it, none consumes it — and no switch state exists.
    False-positive *traffic* is not simulated; the scheme pays the
    header's bandwidth everywhere instead."""

    def __init__(self, fpr: float = 0.01) -> None:
        if not 0 < fpr < 1:
            raise ValueError(f"fpr must be in (0, 1), got {fpr}")
        self.fpr = fpr
        self.name = "rsbf"

    def _encode(self, env: CollectiveEnv, tree, group_id: str | None) -> Encoding:
        bits = bloom_header_bits(len(tree.parent), self.fpr)
        return Encoding(-(-bits // 8), {}, {})


@register_scheme(
    "lipsin",
    params=("header_bytes",),
    description="LIPSIN fixed-size in-packet Bloom filter",
)
class LipsinBroadcast(SourceRoutedBroadcast):
    """LIPSIN (SIGCOMM'09): a fixed-width link-ID Bloom filter (256 bits
    by default) regardless of group size — cheap headers for small trees,
    rising false positives (not simulated) for large ones."""

    def __init__(self, header_bytes: int = 32) -> None:
        if header_bytes < 1:
            raise ValueError(f"header_bytes must be >= 1, got {header_bytes}")
        self.header_bytes = header_bytes
        self.name = "lipsin"

    def _encode(self, env: CollectiveEnv, tree, group_id: str | None) -> Encoding:
        return Encoding(self.header_bytes, {}, {})


@register_scheme(
    "ip-multicast",
    description="classic IP multicast: zero header, per-group subset entries",
)
class IpMulticastBroadcast(SourceRoutedBroadcast):
    """Classic IP multicast on the same Steiner tree: no header overhead,
    but one (refcount-shared) receiver-subset entry at every replicating
    switch — the state-heavy corner of the frontier."""

    name = "ip-multicast"

    def _encode(self, env: CollectiveEnv, tree, group_id: str | None) -> Encoding:
        if group_id is None:
            return Encoding(0, {}, {})
        from ..serve.state import tree_switch_fanouts

        demand: dict[str, list] = {}
        for switch, subset in tree_switch_fanouts(tree):
            demand.setdefault(switch, []).append(("subset", subset))
        return Encoding(0, {}, demand)
