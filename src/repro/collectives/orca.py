"""Orca-style server-assisted multicast (the paper's §3.1/§4 baseline).

Orca installs per-group rules on demand through an SDN controller — every
collective pays a flow-setup delay drawn from ``N(10 ms, 5 ms)`` — and
offloads the last-hop fan-out to a host-side agent: the network multicasts
one copy to an agent per rack; the agent unicasts one copy to each other
*server* in its rack (through the ToR) and the receiving server spreads the
message across its own GPUs over NVLink.  ``controller_overhead=False``
gives the idealized variant Figure 4 compares against.

Endpoint model: group members are GPU NICs; ``gpus_per_server`` consecutive
endpoints under a ToR belong to one physical server and share its NVLink
domain (see DESIGN.md).
"""

from __future__ import annotations

from ..sim import Transfer
from ..topology import addressing as addr
from .base import BroadcastScheme, CollectiveHandle, Group
from .env import CollectiveEnv
from .registry import SchemeSpec, register_alias, register_scheme

GPUS_PER_SERVER = 8


def server_of(endpoint: str, gpus_per_server: int = GPUS_PER_SERVER) -> tuple:
    """The physical server an endpoint NIC belongs to."""
    info = addr.parse(endpoint)
    return (info.pod, info.tor, info.index // gpus_per_server)


# The per-transfer callbacks below are callable classes rather than
# closures: they end up inside transfers and the fault injector's recovery
# registry, all of which must pickle for repro.replay checkpoints.


class NvlinkSpread:
    """Server-internal distribution once the representative NIC has the
    message: the representative completes, its siblings follow one NVLink
    hop later."""

    __slots__ = ("sim", "handle", "nvlink_s", "others")

    def __init__(self, sim, handle: CollectiveHandle, nvlink_s: float,
                 others: list[str]) -> None:
        self.sim = sim
        self.handle = handle
        self.nvlink_s = nvlink_s
        self.others = others

    def __call__(self, host: str, now: float) -> None:
        self.handle.host_done(host, now)
        done_at = now + self.nvlink_s
        for sibling in self.others:
            self.sim.schedule_at(done_at, self.handle.host_done, sibling, done_at)


class AgentFanout:
    """Trunk completion router: each agent NIC's delivery triggers that
    rack's :class:`NvlinkSpread`."""

    __slots__ = ("callbacks",)

    def __init__(self, callbacks: dict) -> None:
        self.callbacks = callbacks

    def __call__(self, host: str, now: float) -> None:
        self.callbacks[host](host, now)


class OrcaTrunkReplan:
    """Controller fault reaction: recompute and re-install the trunk tree
    for the agents still waiting."""

    __slots__ = ("scheme", "env", "source")

    def __init__(self, scheme: "OrcaBroadcast", env: CollectiveEnv,
                 source: str) -> None:
        self.scheme = scheme
        self.env = env
        self.source = source

    def __call__(self, remaining: list[str]) -> list:
        return [self.scheme._controller_tree(self.env, self.source, remaining)]


@register_scheme(
    "orca",
    params=("controller_overhead", "gpus_per_server"),
    description="Orca: SDN-installed multicast with per-rack host agents",
)
class OrcaBroadcast(BroadcastScheme):
    """Orca: SDN-installed multicast with per-rack host agents (§3.1)."""
    def __init__(
        self,
        controller_overhead: bool = True,
        gpus_per_server: int = GPUS_PER_SERVER,
    ) -> None:
        self.controller_overhead = controller_overhead
        self.gpus_per_server = gpus_per_server
        self.name = "orca" if controller_overhead else "orca-nosetup"

    @property
    def shardable(self) -> bool:
        # The setup delay draws the shared controller RNG at launch; its
        # draw *order* couples jobs, so only the no-setup variant shards.
        return not self.controller_overhead

    def launch(
        self,
        env: CollectiveEnv,
        group: Group,
        message_bytes: int,
        arrival_s: float,
    ) -> CollectiveHandle:
        handle = self._handle(env, group, message_bytes, arrival_s)
        receivers = group.receiver_hosts
        if not receivers:
            return handle
        source = group.source.host
        start = arrival_s
        if self.controller_overhead:
            start += env.controller.setup_delay()
        nvlink_s = message_bytes / env.config.nvlink_bytes_per_s

        # Rack -> server -> endpoints, all group members included.
        racks: dict[str, dict[tuple, list[str]]] = {}
        for endpoint in group.hosts:
            rack = env.topo.tor_of(endpoint)
            server = server_of(endpoint, self.gpus_per_server)
            racks.setdefault(rack, {}).setdefault(server, []).append(endpoint)
        src_rack = env.topo.tor_of(source)
        src_server = server_of(source, self.gpus_per_server)

        # One agent endpoint per rack (the source acts for its own rack).
        agents: dict[str, str] = {}
        for rack, servers in sorted(racks.items()):
            if rack == src_rack:
                agents[rack] = source
            else:
                first_server = min(servers)
                agents[rack] = servers[first_server][0]

        remote_agents = sorted(a for a in agents.values() if a != source)
        trunk: Transfer | None = None
        if remote_agents:
            tree = self._controller_tree(env, source, remote_agents)
            agent_callbacks = {}
            for rack, servers in racks.items():
                agent = agents[rack]
                if agent == source:
                    continue
                server = server_of(agent, self.gpus_per_server)
                siblings = [e for e in servers[server] if e != agent]
                agent_callbacks[agent] = NvlinkSpread(
                    env.sim, handle, nvlink_s, siblings
                )

            trunk = Transfer(
                env.network,
                env.next_transfer_name("orca-trunk"),
                source,
                message_bytes,
                [tree],
                start_at=start,
                on_host_done=AgentFanout(agent_callbacks),
            )
            if env.fault_injector is not None:
                # Orca's controller reacts to fabric faults by recomputing
                # and re-installing the trunk tree for the agents still
                # waiting (the per-rack relay legs stay rack-local and are
                # not registered, like other host-relay chains).
                env.fault_injector.register(
                    trunk, OrcaTrunkReplan(self, env, source)
                )

        # Per-rack fan-out: the agent unicasts to one representative NIC of
        # every other server in its rack; NVLink covers that server's rest.
        ecmp = env.ecmp_rng()
        for rack, servers in sorted(racks.items()):
            agent = agents[rack]
            agent_server = server_of(agent, self.gpus_per_server)
            for server, endpoints in sorted(servers.items()):
                if server == agent_server:
                    if agent == source:
                        # Source server: its other GPUs fill over NVLink.
                        others = [e for e in endpoints if e != source]
                        for sibling in others:
                            env.sim.schedule_at(
                                start + nvlink_s,
                                handle.host_done,
                                sibling,
                                start + nvlink_s,
                            )
                    continue
                rep, rest = endpoints[0], endpoints[1:]
                relay = Transfer(
                    env.network,
                    env.next_transfer_name(f"orca-agent-{agent}"),
                    agent,
                    message_bytes,
                    [env.router.path_tree(agent, rep, ecmp)],
                    start_at=start,
                    is_relay=agent != source,
                    on_host_done=NvlinkSpread(env.sim, handle, nvlink_s, rest),
                )
                if agent != source:
                    assert trunk is not None
                    trunk.add_relay_child(agent, relay)
                relay.start()

        if trunk is not None:
            trunk.start()
        return handle

    def _controller_tree(self, env: CollectiveEnv, source: str, agents: list[str]):
        """The controller computes a proper multicast tree to the agents."""
        from ..steiner import MAX_EXACT_TERMINALS, exact_steiner_tree, metric_closure_tree

        if env.topo.is_symmetric:
            from ..core import optimal_symmetric_tree

            return optimal_symmetric_tree(env.topo, source, agents)
        if len(agents) + 1 <= MAX_EXACT_TERMINALS:
            return exact_steiner_tree(env.topo.graph, source, agents)
        return metric_closure_tree(env.topo.graph, source, agents)


register_alias("orca-nosetup", SchemeSpec("orca", controller_overhead=False))
