"""Broadcast collective schemes behind the open scheme registry.

Every scheme module registers itself with ``@register_scheme`` at import
time; :func:`resolve_scheme` turns a name, a ``"name:param=value"`` string,
or a :class:`SchemeSpec` into a live instance.  Legacy spellings
(``"peel+cores"``, ``"orca-nosetup"``) remain as registered aliases that
emit one :class:`DeprecationWarning` per process.
"""

from .allgather import PeelAllgather, RingAllgather, shard_bytes
from .allreduce import PeelAllReduce, RingAllReduce
from .base import BroadcastScheme, CollectiveHandle, Gpu, Group, locality_key
from .env import CollectiveEnv
from .multicast import OptimalBroadcast, PeelBroadcast
from .multipath import StripedMulticastBroadcast
from .orca import OrcaBroadcast
from .registry import (
    SchemeSpec,
    register_alias,
    register_scheme,
    registered_schemes,
    reset_alias_warnings,
    resolve_scheme,
    scheme_aliases,
)
from .ring import RingBroadcast
from .sourcerouted import (
    BertBroadcast,
    ElmoBroadcast,
    IpMulticastBroadcast,
    LipsinBroadcast,
    RsbfBroadcast,
    SourceRoutedBroadcast,
)
from .tree import BinaryTreeBroadcast


def scheme_by_name(name: str) -> BroadcastScheme:
    """Back-compat wrapper over :func:`resolve_scheme`: resolves any
    registered scheme name, ``"name:param=value"`` spec string, or
    :class:`SchemeSpec` through the scheme registry."""
    return resolve_scheme(name)


__all__ = [
    "PeelAllgather",
    "RingAllgather",
    "PeelAllReduce",
    "RingAllReduce",
    "shard_bytes",
    "BroadcastScheme",
    "CollectiveHandle",
    "Gpu",
    "Group",
    "locality_key",
    "CollectiveEnv",
    "OptimalBroadcast",
    "PeelBroadcast",
    "StripedMulticastBroadcast",
    "OrcaBroadcast",
    "RingBroadcast",
    "BinaryTreeBroadcast",
    "SourceRoutedBroadcast",
    "ElmoBroadcast",
    "BertBroadcast",
    "RsbfBroadcast",
    "LipsinBroadcast",
    "IpMulticastBroadcast",
    "SchemeSpec",
    "register_scheme",
    "register_alias",
    "registered_schemes",
    "scheme_aliases",
    "reset_alias_warnings",
    "resolve_scheme",
    "scheme_by_name",
]
