"""Broadcast collective schemes: Ring, Binary Tree, Optimal multicast,
Orca, and PEEL (static and programmable-cores)."""

from .allgather import PeelAllgather, RingAllgather, shard_bytes
from .allreduce import PeelAllReduce, RingAllReduce
from .base import BroadcastScheme, CollectiveHandle, Gpu, Group, locality_key
from .env import CollectiveEnv
from .multicast import OptimalBroadcast, PeelBroadcast
from .multipath import StripedMulticastBroadcast
from .orca import OrcaBroadcast
from .ring import RingBroadcast
from .tree import BinaryTreeBroadcast


def scheme_by_name(name: str) -> BroadcastScheme:
    """Factory for the scheme names the experiments use."""
    factories = {
        "ring": RingBroadcast,
        "tree": BinaryTreeBroadcast,
        "optimal": OptimalBroadcast,
        "orca": OrcaBroadcast,
        "orca-nosetup": lambda: OrcaBroadcast(controller_overhead=False),
        "peel": PeelBroadcast,
        "peel+cores": lambda: PeelBroadcast(programmable_cores=True),
        "striped": StripedMulticastBroadcast,
        "allgather-ring": RingAllgather,
        "allgather-peel": PeelAllgather,
        "allreduce-ring": RingAllReduce,
        "allreduce-peel": PeelAllReduce,
    }
    try:
        return factories[name]()
    except KeyError:
        raise ValueError(
            f"unknown scheme {name!r}; choose from {sorted(factories)}"
        ) from None


__all__ = [
    "PeelAllgather",
    "RingAllgather",
    "PeelAllReduce",
    "RingAllReduce",
    "shard_bytes",
    "BroadcastScheme",
    "CollectiveHandle",
    "Gpu",
    "Group",
    "locality_key",
    "CollectiveEnv",
    "OptimalBroadcast",
    "PeelBroadcast",
    "StripedMulticastBroadcast",
    "OrcaBroadcast",
    "RingBroadcast",
    "BinaryTreeBroadcast",
    "scheme_by_name",
]
