"""Declarative scheme registry: ``@register_scheme`` plus a frozen
:class:`SchemeSpec`.

The collectives package used to expose a closed factory dict
(``scheme_by_name``) whose ad-hoc string variants (``"peel+cores"``,
``"orca-nosetup"``) could neither be parameterized nor extended without
editing the package.  The registry replaces that surface:

* scheme classes self-register with :func:`register_scheme`, declaring
  the constructor parameters they accept;
* :class:`SchemeSpec` is a frozen, hashable, picklable value naming a
  registered scheme plus its parameters.  It is accepted everywhere a
  scheme string used to be (:class:`repro.api.ScenarioSpec`,
  :class:`repro.serve.runtime.ServeRuntime`, the control plane, the CLI)
  and round-trips through the ``name:param=value,...`` string syntax
  (``"elmo:header_bytes=64"``);
* legacy spellings live on as :func:`register_alias` entries resolving
  to canonical specs, each emitting one :class:`DeprecationWarning` per
  process the first time it is used.

:func:`resolve_scheme` is the single entry point: it takes a scheme
*instance*, a :class:`SchemeSpec`, or a string, and returns a constructed
:class:`~repro.collectives.base.BroadcastScheme`.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Callable

from .base import BroadcastScheme

__all__ = [
    "SchemeSpec",
    "register_alias",
    "register_scheme",
    "registered_schemes",
    "reset_alias_warnings",
    "resolve_scheme",
    "scheme_aliases",
]


def _format_value(value) -> str:
    if value is True:
        return "true"
    if value is False:
        return "false"
    if isinstance(value, float):
        return repr(value)  # repr round-trips (0.01 stays 0.01)
    return str(value)


def _parse_value(text: str):
    lowered = text.lower()
    if lowered == "true":
        return True
    if lowered == "false":
        return False
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text


class SchemeSpec:
    """Frozen description of a scheme: registry name + keyword parameters.

    ``SchemeSpec("elmo", header_bytes=64)`` — parameters are stored as a
    canonically sorted tuple, so equal specs hash equal, pickle stably,
    and print as the CLI syntax: ``str(spec) == "elmo:header_bytes=64"``.
    """

    __slots__ = ("name", "params")

    def __init__(self, name: str, **params) -> None:
        if not name or not isinstance(name, str):
            raise ValueError(f"scheme name must be a non-empty string, got {name!r}")
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "params", tuple(sorted(params.items())))

    # -- immutability / value semantics -------------------------------------

    def __setattr__(self, key, value) -> None:
        raise AttributeError("SchemeSpec is frozen")

    def __delattr__(self, key) -> None:
        raise AttributeError("SchemeSpec is frozen")

    def __eq__(self, other) -> bool:
        if not isinstance(other, SchemeSpec):
            return NotImplemented
        return self.name == other.name and self.params == other.params

    def __hash__(self) -> int:
        return hash((self.name, self.params))

    def __repr__(self) -> str:
        kwargs = "".join(f", {k}={v!r}" for k, v in self.params)
        return f"SchemeSpec({self.name!r}{kwargs})"

    def __reduce__(self):
        return (_rebuild_spec, (self.name, self.params))

    # -- accessors -----------------------------------------------------------

    @property
    def kwargs(self) -> dict:
        return dict(self.params)

    def get(self, key: str, default=None):
        for k, v in self.params:
            if k == key:
                return v
        return default

    def __str__(self) -> str:
        if not self.params:
            return self.name
        rendered = ",".join(f"{k}={_format_value(v)}" for k, v in self.params)
        return f"{self.name}:{rendered}"

    # -- construction from strings -------------------------------------------

    @classmethod
    def parse(cls, text: str) -> "SchemeSpec":
        """Parse the CLI syntax ``name[:param=value,...]``.

        Values parse as ``true``/``false``, int, float, or stay strings.
        """
        name, sep, rest = text.partition(":")
        params = {}
        if sep:
            for item in rest.split(","):
                key, eq, raw = item.partition("=")
                key = key.strip()
                if not key or not eq:
                    raise ValueError(
                        f"bad scheme parameter {item!r} in {text!r}; "
                        "expected name:param=value[,param=value...]"
                    )
                params[key] = _parse_value(raw.strip())
        return cls(name.strip(), **params)

    @classmethod
    def coerce(cls, value) -> "SchemeSpec":
        """A :class:`SchemeSpec` from a spec or string, resolving (and
        warning once per process about) deprecated alias spellings."""
        if isinstance(value, SchemeSpec):
            return value
        if not isinstance(value, str):
            raise TypeError(
                f"expected a scheme name or SchemeSpec, got {type(value).__name__}"
            )
        alias = _ALIASES.get(value)
        if alias is not None:
            if value not in _warned_aliases:
                _warned_aliases.add(value)
                warnings.warn(
                    f"scheme name {value!r} is deprecated; use "
                    f"{str(alias)!r} (SchemeSpec syntax) instead",
                    DeprecationWarning,
                    stacklevel=3,
                )
            return alias
        return cls.parse(value)


def _rebuild_spec(name: str, params: tuple) -> SchemeSpec:
    return SchemeSpec(name, **dict(params))


@dataclass(frozen=True)
class _SchemeEntry:
    name: str
    factory: Callable[..., BroadcastScheme]
    params: tuple[str, ...]
    description: str


_REGISTRY: dict[str, _SchemeEntry] = {}
_ALIASES: dict[str, SchemeSpec] = {}
_warned_aliases: set[str] = set()


def register_scheme(
    name: str, *, params: tuple[str, ...] = (), description: str = ""
):
    """Class decorator registering a scheme factory under ``name``.

    ``params`` declares the keyword parameters the factory accepts —
    :func:`resolve_scheme` rejects a :class:`SchemeSpec` carrying anything
    else, so typos fail loudly instead of silently constructing defaults.
    """

    def decorate(factory):
        if name in _REGISTRY:
            raise ValueError(f"scheme {name!r} is already registered")
        _REGISTRY[name] = _SchemeEntry(
            name, factory, tuple(params), description or (factory.__doc__ or "")
        )
        return factory

    return decorate


def register_alias(alias: str, target: SchemeSpec) -> None:
    """Register a deprecated spelling resolving to a canonical spec."""
    if alias in _REGISTRY:
        raise ValueError(f"{alias!r} is already a registered scheme name")
    _ALIASES[alias] = target


def registered_schemes() -> tuple[str, ...]:
    """Canonical scheme names, sorted (aliases excluded)."""
    return tuple(sorted(_REGISTRY))


def scheme_aliases() -> dict[str, SchemeSpec]:
    """The deprecated spellings and the canonical specs they resolve to."""
    return dict(_ALIASES)


def reset_alias_warnings() -> None:
    """Forget which aliases have warned (tests exercising the one-shot)."""
    _warned_aliases.clear()


def resolve_scheme(scheme) -> BroadcastScheme:
    """Construct a scheme from an instance, a :class:`SchemeSpec`, or a
    string (canonical ``name:param=value`` syntax or a registered alias)."""
    if isinstance(scheme, BroadcastScheme):
        return scheme
    spec = SchemeSpec.coerce(scheme)
    entry = _REGISTRY.get(spec.name)
    if entry is None:
        raise ValueError(
            f"unknown scheme {spec.name!r}: not in the scheme registry "
            f"(repro.collectives.registry); registered schemes: "
            f"{list(registered_schemes())}. Register new schemes with "
            f"@register_scheme."
        )
    unknown = [k for k, _ in spec.params if k not in entry.params]
    if unknown:
        allowed = list(entry.params) or "none"
        raise ValueError(
            f"scheme {spec.name!r} does not accept parameter(s) {unknown}; "
            f"registered parameters: {allowed}"
        )
    return entry.factory(**spec.kwargs)
