"""Transfer: one logical message moving from a source host to receivers.

A transfer owns its DCQCN sender, paces segment injection, and tracks
per-receiver delivery.  It supports the three shapes the collectives need:

* **unicast** — the route is a path; used by Ring/Tree relays and Orca's
  host agents;
* **multicast** — one tree, switches replicate (Optimal, Orca's trunk,
  PEEL refined);
* **multi-tree multicast** — one copy per tree per segment (PEEL static
  prefix packets), optionally switching to a single refined tree at a
  controller-determined time (PEEL + programmable cores, §3.3).

Relays: a transfer may be fed by an upstream transfer; segment ``i`` becomes
injectable only after the upstream delivers segment ``i`` to this host
(NCCL-style chunk pipelining).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from ..steiner import MulticastTree
from ..topology.addressing import NodeKind, kind_of
from .dcqcn import DcqcnSender
from .packet import Segment

if TYPE_CHECKING:  # pragma: no cover
    from .network import Network

HostDoneFn = Callable[[str, float], None]


class Transfer:
    """One paced message transmission over one or more route trees."""

    def __init__(
        self,
        network: "Network",
        name: str,
        src_host: str,
        message_bytes: int,
        static_trees: list[MulticastTree],
        refined_tree: MulticastTree | None = None,
        refinement_ready_at: float | None = None,
        receivers: set[str] | None = None,
        start_at: float = 0.0,
        is_relay: bool = False,
        on_host_done: HostDoneFn | None = None,
        on_complete: Callable[["Transfer", float], None] | None = None,
        segment_bytes: int | None = None,
        relay_chunk_bytes: int | None = None,
        stripe: bool = False,
        header_bytes: int = 0,
    ) -> None:
        if not static_trees:
            raise ValueError("transfer needs at least one route tree")
        for tree in static_trees + ([refined_tree] if refined_tree else []):
            if tree.root != src_host:
                raise ValueError(
                    f"route tree rooted at {tree.root!r}, expected {src_host!r}"
                )
        if refined_tree is not None and refinement_ready_at is None:
            raise ValueError("refined tree requires refinement_ready_at")
        if stripe and refined_tree is not None:
            raise ValueError("striping and refinement are mutually exclusive")

        self.network = network
        self.sim = network.sim
        self.name = name
        self.src_host = src_host
        self.message_bytes = message_bytes
        self.static_trees = static_trees
        self.refined_tree = refined_tree
        self.refinement_ready_at = refinement_ready_at
        if segment_bytes is None:
            self.segment_sizes = network.config.segments_for(message_bytes)
        else:
            # Per-transfer granularity override: Ring/Tree relays forward in
            # NCCL-style chunks (the paper uses 8 per message).
            if segment_bytes < 1:
                raise ValueError("segment_bytes must be positive")
            full, rem = divmod(message_bytes, segment_bytes)
            self.segment_sizes = [segment_bytes] * full + ([rem] if rem else [])
        if header_bytes < 0:
            raise ValueError("header_bytes must be non-negative")
        if header_bytes:
            # Source-routed schemes (Elmo/Bert, Bloom-filter headers) carry
            # the route in every packet: each segment grows by the encoding,
            # so pacing, serialization, buffering and CCTs all pay for it.
            self.segment_sizes = [size + header_bytes for size in self.segment_sizes]
        self.header_bytes = header_bytes
        self.num_segments = len(self.segment_sizes)
        # Cumulative end byte of each segment; drives relay availability.
        self._seg_end: list[int] = []
        total = 0
        for size in self.segment_sizes:
            total += size
            self._seg_end.append(total)
        # Granularity at which downstream relays learn about progress: the
        # NCCL chunk size for Ring/Tree (8 chunks/message), or None for
        # segment-level signalling.
        if relay_chunk_bytes is not None and relay_chunk_bytes < 1:
            raise ValueError("relay_chunk_bytes must be positive")
        self.relay_chunk_bytes = relay_chunk_bytes
        self.start_at = start_at
        # Striping (multicast + multipath, §2.3's open question): each
        # segment rides exactly one of the trees, round-robin, instead of
        # every tree carrying the whole message.
        self.stripe = stripe
        self.is_relay = is_relay
        self.on_host_done = on_host_done
        self.on_complete = on_complete

        if receivers is None:
            receivers = set()
            for tree in self.static_trees:
                receivers.update(
                    n
                    for n in tree.nodes
                    if kind_of(n) is NodeKind.HOST and n != src_host
                )
        self.receivers = receivers

        line_rate = self._uplink_rate()
        self.dcqcn = DcqcnSender(self.sim, network.config.dcqcn, line_rate)

        self.injected = 0
        self._next_allowed_s = start_at
        self._available_bytes = 0  # relay: upstream progress high-watermark
        self._delivered_count: dict[str, int] = {r: 0 for r in self.receivers}
        self._delivered_bytes: dict[str, int] = {r: 0 for r in self.receivers}
        # Selective repeat (RDMA-style reliability): per-receiver segment
        # bitmap plus a timeout-driven unicast repair loop.  Active on lossy
        # fabrics and under dynamic fault injection (where copies can die
        # on failing links mid-collective).
        self._lossy = network.config.loss_probability > 0
        self._track = self._lossy or network.fault_tolerant
        self._received: dict[str, set[int]] = (
            {r: set() for r in self.receivers} if self._track else {}
        )
        self.retransmissions = 0
        self._repair_timer_running = False
        self.finished_hosts: set[str] = set()
        self.complete = False
        self.complete_at: float | None = None
        self._relay_children: dict[str, list["Transfer"]] = {}
        self._pump_scheduled = False
        self.reroutes = 0
        network.transfers.append(self)

    # -- setup ----------------------------------------------------------------

    def _uplink_rate(self) -> float:
        children = self.static_trees[0].children(self.src_host)
        if not children:
            return float("inf")
        return self.network.ports[self.src_host, children[0]].capacity_bps

    def add_relay_child(self, via_host: str, child: "Transfer") -> None:
        """``child`` forwards this transfer's segments once ``via_host`` has
        them."""
        if via_host not in self.receivers:
            raise ValueError(f"{via_host!r} is not a receiver of {self.name}")
        self._relay_children.setdefault(via_host, []).append(child)

    def start(self) -> None:
        if self.network.observers:
            for ob in self.network.observers:
                ob.on_transfer_start(self)
        if not self.receivers:
            # Degenerate group (everyone shares the source host): instantly
            # complete; NVLink handling happens at the collective layer.
            self._finish(self.sim.now)
            return
        self.sim.post_at(max(self.start_at, self.sim.now), self._pump)

    # -- injection ------------------------------------------------------------

    def _current_trees(self) -> list[MulticastTree]:
        if (
            self.refined_tree is not None
            and self.refinement_ready_at is not None
            and self.sim.now >= self.refinement_ready_at
        ):
            return [self.refined_tree]
        return self.static_trees

    def _pump(self) -> None:
        self._pump_scheduled = False
        if self.complete:
            return
        now = self.sim.now
        while self.injected < self.num_segments:
            if (
                self.is_relay
                and self._seg_end[self.injected] > self._available_bytes
            ):
                return  # upstream delivery will re-pump
            if now < self._next_allowed_s - 1e-15:
                self._schedule_pump(self._next_allowed_s)
                return
            seq = self.injected
            size = self.segment_sizes[seq]
            if self.stripe:
                trees = [self.static_trees[seq % len(self.static_trees)]]
            else:
                trees = self._current_trees()
            host = self.network.host(self.src_host)
            for tree in trees:
                host.send(Segment(self, seq, size, tree))
            pace_bytes = size * len(trees)
            self.dcqcn.on_bytes_sent(pace_bytes)
            rate = self.dcqcn.current_rate_bps
            self._next_allowed_s = max(now, self._next_allowed_s) + (
                pace_bytes * 8 / rate
            )
            self.injected += 1
        if self._track and self.injected == self.num_segments and not self.complete:
            self._start_repair_timer()

    def _schedule_pump(self, at: float) -> None:
        if not self._pump_scheduled:
            self._pump_scheduled = True
            self.sim.post_at(max(at, self.sim.now), self._pump)

    def set_available_bytes(self, nbytes: int) -> None:
        """Upstream progress: the first ``nbytes`` of the message are now
        present at this relay's source host."""
        if nbytes <= self._available_bytes:
            return
        self._available_bytes = nbytes
        if not self._pump_scheduled:
            delay = self.network.config.host_processing_delay_s
            self._pump_scheduled = True
            self.sim.post(delay, self._pump)

    # -- delivery -------------------------------------------------------------

    def on_delivered(self, host: str, segment, now: float) -> None:
        counts = self._delivered_count
        count = counts.get(host)
        if count is None:
            return  # e.g. copy reached a non-tracked endpoint; ignore
        if self._track:
            got = self._received[host]
            if segment.seq in got:
                return  # duplicate (original raced a repair copy)
            got.add(segment.seq)
        count += 1
        counts[host] = count
        observers = self.network.obs_accept
        if observers:
            if len(observers) == 1:
                # The overwhelmingly common case (one metrics observer):
                # skip the iterator protocol on the acceptance fast path.
                observers[0](self, host, segment)
            else:
                for fn in observers:
                    fn(self, host, segment)
        delivered_bytes = self._delivered_bytes
        delivered = delivered_bytes[host] + segment.nbytes
        delivered_bytes[host] = delivered
        if self._relay_children:
            children = self._relay_children.get(host)
            if children:
                if (
                    self.relay_chunk_bytes is None
                    or delivered >= self.message_bytes
                ):
                    announce = delivered
                else:
                    announce = (
                        delivered // self.relay_chunk_bytes
                    ) * self.relay_chunk_bytes
                for child in children:
                    child.set_available_bytes(announce)
        if count == self.num_segments:
            self.finished_hosts.add(host)
            if self.on_host_done is not None:
                self.on_host_done(host, now)
            if len(self.finished_hosts) == len(self.receivers):
                self._finish(now)

    def on_congestion_feedback(self, host: str) -> None:
        del host  # all receivers funnel into one sender-side controller
        self.dcqcn.on_congestion_notification()

    # -- selective-repeat repair ------------------------------------------------

    def _start_repair_timer(self) -> None:
        if self._repair_timer_running:
            return
        self._repair_timer_running = True
        timeout = self.network.config.retransmit_timeout_s
        self.sim.post(timeout, self._repair_tick)

    def _repair_tick(self) -> None:
        self._repair_timer_running = False
        if self.complete:
            return
        sent = False
        for host in sorted(self.receivers - self.finished_hosts):
            missing = [
                seq
                for seq in range(self.num_segments)
                if seq not in self._received[host]
            ]
            route = self._repair_route(host)
            if route is None or not self._route_healthy(route):
                # Every path to this laggard crosses a failed link; spinning
                # retransmissions into a blackhole would never terminate.
                # A reroute (re-peel) or link-up restarts the timer.
                continue
            for seq in missing:
                sent = True
                self.retransmissions += 1
                self.network.host(self.src_host).send(
                    Segment(self, seq, self.segment_sizes[seq], route)
                )
        if sent:
            self._start_repair_timer()

    def _route_healthy(self, route: MulticastTree) -> bool:
        ports = self.network.ports
        return all(not ports[edge].down for edge in route.edges)

    def _repair_route(self, host: str) -> MulticastTree | None:
        """Unicast path to a laggard receiver, pruned from any route tree
        that reaches it (repairs do not re-multicast)."""
        for tree in [self.refined_tree, *self.static_trees]:
            if tree is not None and host in tree.nodes:
                path = tree.path_from_root(host)
                return MulticastTree(
                    self.src_host, {b: a for a, b in zip(path, path[1:])}
                )
        return None

    # -- dynamic membership -----------------------------------------------------

    def add_receiver(self, host: str) -> None:
        """Graft a new receiver mid-transfer (a membership join).

        The host starts with nothing: callers must also place it on a route
        tree (:meth:`set_route_trees` / :meth:`reroute`) and backfill the
        segments it missed (:meth:`catch_up`).  Requires segment tracking,
        like every mid-flight topology change.
        """
        if host in self.receivers:
            return
        if self.complete:
            raise RuntimeError(f"{self.name} already complete; cannot graft {host!r}")
        if not self._track:
            raise RuntimeError(
                "add_receiver requires per-receiver segment tracking (set "
                "network.fault_tolerant before creating transfers)"
            )
        self.receivers.add(host)
        self._delivered_count[host] = 0
        self._delivered_bytes[host] = 0
        self._received[host] = set()

    def remove_receiver(self, host: str) -> None:
        """Drop a receiver mid-transfer (a membership leave).

        All per-host tracking is deleted, so copies still in flight toward
        the departed host are ignored on arrival (an untracked endpoint),
        and completion no longer waits for it.
        """
        if host not in self.receivers:
            return
        self.receivers.discard(host)
        self.finished_hosts.discard(host)
        self._delivered_count.pop(host, None)
        self._delivered_bytes.pop(host, None)
        self._received.pop(host, None)
        if self.network.observers:
            for ob in self.network.observers:
                ob.on_receiver_removed(self, host)
        if (
            not self.complete
            and len(self.finished_hosts) == len(self.receivers)
        ):
            self._finish(self.sim.now)

    def set_route_trees(self, trees: list[MulticastTree]) -> None:
        """Swap the route trees without re-multicasting anything.

        Segments not yet injected ride the new trees; already-injected
        segments are untouched (use :meth:`reroute` or :meth:`catch_up` when
        in-flight receivers need backfill).
        """
        if not trees:
            raise ValueError("transfer needs at least one route tree")
        for tree in trees:
            if tree.root != self.src_host:
                raise ValueError(
                    f"route tree rooted at {tree.root!r}, expected "
                    f"{self.src_host!r}"
                )
        self.static_trees = list(trees)
        self.refined_tree = None
        self.refinement_ready_at = None

    def catch_up(self, host: str) -> None:
        """Unicast already-injected segments the given receiver is missing
        (backfill after a mid-transfer join).  Segments not yet injected
        arrive through the normal multicast pump."""
        if self.complete or host not in self.receivers or not self._track:
            return
        route = self._repair_route(host)
        if route is None:
            raise RuntimeError(
                f"no route tree of {self.name} reaches {host!r}; graft it "
                "before catching up"
            )
        got = self._received[host]
        host_node = self.network.host(self.src_host)
        horizon = min(self.injected, self.num_segments)
        for seq in range(horizon):
            if seq in got:
                continue
            self.retransmissions += 1
            host_node.send(Segment(self, seq, self.segment_sizes[seq], route))
        if self.injected < self.num_segments:
            self._schedule_pump(self.sim.now)
        else:
            self._start_repair_timer()

    # -- fault recovery ---------------------------------------------------------

    def reroute(self, trees: list[MulticastTree]) -> None:
        """Adopt re-planned route trees after a fabric fault (§2.3 re-peel).

        Segments not yet injected ride the new trees automatically;
        already-injected segments still missing at some receiver are
        re-multicast over the new trees (receivers dedupe copies that raced
        the failure).  Requires segment tracking, i.e. a fault-tolerant or
        lossy fabric.
        """
        if self.complete:
            return
        if not self._track:
            raise RuntimeError(
                "reroute requires per-receiver segment tracking (install a "
                "fault injector before creating transfers)"
            )
        self.set_route_trees(trees)
        self.reroutes += 1
        if self.network.observers:
            for ob in self.network.observers:
                ob.on_reroute(self, len(trees))
        missing: set[int] = set()
        horizon = min(self.injected, self.num_segments)
        for host in self.receivers - self.finished_hosts:
            got = self._received[host]
            missing.update(s for s in range(horizon) if s not in got)
        host_node = self.network.host(self.src_host)
        for seq in sorted(missing):
            self.retransmissions += 1
            for tree in trees:
                host_node.send(Segment(self, seq, self.segment_sizes[seq], tree))
        if self.injected < self.num_segments:
            self._schedule_pump(self.sim.now)
        elif not self.complete:
            self._start_repair_timer()

    def nudge(self) -> None:
        """Re-kick stalled machinery after fabric state improved (link up)."""
        if self.complete or not self._track:
            return
        if self.injected < self.num_segments:
            self._schedule_pump(self.sim.now)
        else:
            self._start_repair_timer()

    def _finish(self, now: float) -> None:
        self.complete = True
        self.complete_at = now
        self.dcqcn.stop()
        if self.network.observers:
            for ob in self.network.observers:
                ob.on_transfer_complete(self)
        if self.on_complete is not None:
            self.on_complete(self, now)
