"""Segment: the simulator's unit of data movement.

One segment is a contiguous slice of a message, store-and-forwarded hop by
hop.  Replication at a switch creates an independent copy (per-copy ECN
state).  The segment carries its route (a :class:`MulticastTree`), which the
data plane consults instead of installed state — behaviourally identical to
matching pre-installed prefix rules, while the state cost itself is
accounted analytically in :mod:`repro.state`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from ..steiner import MulticastTree
    from .transfer import Transfer


class Segment:
    """One store-and-forward unit of a transfer (see module docstring)."""
    __slots__ = ("transfer", "seq", "nbytes", "route", "ecn", "ingress")

    def __init__(
        self,
        transfer: "Transfer",
        seq: int,
        nbytes: int,
        route: "MulticastTree",
        ecn: bool = False,
    ) -> None:
        self.transfer = transfer
        self.seq = seq
        self.nbytes = nbytes
        self.route = route
        self.ecn = ecn
        # The port that delivered this copy into the switch currently
        # buffering it; used for per-ingress PFC accounting.
        self.ingress = None

    def fork(self) -> "Segment":
        """Independent copy for replication at a branch point.

        Built via ``__new__`` + direct slot stores: replication runs once
        per branch per segment hop, so the constructor's default-argument
        handling is measurable overhead at paper scale.
        """
        copy = Segment.__new__(Segment)
        copy.transfer = self.transfer
        copy.seq = self.seq
        copy.nbytes = self.nbytes
        copy.route = self.route
        copy.ecn = self.ecn
        copy.ingress = None
        return copy

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Segment {self.transfer.name}#{self.seq} {self.nbytes}B"
            f"{' ECN' if self.ecn else ''}>"
        )
