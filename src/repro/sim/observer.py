"""Fabric observation hooks: one protocol, many consumers.

The runtime (:mod:`repro.sim.network`, :mod:`repro.sim.transfer`) emits a
small set of lifecycle events — segment copies being created, moved,
delivered, wasted or lost, PFC pause/resume, and dynamic link state changes.
Observers registered on a :class:`~repro.sim.network.Network` receive every
event; the base class is all no-ops so a consumer only overrides what it
needs.

Two consumers ship with the simulator:

* :class:`repro.sim.invariants.InvariantChecker` — machine-checked runtime
  invariants (byte conservation, occupancy, PFC quotas, exactly-once
  delivery, deadlock watchdog);
* :class:`repro.sim.trace.TraceRecorder` — deterministic event digests for
  golden-trace regression comparison.

Emission is guarded by an ``if network.observers`` check at every call
site, so an unobserved simulation pays one empty-list truthiness test per
event and nothing else.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from .network import HostNode, Port, SwitchNode
    from .packet import Segment
    from .transfer import Transfer


class FabricObserver:
    """Base class receiving fabric lifecycle events; all methods are no-ops.

    A *copy* below is one replicated instance of a segment: copies are
    created at the source NIC (``on_inject``) and at switch replication
    points (``on_fork``), and consumed by exactly one of ``on_deliver``,
    ``on_wasted`` or ``on_lost``.
    """

    # -- copy lifecycle -----------------------------------------------------

    def on_inject(self, host: "HostNode", segment: "Segment") -> None:
        """A new copy entered the fabric at the source NIC."""

    def on_fork(self, switch: "SwitchNode", segment: "Segment") -> None:
        """A replication point created an additional copy."""

    def on_deliver(self, host: "HostNode", segment: "Segment") -> None:
        """A copy reached a host NIC (pre any transfer-level dedup)."""

    def on_accept(self, transfer: "Transfer", host: str, segment: "Segment") -> None:
        """A transfer counted a delivery toward completion (post-dedup)."""

    def on_wasted(self, switch: "SwitchNode", segment: "Segment") -> None:
        """An over-covered edge switch discarded a copy (§3.3)."""

    def on_lost(self, port: "Port", segment: "Segment") -> None:
        """A copy died: wire corruption, a failed link, or an injected drop."""

    # -- movement -----------------------------------------------------------

    def on_enqueue(self, port: "Port", segment: "Segment") -> None:
        """A copy joined a port's output queue."""

    def on_tx_done(self, port: "Port", segment: "Segment") -> None:
        """A copy finished serializing and is propagating to the next hop."""

    def on_switch_receive(self, switch: "SwitchNode", segment: "Segment") -> None:
        """A copy arrived at a switch (before replication / discard)."""

    def on_header_strip(self, switch: "SwitchNode", segment: "Segment", nbytes: int) -> None:
        """A source-routing switch consumed ``nbytes`` of the segment's
        header (its own p-rule / label) before forwarding — the copy
        shrinks by ``nbytes`` for every downstream hop."""

    # -- flow control -------------------------------------------------------

    def on_pfc_pause(self, switch: "SwitchNode", port: "Port") -> None:
        """A switch paused one ingress (per-ingress PFC)."""

    def on_pfc_resume(self, switch: "SwitchNode", port: "Port") -> None:
        """A paused ingress drained below the resume quota."""

    # -- dynamic fabric state ----------------------------------------------

    def on_link_down(self, u: str, v: str) -> None:
        """Both directions of link ``u -- v`` stopped carrying traffic."""

    def on_link_up(self, u: str, v: str) -> None:
        """A previously failed link came back."""

    # -- transfer lifecycle -------------------------------------------------

    def on_transfer_start(self, transfer: "Transfer") -> None:
        """A transfer began injecting (or completed degenerately)."""

    def on_transfer_complete(self, transfer: "Transfer") -> None:
        """Every receiver of a transfer has the full message."""

    def on_reroute(self, transfer: "Transfer", num_trees: int) -> None:
        """A transfer switched to re-planned route trees after a fault."""

    def on_receiver_removed(self, transfer: "Transfer", host: str) -> None:
        """A membership leave dropped a receiver mid-transfer.  Per-host
        delivery state is void: if the host later rejoins, deliveries start
        from scratch (segments it saw before leaving arrive again)."""

    def on_failover(self, transfer: "Transfer", link: tuple[str, str]) -> None:
        """A transfer flipped to a pre-installed backup subtree — local
        fast-failover at the cut event, no detection delay or re-peel."""
