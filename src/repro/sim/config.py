"""Simulation configuration: link, buffer, ECN, PFC, DCQCN and granularity
parameters.  Defaults reproduce the paper's §4 setup (DCQCN+PFC as in
refs [27, 34]): 12 MB switch buffers, ECN marking between 5 kB and 200 kB at
1 % probability, PFC at 11 % free buffer with 5-MTU hysteresis, 100 Gb/s
links, NVLink at 900 GB/s."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class DcqcnConfig:
    """DCQCN rate-control knobs (names follow the original paper).

    ``guard_timer_s`` is PEEL's §4 modification: the *sender* reacts to at
    most one congestion notification per window across all receivers of a
    multicast group, replacing DCQCN's receiver-side CNP rate limiter.
    ``per_cnp_reaction`` disables any moderation — the naive multicast
    behaviour whose tail the guard timer fixes (12x claim).
    """

    enabled: bool = True
    alpha_g: float = 1 / 256
    alpha_init: float = 1.0
    rate_ai_bps: float = 5e9  # additive increase per step (scaled for 100G)
    rate_hai_bps: float = 50e9  # hyper increase per step
    fast_recovery_steps: int = 5
    increase_timer_s: float = 55e-6
    byte_counter_bytes: int = 10_000_000  # recovery also advances per bytes sent
    min_rate_bps: float = 1e9
    guard_timer_s: float = 50e-6
    per_cnp_reaction: bool = False  # ablation: react to every CNP


@dataclass
class SimConfig:
    """Fabric-wide simulation parameters."""

    mtu_bytes: int = 1500
    segment_bytes: int = 65536  # store-and-forward granularity (see DESIGN.md)
    propagation_delay_s: float = 1e-6  # per hop, ~200 m of fiber + PHY
    switch_buffer_bytes: int = 12_000_000
    ecn_kmin_bytes: int = 5_000
    ecn_kmax_bytes: int = 200_000
    ecn_pmax: float = 0.01
    pfc_pause_free_fraction: float = 0.11  # pause below this free share
    pfc_resume_hysteresis_mtus: int = 5
    nvlink_bytes_per_s: float = 900e9  # NVLink/NVSwitch per-GPU bandwidth
    host_processing_delay_s: float = 1e-6  # relay turnaround at a host
    #: Per-link, per-segment corruption probability.  Non-zero values turn
    #: on receiver state tracking and RDMA-style selective-repeat repair
    #: (the reliability machinery the paper inherits from RoCE, §1).
    loss_probability: float = 0.0
    retransmit_timeout_s: float = 500e-6
    seed: int = 0
    dcqcn: DcqcnConfig = field(default_factory=DcqcnConfig)

    def __post_init__(self) -> None:
        if self.segment_bytes < self.mtu_bytes:
            raise ValueError("segment_bytes must be at least one MTU")
        if not 0 < self.pfc_pause_free_fraction < 1:
            raise ValueError("pfc_pause_free_fraction must be in (0, 1)")
        if self.ecn_kmin_bytes >= self.ecn_kmax_bytes:
            raise ValueError("ecn_kmin must be below ecn_kmax")
        if not 0 <= self.loss_probability < 1:
            raise ValueError("loss_probability must be in [0, 1)")
        if self.retransmit_timeout_s <= 0:
            raise ValueError("retransmit_timeout_s must be positive")

    @property
    def pfc_pause_threshold_bytes(self) -> float:
        """Occupancy above which the switch pauses its feeders."""
        return self.switch_buffer_bytes * (1 - self.pfc_pause_free_fraction)

    @property
    def pfc_resume_threshold_bytes(self) -> float:
        return self.pfc_pause_threshold_bytes - (
            self.pfc_resume_hysteresis_mtus * self.mtu_bytes
        )

    def segments_for(self, message_bytes: int) -> list[int]:
        """Segment sizes for one message (last may be short)."""
        if message_bytes <= 0:
            raise ValueError("message_bytes must be positive")
        full, rem = divmod(message_bytes, self.segment_bytes)
        return [self.segment_bytes] * full + ([rem] if rem else [])
