"""Minimal discrete-event simulation engine (heapq-based).

Events are plain callbacks; ordering ties break by insertion sequence so
runs are fully deterministic for a fixed seed.

Fast path: heap entries are plain lists ``[time, seq, fn, args]`` rather
than objects with a Python-level ``__lt__``.  ``heapq`` then compares
entries with C-level list comparison (``time`` first, then the unique
``seq`` — ``fn`` is never reached), which removes the per-sift method-call
overhead that used to dominate large runs.  Cancellation nulls the ``fn``
slot in place; cancelled entries are skipped on pop and compacted away in
bulk when they outnumber the live ones (so long fault-heavy runs that
cancel many timers don't grow the heap without bound).
"""

from __future__ import annotations

import pickle
from hashlib import blake2b
from heapq import heapify, heappop, heappush
from struct import pack
from typing import Any, Callable

# Heap-entry slot indices (an entry is [time, seq, fn, args]).
_TIME, _SEQ, _FN, _ARGS = 0, 1, 2, 3

#: Below this heap size compaction is pointless (the scan costs more than
#: the dead entries do).
_COMPACT_MIN = 64


class EventDigest:
    """Rolling digest over the fired-event sequence ``(time, seq)``.

    Unlike a live ``hashlib`` object, the state is a plain ``bytes`` value,
    so a digest survives :meth:`Simulator.snapshot` / pickling and a
    restored run keeps folding into the same chain.  Two runs that process
    the same events in the same order at the same simulated times produce
    the same hex digest — replay verification compares exactly that.
    """

    __slots__ = ("state", "count")

    def __init__(self) -> None:
        self.state = b"\x00" * 16
        self.count = 0

    def update(self, time: float, seq: int) -> None:
        h = blake2b(self.state, digest_size=16)
        h.update(pack("<dq", time, seq))
        self.state = h.digest()
        self.count += 1

    def hexdigest(self) -> str:
        return self.state.hex()


class EventHandle:
    """Returned by :meth:`Simulator.schedule`; allows cancellation."""

    __slots__ = ("_sim", "_entry")

    def __init__(self, sim: "Simulator", entry: list) -> None:
        self._sim = sim
        self._entry = entry

    def cancel(self) -> None:
        if self._entry[_FN] is not None:
            self._sim._cancel(self._entry)

    @property
    def time(self) -> float:
        return self._entry[_TIME]

    @property
    def active(self) -> bool:
        """True while the event is still scheduled (not cancelled/fired)."""
        return self._entry[_FN] is not None


class Simulator:
    """Event loop with a monotonically advancing clock (seconds)."""

    __slots__ = (
        "now", "_heap", "_seq", "_processed", "_live", "_cancelled", "_digest"
    )

    def __init__(self) -> None:
        self.now = 0.0
        self._heap: list[list] = []
        self._seq = 0
        self._processed = 0
        self._live = 0  # scheduled entries not yet fired or cancelled
        self._cancelled = 0  # cancelled entries still parked in the heap
        self._digest: EventDigest | None = None

    def schedule(
        self, delay: float, fn: Callable[..., Any], *args: Any
    ) -> EventHandle:
        """Run ``fn(*args)`` after ``delay`` seconds of simulated time."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        entry = [self.now + delay, self._seq, fn, args]
        self._seq += 1
        self._live += 1
        heappush(self._heap, entry)
        return EventHandle(self, entry)

    def schedule_at(
        self, time: float, fn: Callable[..., Any], *args: Any
    ) -> EventHandle:
        if time < self.now:
            raise ValueError(f"cannot schedule in the past: {time} < {self.now}")
        entry = [time, self._seq, fn, args]
        self._seq += 1
        self._live += 1
        heappush(self._heap, entry)
        return EventHandle(self, entry)

    # -- no-handle fast path ---------------------------------------------------
    #
    # The data plane schedules hundreds of thousands of fire-and-forget
    # events (serialization done, propagation done, CNP delivery) whose
    # handles nobody ever cancels; skipping the EventHandle allocation is
    # a measurable win.  Semantics are identical to schedule()/schedule_at().

    def post(self, delay: float, fn: Callable[..., Any], *args: Any) -> None:
        """:meth:`schedule` without allocating a cancellation handle."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        self._live += 1
        heappush(self._heap, [self.now + delay, self._seq, fn, args])
        self._seq += 1

    def post_at(self, time: float, fn: Callable[..., Any], *args: Any) -> None:
        """:meth:`schedule_at` without allocating a cancellation handle."""
        if time < self.now:
            raise ValueError(f"cannot schedule in the past: {time} < {self.now}")
        self._live += 1
        heappush(self._heap, [time, self._seq, fn, args])
        self._seq += 1

    # -- cancellation ----------------------------------------------------------

    def _cancel(self, entry: list) -> None:
        entry[_FN] = None
        entry[_ARGS] = ()  # drop references early (segments, transfers)
        self._live -= 1
        self._cancelled += 1
        # Lazy compaction: once dead entries outnumber live ones in a
        # non-trivial heap, rebuild it.  Amortized O(1) per cancellation.
        heap = self._heap
        if self._cancelled > len(heap) // 2 and len(heap) >= _COMPACT_MIN:
            self._heap = [e for e in heap if e[_FN] is not None]
            heapify(self._heap)
            self._cancelled = 0

    def run(self, until: float | None = None, max_events: int | None = None) -> int:
        """Drain the event queue; returns the number of events processed.

        ``until`` stops the clock at a horizon (inclusive); ``max_events``
        guards against runaway simulations.
        """
        heap = self._heap
        pop = heappop
        processed = 0
        # Hoisted: digests attach only between run() calls (safe points).
        digest = self._digest
        while heap:
            if max_events is not None and processed >= max_events:
                break
            entry = heap[0]
            time = entry[0]
            if until is not None and time > until:
                break
            pop(heap)
            fn = entry[2]
            if fn is None:
                self._cancelled -= 1
                continue
            entry[2] = None  # fired: handle.active goes False, refs drop
            self._live -= 1
            self.now = time
            if digest is not None:
                digest.update(time, entry[1])
            fn(*entry[3])
            processed += 1
            heap = self._heap  # compaction may have swapped the list
        self._processed += processed
        if until is not None and (not heap or heap[0][0] > until):
            self.now = max(self.now, until)
        return processed

    @property
    def pending(self) -> int:
        """Live (non-cancelled, non-fired) scheduled events — O(1)."""
        return self._live

    @property
    def processed(self) -> int:
        return self._processed

    # -- checkpoint/replay -----------------------------------------------------
    #
    # A simulator between run() calls is at a *safe point*: no callback is
    # executing, every in-flight effect lives either in object state or as
    # a heap entry.  Pickling the simulator therefore captures the entire
    # reachable object graph — heap entries (tombstones included), the seq
    # counter, and every network/transfer/RNG object the scheduled bound
    # methods hang off — and unpickling resumes the exact event sequence.
    # Callables scheduled into the loop must be picklable (bound methods or
    # module-level callables; no lambdas or closures).

    def attach_digest(self, digest: EventDigest | None = None) -> EventDigest:
        """Fold every subsequently fired event into ``digest``.

        Must be called at a safe point (never from inside a callback: the
        running loop binds the digest once on entry).  Returns the digest.
        """
        if digest is None:
            digest = EventDigest()
        self._digest = digest
        return digest

    @property
    def event_digest(self) -> EventDigest | None:
        return self._digest

    def snapshot(self) -> bytes:
        """Serialize full simulator state at a safe point (see above).

        The returned bytes capture the event heap (tombstones and the seq
        counter included) plus everything reachable from scheduled
        callbacks.  Restore with :meth:`Simulator.restore` — typically in a
        fresh process — and the resumed run is event-for-event identical to
        one that never stopped.
        """
        return pickle.dumps(self, protocol=pickle.HIGHEST_PROTOCOL)

    @staticmethod
    def restore(blob: bytes) -> "Simulator":
        """Rehydrate a simulator (and its object graph) from snapshot()."""
        sim = pickle.loads(blob)
        if not isinstance(sim, Simulator):
            raise TypeError(f"snapshot does not contain a Simulator: {type(sim)!r}")
        return sim
