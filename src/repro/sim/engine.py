"""Minimal discrete-event simulation engine (calendar-queue based).

Events are plain callbacks; ordering ties break by insertion sequence so
runs are fully deterministic for a fixed seed.

Fast path: entries are plain lists ``[time, seq, fn, args]`` compared with
C-level list comparison (``time`` first, then the unique ``seq`` — ``fn``
is never reached).  Instead of one global binary heap, entries live in a
**calendar queue**: a sparse dict of time buckets keyed by
``int(time * inv_width)``.  Inserting is an O(1) amortized append into the
target bucket; the engine consumes buckets in index order, sorting each
one once (C timsort) on activation and then popping by plain index
increment — no per-event heap sift.  The dense-timestamp segment workload
(hundreds of thousands of events spaced by serialization/propagation
constants) is exactly the shape this favours.

Structural notes:

* **Bucket order is total order.**  ``idx(t) = int(t * inv_width)`` is a
  monotone function of ``t``, so consuming buckets in index order and each
  bucket in sorted ``(time, seq)`` order yields the exact global
  ``(time, seq)`` order a heap would — tie-breaking included.
* **Far-future timers** (guard timers, fault schedules, samplers) cost
  nothing extra: the bucket dict is sparse, so a timer seconds ahead of a
  microsecond-scale workload is one distant bucket plus one entry in the
  bucket-index min-heap (the "sorted spill" that stands in for a heap
  fallback).  Indices past ``_FAR_IDX`` collapse into one overflow bucket
  so even ``inf``-ish timestamps stay finite to index.
* **Late arrivals into the active bucket** (a callback scheduling a few
  microseconds ahead) are merged with ``bisect.insort`` — C code, correct
  by the same list-comparison order.
* **Cancellation** nulls the ``fn`` slot in place (tombstone); dead
  entries are skipped on pop and compacted away in bulk when they
  outnumber the live ones.
* **Width retuning** is deterministic: every ``_RETUNE_EVERY`` fired
  events the engine re-estimates the mean event gap from simulated time
  actually covered and rebuckets if the bucket width is badly sized.  The
  estimate depends only on event history, so identical runs retune
  identically and :meth:`snapshot`/:meth:`restore` carry the tuning state
  with the rest of the queue.
"""

from __future__ import annotations

import pickle
from bisect import insort
from hashlib import blake2b
from heapq import heappop, heappush
from struct import pack
from typing import Any, Callable

# Entry slot indices.  Entry shape is length-coded by arity so the hot
# paths never build or unpack an args tuple:
#   len 3: [time, seq, fn]              -> fn()
#   len 4: [time, seq, fn, a]           -> fn(a)
#   len 5: [time, seq, fn, a, b]        -> fn(a, b)
#   len 6: [time, seq, fn, None, None, args] -> fn(*args)   (generic; the
#          only shape :meth:`Simulator.schedule` hands to an EventHandle)
# List comparison orders entries by (time, seq) — seq is unique, so the
# payload slots past index 1 are never compared.
_TIME, _SEQ, _FN, _GENERIC_ARGS = 0, 1, 2, 5

#: Below this queue size compaction is pointless (the scan costs more than
#: the dead entries do).
_COMPACT_MIN = 64

#: Target mean live entries per bucket after a retune.
_TARGET_OCCUPANCY = 16

#: Fired events between width-retune checks.
_RETUNE_EVERY = 8192

#: Bucket indices at or past this collapse into one far-overflow bucket
#: (keeps ``int(time * inv_width)`` harmless for enormous timestamps).
_FAR_IDX = 1 << 62

#: Initial bucket width in simulated seconds.  Sized for the microsecond
#: segment workload; the deterministic retune adapts it for slower or
#: faster event densities within one retune window.
_INITIAL_WIDTH = 1e-5


class EventDigest:
    """Rolling digest over the fired-event sequence ``(time, seq)``.

    Unlike a live ``hashlib`` object, the state is a plain ``bytes`` value,
    so a digest survives :meth:`Simulator.snapshot` / pickling and a
    restored run keeps folding into the same chain.  Two runs that process
    the same events in the same order at the same simulated times produce
    the same hex digest — replay verification compares exactly that.
    """

    __slots__ = ("state", "count")

    def __init__(self) -> None:
        self.state = b"\x00" * 16
        self.count = 0

    def update(self, time: float, seq: int) -> None:
        h = blake2b(self.state, digest_size=16)
        h.update(pack("<dq", time, seq))
        self.state = h.digest()
        self.count += 1

    def hexdigest(self) -> str:
        return self.state.hex()


class EventHandle:
    """Returned by :meth:`Simulator.schedule`; allows cancellation."""

    __slots__ = ("_sim", "_entry")

    def __init__(self, sim: "Simulator", entry: list) -> None:
        self._sim = sim
        self._entry = entry

    def cancel(self) -> None:
        if self._entry[_FN] is not None:
            self._sim._cancel(self._entry)

    @property
    def time(self) -> float:
        return self._entry[_TIME]

    @property
    def active(self) -> bool:
        """True while the event is still scheduled (not cancelled/fired)."""
        return self._entry[_FN] is not None


class Simulator:
    """Event loop with a monotonically advancing clock (seconds)."""

    __slots__ = (
        "now", "_seq", "_processed", "_live", "_cancelled", "_digest",
        "_buckets", "_bidx", "_cur", "_cur_i", "_cur_idx",
        "_width", "_inv_width", "_tune_t0", "_tune_n0", "_fired",
    )

    def __init__(self) -> None:
        self.now = 0.0
        self._seq = 0
        self._processed = 0
        self._live = 0  # scheduled entries not yet fired or cancelled
        self._cancelled = 0  # cancelled entries still parked in the queue
        self._digest: EventDigest | None = None
        # Calendar queue state (see module docstring).
        self._buckets: dict[int, list[list]] = {}
        self._bidx: list[int] = []  # min-heap of pending bucket indices
        self._cur: list[list] = []  # activated bucket, sorted, popped by index
        self._cur_i = 0
        self._cur_idx = -1
        self._width = _INITIAL_WIDTH
        self._inv_width = 1.0 / _INITIAL_WIDTH
        # Deterministic width-retune window (simulated time vs events).
        self._tune_t0 = 0.0
        self._tune_n0 = 0
        self._fired = 0

    # -- insertion -------------------------------------------------------------

    def _insert(self, entry: list) -> None:
        time = entry[0]
        idx = int(time * self._inv_width)
        if idx >= _FAR_IDX:
            idx = _FAR_IDX
        if idx <= self._cur_idx:
            # Lands in (or before) the active bucket: merge in sorted
            # position.  ``lo=_cur_i`` is safe — the entry's time is >= the
            # clock, so it cannot sort before an already-fired entry.
            insort(self._cur, entry, self._cur_i)
        else:
            bucket = self._buckets.get(idx)
            if bucket is None:
                self._buckets[idx] = [entry]
                heappush(self._bidx, idx)
            else:
                bucket.append(entry)

    def schedule(
        self, delay: float, fn: Callable[..., Any], *args: Any
    ) -> EventHandle:
        """Run ``fn(*args)`` after ``delay`` seconds of simulated time."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        entry = [self.now + delay, self._seq, fn, None, None, args]
        self._seq += 1
        self._live += 1
        self._insert(entry)
        return EventHandle(self, entry)

    def schedule_at(
        self, time: float, fn: Callable[..., Any], *args: Any
    ) -> EventHandle:
        if time < self.now:
            raise ValueError(f"cannot schedule in the past: {time} < {self.now}")
        entry = [time, self._seq, fn, None, None, args]
        self._seq += 1
        self._live += 1
        self._insert(entry)
        return EventHandle(self, entry)

    # -- no-handle fast path ---------------------------------------------------
    #
    # The data plane schedules hundreds of thousands of fire-and-forget
    # events (serialization done, propagation done, CNP delivery) whose
    # handles nobody ever cancels; skipping the EventHandle allocation is
    # a measurable win.  Semantics are identical to schedule()/schedule_at().

    def post(self, delay: float, fn: Callable[..., Any], *args: Any) -> None:
        """:meth:`schedule` without allocating a cancellation handle."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        seq = self._seq
        self._seq = seq + 1
        self._live += 1
        time = self.now + delay
        n = len(args)
        if n == 1:
            entry = [time, seq, fn, args[0]]
        elif n == 2:
            entry = [time, seq, fn, args[0], args[1]]
        elif n == 0:
            entry = [time, seq, fn]
        else:
            entry = [time, seq, fn, None, None, args]
        idx = int(time * self._inv_width)
        if self._cur_idx < idx < _FAR_IDX:
            # Existing-bucket append is the overwhelmingly common case
            # (one miss per bucket lifetime): subscript + EAFP beats .get.
            try:
                self._buckets[idx].append(entry)
            except KeyError:
                self._buckets[idx] = [entry]
                heappush(self._bidx, idx)
        else:
            self._insert(entry)

    def post1(self, delay: float, fn: Callable[..., Any], a: Any) -> None:
        """:meth:`post` specialized to one argument (no tuple packing)."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        seq = self._seq
        self._seq = seq + 1
        self._live += 1
        time = self.now + delay
        idx = int(time * self._inv_width)
        if self._cur_idx < idx < _FAR_IDX:
            try:
                self._buckets[idx].append([time, seq, fn, a])
            except KeyError:
                self._buckets[idx] = [[time, seq, fn, a]]
                heappush(self._bidx, idx)
        else:
            self._insert([time, seq, fn, a])

    def post2(self, delay: float, fn: Callable[..., Any], a: Any, b: Any) -> None:
        """:meth:`post` specialized to two arguments (no tuple packing)."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        seq = self._seq
        self._seq = seq + 1
        self._live += 1
        time = self.now + delay
        idx = int(time * self._inv_width)
        if self._cur_idx < idx < _FAR_IDX:
            try:
                self._buckets[idx].append([time, seq, fn, a, b])
            except KeyError:
                self._buckets[idx] = [[time, seq, fn, a, b]]
                heappush(self._bidx, idx)
        else:
            self._insert([time, seq, fn, a, b])

    def post_at(self, time: float, fn: Callable[..., Any], *args: Any) -> None:
        """:meth:`schedule_at` without allocating a cancellation handle."""
        if time < self.now:
            raise ValueError(f"cannot schedule in the past: {time} < {self.now}")
        seq = self._seq
        self._seq = seq + 1
        self._live += 1
        n = len(args)
        if n == 1:
            self._insert([time, seq, fn, args[0]])
        elif n == 0:
            self._insert([time, seq, fn])
        elif n == 2:
            self._insert([time, seq, fn, args[0], args[1]])
        else:
            self._insert([time, seq, fn, None, None, args])

    # -- cancellation ----------------------------------------------------------

    def _cancel(self, entry: list) -> None:
        # Only schedule()/schedule_at() hand out handles, so a cancelled
        # entry always has the generic (len 6) shape.
        entry[_FN] = None
        entry[_GENERIC_ARGS] = ()  # drop references early (segments, ...)
        self._live -= 1
        self._cancelled += 1
        # Lazy compaction: once dead entries outnumber live ones in a
        # non-trivial queue, rebuild it.  Amortized O(1) per cancellation.
        if (
            self._cancelled > self._live
            and self._cancelled + self._live >= _COMPACT_MIN
        ):
            self._rebuild(self._width)

    def _rebuild(self, width: float) -> None:
        """Re-bucket every pending entry (dropping tombstones) at ``width``.

        Also the compaction path (same width) and the retune path (new
        width).  Safe at any point outside :meth:`_insert` — entry lists
        keep their identity, so live :class:`EventHandle` references stay
        valid.
        """
        entries = [e for e in self._cur[self._cur_i:] if e[_FN] is not None]
        for bucket in self._buckets.values():
            entries.extend(e for e in bucket if e[_FN] is not None)
        self._cancelled = 0
        self._width = width
        self._inv_width = inv = 1.0 / width
        self._buckets = {}
        self._bidx = []
        self._cur = []
        self._cur_i = 0
        self._cur_idx = int(self.now * inv)
        for entry in entries:
            self._insert(entry)

    def _maybe_retune(self) -> None:
        """Deterministic width adaptation (see module docstring)."""
        fired = self._fired
        span = self.now - self._tune_t0
        gap = span / max(fired - self._tune_n0, 1)
        self._tune_t0 = self.now
        self._tune_n0 = fired
        if gap <= 0.0:
            return
        width = gap * _TARGET_OCCUPANCY
        # Only pay the O(n) rebucket when the current width is badly off.
        if not 0.25 <= width / self._width <= 4.0:
            self._rebuild(width)

    # -- activation ------------------------------------------------------------

    def _activate(self) -> bool:
        """Make ``_cur[_cur_i]`` the global head; False when queue empty."""
        while self._cur_i >= len(self._cur):
            if not self._bidx:
                return False
            idx = heappop(self._bidx)
            bucket = self._buckets.pop(idx)
            bucket.sort()
            self._cur = bucket
            self._cur_i = 0
            self._cur_idx = idx
        return True

    def run(self, until: float | None = None, max_events: int | None = None) -> int:
        """Drain the event queue; returns the number of events processed.

        ``until`` stops the clock at a horizon (inclusive); ``max_events``
        guards against runaway simulations.
        """
        processed = 0
        # Hoisted: digests attach only between run() calls (safe points).
        digest = self._digest
        fired = self._fired
        retune_at = fired + _RETUNE_EVERY
        if until is None and max_events is None and digest is None:
            # Drain-to-empty fast loop: no horizon/budget/digest checks per
            # event, ``_fired`` kept in a local (synced at retune points and
            # on exit).  Still re-validates the active bucket after every
            # callback — an insort only grows ``cur`` in place (refresh the
            # length), while compaction/retune swaps the list object
            # (identity check falls back to the outer refetch).
            while True:
                cur = self._cur
                i = self._cur_i
                n = len(cur)
                if i >= n:
                    self._fired = fired
                    if not self._activate():
                        break
                    continue
                while i < n:
                    entry = cur[i]
                    i += 1
                    self._cur_i = i
                    fn = entry[2]
                    if fn is None:
                        self._cancelled -= 1
                        continue
                    self._live -= 1
                    self.now = entry[0]
                    length = len(entry)
                    if length == 4:
                        fn(entry[3])
                    elif length == 5:
                        fn(entry[3], entry[4])
                    elif length == 3:
                        fn()
                    else:
                        entry[2] = None  # fired: handle.active drops
                        fn(*entry[5])
                    processed += 1
                    fired += 1
                    if fired >= retune_at:
                        self._fired = fired
                        self._maybe_retune()
                        retune_at = fired + _RETUNE_EVERY
                    if self._cur is not cur:
                        break  # compaction/retune replaced the bucket list
                    # An insort from the callback can only grow ``cur`` at
                    # or after ``_cur_i`` (== local ``i``): refresh length.
                    n = len(cur)
            self._fired = fired
            self._processed += processed
            return processed
        while True:
            cur = self._cur
            i = self._cur_i
            if i >= len(cur):
                if not self._activate():
                    break
                continue
            entry = cur[i]
            time = entry[0]
            if until is not None and time > until:
                break
            if max_events is not None and processed >= max_events:
                break
            self._cur_i = i + 1
            fn = entry[2]
            if fn is None:
                self._cancelled -= 1
                continue
            self._live -= 1
            self.now = time
            if digest is not None:
                digest.update(time, entry[1])
            length = len(entry)
            if length == 4:
                fn(entry[3])
            elif length == 5:
                fn(entry[3], entry[4])
            elif length == 3:
                fn()
            else:
                entry[2] = None  # fired: handle.active goes False, refs drop
                fn(*entry[5])
            processed += 1
            fired = self._fired = self._fired + 1
            if fired >= retune_at:
                self._maybe_retune()
                retune_at = fired + _RETUNE_EVERY
        self._processed += processed
        if until is not None and (
            not self._activate() or self._cur[self._cur_i][0] > until
        ):
            self.now = max(self.now, until)
        return processed

    @property
    def pending(self) -> int:
        """Live (non-cancelled, non-fired) scheduled events — O(1)."""
        return self._live

    @property
    def processed(self) -> int:
        return self._processed

    # -- checkpoint/replay -----------------------------------------------------
    #
    # A simulator between run() calls is at a *safe point*: no callback is
    # executing, every in-flight effect lives either in object state or as
    # a bucket entry.  Pickling the simulator therefore captures the entire
    # reachable object graph — calendar buckets (tombstones included), the
    # seq counter and width-tuning state, and every network/transfer/RNG
    # object the scheduled bound methods hang off — and unpickling resumes
    # the exact event sequence.  Callables scheduled into the loop must be
    # picklable (bound methods or module-level callables; no lambdas or
    # closures).

    def attach_digest(self, digest: EventDigest | None = None) -> EventDigest:
        """Fold every subsequently fired event into ``digest``.

        Must be called at a safe point (never from inside a callback: the
        running loop binds the digest once on entry).  Returns the digest.
        """
        if digest is None:
            digest = EventDigest()
        self._digest = digest
        return digest

    @property
    def event_digest(self) -> EventDigest | None:
        return self._digest

    def snapshot(self) -> bytes:
        """Serialize full simulator state at a safe point (see above).

        The returned bytes capture the calendar queue (tombstones, the seq
        counter and bucket-width tuning state included) plus everything
        reachable from scheduled callbacks.  Restore with
        :meth:`Simulator.restore` — typically in a fresh process — and the
        resumed run is event-for-event identical to one that never
        stopped.
        """
        return pickle.dumps(self, protocol=pickle.HIGHEST_PROTOCOL)

    @staticmethod
    def restore(blob: bytes) -> "Simulator":
        """Rehydrate a simulator (and its object graph) from snapshot()."""
        sim = pickle.loads(blob)
        if not isinstance(sim, Simulator):
            raise TypeError(f"snapshot does not contain a Simulator: {type(sim)!r}")
        return sim
