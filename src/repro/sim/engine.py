"""Minimal discrete-event simulation engine (heapq-based).

Events are plain callbacks; ordering ties break by insertion sequence so
runs are fully deterministic for a fixed seed.

Fast path: heap entries are plain lists ``[time, seq, fn, args]`` rather
than objects with a Python-level ``__lt__``.  ``heapq`` then compares
entries with C-level list comparison (``time`` first, then the unique
``seq`` — ``fn`` is never reached), which removes the per-sift method-call
overhead that used to dominate large runs.  Cancellation nulls the ``fn``
slot in place; cancelled entries are skipped on pop and compacted away in
bulk when they outnumber the live ones (so long fault-heavy runs that
cancel many timers don't grow the heap without bound).
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from typing import Any, Callable

# Heap-entry slot indices (an entry is [time, seq, fn, args]).
_TIME, _SEQ, _FN, _ARGS = 0, 1, 2, 3

#: Below this heap size compaction is pointless (the scan costs more than
#: the dead entries do).
_COMPACT_MIN = 64


class EventHandle:
    """Returned by :meth:`Simulator.schedule`; allows cancellation."""

    __slots__ = ("_sim", "_entry")

    def __init__(self, sim: "Simulator", entry: list) -> None:
        self._sim = sim
        self._entry = entry

    def cancel(self) -> None:
        if self._entry[_FN] is not None:
            self._sim._cancel(self._entry)

    @property
    def time(self) -> float:
        return self._entry[_TIME]

    @property
    def active(self) -> bool:
        """True while the event is still scheduled (not cancelled/fired)."""
        return self._entry[_FN] is not None


class Simulator:
    """Event loop with a monotonically advancing clock (seconds)."""

    __slots__ = ("now", "_heap", "_seq", "_processed", "_live", "_cancelled")

    def __init__(self) -> None:
        self.now = 0.0
        self._heap: list[list] = []
        self._seq = 0
        self._processed = 0
        self._live = 0  # scheduled entries not yet fired or cancelled
        self._cancelled = 0  # cancelled entries still parked in the heap

    def schedule(
        self, delay: float, fn: Callable[..., Any], *args: Any
    ) -> EventHandle:
        """Run ``fn(*args)`` after ``delay`` seconds of simulated time."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        entry = [self.now + delay, self._seq, fn, args]
        self._seq += 1
        self._live += 1
        heappush(self._heap, entry)
        return EventHandle(self, entry)

    def schedule_at(
        self, time: float, fn: Callable[..., Any], *args: Any
    ) -> EventHandle:
        if time < self.now:
            raise ValueError(f"cannot schedule in the past: {time} < {self.now}")
        entry = [time, self._seq, fn, args]
        self._seq += 1
        self._live += 1
        heappush(self._heap, entry)
        return EventHandle(self, entry)

    # -- no-handle fast path ---------------------------------------------------
    #
    # The data plane schedules hundreds of thousands of fire-and-forget
    # events (serialization done, propagation done, CNP delivery) whose
    # handles nobody ever cancels; skipping the EventHandle allocation is
    # a measurable win.  Semantics are identical to schedule()/schedule_at().

    def post(self, delay: float, fn: Callable[..., Any], *args: Any) -> None:
        """:meth:`schedule` without allocating a cancellation handle."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        self._live += 1
        heappush(self._heap, [self.now + delay, self._seq, fn, args])
        self._seq += 1

    def post_at(self, time: float, fn: Callable[..., Any], *args: Any) -> None:
        """:meth:`schedule_at` without allocating a cancellation handle."""
        if time < self.now:
            raise ValueError(f"cannot schedule in the past: {time} < {self.now}")
        self._live += 1
        heappush(self._heap, [time, self._seq, fn, args])
        self._seq += 1

    # -- cancellation ----------------------------------------------------------

    def _cancel(self, entry: list) -> None:
        entry[_FN] = None
        entry[_ARGS] = ()  # drop references early (segments, transfers)
        self._live -= 1
        self._cancelled += 1
        # Lazy compaction: once dead entries outnumber live ones in a
        # non-trivial heap, rebuild it.  Amortized O(1) per cancellation.
        heap = self._heap
        if self._cancelled > len(heap) // 2 and len(heap) >= _COMPACT_MIN:
            self._heap = [e for e in heap if e[_FN] is not None]
            heapify(self._heap)
            self._cancelled = 0

    def run(self, until: float | None = None, max_events: int | None = None) -> int:
        """Drain the event queue; returns the number of events processed.

        ``until`` stops the clock at a horizon (inclusive); ``max_events``
        guards against runaway simulations.
        """
        heap = self._heap
        pop = heappop
        processed = 0
        while heap:
            if max_events is not None and processed >= max_events:
                break
            entry = heap[0]
            time = entry[0]
            if until is not None and time > until:
                break
            pop(heap)
            fn = entry[2]
            if fn is None:
                self._cancelled -= 1
                continue
            entry[2] = None  # fired: handle.active goes False, refs drop
            self._live -= 1
            self.now = time
            fn(*entry[3])
            processed += 1
            heap = self._heap  # compaction may have swapped the list
        self._processed += processed
        if until is not None and (not heap or heap[0][0] > until):
            self.now = max(self.now, until)
        return processed

    @property
    def pending(self) -> int:
        """Live (non-cancelled, non-fired) scheduled events — O(1)."""
        return self._live

    @property
    def processed(self) -> int:
        return self._processed
