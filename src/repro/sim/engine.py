"""Minimal discrete-event simulation engine (heapq-based).

Events are plain callbacks; ordering ties break by insertion sequence so
runs are fully deterministic for a fixed seed.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable


@dataclass(order=True)
class _Event:
    time: float
    seq: int
    fn: Callable[..., Any] = field(compare=False)
    args: tuple = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)


class EventHandle:
    """Returned by :meth:`Simulator.schedule`; allows cancellation."""

    __slots__ = ("_event",)

    def __init__(self, event: _Event) -> None:
        self._event = event

    def cancel(self) -> None:
        self._event.cancelled = True

    @property
    def time(self) -> float:
        return self._event.time

    @property
    def active(self) -> bool:
        return not self._event.cancelled


class Simulator:
    """Event loop with a monotonically advancing clock (seconds)."""

    def __init__(self) -> None:
        self.now = 0.0
        self._heap: list[_Event] = []
        self._seq = 0
        self._processed = 0

    def schedule(
        self, delay: float, fn: Callable[..., Any], *args: Any
    ) -> EventHandle:
        """Run ``fn(*args)`` after ``delay`` seconds of simulated time."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        return self.schedule_at(self.now + delay, fn, *args)

    def schedule_at(
        self, time: float, fn: Callable[..., Any], *args: Any
    ) -> EventHandle:
        if time < self.now:
            raise ValueError(f"cannot schedule in the past: {time} < {self.now}")
        event = _Event(time, self._seq, fn, args)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return EventHandle(event)

    def run(self, until: float | None = None, max_events: int | None = None) -> int:
        """Drain the event queue; returns the number of events processed.

        ``until`` stops the clock at a horizon (inclusive); ``max_events``
        guards against runaway simulations.
        """
        processed = 0
        while self._heap:
            if max_events is not None and processed >= max_events:
                break
            event = self._heap[0]
            if until is not None and event.time > until:
                break
            heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self.now = event.time
            event.fn(*event.args)
            processed += 1
        self._processed += processed
        if until is not None and (not self._heap or self._heap[0].time > until):
            self.now = max(self.now, until)
        return processed

    @property
    def pending(self) -> int:
        return sum(1 for e in self._heap if not e.cancelled)

    @property
    def processed(self) -> int:
        return self._processed
