"""Discrete-event network simulator: engine, runtime fabric (ports, ECN,
PFC), DCQCN rate control, unicast routing, and paced transfers."""

from .config import DcqcnConfig, SimConfig
from .dcqcn import DcqcnSender
from .engine import EventHandle, Simulator
from .invariants import InvariantChecker, InvariantViolation, Violation
from .network import HostNode, Network, Port, SwitchNode
from .observer import FabricObserver
from .packet import Segment
from .routing import UnicastRouter
from .stats import FabricSummary, fabric_summary, format_summary
from .trace import TraceRecorder, diff_traces
from .transfer import Transfer

__all__ = [
    "DcqcnConfig",
    "SimConfig",
    "DcqcnSender",
    "EventHandle",
    "Simulator",
    "FabricObserver",
    "InvariantChecker",
    "InvariantViolation",
    "Violation",
    "Network",
    "Port",
    "SwitchNode",
    "HostNode",
    "Segment",
    "UnicastRouter",
    "FabricSummary",
    "fabric_summary",
    "format_summary",
    "TraceRecorder",
    "diff_traces",
    "Transfer",
]
