"""Runtime invariant checking for the simulated fabric.

The :class:`InvariantChecker` registers as a
:class:`~repro.sim.observer.FabricObserver` on a
:class:`~repro.sim.network.Network` and machine-checks, continuously while
the simulation runs, the properties every experiment silently assumes:

* **byte conservation** — every copy created (source injection + switch
  replication) is eventually delivered, wasted at an over-covered ToR, or
  lost; at any instant the lifecycle ledger must equal the bytes physically
  sitting in queues, serializers and on the wire;
* **non-negative occupancy** — port queues, shared switch buffers and
  per-ingress PFC accounting never go negative;
* **PFC quota respect** — an ingress never parks more than its pause quota
  plus the physically unavoidable skid (the in-flight bytes that arrive
  after the PAUSE, multiplied by the replication fan-out they charge);
* **exactly-once delivery** — a transfer never counts the same segment
  twice for the same destination (duplicate raw copies are allowed — repair
  races produce them — double *acceptance* is not);
* **deadlock watchdog** — while copies are in flight, bytes keep moving; a
  full watchdog window with pending unpaused work and zero progress flags a
  stall (e.g. a PFC circular buffer dependency).

Violations either raise :class:`InvariantViolation` immediately (default —
the right mode for tests) or accumulate in :attr:`InvariantChecker.violations`
for post-run inspection (the right mode for long experiment sweeps).
Call :meth:`InvariantChecker.finalize` after the run for the end-state
checks (no leaked in-flight bytes, complete transfers fully accepted,
quiescent-deadlock detection).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from .network import Network, SwitchNode
from .observer import FabricObserver

if TYPE_CHECKING:  # pragma: no cover
    from .network import HostNode, Port
    from .packet import Segment
    from .transfer import Transfer


class InvariantViolation(AssertionError):
    """A machine-checked simulator invariant failed."""

    def __init__(self, violation: "Violation") -> None:
        super().__init__(str(violation))
        self.violation = violation


@dataclass(frozen=True)
class Violation:
    """One failed invariant check."""

    invariant: str
    time_s: float
    detail: str

    def __str__(self) -> str:
        return f"[{self.invariant} @ {self.time_s * 1e3:.3f}ms] {self.detail}"


class InvariantChecker(FabricObserver):
    """Continuously asserts fabric invariants (see module docstring).

    ``raise_immediately`` turns the first violation into an
    :class:`InvariantViolation`; otherwise violations accumulate in
    :attr:`violations`.  ``watchdog_interval_s`` is the progress-watchdog
    cadence in simulated seconds.
    """

    def __init__(
        self,
        network: Network,
        *,
        raise_immediately: bool = True,
        watchdog_interval_s: float = 2e-3,
        pfc_skid_bytes: float | None = None,
        watchdog: bool = True,
    ) -> None:
        if watchdog_interval_s <= 0:
            raise ValueError("watchdog_interval_s must be positive")
        self.network = network
        self.sim = network.sim
        self.raise_immediately = raise_immediately
        self.watchdog_interval_s = watchdog_interval_s
        #: The deadlock watchdog schedules real simulator events; sharded
        #: runs disable it so the fired-event stream stays partitionable.
        self.watchdog_enabled = watchdog
        self._pfc_skid_override = pfc_skid_bytes

        self.violations: list[Violation] = []
        self.checks = 0  # individual invariant evaluations performed

        # Copy-lifecycle ledger (the "sent = delivered + in-flight + wasted"
        # identity, with loss as the fourth sink).
        self.created_bytes = 0
        self.delivered_bytes = 0
        self.wasted_bytes = 0
        self.lost_bytes = 0
        self.stripped_bytes = 0  # header bytes consumed by source-routing hops
        self.in_flight_bytes = 0
        self.in_flight_copies = 0
        # Bytes between a port's serializer and the next hop's receive.
        self._propagating_bytes = 0

        self._max_segment_bytes = 0
        fanout: dict[str, int] = {}
        for src, _dst in network.ports:
            fanout[src] = fanout.get(src, 0) + 1
        self._max_fanout = max(
            (
                n
                for name, n in fanout.items()
                if isinstance(network.nodes[name], SwitchNode)
            ),
            default=1,
        )
        self._max_capacity_bps = max(
            (p.capacity_bps for p in network.ports.values()), default=0.0
        )
        self._skid_cache: float | None = None
        # (transfer id, host) -> accepted segment seqs (exactly-once check).
        # Keyed by the transfer object, not id(): identities change across
        # pickle, and this ledger must survive repro.replay checkpoints.
        self._accepted: dict[tuple["Transfer", str], set[int]] = {}
        # (route, host) -> header bytes stripped along the root→host path,
        # for the delivered-size check on source-routed trees.
        self._path_strip: dict = {}

        self._watchdog_armed = False
        self._last_progress: tuple[int, ...] | None = None

        network.add_observer(self)

    # -- violation plumbing ----------------------------------------------------

    def _violate(self, invariant: str, detail: str) -> None:
        violation = Violation(invariant, self.sim.now, detail)
        self.violations.append(violation)
        if self.raise_immediately:
            raise InvariantViolation(violation)

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        if self.ok:
            return (
                f"invariants ok: {self.checks} checks, "
                f"{self.created_bytes} B created = "
                f"{self.delivered_bytes} B delivered + "
                f"{self.wasted_bytes} B wasted + {self.lost_bytes} B lost + "
                f"{self.stripped_bytes} B header-stripped + "
                f"{self.in_flight_bytes} B in flight"
            )
        lines = [f"{len(self.violations)} invariant violation(s):"]
        lines += [f"  {v}" for v in self.violations]
        return "\n".join(lines)

    # -- PFC skid bound --------------------------------------------------------

    @property
    def pfc_skid_bytes(self) -> float:
        """Worst-case bytes an ingress may accrue *after* its PAUSE.

        After the pause signal the upstream port finishes the copy it is
        serializing, and copies already propagating still arrive — at most
        two segments plus a bandwidth-delay product.  Each arrival is
        charged once per replicated child, hence the fan-out factor.
        """
        if self._pfc_skid_override is not None:
            return self._pfc_skid_override
        if self._skid_cache is None:
            cfg = self.network.config
            seg = max(self._max_segment_bytes, cfg.segment_bytes)
            bdp = self._max_capacity_bps * cfg.propagation_delay_s / 8
            self._skid_cache = self._max_fanout * (2 * seg + bdp)
        return self._skid_cache

    # -- copy lifecycle hooks --------------------------------------------------

    def _created(self, segment: "Segment") -> None:
        nb = segment.nbytes
        self.created_bytes += nb
        self.in_flight_bytes += nb
        self.in_flight_copies += 1
        if nb > self._max_segment_bytes:
            self._max_segment_bytes = nb
            self._skid_cache = None
        self._arm_watchdog()

    def _consumed(self, segment: "Segment", sink: str) -> None:
        self.in_flight_bytes -= segment.nbytes
        self.in_flight_copies -= 1
        self.checks += 1
        if self.in_flight_bytes < 0 or self.in_flight_copies < 0:
            self._violate(
                "byte-conservation",
                f"copy sink {sink!r} consumed more than was ever created "
                f"(in-flight {self.in_flight_bytes} B / "
                f"{self.in_flight_copies} copies)",
            )

    def on_inject(self, host: "HostNode", segment: "Segment") -> None:
        self._created(segment)

    def on_fork(self, switch: "SwitchNode", segment: "Segment") -> None:
        self._created(segment)

    def on_deliver(self, host: "HostNode", segment: "Segment") -> None:
        self._propagating_bytes -= segment.nbytes
        self.delivered_bytes += segment.nbytes
        self._consumed(segment, "deliver")

    def on_wasted(self, switch: "SwitchNode", segment: "Segment") -> None:
        self.wasted_bytes += segment.nbytes
        self._consumed(segment, "wasted")

    def on_lost(self, port: "Port", segment: "Segment") -> None:
        self.lost_bytes += segment.nbytes
        self._consumed(segment, "lost")

    def on_tx_done(self, port: "Port", segment: "Segment") -> None:
        self._propagating_bytes += segment.nbytes

    def on_switch_receive(self, switch: "SwitchNode", segment: "Segment") -> None:
        self._propagating_bytes -= segment.nbytes

    def on_header_strip(
        self, switch: "SwitchNode", segment: "Segment", nbytes: int
    ) -> None:
        # A source-routing switch consumed part of the header: those bytes
        # leave the fabric here (a fifth lifecycle sink, like a partial
        # delivery), and every downstream charge uses the smaller frame.
        self.stripped_bytes += nbytes
        self.in_flight_bytes -= nbytes
        self.checks += 1
        if self.in_flight_bytes < 0:
            self._violate(
                "byte-conservation",
                f"switch {switch.name} stripped {nbytes} B of header, more "
                f"than was in flight ({self.in_flight_bytes} B remain)",
            )

    # -- per-event checks ------------------------------------------------------

    def on_enqueue(self, port: "Port", segment: "Segment") -> None:
        node = self.network.nodes[port.src]
        if not isinstance(node, SwitchNode):
            return
        self.checks += 1
        via = segment.ingress
        if via is not None:
            held = node.ingress_bytes.get(via, 0)
            limit = node.pause_quota + self.pfc_skid_bytes
            if held > limit:
                self._violate(
                    "pfc-quota",
                    f"switch {node.name} ingress {via.src}->{via.dst} holds "
                    f"{held} B, quota {node.pause_quota:.0f} B + skid "
                    f"{self.pfc_skid_bytes:.0f} B",
                )
        if node.buffered_bytes < 0:
            self._violate(
                "occupancy", f"switch {node.name} buffer at {node.buffered_bytes} B"
            )

    def on_accept(self, transfer: "Transfer", host: str, segment: "Segment") -> None:
        self.checks += 1
        seq = segment.seq
        if seq < 0 or seq >= transfer.num_segments:
            self._violate(
                "segment-shape",
                f"{transfer.name} accepted out-of-range segment #{seq} at {host}",
            )
            return
        expected = transfer.segment_sizes[seq]
        route = segment.route
        if getattr(route, "strip_bytes", None):
            key = (route, host)
            taken = self._path_strip.get(key)
            if taken is None:
                strip_map = route.strip_bytes
                taken = sum(strip_map.get(n, 0) for n in route.path_from_root(host))
                self._path_strip[key] = taken
            expected -= taken
        if segment.nbytes != expected:
            self._violate(
                "segment-shape",
                f"{transfer.name}#{seq} accepted with {segment.nbytes} B at "
                f"{host}, expected {expected} B",
            )
        accepted = self._accepted.setdefault((transfer, host), set())
        if seq in accepted:
            self._violate(
                "exactly-once",
                f"{transfer.name}#{seq} delivered twice to {host}",
            )
            return
        accepted.add(seq)

    def on_receiver_removed(self, transfer: "Transfer", host: str) -> None:
        # A leave voids the host's delivery history: if it rejoins the same
        # transfer, the catch-up backfill re-delivers segments it had before
        # leaving, which is correct and must not trip exactly-once.
        self._accepted.pop((transfer, host), None)

    # -- periodic scan ---------------------------------------------------------

    def scan(self) -> None:
        """Full-fabric occupancy + conservation sweep (watchdog cadence)."""
        observed = self._propagating_bytes
        for port in self.network.ports.values():
            self.checks += 1
            if port.queue_bytes < 0:
                self._violate(
                    "occupancy",
                    f"port {port.src}->{port.dst} queue at {port.queue_bytes} B",
                )
            if port.down and port.queue:
                self._violate(
                    "occupancy",
                    f"failed port {port.src}->{port.dst} still holds "
                    f"{len(port.queue)} queued copies",
                )
            observed += port.queue_bytes
            if port.in_service is not None:
                observed += port.in_service.nbytes
        for name, node in self.network.nodes.items():
            if not isinstance(node, SwitchNode):
                continue
            self.checks += 1
            if node.buffered_bytes < 0:
                self._violate(
                    "occupancy", f"switch {name} buffer at {node.buffered_bytes} B"
                )
            for via, held in node.ingress_bytes.items():
                if held < 0:
                    self._violate(
                        "occupancy",
                        f"switch {name} ingress {via.src}->{via.dst} at {held} B",
                    )
        self.checks += 1
        if observed != self.in_flight_bytes:
            self._violate(
                "byte-conservation",
                f"lifecycle ledger says {self.in_flight_bytes} B in flight "
                f"but the fabric holds {observed} B "
                f"(created {self.created_bytes} = delivered "
                f"{self.delivered_bytes} + wasted {self.wasted_bytes} + lost "
                f"{self.lost_bytes} + header-stripped {self.stripped_bytes} "
                f"+ in-flight)",
            )

    # -- deadlock watchdog -----------------------------------------------------

    def _progress_vector(self) -> tuple[int, ...]:
        return (
            self.created_bytes,
            self.delivered_bytes,
            self.wasted_bytes,
            self.lost_bytes,
            sum(p.bytes_sent for p in self.network.ports.values()),
        )

    def _arm_watchdog(self) -> None:
        if self._watchdog_armed or not self.watchdog_enabled:
            return
        self._watchdog_armed = True
        self._last_progress = self._progress_vector()
        self.sim.schedule(self.watchdog_interval_s, self._watchdog_tick)

    def _watchdog_tick(self) -> None:
        self._watchdog_armed = False
        self.scan()
        if self.in_flight_bytes <= 0:
            return  # fabric drained; re-armed by the next injection
        progress = self._progress_vector()
        self.checks += 1
        if progress == self._last_progress:
            self._violate(
                "deadlock",
                f"{self.in_flight_bytes} B in flight but no byte moved for "
                f"{self.watchdog_interval_s * 1e3:.1f}ms "
                f"({self._stall_diagnosis()})",
            )
        self._arm_watchdog()

    def _stall_diagnosis(self) -> str:
        pending = [p for p in self.network.ports.values() if p.queue_bytes > 0]
        paused = [p for p in pending if p.paused]
        downed = [p for p in pending if p.down]
        return (
            f"{len(pending)} ports with queued work: "
            f"{len(paused)} paused, {len(downed)} down"
        )

    # -- end of run ------------------------------------------------------------

    def finalize(self) -> list[Violation]:
        """End-of-run checks; returns all violations recorded so far."""
        self.scan()
        incomplete = [t for t in self.network.transfers if not t.complete]
        self.checks += 1
        if not incomplete and self.in_flight_bytes != 0:
            self._violate(
                "byte-conservation",
                f"all transfers complete but {self.in_flight_bytes} B / "
                f"{self.in_flight_copies} copies still in flight",
            )
        if incomplete and self.in_flight_bytes > 0 and self.sim.pending == 0:
            self._violate(
                "deadlock",
                f"{len(incomplete)} transfer(s) incomplete with an empty "
                f"event queue ({self._stall_diagnosis()})",
            )
        for transfer in self.network.transfers:
            if not transfer.complete:
                continue
            for host in transfer.receivers:
                self.checks += 1
                accepted = self._accepted.get((transfer, host), set())
                if len(accepted) != transfer.num_segments:
                    self._violate(
                        "exactly-once",
                        f"{transfer.name} complete but {host} accepted "
                        f"{len(accepted)}/{transfer.num_segments} segments",
                    )
        return self.violations
