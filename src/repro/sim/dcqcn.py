"""DCQCN sender-side rate control (refs [34, 27] in the paper).

The structure follows the original DCQCN state machine: an EWMA congestion
estimate ``alpha``, multiplicative decrease on congestion notifications, and
a staged recovery (fast recovery -> additive increase -> hyper increase)
driven by a periodic timer.

Multicast twist (§4): one ECN mark fans out into many CNPs.  PEEL replaces
the receiver-side CNP rate limiter with a **sender-side guard timer** — at
most one rate reaction per ``guard_timer_s`` across the whole group.  The
``per_cnp_reaction`` flag disables all moderation, reproducing the naive
behaviour whose 99th-percentile CCT the guard timer improves 12x.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .config import DcqcnConfig

if TYPE_CHECKING:  # pragma: no cover
    from .engine import EventHandle, Simulator


class DcqcnSender:
    """Per-flow (per-transfer) rate controller at the sending NIC."""

    def __init__(
        self, sim: "Simulator", cfg: DcqcnConfig, line_rate_bps: float
    ) -> None:
        self.sim = sim
        self.cfg = cfg
        self.line_rate_bps = line_rate_bps
        self.rate_bps = line_rate_bps
        self.target_rate_bps = line_rate_bps
        self.alpha = cfg.alpha_init
        self.stage = 0
        self.last_reaction_s = -float("inf")
        self.reactions = 0
        self.notifications = 0
        self._timer: "EventHandle | None" = None
        self._stopped = False
        self._bytes_since_step = 0

    # -- congestion feedback -------------------------------------------------

    def on_congestion_notification(self) -> None:
        """One CNP arrived (one receiver saw an ECN-marked segment)."""
        if not self.cfg.enabled or self._stopped:
            return
        self.notifications += 1
        now = self.sim.now
        if (
            not self.cfg.per_cnp_reaction
            and now - self.last_reaction_s < self.cfg.guard_timer_s
        ):
            return
        self._react(now)

    def _react(self, now: float) -> None:
        self.reactions += 1
        self.last_reaction_s = now
        self.alpha = (1 - self.cfg.alpha_g) * self.alpha + self.cfg.alpha_g
        self.target_rate_bps = self.rate_bps
        self.rate_bps = max(
            self.cfg.min_rate_bps, self.rate_bps * (1 - self.alpha / 2)
        )
        self.stage = 0
        self._bytes_since_step = 0
        self._restart_timer()

    # -- recovery ------------------------------------------------------------

    def on_bytes_sent(self, nbytes: int) -> None:
        """Byte-counter recovery (DCQCN advances stages on bytes as well as
        time): every ``byte_counter_bytes`` sent is one increase step."""
        if self._stopped or not self.cfg.enabled:
            return
        if self.rate_bps >= self.line_rate_bps:
            return
        self._bytes_since_step += nbytes
        while self._bytes_since_step >= self.cfg.byte_counter_bytes:
            self._bytes_since_step -= self.cfg.byte_counter_bytes
            self._increase_step()

    def _restart_timer(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
        self._timer = self.sim.schedule(self.cfg.increase_timer_s, self._on_timer)

    def _on_timer(self) -> None:
        if self._stopped or not self.cfg.enabled:
            return
        self.alpha *= 1 - self.cfg.alpha_g  # decays while no CNP arrives
        self._increase_step()
        if self.rate_bps < self.line_rate_bps - 1e-6:
            self._timer = self.sim.schedule(self.cfg.increase_timer_s, self._on_timer)
        else:
            self.rate_bps = self.line_rate_bps
            self._timer = None

    def _increase_step(self) -> None:
        self.stage += 1
        if self.stage > self.cfg.fast_recovery_steps:
            if self.stage > 2 * self.cfg.fast_recovery_steps:
                self.target_rate_bps += self.cfg.rate_hai_bps
            else:
                self.target_rate_bps += self.cfg.rate_ai_bps
        self.target_rate_bps = min(self.target_rate_bps, self.line_rate_bps)
        self.rate_bps = min(
            self.line_rate_bps, (self.rate_bps + self.target_rate_bps) / 2
        )

    def stop(self) -> None:
        """Flow finished: cancel timers so the event queue drains."""
        self._stopped = True
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    @property
    def current_rate_bps(self) -> float:
        return self.rate_bps if self.cfg.enabled else self.line_rate_bps
