"""Unicast routing: ECMP-style shortest paths through the fabric.

Used by the unicast-based collectives (Ring, Binary Tree, Orca's host-agent
fan-out).  Next hops are chosen uniformly at random among shortest-path
neighbors — the per-flow hashing effect of ECMP — with per-destination BFS
distance maps cached for speed.
"""

from __future__ import annotations

import random

import networkx as nx

from ..steiner import MulticastTree
from ..topology import Topology


class UnicastRouter:
    """Shortest-path unicast routing with randomized ECMP tie-breaks."""

    def __init__(self, topo: Topology, rng: random.Random | None = None) -> None:
        self.topo = topo
        self.rng = rng or random.Random(0)
        self._dist_to: dict[str, dict[str, int]] = {}

    def _distances_to(self, dst: str) -> dict[str, int]:
        cached = self._dist_to.get(dst)
        if cached is None:
            cached = nx.single_source_shortest_path_length(self.topo.graph, dst)
            self._dist_to[dst] = cached
        return cached

    def invalidate(self) -> None:
        """Drop caches after the topology changes (e.g. link failures)."""
        self._dist_to.clear()

    def path(
        self, src: str, dst: str, rng: random.Random | None = None
    ) -> list[str]:
        """One shortest path ``src -> dst``; raises if unreachable.

        ``rng`` overrides the router's shared RNG for the ECMP tie-breaks —
        collectives pass a per-job stream
        (:meth:`repro.collectives.env.CollectiveEnv.ecmp_rng`) so path
        choices depend only on ``(seed, job)``, not on how many other jobs
        routed first.  That independence is what makes the ECMP-routed
        baselines shardable.
        """
        if src == dst:
            return [src]
        dist = self._distances_to(dst)
        if src not in dist:
            raise ValueError(f"{dst!r} unreachable from {src!r}")
        choice = (rng or self.rng).choice
        path = [src]
        node = src
        while node != dst:
            here = dist[node]
            options = [
                v for v in self.topo.graph.neighbors(node) if dist.get(v, here) == here - 1
            ]
            node = choice(sorted(options))
            path.append(node)
        return path

    def path_tree(
        self, src: str, dst: str, rng: random.Random | None = None
    ) -> MulticastTree:
        """The path as a degenerate multicast tree (what transfers route on)."""
        path = self.path(src, dst, rng)
        return MulticastTree(src, {b: a for a, b in zip(path, path[1:])})
