"""Golden-trace recording: deterministic event digests for regression tests.

A :class:`TraceRecorder` observes a :class:`~repro.sim.network.Network` and
folds every fabric event into a running BLAKE2b digest.  Because the
simulator is fully deterministic for a fixed scenario + seed (event ties
break by insertion order, all randomness flows from seeded ``Random``
instances), two runs of the same scenario produce byte-identical digests —
and any behavioural change, however small, changes the digest.  That makes
the digest a *golden trace*: record it once, compare it forever.

Event timestamps are hashed via ``float.hex()`` (exact, locale-free);
nothing in the digest depends on ``repr`` formatting or hash randomization.

The digest is *chained* rather than a live ``hashlib`` object: the recorder
keeps only the previous 16-byte digest and folds each event line as
``blake2b(prev || line)``.  A live hash object cannot be pickled, so this
is what lets a recorder ride through :mod:`repro.replay` checkpoints — a
restored run continues the chain exactly where the snapshot left it.

With ``keep_events=True`` the recorder also retains the readable event
log, at a memory cost proportional to the run — useful for diffing two
runs whose digests disagree (:func:`diff_traces`).
"""

from __future__ import annotations

import hashlib
import json
from typing import TYPE_CHECKING

from .network import Network
from .observer import FabricObserver

if TYPE_CHECKING:  # pragma: no cover
    from .network import HostNode, Port, SwitchNode
    from .packet import Segment
    from .transfer import Transfer


class TraceRecorder(FabricObserver):
    """Streams fabric events into a deterministic digest (see module doc)."""

    def __init__(self, network: Network, keep_events: bool = False) -> None:
        self.network = network
        self._digest = b"\x00" * 16  # chained per-event (see module doc)
        self.num_events = 0
        self.events: list[str] | None = [] if keep_events else None
        network.add_observer(self)

    # -- recording -------------------------------------------------------------

    def _record(self, kind: str, *fields: object) -> None:
        parts = [kind, self.network.sim.now.hex()]
        parts += [str(f) for f in fields]
        line = " ".join(parts)
        h = hashlib.blake2b(self._digest, digest_size=16)
        h.update(line.encode())
        self._digest = h.digest()
        self.num_events += 1
        if self.events is not None:
            self.events.append(line)

    @staticmethod
    def _seg(segment: "Segment") -> tuple[str, int, int]:
        return (segment.transfer.name, segment.seq, segment.nbytes)

    def on_inject(self, host: "HostNode", segment: "Segment") -> None:
        self._record("inject", host.name, *self._seg(segment))

    def on_fork(self, switch: "SwitchNode", segment: "Segment") -> None:
        self._record("fork", switch.name, *self._seg(segment))

    def on_enqueue(self, port: "Port", segment: "Segment") -> None:
        self._record("enq", port.src, port.dst, *self._seg(segment))

    def on_tx_done(self, port: "Port", segment: "Segment") -> None:
        self._record("tx", port.src, port.dst, *self._seg(segment))

    def on_deliver(self, host: "HostNode", segment: "Segment") -> None:
        self._record("deliver", host.name, *self._seg(segment))

    def on_accept(self, transfer: "Transfer", host: str, segment: "Segment") -> None:
        self._record("accept", host, transfer.name, segment.seq)

    def on_wasted(self, switch: "SwitchNode", segment: "Segment") -> None:
        self._record("wasted", switch.name, *self._seg(segment))

    def on_lost(self, port: "Port", segment: "Segment") -> None:
        self._record("lost", port.src, port.dst, *self._seg(segment))

    def on_pfc_pause(self, switch: "SwitchNode", port: "Port") -> None:
        self._record("pause", switch.name, port.src)

    def on_pfc_resume(self, switch: "SwitchNode", port: "Port") -> None:
        self._record("resume", switch.name, port.src)

    def on_link_down(self, u: str, v: str) -> None:
        self._record("link-down", u, v)

    def on_link_up(self, u: str, v: str) -> None:
        self._record("link-up", u, v)

    def on_transfer_start(self, transfer: "Transfer") -> None:
        self._record("start", transfer.name, transfer.message_bytes)

    def on_transfer_complete(self, transfer: "Transfer") -> None:
        self._record("complete", transfer.name)

    def on_reroute(self, transfer: "Transfer", num_trees: int) -> None:
        self._record("reroute", transfer.name, num_trees)

    # -- golden-trace API -------------------------------------------------------

    def digest(self) -> str:
        """Hex digest of every event so far (stable under identical runs)."""
        return self._digest.hex()

    def snapshot(self) -> dict:
        """JSON-serializable golden record: digest + event count."""
        return {"digest": self.digest(), "num_events": self.num_events}

    def save(self, path) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.snapshot(), fh, indent=2, sort_keys=True)
            fh.write("\n")

    def matches(self, path) -> bool:
        """Compare the current digest against a saved golden snapshot."""
        with open(path, encoding="utf-8") as fh:
            golden = json.load(fh)
        return golden.get("digest") == self.digest()


def diff_traces(a: TraceRecorder, b: TraceRecorder, limit: int = 10) -> list[str]:
    """First ``limit`` event-log divergences between two kept-event traces."""
    if a.events is None or b.events is None:
        raise ValueError("diff requires recorders built with keep_events=True")
    out: list[str] = []
    for i, (ea, eb) in enumerate(zip(a.events, b.events)):
        if ea != eb:
            out.append(f"#{i}: {ea!r} != {eb!r}")
            if len(out) >= limit:
                return out
    if len(a.events) != len(b.events):
        out.append(f"lengths differ: {len(a.events)} vs {len(b.events)}")
    return out
