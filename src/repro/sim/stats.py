"""Fabric telemetry: end-of-run summaries of link load and queueing.

The paper leans on existing "cluster-wide telemetry" for observability;
this module provides the equivalent read-out for the simulator — per-tier
utilization, the hottest links, queue peaks, and congestion-signal counts —
so experiments can explain *why* a scheme's CCT moved.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..topology.addressing import NodeKind, kind_of
from .network import Network

#: Link tiers, named by their endpoints' roles.
TIERS = ("host-edge", "edge-up", "core")


def _tier(u: str, v: str) -> str:
    kinds = {kind_of(u), kind_of(v)}
    if NodeKind.HOST in kinds:
        return "host-edge"
    if kinds & {NodeKind.TOR, NodeKind.LEAF}:
        return "edge-up"
    return "core"


@dataclass(frozen=True)
class LinkStat:
    src: str
    dst: str
    bytes_sent: int
    utilization: float
    peak_queue_bytes: int
    ecn_marks: int


@dataclass(frozen=True)
class TierStat:
    tier: str
    links: int
    total_bytes: int
    mean_utilization: float
    max_utilization: float
    peak_queue_bytes: int


@dataclass(frozen=True)
class FabricSummary:
    elapsed_s: float
    tiers: tuple[TierStat, ...]
    hottest_links: tuple[LinkStat, ...]
    total_ecn_marks: int
    pfc_pause_events: int
    wasted_bytes: int
    lost_segments: int

    def tier(self, name: str) -> TierStat:
        for stat in self.tiers:
            if stat.tier == name:
                return stat
        raise KeyError(f"unknown tier {name!r}")


def fabric_summary(
    network: Network, elapsed_s: float | None = None, top_links: int = 5
) -> FabricSummary:
    """Summarize a finished (or paused) simulation's fabric counters."""
    if elapsed_s is None:
        elapsed_s = network.sim.now
    if elapsed_s <= 0:
        raise ValueError("no simulated time has elapsed")

    links: list[LinkStat] = []
    for (u, v), port in network.ports.items():
        if not port.bytes_sent and not port.peak_queue_bytes:
            continue
        links.append(
            LinkStat(
                src=u,
                dst=v,
                bytes_sent=port.bytes_sent,
                utilization=port.bytes_sent * 8 / (port.capacity_bps * elapsed_s),
                peak_queue_bytes=port.peak_queue_bytes,
                ecn_marks=port.ecn_marks,
            )
        )

    tiers = []
    for tier_name in TIERS:
        members = [l for l in links if _tier(l.src, l.dst) == tier_name]
        if members:
            tiers.append(
                TierStat(
                    tier=tier_name,
                    links=len(members),
                    total_bytes=sum(l.bytes_sent for l in members),
                    mean_utilization=sum(l.utilization for l in members)
                    / len(members),
                    max_utilization=max(l.utilization for l in members),
                    peak_queue_bytes=max(l.peak_queue_bytes for l in members),
                )
            )
        else:
            tiers.append(TierStat(tier_name, 0, 0, 0.0, 0.0, 0))

    hottest = tuple(
        sorted(links, key=lambda l: l.bytes_sent, reverse=True)[:top_links]
    )
    return FabricSummary(
        elapsed_s=elapsed_s,
        tiers=tuple(tiers),
        hottest_links=hottest,
        total_ecn_marks=sum(l.ecn_marks for l in links),
        pfc_pause_events=network.pfc_pause_events,
        wasted_bytes=network.wasted_bytes,
        lost_segments=network.lost_segments,
    )


def format_summary(summary: FabricSummary) -> str:
    """Render a fabric summary as a fixed-width text block."""
    lines = [
        f"simulated {summary.elapsed_s * 1e3:.2f} ms | "
        f"ECN marks {summary.total_ecn_marks} | PFC pauses "
        f"{summary.pfc_pause_events} | lost segments {summary.lost_segments}"
    ]
    header = f"{'tier':<10}{'links':>7}{'GiB':>9}{'mean util':>11}{'max util':>10}"
    lines += [header, "-" * len(header)]
    for t in summary.tiers:
        lines.append(
            f"{t.tier:<10}{t.links:>7}{t.total_bytes / 2**30:>9.2f}"
            f"{t.mean_utilization:>11.1%}{t.max_utilization:>10.1%}"
        )
    lines.append("hottest links:")
    for link in summary.hottest_links:
        lines.append(
            f"  {link.src} -> {link.dst}: {link.bytes_sent / 2**20:.1f} MiB "
            f"({link.utilization:.0%}), peak queue "
            f"{link.peak_queue_bytes / 1024:.0f} KiB"
        )
    return "\n".join(lines)
