"""Runtime network: ports, switches, hosts, ECN marking and PFC.

Built from a :class:`repro.topology.Topology`.  Every directed edge gets a
:class:`Port` (an output queue serializing at link rate).  Switches hold a
shared buffer partitioned into per-ingress quotas: when the bytes a given
upstream port has parked in this switch exceed its quota, that port — and
only that port — receives a PAUSE (per-ingress PFC, which is what keeps
lossless fabrics free of the circular-buffer-dependency deadlocks a
"pause everyone" model invents).  Output queues mark ECN with DCQCN's
RED-style profile.

Links can fail *mid-run* (:meth:`Network.set_link_down`): a downed port
blackholes traffic — queued copies die, the copy on the wire dies, and
arrivals die on enqueue — until :meth:`Network.set_link_up` restores it.
Every lifecycle event is mirrored to registered
:class:`~repro.sim.observer.FabricObserver` instances.
"""

from __future__ import annotations

import random
from collections import deque

from ..topology import Topology
from ..topology.addressing import NodeKind, kind_of
from .config import SimConfig
from .engine import Simulator
from .observer import FabricObserver
from .packet import Segment

#: Hooks dispatched through per-hook observer lists (``Network.obs_*``):
#: the per-copy hot path.  Cold lifecycle hooks (link up/down, transfer
#: start/complete, reroute, failover, receiver-removed) keep iterating the
#: full ``Network.observers`` list — they fire a handful of times per run.
_HOT_HOOKS = (
    "on_inject", "on_fork", "on_deliver", "on_accept", "on_wasted",
    "on_lost", "on_enqueue", "on_tx_done", "on_switch_receive",
    "on_header_strip", "on_pfc_pause", "on_pfc_resume",
)


def _overrides(observer: FabricObserver, hook: str) -> bool:
    """True when ``observer`` implements ``hook`` beyond the no-op base."""
    fn = getattr(observer, hook, None)
    if fn is None:
        return False
    base_fn = getattr(FabricObserver, hook)
    return getattr(fn, "__func__", fn) is not base_fn


class Port:
    """Unidirectional output port ``src -> dst`` with a FIFO queue."""

    __slots__ = (
        "sim",
        "network",
        "src",
        "dst",
        "capacity_bps",
        "queue",
        "queue_bytes",
        "transmitting",
        "in_service",
        "paused",
        "down",
        "drop_next",
        "bytes_sent",
        "segments_sent",
        "ecn_marks",
        "peak_queue_bytes",
        "src_switch",
        "dst_node",
        "_bits_per_byte_s",
        "_prop_delay_s",
        "_tx_cb",
        "_recv_cb",
        "_ecn_kmin",
        "_ecn_kmax",
        "_ecn_pmax",
    )

    def __init__(
        self, sim: Simulator, network: "Network", src: str, dst: str, capacity_bps: float
    ) -> None:
        self.sim = sim
        self.network = network
        self.src = src
        self.dst = dst
        self.capacity_bps = capacity_bps
        self.queue: deque[Segment] = deque()
        self.queue_bytes = 0
        self.transmitting = False
        self.in_service: Segment | None = None
        self.paused = False
        self.down = False
        self.drop_next = 0  # one-shot transient-drop counter (fault injection)
        self.bytes_sent = 0
        self.segments_sent = 0
        self.ecn_marks = 0
        self.peak_queue_bytes = 0
        # Hot-path bindings, fixed at construction: whether the upstream
        # node is a switch (buffer accounting + ECN apply), the downstream
        # node object (receive target), and per-byte serialization time —
        # this removes a dict lookup + isinstance per segment hop.
        src_node = network.nodes[src]
        self.src_switch: SwitchNode | None = (
            src_node if type(src_node) is SwitchNode else None
        )
        self.dst_node = network.nodes[dst]
        self._bits_per_byte_s = 8.0 / capacity_bps
        self._prop_delay_s = network.config.propagation_delay_s
        # Pre-bound callbacks: every serialization/propagation event posts
        # one of these two; binding them once avoids a bound-method
        # allocation per event on the hot path.
        self._tx_cb = self._tx_done
        self._recv_cb = self.dst_node.receive
        # ECN profile, fixed at Network construction; cached per port so
        # the marking decision reads slots instead of three network attrs.
        self._ecn_kmin = network.ecn_kmin_eff
        self._ecn_kmax = network.ecn_kmax_eff
        self._ecn_pmax = network.config.ecn_pmax

    @property
    def key(self) -> tuple[str, str]:
        return (self.src, self.dst)

    def enqueue(self, segment: Segment) -> None:
        if self.down:
            # Frames toward a dead link die immediately instead of parking
            # in a queue that can never drain (which would wedge PFC).
            self.network.drop_for_failure(self, segment)
            return
        network = self.network
        nbytes = segment.nbytes
        src_switch = self.src_switch
        if src_switch is not None:
            # ECN decision uses the *waiting* bytes the segment lands behind
            # (the in-service segment is not queueing delay).  Inlined
            # _ecn_mark with the common shallow-queue case rejected first.
            depth = self.queue_bytes
            if depth > self._ecn_kmin:
                if depth >= self._ecn_kmax:
                    segment.ecn = True
                    self.ecn_marks += 1
                else:
                    # Same expression shape as _ecn_mark: float results (and
                    # therefore RNG-threshold comparisons) are bit-identical.
                    ramp = (depth - self._ecn_kmin) / (
                        self._ecn_kmax - self._ecn_kmin
                    )
                    if network.rng.random() < self._ecn_pmax * ramp:
                        segment.ecn = True
                        self.ecn_marks += 1
            # Inlined buffer_charge (the PFC pause crossing is the rare
            # path and stays out of line in _pause_ingress).
            src_switch.buffered_bytes += nbytes
            via = segment.ingress
            if via is not None:
                ingress_bytes = src_switch.ingress_bytes
                held = ingress_bytes.get(via, 0) + nbytes
                ingress_bytes[via] = held
                if held > src_switch.pause_quota and via not in src_switch.paused_ingress:
                    src_switch._pause_ingress(via)
        self.queue.append(segment)
        queue_bytes = self.queue_bytes + nbytes
        self.queue_bytes = queue_bytes
        if queue_bytes > self.peak_queue_bytes:
            self.peak_queue_bytes = queue_bytes
        observers = network.obs_enqueue
        if observers:
            for fn in observers:
                fn(self, segment)
        # Inlined _maybe_start (down was handled above; the queue is
        # non-empty by construction).
        if not (self.transmitting or self.paused or self.down):
            head = self.queue.popleft()
            nbytes = head.nbytes
            self.queue_bytes -= nbytes
            self.transmitting = True
            self.in_service = head
            self.sim.post1(nbytes * self._bits_per_byte_s, self._tx_cb, head)

    def _ecn_mark(self) -> bool:
        net = self.network
        depth = self.queue_bytes
        if depth <= net.ecn_kmin_eff:
            return False
        if depth >= net.ecn_kmax_eff:
            return True
        ramp = (depth - net.ecn_kmin_eff) / (net.ecn_kmax_eff - net.ecn_kmin_eff)
        return net.rng.random() < net.config.ecn_pmax * ramp

    def _maybe_start(self) -> None:
        if self.transmitting or self.paused or self.down or not self.queue:
            return
        segment = self.queue.popleft()
        nbytes = segment.nbytes
        self.queue_bytes -= nbytes
        self.transmitting = True
        self.in_service = segment
        self.sim.post1(nbytes * self._bits_per_byte_s, self._tx_cb, segment)

    def _tx_done(self, segment: Segment) -> None:
        network = self.network
        sim = self.sim
        nbytes = segment.nbytes
        self.bytes_sent += nbytes
        self.segments_sent += 1
        self.transmitting = False
        self.in_service = None
        src_switch = self.src_switch
        if src_switch is not None:
            # Inlined buffer_release (the PFC resume crossing is the rare
            # path and stays out of line in _resume_ingress).
            src_switch.buffered_bytes -= nbytes
            via = segment.ingress
            if via is not None:
                ingress_bytes = src_switch.ingress_bytes
                held = ingress_bytes.get(via, 0) - nbytes
                ingress_bytes[via] = held
                if src_switch.paused_ingress and held <= src_switch.resume_quota:
                    src_switch._resume_ingress(via)
        if self.down:
            # The link failed while this frame was on the wire.
            network.drop_for_failure(self, segment)
        elif self.drop_next > 0:
            self.drop_next -= 1
            network.drop_for_failure(self, segment)
        elif (
            network.loss_probability
            and network.rng.random() < network.loss_probability
        ):
            # Corrupted on the wire: the link time was spent, the bytes die.
            # Selective-repeat recovery happens at the transfer layer.
            network.lost_segments += 1
            observers = network.obs_lost
            if observers:
                for fn in observers:
                    fn(self, segment)
        else:
            observers = network.obs_tx_done
            if observers:
                for fn in observers:
                    fn(self, segment)
            sim.post2(self._prop_delay_s, self._recv_cb, segment, self)
        # Inlined _maybe_start for the next queued segment.
        if self.queue and not (self.paused or self.down):
            head = self.queue.popleft()
            nbytes = head.nbytes
            self.queue_bytes -= nbytes
            self.transmitting = True
            self.in_service = head
            sim.post1(nbytes * self._bits_per_byte_s, self._tx_cb, head)

    def pause(self) -> None:
        self.paused = True

    def resume(self) -> None:
        if self.paused:
            self.paused = False
            self._maybe_start()

    # -- dynamic failure ------------------------------------------------------

    def fail(self) -> None:
        """Take the port down, dropping every queued copy."""
        if self.down:
            return
        self.down = True
        src_switch = self.src_switch
        while self.queue:
            segment = self.queue.popleft()
            self.queue_bytes -= segment.nbytes
            if src_switch is not None:
                src_switch.buffer_release(segment)
            self.network.drop_for_failure(self, segment)
        # The in-service copy (if any) dies at its _tx_done.

    def restore(self) -> None:
        if not self.down:
            return
        self.down = False
        self._maybe_start()


class SwitchNode:
    """A switch: per-ingress buffer quotas (PFC), route-driven replication."""

    __slots__ = (
        "name",
        "network",
        "buffered_bytes",
        "dropped_bytes",
        "ingress_bytes",
        "paused_ingress",
        "pause_quota",
        "resume_quota",
        "_route_children",
        "_route_strip",
        "_has_strip",
    )

    def __init__(self, name: str, network: "Network") -> None:
        self.name = name
        self.network = network
        self.buffered_bytes = 0
        self.dropped_bytes = 0  # segments with no onward route (ToR discard)
        self.ingress_bytes: dict[Port, int] = {}
        self.paused_ingress: set[Port] = set()
        self.pause_quota = 0.0  # finalized once ports exist
        self.resume_quota = 0.0
        # Memoized route.children(self.name) per tree object: replication
        # resolves each (tree, switch) pair once instead of hashing the
        # switch name into the tree's children map on every segment hop.
        self._route_children: dict = {}
        # Source-routed trees (Elmo/Bert) annotate routes with
        # ``strip_bytes``: header bytes this switch consumes before
        # forwarding.  Resolved at the same cache-fill; ``_has_strip``
        # keeps the steady-state cost for every other scheme at one
        # falsy attribute test per hop.
        self._route_strip: dict = {}
        self._has_strip = False

    def finalize(self) -> None:
        """Compute per-ingress PFC quotas once the port fan-in is known."""
        cfg = self.network.config
        feeders = max(1, len(self.network.feeders[self.name]))
        quota = cfg.pfc_pause_threshold_bytes / feeders
        # A quota below the store-and-forward unit would pause on every
        # arrival; keep at least two segments of headroom per ingress.
        self.pause_quota = max(quota, 2 * cfg.segment_bytes)
        hysteresis = max(
            cfg.pfc_resume_hysteresis_mtus * cfg.mtu_bytes, cfg.segment_bytes
        )
        self.resume_quota = max(0.0, self.pause_quota - hysteresis)

    def receive(self, segment: Segment, via: Port | None) -> None:
        network = self.network
        observers = network.obs_switch_receive
        if observers:
            for fn in observers:
                fn(self, segment)
        route = segment.route
        cache = self._route_children
        try:
            out_ports = cache[route]
        except KeyError:
            out_ports = None
        if out_ports is None:
            # Resolve once per (tree, this switch): the child list mapped
            # straight to Port objects, so the steady state is a single
            # identity-keyed dict hit per hop.
            ports = network.ports
            name = self.name
            out_ports = tuple(
                ports[name, child] for child in route.children(name)
            )
            cache[route] = out_ports
            strip_map = getattr(route, "strip_bytes", None)
            if strip_map:
                take = strip_map.get(name, 0)
                if take:
                    self._route_strip[route] = take
                    self._has_strip = True
        if self._has_strip:
            take = self._route_strip.get(route)
            if take:
                # This switch's own p-rule / label leaves the header here;
                # every downstream copy carries the smaller frame.
                segment.nbytes -= take
                strip_obs = network.obs_header_strip
                if strip_obs:
                    for fn in strip_obs:
                        fn(self, segment, take)
        if not out_ports:
            # Over-covered ToR (§3.3): the packet arrived, nobody wants it.
            self.dropped_bytes += segment.nbytes
            network.wasted_bytes += segment.nbytes
            observers = network.obs_wasted
            if observers:
                for fn in observers:
                    fn(self, segment)
            return
        fork_obs = network.obs_fork
        last = len(out_ports) - 1
        if last:
            counters = network.copy_counters
            if counters is not None:
                counters[0] += last  # one fork per non-final out port
        for i, port in enumerate(out_ports):
            if i == last:
                copy = segment
            else:
                copy = segment.fork()
                if fork_obs:
                    for fn in fork_obs:
                        fn(self, copy)
            copy.ingress = via
            port.enqueue(copy)

    # -- shared buffer + per-ingress PFC ---------------------------------------

    def buffer_charge(self, segment: Segment) -> None:
        self.buffered_bytes += segment.nbytes
        via = segment.ingress
        if via is None:
            return
        held = self.ingress_bytes.get(via, 0) + segment.nbytes
        self.ingress_bytes[via] = held
        if held > self.pause_quota and via not in self.paused_ingress:
            self._pause_ingress(via)

    def buffer_release(self, segment: Segment) -> None:
        self.buffered_bytes -= segment.nbytes
        via = segment.ingress
        if via is None:
            return
        held = self.ingress_bytes.get(via, 0) - segment.nbytes
        self.ingress_bytes[via] = held
        if self.paused_ingress and held <= self.resume_quota:
            self._resume_ingress(via)

    def _pause_ingress(self, via: Port) -> None:
        """Quota crossed: PAUSE ``via`` (rare path, kept out of line)."""
        self.paused_ingress.add(via)
        self.network.pfc_pause_events += 1
        via.pause()
        observers = self.network.obs_pfc_pause
        if observers:
            for fn in observers:
                fn(self, via)

    def _resume_ingress(self, via: Port) -> None:
        """Below hysteresis with pauses outstanding: maybe RESUME ``via``."""
        if via not in self.paused_ingress:
            return
        self.paused_ingress.discard(via)
        via.resume()
        observers = self.network.obs_pfc_resume
        if observers:
            for fn in observers:
                fn(self, via)


class HostNode:
    """A server NIC endpoint: terminates transfers, raises CNP feedback."""

    __slots__ = ("name", "network")

    def __init__(self, name: str, network: "Network") -> None:
        self.name = name
        self.network = network

    def receive(self, segment: Segment, via: Port | None = None) -> None:
        del via  # hosts sink traffic; no onward buffer accounting
        network = self.network
        observers = network.obs_deliver
        if observers:
            for fn in observers:
                fn(self, segment)
        counters = network.copy_counters
        if counters is not None:
            counters[1] += 1
        transfer = segment.transfer
        sim = network.sim
        if segment.ecn:
            # Receiver turns the mark into a CNP; one notification per
            # marked segment, delivered after a short feedback delay.
            sim.post(
                network.cnp_delay_s, transfer.on_congestion_feedback, self.name
            )
        transfer.on_delivered(self.name, segment, sim.now)

    def send(self, segment: Segment) -> None:
        """Inject a segment onto the uplink its route dictates."""
        children = segment.route.children(self.name)
        if len(children) != 1:
            raise ValueError(
                f"host {self.name} route must have exactly one first hop, "
                f"got {children}"
            )
        observers = self.network.obs_inject
        if observers:
            for fn in observers:
                fn(self, segment)
        self.network.ports[self.name, children[0]].enqueue(segment)


class Network:
    """All runtime state for one fabric under simulation."""

    #: Fixed feedback latency for a CNP (receiver NIC -> sender NIC).
    cnp_delay_s = 4e-6

    def __init__(
        self, topo: Topology, config: SimConfig | None = None, sim: Simulator | None = None
    ) -> None:
        self.topo = topo
        self.config = config or SimConfig()
        self.sim = sim or Simulator()
        self.rng = random.Random(self.config.seed)
        #: Hot-path copy of ``config.loss_probability`` (read per tx-done).
        self.loss_probability = self.config.loss_probability
        self.wasted_bytes = 0
        self.pfc_pause_events = 0
        self.lost_segments = 0  # wire corruption (loss_probability)
        self.failure_drops = 0  # copies killed by failed links / injected drops
        #: Bulk copy-lifecycle tallies ``[forked, delivered]``, installed by
        #: the first metrics observer that wants them (None = not counting).
        #: Fork/deliver fire once per copy per hop; a shared int cell that
        #: the forwarding path bumps in place is far cheaper than a
        #: per-copy observer callback that would only ever increment.
        self.copy_counters: list[int] | None = None
        #: Every transfer ever bound to this fabric (observability + faults).
        self.transfers: list = []
        #: Registered :class:`~repro.sim.observer.FabricObserver` consumers.
        self.observers: list[FabricObserver] = []
        # Per-hook dispatch lists: only observers that actually override a
        # hot hook appear in its list, so no-op base-class methods cost
        # nothing on the hot path (see _rebuild_dispatch).
        for _hook in _HOT_HOOKS:
            setattr(self, "obs_" + _hook[3:], [])
        #: Set by a fault injector: transfers then track per-receiver segment
        #: state so mid-stream losses can be repaired.
        self.fault_tolerant = False
        # ECN thresholds cannot resolve below the store-and-forward unit:
        # scale them up when coarse segments are in use (see DESIGN.md).
        self.ecn_kmin_eff = max(self.config.ecn_kmin_bytes, self.config.segment_bytes)
        self.ecn_kmax_eff = max(
            self.config.ecn_kmax_bytes, 3 * self.config.segment_bytes
        )

        self.nodes: dict[str, SwitchNode | HostNode] = {}
        for node in topo.graph.nodes:
            if kind_of(node) is NodeKind.HOST:
                self.nodes[node] = HostNode(node, self)
            else:
                self.nodes[node] = SwitchNode(node, self)

        self.ports: dict[tuple[str, str], Port] = {}
        self.feeders: dict[str, list[Port]] = {n: [] for n in topo.graph.nodes}
        for u, v, data in topo.graph.edges(data=True):
            cap = data["capacity_bps"]
            for a, b in ((u, v), (v, u)):
                port = Port(self.sim, self, a, b, cap)
                self.ports[a, b] = port
                self.feeders[b].append(port)
        for node in self.nodes.values():
            if isinstance(node, SwitchNode):
                node.finalize()

    # -- observers -------------------------------------------------------------

    def add_observer(self, observer: FabricObserver) -> None:
        self.observers.append(observer)
        self._rebuild_dispatch()

    def remove_observer(self, observer: FabricObserver) -> None:
        self.observers.remove(observer)
        self._rebuild_dispatch()

    def _rebuild_dispatch(self) -> None:
        """Recompute the per-hook hot-path dispatch lists.

        Each list holds the *bound methods* of the observers that override
        that hook (one attribute lookup saved per callback per event), in
        registration order so callback order matches the plain
        ``self.observers`` loop exactly.
        """
        for hook in _HOT_HOOKS:
            setattr(
                self,
                "obs_" + hook[3:],
                [getattr(ob, hook) for ob in self.observers if _overrides(ob, hook)],
            )

    # -- dynamic link state ----------------------------------------------------

    def set_link_down(self, u: str, v: str) -> None:
        """Fail both directions of link ``u -- v`` at runtime.

        Queued and on-the-wire copies die (counted in
        :attr:`failure_drops`); re-routing is the fault injector's job.
        """
        self._port_pair(u, v)  # validate
        self.ports[u, v].fail()
        self.ports[v, u].fail()
        if self.observers:
            for ob in self.observers:
                ob.on_link_down(u, v)

    def set_link_up(self, u: str, v: str) -> None:
        """Restore both directions of a previously failed link."""
        self._port_pair(u, v)
        self.ports[u, v].restore()
        self.ports[v, u].restore()
        if self.observers:
            for ob in self.observers:
                ob.on_link_up(u, v)

    def drop_next_segments(self, u: str, v: str, count: int = 1) -> None:
        """Arm a transient fault: the next ``count`` copies finishing
        serialization on port ``u -> v`` die on the wire."""
        if count < 1:
            raise ValueError("count must be >= 1")
        self._port_pair(u, v)
        self.ports[u, v].drop_next += count

    def _port_pair(self, u: str, v: str) -> None:
        if (u, v) not in self.ports or (v, u) not in self.ports:
            raise ValueError(f"no such link: {u!r} -- {v!r}")

    def drop_for_failure(self, port: Port, segment: Segment) -> None:
        """Account one copy killed by a failed link or an injected drop."""
        self.failure_drops += 1
        observers = self.obs_lost
        if observers:
            for fn in observers:
                fn(port, segment)

    # -- observability --------------------------------------------------------

    def link_bytes(self) -> dict[tuple[str, str], int]:
        return {key: port.bytes_sent for key, port in self.ports.items()}

    def total_bytes_sent(self) -> int:
        return sum(port.bytes_sent for port in self.ports.values())

    def host(self, name: str) -> HostNode:
        node = self.nodes[name]
        if not isinstance(node, HostNode):
            raise TypeError(f"{name!r} is not a host")
        return node
