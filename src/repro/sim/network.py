"""Runtime network: ports, switches, hosts, ECN marking and PFC.

Built from a :class:`repro.topology.Topology`.  Every directed edge gets a
:class:`Port` (an output queue serializing at link rate).  Switches hold a
shared buffer partitioned into per-ingress quotas: when the bytes a given
upstream port has parked in this switch exceed its quota, that port — and
only that port — receives a PAUSE (per-ingress PFC, which is what keeps
lossless fabrics free of the circular-buffer-dependency deadlocks a
"pause everyone" model invents).  Output queues mark ECN with DCQCN's
RED-style profile.

Links can fail *mid-run* (:meth:`Network.set_link_down`): a downed port
blackholes traffic — queued copies die, the copy on the wire dies, and
arrivals die on enqueue — until :meth:`Network.set_link_up` restores it.
Every lifecycle event is mirrored to registered
:class:`~repro.sim.observer.FabricObserver` instances.
"""

from __future__ import annotations

import random
from collections import deque

from ..topology import Topology
from ..topology.addressing import NodeKind, kind_of
from .config import SimConfig
from .engine import Simulator
from .observer import FabricObserver
from .packet import Segment


class Port:
    """Unidirectional output port ``src -> dst`` with a FIFO queue."""

    __slots__ = (
        "sim",
        "network",
        "src",
        "dst",
        "capacity_bps",
        "queue",
        "queue_bytes",
        "transmitting",
        "in_service",
        "paused",
        "down",
        "drop_next",
        "bytes_sent",
        "segments_sent",
        "ecn_marks",
        "peak_queue_bytes",
        "src_switch",
        "dst_node",
        "_bits_per_byte_s",
        "_prop_delay_s",
    )

    def __init__(
        self, sim: Simulator, network: "Network", src: str, dst: str, capacity_bps: float
    ) -> None:
        self.sim = sim
        self.network = network
        self.src = src
        self.dst = dst
        self.capacity_bps = capacity_bps
        self.queue: deque[Segment] = deque()
        self.queue_bytes = 0
        self.transmitting = False
        self.in_service: Segment | None = None
        self.paused = False
        self.down = False
        self.drop_next = 0  # one-shot transient-drop counter (fault injection)
        self.bytes_sent = 0
        self.segments_sent = 0
        self.ecn_marks = 0
        self.peak_queue_bytes = 0
        # Hot-path bindings, fixed at construction: whether the upstream
        # node is a switch (buffer accounting + ECN apply), the downstream
        # node object (receive target), and per-byte serialization time —
        # this removes a dict lookup + isinstance per segment hop.
        src_node = network.nodes[src]
        self.src_switch: SwitchNode | None = (
            src_node if type(src_node) is SwitchNode else None
        )
        self.dst_node = network.nodes[dst]
        self._bits_per_byte_s = 8.0 / capacity_bps
        self._prop_delay_s = network.config.propagation_delay_s

    @property
    def key(self) -> tuple[str, str]:
        return (self.src, self.dst)

    def enqueue(self, segment: Segment) -> None:
        if self.down:
            # Frames toward a dead link die immediately instead of parking
            # in a queue that can never drain (which would wedge PFC).
            self.network.drop_for_failure(self, segment)
            return
        src_switch = self.src_switch
        if src_switch is not None:
            # ECN decision uses the *waiting* bytes the segment lands behind
            # (the in-service segment is not queueing delay).
            if self._ecn_mark():
                segment.ecn = True
                self.ecn_marks += 1
            src_switch.buffer_charge(segment)
        self.queue.append(segment)
        queue_bytes = self.queue_bytes + segment.nbytes
        self.queue_bytes = queue_bytes
        if queue_bytes > self.peak_queue_bytes:
            self.peak_queue_bytes = queue_bytes
        observers = self.network.observers
        if observers:
            for ob in observers:
                ob.on_enqueue(self, segment)
        self._maybe_start()

    def _ecn_mark(self) -> bool:
        net = self.network
        depth = self.queue_bytes
        if depth <= net.ecn_kmin_eff:
            return False
        if depth >= net.ecn_kmax_eff:
            return True
        ramp = (depth - net.ecn_kmin_eff) / (net.ecn_kmax_eff - net.ecn_kmin_eff)
        return net.rng.random() < net.config.ecn_pmax * ramp

    def _maybe_start(self) -> None:
        if self.transmitting or self.paused or self.down or not self.queue:
            return
        segment = self.queue.popleft()
        nbytes = segment.nbytes
        self.queue_bytes -= nbytes
        self.transmitting = True
        self.in_service = segment
        self.sim.post(nbytes * self._bits_per_byte_s, self._tx_done, segment)

    def _tx_done(self, segment: Segment) -> None:
        network = self.network
        nbytes = segment.nbytes
        self.bytes_sent += nbytes
        self.segments_sent += 1
        self.transmitting = False
        self.in_service = None
        src_switch = self.src_switch
        if src_switch is not None:
            src_switch.buffer_release(segment)
        if self.down:
            # The link failed while this frame was on the wire.
            network.drop_for_failure(self, segment)
        elif self.drop_next > 0:
            self.drop_next -= 1
            network.drop_for_failure(self, segment)
        elif (
            network.loss_probability
            and network.rng.random() < network.loss_probability
        ):
            # Corrupted on the wire: the link time was spent, the bytes die.
            # Selective-repeat recovery happens at the transfer layer.
            network.lost_segments += 1
            if network.observers:
                for ob in network.observers:
                    ob.on_lost(self, segment)
        else:
            observers = network.observers
            if observers:
                for ob in observers:
                    ob.on_tx_done(self, segment)
            self.sim.post(
                self._prop_delay_s, self.dst_node.receive, segment, self
            )
        self._maybe_start()

    def pause(self) -> None:
        self.paused = True

    def resume(self) -> None:
        if self.paused:
            self.paused = False
            self._maybe_start()

    # -- dynamic failure ------------------------------------------------------

    def fail(self) -> None:
        """Take the port down, dropping every queued copy."""
        if self.down:
            return
        self.down = True
        src_switch = self.src_switch
        while self.queue:
            segment = self.queue.popleft()
            self.queue_bytes -= segment.nbytes
            if src_switch is not None:
                src_switch.buffer_release(segment)
            self.network.drop_for_failure(self, segment)
        # The in-service copy (if any) dies at its _tx_done.

    def restore(self) -> None:
        if not self.down:
            return
        self.down = False
        self._maybe_start()


class SwitchNode:
    """A switch: per-ingress buffer quotas (PFC), route-driven replication."""

    __slots__ = (
        "name",
        "network",
        "buffered_bytes",
        "dropped_bytes",
        "ingress_bytes",
        "paused_ingress",
        "pause_quota",
        "resume_quota",
        "_route_children",
    )

    def __init__(self, name: str, network: "Network") -> None:
        self.name = name
        self.network = network
        self.buffered_bytes = 0
        self.dropped_bytes = 0  # segments with no onward route (ToR discard)
        self.ingress_bytes: dict[Port, int] = {}
        self.paused_ingress: set[Port] = set()
        self.pause_quota = 0.0  # finalized once ports exist
        self.resume_quota = 0.0
        # Memoized route.children(self.name) per tree object: replication
        # resolves each (tree, switch) pair once instead of hashing the
        # switch name into the tree's children map on every segment hop.
        self._route_children: dict = {}

    def finalize(self) -> None:
        """Compute per-ingress PFC quotas once the port fan-in is known."""
        cfg = self.network.config
        feeders = max(1, len(self.network.feeders[self.name]))
        quota = cfg.pfc_pause_threshold_bytes / feeders
        # A quota below the store-and-forward unit would pause on every
        # arrival; keep at least two segments of headroom per ingress.
        self.pause_quota = max(quota, 2 * cfg.segment_bytes)
        hysteresis = max(
            cfg.pfc_resume_hysteresis_mtus * cfg.mtu_bytes, cfg.segment_bytes
        )
        self.resume_quota = max(0.0, self.pause_quota - hysteresis)

    def receive(self, segment: Segment, via: Port | None) -> None:
        observers = self.network.observers
        if observers:
            for ob in observers:
                ob.on_switch_receive(self, segment)
        route = segment.route
        cache = self._route_children
        out_ports = cache.get(route)
        if out_ports is None:
            # Resolve once per (tree, this switch): the child list mapped
            # straight to Port objects, so the steady state is a single
            # identity-keyed dict hit per hop.
            ports = self.network.ports
            name = self.name
            out_ports = tuple(
                ports[name, child] for child in route.children(name)
            )
            cache[route] = out_ports
        if not out_ports:
            # Over-covered ToR (§3.3): the packet arrived, nobody wants it.
            self.dropped_bytes += segment.nbytes
            self.network.wasted_bytes += segment.nbytes
            if observers:
                for ob in observers:
                    ob.on_wasted(self, segment)
            return
        last = len(out_ports) - 1
        for i, port in enumerate(out_ports):
            if i == last:
                copy = segment
            else:
                copy = segment.fork()
                if observers:
                    for ob in observers:
                        ob.on_fork(self, copy)
            copy.ingress = via
            port.enqueue(copy)

    # -- shared buffer + per-ingress PFC ---------------------------------------

    def buffer_charge(self, segment: Segment) -> None:
        self.buffered_bytes += segment.nbytes
        via = segment.ingress
        if via is None:
            return
        held = self.ingress_bytes.get(via, 0) + segment.nbytes
        self.ingress_bytes[via] = held
        if held > self.pause_quota and via not in self.paused_ingress:
            self.paused_ingress.add(via)
            self.network.pfc_pause_events += 1
            via.pause()
            if self.network.observers:
                for ob in self.network.observers:
                    ob.on_pfc_pause(self, via)

    def buffer_release(self, segment: Segment) -> None:
        self.buffered_bytes -= segment.nbytes
        via = segment.ingress
        if via is None:
            return
        held = self.ingress_bytes.get(via, 0) - segment.nbytes
        self.ingress_bytes[via] = held
        if via in self.paused_ingress and held <= self.resume_quota:
            self.paused_ingress.discard(via)
            via.resume()
            if self.network.observers:
                for ob in self.network.observers:
                    ob.on_pfc_resume(self, via)


class HostNode:
    """A server NIC endpoint: terminates transfers, raises CNP feedback."""

    __slots__ = ("name", "network")

    def __init__(self, name: str, network: "Network") -> None:
        self.name = name
        self.network = network

    def receive(self, segment: Segment, via: Port | None = None) -> None:
        del via  # hosts sink traffic; no onward buffer accounting
        network = self.network
        if network.observers:
            for ob in network.observers:
                ob.on_deliver(self, segment)
        transfer = segment.transfer
        sim = network.sim
        if segment.ecn:
            # Receiver turns the mark into a CNP; one notification per
            # marked segment, delivered after a short feedback delay.
            sim.post(
                network.cnp_delay_s, transfer.on_congestion_feedback, self.name
            )
        transfer.on_delivered(self.name, segment, sim.now)

    def send(self, segment: Segment) -> None:
        """Inject a segment onto the uplink its route dictates."""
        children = segment.route.children(self.name)
        if len(children) != 1:
            raise ValueError(
                f"host {self.name} route must have exactly one first hop, "
                f"got {children}"
            )
        if self.network.observers:
            for ob in self.network.observers:
                ob.on_inject(self, segment)
        self.network.ports[self.name, children[0]].enqueue(segment)


class Network:
    """All runtime state for one fabric under simulation."""

    #: Fixed feedback latency for a CNP (receiver NIC -> sender NIC).
    cnp_delay_s = 4e-6

    def __init__(
        self, topo: Topology, config: SimConfig | None = None, sim: Simulator | None = None
    ) -> None:
        self.topo = topo
        self.config = config or SimConfig()
        self.sim = sim or Simulator()
        self.rng = random.Random(self.config.seed)
        #: Hot-path copy of ``config.loss_probability`` (read per tx-done).
        self.loss_probability = self.config.loss_probability
        self.wasted_bytes = 0
        self.pfc_pause_events = 0
        self.lost_segments = 0  # wire corruption (loss_probability)
        self.failure_drops = 0  # copies killed by failed links / injected drops
        #: Every transfer ever bound to this fabric (observability + faults).
        self.transfers: list = []
        #: Registered :class:`~repro.sim.observer.FabricObserver` consumers.
        self.observers: list[FabricObserver] = []
        #: Set by a fault injector: transfers then track per-receiver segment
        #: state so mid-stream losses can be repaired.
        self.fault_tolerant = False
        # ECN thresholds cannot resolve below the store-and-forward unit:
        # scale them up when coarse segments are in use (see DESIGN.md).
        self.ecn_kmin_eff = max(self.config.ecn_kmin_bytes, self.config.segment_bytes)
        self.ecn_kmax_eff = max(
            self.config.ecn_kmax_bytes, 3 * self.config.segment_bytes
        )

        self.nodes: dict[str, SwitchNode | HostNode] = {}
        for node in topo.graph.nodes:
            if kind_of(node) is NodeKind.HOST:
                self.nodes[node] = HostNode(node, self)
            else:
                self.nodes[node] = SwitchNode(node, self)

        self.ports: dict[tuple[str, str], Port] = {}
        self.feeders: dict[str, list[Port]] = {n: [] for n in topo.graph.nodes}
        for u, v, data in topo.graph.edges(data=True):
            cap = data["capacity_bps"]
            for a, b in ((u, v), (v, u)):
                port = Port(self.sim, self, a, b, cap)
                self.ports[a, b] = port
                self.feeders[b].append(port)
        for node in self.nodes.values():
            if isinstance(node, SwitchNode):
                node.finalize()

    # -- observers -------------------------------------------------------------

    def add_observer(self, observer: FabricObserver) -> None:
        self.observers.append(observer)

    def remove_observer(self, observer: FabricObserver) -> None:
        self.observers.remove(observer)

    # -- dynamic link state ----------------------------------------------------

    def set_link_down(self, u: str, v: str) -> None:
        """Fail both directions of link ``u -- v`` at runtime.

        Queued and on-the-wire copies die (counted in
        :attr:`failure_drops`); re-routing is the fault injector's job.
        """
        self._port_pair(u, v)  # validate
        self.ports[u, v].fail()
        self.ports[v, u].fail()
        if self.observers:
            for ob in self.observers:
                ob.on_link_down(u, v)

    def set_link_up(self, u: str, v: str) -> None:
        """Restore both directions of a previously failed link."""
        self._port_pair(u, v)
        self.ports[u, v].restore()
        self.ports[v, u].restore()
        if self.observers:
            for ob in self.observers:
                ob.on_link_up(u, v)

    def drop_next_segments(self, u: str, v: str, count: int = 1) -> None:
        """Arm a transient fault: the next ``count`` copies finishing
        serialization on port ``u -> v`` die on the wire."""
        if count < 1:
            raise ValueError("count must be >= 1")
        self._port_pair(u, v)
        self.ports[u, v].drop_next += count

    def _port_pair(self, u: str, v: str) -> None:
        if (u, v) not in self.ports or (v, u) not in self.ports:
            raise ValueError(f"no such link: {u!r} -- {v!r}")

    def drop_for_failure(self, port: Port, segment: Segment) -> None:
        """Account one copy killed by a failed link or an injected drop."""
        self.failure_drops += 1
        if self.observers:
            for ob in self.observers:
                ob.on_lost(port, segment)

    # -- observability --------------------------------------------------------

    def link_bytes(self) -> dict[tuple[str, str], int]:
        return {key: port.bytes_sent for key, port in self.ports.items()}

    def total_bytes_sent(self) -> int:
        return sum(port.bytes_sent for port in self.ports.values())

    def host(self, name: str) -> HostNode:
        node = self.nodes[name]
        if not isinstance(node, HostNode):
            raise TypeError(f"{name!r} is not a host")
        return node
