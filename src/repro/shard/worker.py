"""Shard worker process: one shard's build → windows → finalize loop.

Started via the ``fork`` context, so the build request (spec + partition
plan) arrives by address-space inheritance, not pickling; only the
per-window chunks and the final payload cross the pipe.  Protocol (worker
side)::

    send ("setup", segments, first_peek)
    loop:
        recv ("advance", edge)   -> send ("chunk", records, lines, pauses, peek)
        recv ("finalize",)       -> send ("final", payload); exit

Any exception turns into ``("error", message)`` and a clean exit; the
coordinator raises it as a :class:`~repro.shard.errors.ShardError`.
"""

from __future__ import annotations

__all__ = ["shard_worker_main"]


def _build(build_request: tuple):
    kind = build_request[0]
    if kind == "scenario":
        from .runner import build_scenario_shard, finalize_scenario_shard

        _, spec, plan, index = build_request
        return build_scenario_shard(spec, plan, index), finalize_scenario_shard
    if kind == "serve":
        from .serve import build_serve_shard, finalize_serve_shard

        _, sspec, plan, index = build_request
        return build_serve_shard(sspec, plan, index), finalize_serve_shard
    raise ValueError(f"unknown shard build request {kind!r}")


def shard_worker_main(conn, build_request: tuple) -> None:
    try:
        state, finalize_fn = _build(build_request)
        sim = state.sim
        conn.send(("setup", state.segments, sim.peek_time()))
        while True:
            msg = conn.recv()
            if msg[0] == "advance":
                sim.run_window(msg[1])
                records, lines = sim.take_chunk()
                conn.send(
                    ("chunk", records, lines, state.take_pauses(), sim.peek_time())
                )
            elif msg[0] == "finalize":
                conn.send(("final", finalize_fn(state)))
                return
            else:
                raise ValueError(f"unknown coordinator message {msg[0]!r}")
    except EOFError:  # coordinator died or closed early; just exit
        return
    except BaseException as exc:  # noqa: BLE001 - forwarded to coordinator
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        except (OSError, BrokenPipeError):  # pragma: no cover
            pass
    finally:
        try:
            conn.close()
        except OSError:  # pragma: no cover
            pass
