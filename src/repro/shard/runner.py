"""The sharded scenario runner: build, lockstep-drive, merge, prove.

``run_sharded(spec)`` is to a ``ScenarioSpec(shards=N)`` what
:func:`repro.api.run` is to a serial spec, with a byte-identical result:
golden-trace digest, fired-event digest, CCTs and obs exports all match
the serial run of the same spec.  How:

* :func:`repro.shard.partition.plan_partition` cuts the fabric+workload
  into traffic-closed shards (or refuses, loudly);
* every shard builds a full private copy of the environment — topology,
  config, seeds — but launches only its own jobs/faults/churn, on a
  :class:`~repro.shard.record.RecordingSimulator`;
* a :class:`~repro.shard.barrier.WindowBarrier` advances all shards in
  lockstep windows (pure pacing here: the partition has infinite
  lookahead); each window's records stream into the
  :class:`~repro.shard.sequencer.GlobalSequencer`, which re-derives the
  serial ``(time, seq)`` numbering, transfer names, digests and traces;
* post-run determinism proofs: every fabric RNG state untouched (no
  shard took an ECN/loss draw the serial run would have interleaved
  differently), every multicast tree confined to its shard's territory,
  every queue drained.

``processes=True`` forks one worker per shard (fork start method; the
streamed chunks keep coordinator memory bounded).  In-process sharded
runs snapshot/resume through :class:`repro.replay.Snapshot` exactly like
serial ones — capture between windows, restore anywhere, finish, same
digests.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..collectives import CollectiveEnv, registered_schemes, resolve_scheme
from ..faults import FaultSchedule
from .barrier import WindowBarrier
from .errors import ShardError, ShardPartitionError
from .obs_merge import ShardObservability, extract_obs, merge_observability
from .partition import ShardPlan, lookahead_s, plan_partition
from .record import RecordingSimulator, ShardTraceRecorder
from .sequencer import GlobalSequencer

if TYPE_CHECKING:  # pragma: no cover
    from ..api import ScenarioResult, ScenarioSpec

__all__ = [
    "SHARDABLE_SCHEMES",
    "ShardedScenarioRun",
    "run_sharded",
    "shardable_schemes",
]


def shardable_schemes() -> tuple[str, ...]:
    """Registered scheme names whose default construction declares
    ``shardable = True`` (planning and launch draw no shared RNG).
    ECMP-routed baselines qualify since they draw from per-job streams
    (:meth:`~repro.collectives.CollectiveEnv.ecmp_rng`); ``peel+cores``
    and ``orca`` do not — they sample controller setup latency from the
    shared controller RNG, whose draw *order* couples jobs."""
    return tuple(
        name for name in registered_schemes() if resolve_scheme(name).shardable
    )


#: Shardable built-ins at import time (informational; the check itself
#: resolves the spec's scheme and reads its ``shardable`` capability, so
#: schemes registered later are honored automatically).
SHARDABLE_SCHEMES = shardable_schemes()

#: Initial barrier-window span in simulated seconds; adapted per round
#: toward a records-per-window target (pure pacing, never correctness —
#: the battery proves window-size invariance).
_INITIAL_WINDOW_S = 1e-4
_WINDOW_TARGET_LO = 16_384
_WINDOW_TARGET_HI = 262_144


def validate_spec(spec: "ScenarioSpec") -> None:
    """Reject specs whose serial behaviour a sharded run cannot reproduce."""
    scheme = resolve_scheme(spec.scheme)
    if not scheme.shardable:
        raise ShardError(
            f"scheme {scheme.name!r} is not shardable (its planning or "
            "launch draws a shared RNG whose order couples jobs); "
            f"shardable schemes: {shardable_schemes()}"
        )
    if spec.max_events is not None:
        raise ShardError(
            "max_events budgets cannot be partitioned across shards; "
            "run serially or drop the budget"
        )
    if spec.check_invariants and spec.invariant_watchdog:
        raise ShardError(
            "the invariant deadlock watchdog schedules simulator events; "
            "set ScenarioSpec(invariant_watchdog=False) so serial and "
            "sharded runs fire the same event stream"
        )
    if spec.obs is not None and spec.obs.periodic_sampling:
        raise ShardError(
            "periodic sampling schedules simulator events; build the spec "
            "with Observability(periodic_sampling=False) for sharded runs"
        )
    config = spec.config
    if config is not None and config.loss_probability > 0:
        raise ShardError(
            "loss_probability > 0 draws from the shared fabric RNG per "
            "transmitted segment; unshardable"
        )


class ShardState:
    """One shard's live half-world (in-process or inside a worker)."""

    def __init__(self, index: int) -> None:
        self.index = index
        self.sim: RecordingSimulator | None = None
        self.env: CollectiveEnv | None = None
        self.handle_pairs: list[tuple[int, object]] = []
        self.churn_driver = None
        self.obs: ShardObservability | None = None
        #: (phase, global index, n_sched, lines, names) setup segments.
        self.segments: list[tuple] = []
        self.territory: set[str] = set()
        self._rng_marks: tuple = ()

    def take_pauses(self) -> dict:
        if self.obs is None:
            return {}
        return self.obs.observer.take_pauses()

    # -- determinism proofs ------------------------------------------------

    def mark_rngs(self) -> None:
        env = self.env
        self._rng_marks = (
            env.network.rng.getstate(),
            env.rng.getstate(),
            env.router.rng.getstate(),
            env.controller.rng.getstate(),
        )

    def check_rngs(self) -> None:
        env = self.env
        names = ("network", "env", "router", "controller")
        current = (
            env.network.rng.getstate(),
            env.rng.getstate(),
            env.router.rng.getstate(),
            env.controller.rng.getstate(),
        )
        for name, before, after in zip(names, self._rng_marks, current):
            if before != after:
                raise ShardError(
                    f"shard {self.index} drew from the {name} RNG during "
                    "the run (ECN ramp marking or random routing); the "
                    "serial run would interleave these draws globally — "
                    "result not byte-identical, run this scenario serially"
                )

    def check_containment(self) -> None:
        for transfer in self.env.network.transfers:
            trees = list(transfer.static_trees)
            if transfer.refined_tree is not None:
                trees.append(transfer.refined_tree)
            for tree in trees:
                stray = tree.nodes - self.territory
                if stray:
                    raise ShardPartitionError(
                        f"transfer {transfer.name} on shard {self.index} "
                        f"routed through foreign nodes {sorted(stray)[:4]}; "
                        "the partition is not traffic-closed"
                    )


def build_scenario_shard(
    spec: "ScenarioSpec", plan: ShardPlan, shard_index: int
) -> ShardState:
    """Construct one shard's environment, mirroring the serial setup order
    (faults at env construction, jobs in spec order, churn install) while
    capturing per-action segments for the sequencer's setup interleave."""
    scheme = resolve_scheme(spec.scheme)
    state = ShardState(shard_index)
    sim = state.sim = RecordingSimulator()
    topo = spec.topology
    fault_pairs: list[tuple] = []
    shard_faults = None
    if spec.fault_schedule is not None:
        topo = topo.copy()  # dynamic faults mutate the planning topology
        fault_pairs = [
            (g, event)
            for g, event in enumerate(spec.fault_schedule)
            if plan.fault_shard[g] == shard_index
        ]
        shard_faults = FaultSchedule([event for _, event in fault_pairs])
    env = state.env = CollectiveEnv(
        topo,
        spec.config,
        fault_schedule=shard_faults,
        check_invariants=spec.check_invariants,
        record_trace=False,
        protection=spec.protection,
        sim=sim,
        invariant_watchdog=False,
    )
    if sim._seq != len(fault_pairs):  # pragma: no cover - engine invariant
        raise ShardError(
            f"env construction scheduled {sim._seq} events for "
            f"{len(fault_pairs)} faults; setup interleave unknown"
        )
    # The fault injector schedules exactly one entry per event, in
    # schedule order, with no trace lines or transfers.
    state.segments = [(0, g, 1, [], None) for g, _ in fault_pairs]
    if spec.record_trace or spec.keep_trace_events:
        ShardTraceRecorder(env.network, sim.lines)
    sim.watch_transfers(env.network.transfers)
    if spec.obs is not None:
        state.obs = ShardObservability(spec.obs).attach(env.network)
    if spec.churn is not None:
        # Joins/leaves need per-receiver segment tracking; must be set
        # before any transfer is constructed (mirrors ScenarioRun).
        env.network.fault_tolerant = True
    transfers = env.network.transfers
    for g, job in enumerate(spec.jobs):
        if plan.job_shard[g] != shard_index:
            continue
        seq0, lines0, created0 = sim._seq, len(sim.lines), len(transfers)
        env.job_seq = g  # per-job ECMP streams key on the *global* index
        handle = scheme.launch(env, job.group, job.message_bytes, job.arrival_s)
        names = [t.name for t in transfers[created0:]] or None
        state.segments.append(
            (1, g, sim._seq - seq0, sim.lines[lines0:], names)
        )
        state.handle_pairs.append((g, handle))
    sim.lines.clear()  # setup lines now live in the segments
    if spec.churn is not None:
        from ..control.membership import ChurnDriver, ChurnSchedule

        churn_pairs = [
            (g, event)
            for g, event in enumerate(spec.churn)
            if plan.churn_shard[g] == shard_index
        ]
        filtered = ChurnSchedule(tuple(event for _, event in churn_pairs))
        padded: list = [None] * len(spec.jobs)
        for g, handle in state.handle_pairs:
            padded[g] = handle
        state.churn_driver = ChurnDriver(env, filtered)
        seq0 = sim._seq
        state.churn_driver.install(padded)
        if sim._seq - seq0 != len(churn_pairs):  # pragma: no cover
            raise ShardError("churn install scheduled an unexpected count")
        state.segments.extend((2, g, 1, [], None) for g, _ in churn_pairs)
    state.territory = plan.nodes_for(shard_index, spec.topology)
    state.mark_rngs()
    return state


def finalize_scenario_shard(state: ShardState) -> dict:
    """Drained-shard epilogue: determinism proofs + result contribution."""
    env = state.env
    if state.sim.peek_time() is not None:
        raise ShardError(f"shard {state.index} still has pending events")
    state.check_rngs()
    state.check_containment()
    violations = env.finalize_checks()
    handles = [handle for _, handle in state.handle_pairs]
    unfinished = [h for h in handles if not h.complete]
    if unfinished:
        raise RuntimeError(
            f"{len(unfinished)} of {len(handles)} collectives never "
            f"completed on shard {state.index}; simulation stalled"
        )
    backup_entries = 0
    backup_peak = 0
    if env.protection_state is not None:
        backup_entries = sum(
            len(t) for t in env.protection_state.tables.values()
        )
        backup_peak = env.protection_state.peak_entries_per_switch
    injector = env.fault_injector
    header_overhead = sum(
        t.header_bytes * (t.num_segments + t.retransmissions)
        for h in handles
        for t in h.transfers
        if t.header_bytes
    )
    group_tcam_peak = (
        env.group_state.peak_entries_per_switch
        if env.group_state is not None
        else 0
    )
    return {
        "ccts": [(g, handle.cct_s) for g, handle in state.handle_pairs],
        "total_bytes": env.network.total_bytes_sent(),
        "wasted_bytes": env.network.wasted_bytes,
        "pfc_pause_events": env.network.pfc_pause_events,
        "failure_drops": env.network.failure_drops,
        "violations": list(violations),
        "repeels": list(injector.repeels) if injector is not None else [],
        "failovers": list(injector.failovers) if injector is not None else [],
        "membership": (
            dict(state.churn_driver.counters) if state.churn_driver else {}
        ),
        "backup_entries": backup_entries,
        "backup_peak": backup_peak,
        "header_overhead_bytes": header_overhead,
        "group_tcam_peak": group_tcam_peak,
        "static_rule_budget": (
            env.static_rule_budget() if env.protection else 0
        ),
        "obs": (
            extract_obs(state.obs, env.network, handles)
            if state.obs is not None
            else None
        ),
        "processed": state.sim.processed,
    }


class _Chunk:
    __slots__ = ("records", "lines", "pauses", "peek")

    def __init__(self, records, lines, pauses, peek) -> None:
        self.records = records
        self.lines = lines
        self.pauses = pauses
        self.peek = peek


class LocalShard:
    """In-process shard adapter (snapshot-friendly).

    ``finalize_fn(state)`` is the epilogue matching how ``state`` was
    built (scenario or serve) — both expose ``sim``, ``segments`` and
    ``take_pauses()``.
    """

    def __init__(self, state, finalize_fn) -> None:
        self.index = state.index
        self.state = state
        self._finalize = finalize_fn
        self._edge: float | None = None

    def setup_segments(self) -> list[tuple]:
        return self.state.segments

    def initial_peek(self) -> float | None:
        return self.state.sim.peek_time()

    def start_advance(self, edge: float) -> None:
        self._edge = edge

    def collect(self) -> _Chunk:
        sim = self.state.sim
        sim.run_window(self._edge)
        self._edge = None
        records, lines = sim.take_chunk()
        return _Chunk(records, lines, self.state.take_pauses(), sim.peek_time())

    def finalize(self) -> dict:
        return self._finalize(self.state)

    def close(self) -> None:
        pass


class ProcessShard:
    """Worker-process shard adapter (fork + pipe, streamed chunks)."""

    def __init__(self, build_request: tuple, index: int) -> None:
        import multiprocessing as mp

        self.index = index
        ctx = mp.get_context("fork")
        self._conn, child_conn = ctx.Pipe()
        from .worker import shard_worker_main

        self._proc = ctx.Process(
            target=shard_worker_main,
            args=(child_conn, build_request),
            daemon=True,
        )
        self._proc.start()
        child_conn.close()
        kind, self._segments, self._peek = self._recv("setup")

    def _recv(self, expect: str):
        reply = self._conn.recv()
        if reply[0] == "error":
            self.close()
            raise ShardError(f"shard {self.index} worker failed: {reply[1]}")
        if reply[0] != expect:  # pragma: no cover - protocol bug
            raise ShardError(f"expected {expect!r}, got {reply[0]!r}")
        return reply

    def setup_segments(self) -> list[tuple]:
        return self._segments

    def initial_peek(self) -> float | None:
        return self._peek

    def start_advance(self, edge: float) -> None:
        self._conn.send(("advance", edge))

    def collect(self) -> _Chunk:
        _, records, lines, pauses, peek = self._recv("chunk")
        return _Chunk(records, lines, pauses, peek)

    def finalize(self) -> dict:
        self._conn.send(("finalize",))
        _, payload = self._recv("final")
        self.close()
        return payload

    def close(self) -> None:
        try:
            self._conn.close()
        except OSError:  # pragma: no cover
            pass
        if self._proc.is_alive():
            self._proc.join(timeout=10)
            if self._proc.is_alive():  # pragma: no cover
                self._proc.kill()


class LockstepDriver:
    """Drives N shard adapters through barrier windows into a sequencer.

    Shared by scenario and serve sharding: owns the peeks, the adaptive
    window span, and the open→advance→collect→feed→merge round.  Pickles
    whole (with in-process shards) for sharded snapshots.
    """

    def __init__(self, shards: list, sequencer: GlobalSequencer) -> None:
        self.shards = shards
        self.sequencer = sequencer
        self.barrier = WindowBarrier(len(shards))
        # Serial setup interleave: segments sort by (phase, global index)
        # across shards — faults, then jobs/submits, then churn.
        merged_setup: list[tuple[int, tuple]] = []
        for shard in shards:
            merged_setup.extend(
                (shard.index, segment) for segment in shard.setup_segments()
            )
        merged_setup.sort(key=lambda item: (item[1][0], item[1][1]))
        for shard_index, (_, _, n_sched, lines, names) in merged_setup:
            sequencer.push_setup(shard_index, n_sched, lines, names or [])
        self._peeks: list[float | None] = [
            shard.initial_peek() for shard in shards
        ]
        self._window_s = _INITIAL_WINDOW_S
        self.windows_run = 0

    @property
    def drained(self) -> bool:
        return all(peek is None for peek in self._peeks)

    def advance_window(self) -> int:
        """Open, simulate and commit one barrier window on every shard;
        merge its records.  Returns records merged (0 when drained)."""
        live = [peek for peek in self._peeks if peek is not None]
        if not live:
            return 0
        edge = min(live) + self._window_s
        if edge <= self.barrier.committed_edge:  # pragma: no cover - defensive
            edge = self.barrier.committed_edge + self._window_s
        self.barrier.open(edge)
        for shard in self.shards:
            if self._peeks[shard.index] is not None:
                shard.start_advance(edge)
        total = 0
        for shard in self.shards:
            if self._peeks[shard.index] is None:
                self.barrier.arrive(shard.index)
                continue
            chunk = shard.collect()
            self.barrier.arrive(shard.index)
            self.sequencer.feed(
                shard.index, chunk.records, chunk.lines, chunk.pauses
            )
            self._peeks[shard.index] = chunk.peek
            total += len(chunk.records)
        merged = self.sequencer.merge_available()
        if merged != total:  # pragma: no cover - sequencer invariant
            raise ShardError(f"merged {merged} of {total} window records")
        self.windows_run += 1
        # Window sizing is pure pacing; correctness is window-invariant.
        if total < _WINDOW_TARGET_LO:
            self._window_s *= 4.0
        elif total > _WINDOW_TARGET_HI:
            self._window_s *= 0.5
        return total

    def drain(self) -> None:
        while not self.drained:
            self.advance_window()
        self.sequencer.assert_drained()

    def finalize_all(self) -> list[dict]:
        return [shard.finalize() for shard in self.shards]


class ShardedScenarioRun:
    """A sharded scenario mid-flight — the sharded checkpoint seam.

    The in-process form pickles whole (shard states + sequencer + barrier),
    so :class:`repro.replay.Snapshot` SIGKILL-resume works sharded: capture
    between windows, restore in a fresh process, :meth:`finish`, and every
    digest matches the uninterrupted run.
    """

    def __init__(self, spec: "ScenarioSpec", processes: bool = False) -> None:
        shards = spec.shards
        if shards < 2:
            raise ShardError(f"sharded run needs shards >= 2, got {shards}")
        validate_spec(spec)
        self.spec = spec
        self.plan = plan_partition(
            spec.topology, spec.jobs, shards, spec.fault_schedule, spec.churn
        )
        self.lookahead_s = lookahead_s(
            self.plan, spec.topology, spec.config or _default_config()
        )
        self.processes = processes
        self.sequencer = GlobalSequencer(
            shards,
            event_digest=spec.event_digest,
            trace=spec.record_trace or spec.keep_trace_events,
            keep_lines=spec.keep_trace_events,
        )
        if processes:
            shard_list: list = [
                ProcessShard(("scenario", spec, self.plan, s), s)
                for s in range(shards)
            ]
        else:
            shard_list = [
                LocalShard(
                    build_scenario_shard(spec, self.plan, s),
                    finalize_scenario_shard,
                )
                for s in range(shards)
            ]
        self.driver = LockstepDriver(shard_list, self.sequencer)
        self.resumed_at_s: float | None = None
        self.snapshots_taken = 0
        self.finished = False

    # -- stepping ----------------------------------------------------------

    @property
    def shards(self) -> list:
        return self.driver.shards

    @property
    def barrier(self) -> WindowBarrier:
        return self.driver.barrier

    @property
    def windows_run(self) -> int:
        return self.driver.windows_run

    @property
    def drained(self) -> bool:
        return self.driver.drained

    def advance_window(self) -> int:
        return self.driver.advance_window()

    def run_until(self, until: float) -> None:
        """Advance windows until the committed edge passes ``until`` (or
        the run drains); leaves the run at a snapshot-safe point."""
        while not self.drained and self.barrier.committed_edge < until:
            self.advance_window()

    def snapshot(self):
        """Freeze the whole sharded run into a :class:`repro.replay.Snapshot`."""
        from ..replay import Snapshot

        if self.processes:
            raise ShardError(
                "snapshotting is supported for in-process sharded runs only"
            )
        if self.finished:
            raise RuntimeError("cannot snapshot a finished scenario")
        self.snapshots_taken += 1
        return Snapshot.capture(
            self, sim=self.shards[0].state.sim, kind="ShardedScenarioRun"
        )

    def mark_resumed(self, at_s: float) -> None:
        self.resumed_at_s = at_s

    # -- completion --------------------------------------------------------

    def finish(self) -> "ScenarioResult":
        from ..api import ReplayInfo, ScenarioResult

        if self.finished:
            raise RuntimeError("scenario already finished")
        self.finished = True
        self.driver.drain()
        payloads = self.driver.finalize_all()
        spec = self.spec
        sequencer = self.sequencer
        ccts: list = [None] * len(spec.jobs)
        for payload in payloads:
            for g, cct in payload["ccts"]:
                ccts[g] = cct
        membership: dict = {}
        for payload in payloads:
            for name, count in payload["membership"].items():
                membership[name] = membership.get(name, 0) + count
        repeels = []
        failovers = []
        for shard, payload in zip(self.shards, payloads):
            rename = sequencer.name_map[shard.index]
            repeels.extend(
                r._replace(transfer=rename.get(r.transfer, r.transfer))
                for r in payload["repeels"]
            )
            failovers.extend(
                f._replace(transfer=rename.get(f.transfer, f.transfer))
                for f in payload["failovers"]
            )
        repeels.sort(key=lambda r: r.time_s)
        failovers.sort(key=lambda f: f.time_s)
        violations = [v for payload in payloads for v in payload["violations"]]
        violations.sort(key=lambda v: v.time_s)
        obs = spec.obs
        if obs is not None:
            merged = merge_observability(
                [payload["obs"] for payload in payloads],
                sequencer,
                ccts,
                membership,
            )
            obs.registry.merge(merged)
            obs._finalized = True  # exports serve the merged registry as-is
        digest = sequencer.digest
        return ScenarioResult(
            scheme=spec.scheme_name,
            ccts=ccts,
            total_bytes=sum(p["total_bytes"] for p in payloads),
            wasted_bytes=sum(p["wasted_bytes"] for p in payloads),
            pfc_pause_events=sum(p["pfc_pause_events"] for p in payloads),
            invariant_violations=violations,
            trace_digest=(
                sequencer.trace_digest()
                if (spec.record_trace or spec.keep_trace_events)
                else None
            ),
            failure_drops=sum(p["failure_drops"] for p in payloads),
            repeels=repeels,
            replay=ReplayInfo(
                resumed=self.resumed_at_s is not None,
                resumed_at_s=self.resumed_at_s,
                snapshots_taken=self.snapshots_taken,
                events_processed=sum(p["processed"] for p in payloads),
                event_digest=(
                    digest.hexdigest() if digest is not None else None
                ),
            ),
            failovers=failovers,
            protection=spec.protection,
            backup_tcam_entries=sum(p["backup_entries"] for p in payloads),
            backup_tcam_peak_per_switch=max(
                (p["backup_peak"] for p in payloads), default=0
            ),
            static_rule_budget=max(
                (p["static_rule_budget"] for p in payloads), default=0
            ),
            membership=membership,
            header_overhead_bytes=sum(
                p["header_overhead_bytes"] for p in payloads
            ),
            per_group_tcam_peak=max(
                (p["group_tcam_peak"] for p in payloads), default=0
            ),
        )

    @property
    def trace_events(self) -> list[str] | None:
        """Merged, globally-renamed golden-trace lines when the spec asked
        for ``keep_trace_events`` (the serial ``env.trace.events``)."""
        return self.sequencer.kept_lines


def _default_config():
    from ..sim import SimConfig

    return SimConfig()


def run_sharded(spec: "ScenarioSpec", processes: bool = False) -> "ScenarioResult":
    """Run ``spec`` across ``spec.shards`` workers, byte-identical to
    :func:`repro.api.run` of the same spec with ``shards=1``."""
    return ShardedScenarioRun(spec, processes=processes).finish()
