"""Byte-identical observability for sharded runs.

A serial run's exported metrics registry is a pure function of (a) live
int counters, (b) end-of-run folds over fabric counters and sorted port
walks, and (c) per-collective/per-transfer histogram observations made
in a fixed serial order.  The registry snapshot is name-sorted, so metric
*creation* order never matters — only values and, for histograms, the
observation order of the (order-sensitive) float sum.

Shards therefore keep only the live parts (a), tagged where needed with
the firing record's index, and the coordinator rebuilds (b) and (c) in
the serial order the :class:`~repro.shard.sequencer.GlobalSequencer`
reconstructed: PFC pause durations in resume-event order, CCTs in global
job order, transfer durations in global creation order, port folds over
the sorted union of per-shard active ports.  ``metrics_json`` then
matches the serial run byte for byte.

Periodic sampling is unsupported sharded (the sampler schedules real
simulator events, which would perturb the fired-event stream); sharded
specs must carry ``Observability(periodic_sampling=False)`` — and the
serial leg of any differential comparison must do the same.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..obs.fabric import FabricMetricsObserver, Observability
from ..obs.metrics import (
    BYTES_BOUNDS,
    RATIO_BOUNDS,
    SECONDS_BOUNDS,
    MetricsRegistry,
)
from ..sim.stats import _tier as link_tier
from .errors import ShardError

__all__ = [
    "ShardFabricObserver",
    "ShardObsExtract",
    "ShardObservability",
    "extract_obs",
    "merge_observability",
]


class ShardFabricObserver(FabricMetricsObserver):
    """Shard-side metrics observer.

    Identical to the serial observer except PFC pause durations are not
    summed locally (float accumulation order is global): each resume's
    duration is recorded against the index of the currently firing event
    record, and the coordinator folds them in merge order.
    """

    def __init__(self, obs: "ShardObservability", network) -> None:
        super().__init__(obs, network)
        #: (fired-record index, pause seconds), in shard event order.
        self.pause_records: list[tuple[int, float]] = []

    def on_pfc_resume(self, switch, port) -> None:
        started = self._open_pauses.pop((switch.name, port.src), None)
        if started is not None:
            sim = self.network.sim
            self.pause_records.append(
                (sim.recorded_total, sim.now - started)
            )

    def take_pauses(self) -> dict[int, list[float]]:
        """Drain pause records, grouped by fired-record index."""
        if not self.pause_records:
            return {}
        out: dict[int, list[float]] = {}
        for idx, seconds in self.pause_records:
            out.setdefault(idx, []).append(seconds)
        self.pause_records = []
        return out


class ShardObservability(Observability):
    """Per-shard :class:`Observability`: no sampler, shard observer."""

    def __init__(self, template: Observability) -> None:
        super().__init__(
            sample_interval_s=template.sample_interval_s,
            detail=template.detail,
            periodic_sampling=False,
        )

    def attach(self, network) -> "ShardObservability":
        if self.network is not None:
            raise RuntimeError("Observability is already attached")
        self.network = network
        self.observer = ShardFabricObserver(self, network)
        return self


@dataclass
class ShardObsExtract:
    """Everything one finished shard contributes to the merged registry."""

    registry: MetricsRegistry
    copy_counts: dict
    pfc_pause_events: int
    wasted_bytes: int
    lost_segments: int
    failure_drops: int
    #: still-open (switch, ingress) -> pause start time.
    open_pauses: dict
    #: (src, dst) -> (bytes_sent, ecn_marks, peak_queue_bytes, capacity_bps)
    #: for ports that carried traffic or queued bytes.
    ports: dict
    #: (dcqcn reactions, dcqcn notifications, retransmissions) sums.
    dcqcn: tuple
    #: transfer span durations in shard creation order (finalize's rule).
    durations: list


def extract_obs(obs: Observability, network, handles) -> ShardObsExtract:
    """Collect a drained shard's observability contribution."""
    observer = obs.observer
    arrivals = {id(h): h.arrival_s for h in handles}
    durations: list[float] = []
    for transfer in network.transfers:
        start = observer.first_inject.get(transfer.name, transfer.start_at)
        if not transfer.complete:  # pragma: no cover - runner rejects earlier
            raise ShardError(f"transfer {transfer.name} incomplete at merge")
        end = transfer.complete_at
        parent_arrival = arrivals.get(
            id(getattr(transfer.on_host_done, "__self__", None))
        )
        if parent_arrival is not None:
            start = max(start, parent_arrival)
        durations.append(max(end, start) - start)
    ports = {}
    for key, port in network.ports.items():
        if port.bytes_sent or port.peak_queue_bytes:
            ports[key] = (
                port.bytes_sent,
                port.ecn_marks,
                port.peak_queue_bytes,
                port.capacity_bps,
            )
    return ShardObsExtract(
        registry=obs.registry,
        copy_counts=observer.copy_counts(),
        pfc_pause_events=network.pfc_pause_events,
        wasted_bytes=network.wasted_bytes,
        lost_segments=network.lost_segments,
        failure_drops=network.failure_drops,
        open_pauses=dict(observer._open_pauses),
        ports=ports,
        dcqcn=(
            sum(t.dcqcn.reactions for t in network.transfers),
            sum(t.dcqcn.notifications for t in network.transfers),
            sum(t.retransmissions for t in network.transfers),
        ),
        durations=durations,
    )


def _disjoint_union(dicts, what: str) -> dict:
    out: dict = {}
    for d in dicts:
        for key, value in d.items():
            if key in out:
                raise ShardError(f"{what} {key!r} is active on two shards")
            out[key] = value
    return out


def merge_observability(
    extracts: list[ShardObsExtract],
    sequencer,
    ccts: list[float],
    membership: dict | None = None,
) -> MetricsRegistry:
    """Rebuild the serial run's metrics registry from shard extracts.

    ``ccts`` must be in global job order; ``sequencer`` supplies merged
    pause order, transfer creation order, and the final clock.
    """
    merged = MetricsRegistry()
    # (a) live counters (link events, reroutes, failovers) sum exactly.
    for extract in extracts:
        merged.merge(extract.registry)
    if membership:
        for name in sorted(membership):
            merged.counter(f"membership.{name}").inc(membership[name])
    # (b) the serial fold_counters(), over merged state.
    for kind in ("accepted", "delivered", "forked", "injected", "lost", "wasted"):
        merged.counter(f"fabric.copies.{kind}").inc(
            sum(e.copy_counts[kind] for e in extracts)
        )
    merged.counter("fabric.pfc.pause_events").inc(
        sum(e.pfc_pause_events for e in extracts)
    )
    now = sequencer.last_time
    pause_seconds = 0.0
    for value in sequencer.pause_values:
        pause_seconds += value
    open_pauses = _disjoint_union((e.open_pauses for e in extracts), "PFC pause")
    for key in sorted(open_pauses):
        pause_seconds += now - open_pauses[key]
    merged.counter("fabric.pfc.pause_seconds").inc(pause_seconds)
    merged.counter("fabric.wasted_bytes").inc(sum(e.wasted_bytes for e in extracts))
    merged.counter("fabric.lost_segments").inc(
        sum(e.lost_segments for e in extracts)
    )
    merged.counter("fabric.failure_drops").inc(
        sum(e.failure_drops for e in extracts)
    )
    ports = _disjoint_union((e.ports for e in extracts), "port")
    total_bytes = 0
    total_marks = 0
    for key in sorted(ports):
        bytes_sent, ecn_marks, peak_queue_bytes, capacity_bps = ports[key]
        total_bytes += bytes_sent
        total_marks += ecn_marks
        tier = link_tier(key[0], key[1])
        if now > 0:
            merged.histogram(f"link.utilization.{tier}", RATIO_BOUNDS).observe(
                bytes_sent * 8 / (capacity_bps * now)
            )
        merged.histogram("link.peak_queue_bytes", BYTES_BOUNDS).observe(
            peak_queue_bytes
        )
    merged.counter("fabric.bytes_sent").inc(total_bytes)
    merged.counter("fabric.ecn_marks").inc(total_marks)
    merged.counter("dcqcn.rate_updates").inc(sum(e.dcqcn[0] for e in extracts))
    merged.counter("dcqcn.notifications").inc(sum(e.dcqcn[1] for e in extracts))
    merged.counter("fabric.retransmissions").inc(sum(e.dcqcn[2] for e in extracts))
    # (c) histogram observations in serial order.
    cct_hist = merged.histogram("collective.cct_s", SECONDS_BOUNDS)
    for cct in ccts:
        cct_hist.observe(cct)
    duration_hist = merged.histogram("transfer.duration_s", SECONDS_BOUNDS)
    for shard, local_index in sequencer.creation_order:
        duration_hist.observe(extracts[shard].durations[local_index])
    return merged
