"""Cutting one scenario into traffic-closed shards.

The unit of partitioning is a *zone*: every pod of a fat-tree (or leaf of
a leaf-spine) is one zone, and the core/spine tier is one more.  A job's
traffic is confined to the zones its group touches (plus the core when it
spans pods), a fault couples the zones on either side of its link, and a
churn event couples the joining/leaving host's zone to its job's zones.
Union-find over those couplings yields *traffic-closed components*: sets
of zones between which no simulated event ever needs to cross during the
run.  Components are dealt round-robin onto shards.

Because components are closed, the conservative lookahead between shards
is infinite (:func:`lookahead_s` returns ``inf`` when no cross-shard
traffic exists, else the minimum propagation delay of a cross-shard
link): shards never block on each other and the window barrier degrades
to a pure stream merge.  The finite-window protocol still exists (see
:mod:`repro.shard.barrier`) and is what a future cross-shard traffic
matrix would ride on.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..topology.addressing import NodeKind, parse

__all__ = ["CORE_ZONE", "ShardPlan", "lookahead_s", "plan_partition", "zone_of"]

#: The single zone holding every core/spine switch.
CORE_ZONE = ("core", 0)

_CORE_KINDS = (NodeKind.CORE, NodeKind.SPINE)


def zone_of(name: str) -> tuple:
    """The partition zone a node name belongs to.

    Pods (fat-tree) and leaves (leaf-spine) map to ``("pod", i)``; every
    core or spine switch maps to the shared :data:`CORE_ZONE`.
    """
    addr = parse(name)
    kind = addr.kind
    if kind in _CORE_KINDS:
        return CORE_ZONE
    if kind is NodeKind.HOST:
        pod = addr.pod if addr.pod is not None else addr.tor
        return ("pod", pod)
    if kind in (NodeKind.AGG, NodeKind.TOR):
        return ("pod", addr.pod)
    if kind is NodeKind.LEAF:
        return ("pod", addr.index)
    raise ValueError(f"cannot zone node {name!r}")  # pragma: no cover


class _UnionFind:
    def __init__(self) -> None:
        self.parent: dict = {}

    def add(self, x) -> None:
        self.parent.setdefault(x, x)

    def find(self, x):
        parent = self.parent
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return root

    def union(self, a, b) -> None:
        self.add(a)
        self.add(b)
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[rb] = ra


@dataclass(frozen=True)
class ShardPlan:
    """Where every zone, job, fault and churn event runs.

    ``components`` lists the traffic-closed zone sets in canonical order
    (sorted by smallest zone); component ``i`` runs on shard
    ``i % shards``, so the assignment is a pure function of the spec —
    two runs of the same spec shard identically.
    """

    shards: int
    components: tuple[frozenset, ...]
    zone_shard: dict
    job_shard: tuple[int, ...]
    fault_shard: tuple[int, ...]
    churn_shard: tuple[int, ...]

    def shard_of_node(self, name: str) -> int:
        return self.zone_shard[zone_of(name)]

    def nodes_for(self, shard: int, topo) -> set[str]:
        """Every topology node whose zone is assigned to ``shard``."""
        zs = self.zone_shard
        return {n for n in topo.graph.nodes if zs[zone_of(n)] == shard}

    def jobs_for(self, shard: int) -> list[int]:
        return [g for g, s in enumerate(self.job_shard) if s == shard]


def _job_zones(job) -> set[tuple]:
    group = job.group
    zones = {zone_of(group.source.host)}
    for host in group.receiver_hosts:
        zones.add(zone_of(host))
    if len(zones) > 1:
        # A multi-pod group's trees climb through the core tier.
        zones.add(CORE_ZONE)
    return zones


def plan_partition(
    topo,
    jobs,
    shards: int,
    fault_schedule=None,
    churn=None,
) -> ShardPlan:
    """Assign zones/jobs/faults/churn to ``shards`` traffic-closed shards.

    Raises :class:`ShardPartitionError` when the coupling structure leaves
    fewer closed components than requested shards, or a churn event
    references a host no partition rule can co-locate with its job.
    """
    from .errors import ShardPartitionError

    if shards < 1:
        raise ShardPartitionError(f"shards must be >= 1, got {shards}")
    uf = _UnionFind()
    for node in topo.graph.nodes:
        uf.add(zone_of(node))

    job_anchor: list[tuple] = []
    for job in jobs:
        zones = sorted(_job_zones(job))
        anchor = zones[0]
        job_anchor.append(anchor)
        for other in zones[1:]:
            uf.union(anchor, other)

    fault_anchor: list[tuple] = []
    fault_events = tuple(fault_schedule) if fault_schedule is not None else ()
    for event in fault_events:
        target = event.target
        if len(target) == 1:
            # A switch drain downs every adjacent link: couple the
            # switch's zone with each neighbour's.
            anchor = zone_of(target[0])
            for neighbour in topo.graph.neighbors(target[0]):
                uf.union(anchor, zone_of(neighbour))
        else:
            anchor = zone_of(target[0])
            uf.union(anchor, zone_of(target[1]))
        fault_anchor.append(anchor)

    churn_events = tuple(churn) if churn is not None else ()
    churn_anchor: list[tuple] = []
    for event in churn_events:
        if not 0 <= event.group < len(job_anchor):
            raise ShardPartitionError(
                f"churn event targets job {event.group}, but the scenario "
                f"has {len(job_anchor)} jobs"
            )
        anchor = job_anchor[event.group]
        if event.host is not None:
            uf.union(anchor, zone_of(event.host))
        churn_anchor.append(anchor)

    groups: dict = {}
    for zone in uf.parent:
        groups.setdefault(uf.find(zone), set()).add(zone)
    components = tuple(
        frozenset(zones)
        for zones in sorted(groups.values(), key=lambda zs: min(zs))
    )
    if len(components) < shards:
        raise ShardPartitionError(
            f"workload couples the fabric into {len(components)} "
            f"traffic-closed component(s); cannot run {shards} shards. "
            "Sharding needs jobs confined to disjoint pods (multi-pod "
            "groups, core faults and spine-sharing leaf-spine fabrics all "
            "merge components)."
        )
    zone_shard: dict = {}
    for i, comp in enumerate(components):
        for zone in comp:
            zone_shard[zone] = i % shards
    return ShardPlan(
        shards=shards,
        components=components,
        zone_shard=zone_shard,
        job_shard=tuple(zone_shard[a] for a in job_anchor),
        fault_shard=tuple(zone_shard[a] for a in fault_anchor),
        churn_shard=tuple(zone_shard[a] for a in churn_anchor),
    )


def lookahead_s(plan: ShardPlan, topo, config) -> float:
    """Conservative lookahead: the minimum propagation delay over links
    whose endpoints live on different shards, ``inf`` when every link is
    shard-internal (traffic-closed partition — the v1 planner guarantees
    this, making the window barrier a pure merge)."""
    cross = any(
        plan.zone_shard[zone_of(u)] != plan.zone_shard[zone_of(v)]
        for u, v in topo.graph.edges
    )
    if not cross:
        return float("inf")
    return config.propagation_delay_s
