"""Conservative time-window barrier and boundary messages.

The protocol (classic conservative/Chandy–Misra-with-lookahead shape):

1. the coordinator **opens** a window ``(committed_edge, edge]``;
2. every shard simulates up to ``edge`` (inclusive) and **arrives**,
   handing over any cross-shard boundary messages it produced;
3. once all shards have arrived the window **commits**: messages whose
   timestamp falls inside the *next* window are routed to their
   destination shard's inbox, and ``committed_edge`` advances.

No shard may fire an event with ``time > committed_edge`` — enforcing
exactly the invariant the differential battery property-tests.  A
boundary message is timestamped with send time plus the link lookahead;
conservativeness requires it to land at or beyond the edge of the window
it was produced in (a message *inside* its own window would mean a shard
fired an event the receiver should already have seen — a causality
violation, rejected loudly).

With the v1 traffic-closed partition the lookahead is infinite and no
messages flow; the barrier then only paces the incremental stream merge.
Windows of *any* width produce identical merged output — another battery
property — which is what makes the adaptive window sizing in the runner
a pure memory/throughput knob.
"""

from __future__ import annotations

from dataclasses import dataclass

from .errors import ShardError

__all__ = ["BoundaryMessage", "WindowBarrier"]


@dataclass(frozen=True, order=True)
class BoundaryMessage:
    """A timestamped cross-shard event, exchanged at window edges.

    Ordered by ``(time, src_shard, src_seq)`` so merge order is total and
    shard-symmetric.  ``payload`` is an opaque picklable tuple; encoding
    is the plain dataclass tuple (see :meth:`encode`), chosen over a
    packed binary form because messages cross a pickle boundary anyway.
    """

    time: float
    src_shard: int
    src_seq: int
    dst_shard: int
    payload: tuple = ()

    def encode(self) -> tuple:
        return (self.time, self.src_shard, self.src_seq, self.dst_shard, self.payload)

    @classmethod
    def decode(cls, raw: tuple) -> "BoundaryMessage":
        return cls(*raw)


class WindowBarrier:
    """Synchronizes ``num_shards`` shards over conservative windows."""

    def __init__(self, num_shards: int, start_s: float = 0.0) -> None:
        if num_shards < 1:
            raise ShardError(f"need at least one shard, got {num_shards}")
        self.num_shards = num_shards
        #: No event at or before this time remains unfired on any shard.
        self.committed_edge = start_s
        #: Upper edge of the currently open window (None: no open window).
        self.edge: float | None = None
        self.windows_committed = 0
        self._arrived: set[int] = set()
        self._in_flight: list[BoundaryMessage] = []
        self._inbox: list[list[BoundaryMessage]] = [[] for _ in range(num_shards)]

    def open(self, edge: float) -> float:
        """Open the next window ``(committed_edge, edge]``."""
        if self.edge is not None:
            raise ShardError("window already open")
        if edge <= self.committed_edge:
            raise ShardError(
                f"window edge {edge} does not advance past committed "
                f"edge {self.committed_edge}"
            )
        self.edge = edge
        self._arrived.clear()
        return edge

    def can_fire(self, time: float) -> bool:
        """May an event at ``time`` fire right now?  Only inside the open
        window — never beyond it, never without one."""
        return self.edge is not None and time <= self.edge

    def arrive(self, shard: int, messages: tuple = ()) -> bool:
        """Shard ``shard`` finished simulating the open window.

        Returns True once every shard has arrived (the window committed).
        """
        if self.edge is None:
            raise ShardError("no open window to arrive at")
        if shard in self._arrived:
            raise ShardError(f"shard {shard} arrived twice at the same window")
        for msg in messages:
            if msg.time <= self.edge:
                raise ShardError(
                    f"causality violation: boundary message at t={msg.time} "
                    f"from shard {msg.src_shard} lands inside its own "
                    f"window (edge {self.edge}); lookahead too small"
                )
            self._in_flight.append(msg)
        self._arrived.add(shard)
        if len(self._arrived) < self.num_shards:
            return False
        self._commit()
        return True

    def _commit(self) -> None:
        self.committed_edge = self.edge
        self.edge = None
        self.windows_committed += 1
        self._arrived.clear()
        # Deterministic delivery order regardless of arrival order.
        self._in_flight.sort()
        still_flying: list[BoundaryMessage] = []
        for msg in self._in_flight:
            if msg.time <= self.committed_edge:  # pragma: no cover - defensive
                raise ShardError("message for an already-committed window")
            self._inbox[msg.dst_shard].append(msg)
        self._in_flight = still_flying

    def take_inbox(self, shard: int) -> list[BoundaryMessage]:
        """Messages deliverable to ``shard`` in the next window (sorted)."""
        out, self._inbox[shard] = self._inbox[shard], []
        return out
