"""Pod-local workloads: job streams a shard partition can actually cut.

:func:`plan_partition` requires the workload to be *traffic-closed* per
shard — every job's group (and therefore every tree the scheme builds)
must stay inside one zone component.  The generic generators in
:mod:`repro.workloads` place GPUs fabric-wide, which welds all pods into
a single component and makes any ``shards >= 2`` request fail.  This
module generates the shardable counterpart: independent per-pod Poisson
streams on a fat-tree, each pod's placements drawn from its own
string-seeded RNG so the workload is reproducible job-for-job no matter
how many shards later partition it.

Used by the golden shard scenario
(:func:`repro.experiments.scenarios.shard_scenario`), the differential
battery, and the ``scripts/shard_campaign.py`` acceptance campaign.
"""

from __future__ import annotations

import random

from ..collectives import Gpu, Group
from ..workloads import CollectiveJob
from ..workloads.arrivals import fixed_count_arrivals
from ..workloads.load import arrival_rate_for_load
from .errors import ShardError
from .partition import zone_of

__all__ = ["pod_local_jobs"]


def pod_local_jobs(
    topo,
    jobs_per_pod: int,
    group_hosts: int,
    message_bytes: int,
    offered_load: float = 0.3,
    seed: int = 0,
    tenants: tuple[str, ...] = ("default",),
) -> list[CollectiveJob]:
    """A fat-tree workload whose every group lives inside one pod.

    Each pod gets its own Poisson arrival process and placement RNG
    (seeded ``f"shard-pod:{seed}:{pod}"``), calibrated so *each pod*
    carries ``offered_load`` on its slice of the fabric.  Jobs are merged
    into one timeline sorted by ``(arrival_s, pod)`` — a deterministic
    total order even in the astronomically unlikely event of an arrival
    tie — and tagged round-robin from ``tenants`` in timeline order, so
    multi-tenant serving campaigns shard the same way scenario batches do.
    """
    num_pods = getattr(topo, "num_pods", None)
    if not num_pods:
        raise ShardError(
            f"pod_local_jobs needs a pod-structured topology, got {topo!r}"
        )
    by_pod: dict[int, list[str]] = {pod: [] for pod in range(num_pods)}
    for host in topo.hosts:
        kind, index = zone_of(host)
        if kind == "pod":
            by_pod[index].append(host)
    tagged: list[tuple[float, int, CollectiveJob]] = []
    for pod in range(num_pods):
        hosts = sorted(by_pod[pod])
        if len(hosts) < group_hosts:
            raise ShardError(
                f"pod {pod} has {len(hosts)} hosts; cannot place "
                f"{group_hosts}-host groups"
            )
        rng = random.Random(f"shard-pod:{seed}:{pod}")
        rate = arrival_rate_for_load(
            offered_load,
            message_bytes,
            group_hosts - 1,
            len(hosts),
            topo.link_bps,
        )
        for t in fixed_count_arrivals(rate, jobs_per_pod, rng):
            members = tuple(
                Gpu(host, 0) for host in rng.sample(hosts, group_hosts)
            )
            tagged.append((t, pod, CollectiveJob(t, Group(members[0], members), message_bytes)))
    tagged.sort(key=lambda item: (item[0], item[1]))
    cycle = len(tenants)
    return [
        CollectiveJob(job.arrival_s, job.group, job.message_bytes, tenants[i % cycle])
        for i, (_, _, job) in enumerate(tagged)
    ]
