"""Sharded serving: one :class:`~repro.serve.runtime.ServeRuntime` per
shard, lockstep windows, a serially-recomputed :class:`ServeReport`.

Serving shards the same way scenarios do — the partition must be
traffic-closed over the submitted jobs — but the per-job state lives in
the runtime, not in collective handles, so the merge differs:

* every shard runs a full private ``ServeRuntime`` (own admission policy,
  TCAM tables, plan cache) and submits only its own jobs.  Group demand,
  route edges and plan-cache keys all name hosts/switches inside the
  shard's territory, so per-switch occupancy, admission decisions and
  cache hit patterns are *identical* to the serial run's — per-shard
  counters sum exactly;
* job records ship back as plain tuples tagged with the global submit
  index; the coordinator rebuilds the report (per-tenant SLO rows, global
  span, goodput) in global order, byte-identical to serial ``report()``;
* a populated FIFO queue would couple admission order across shards, so a
  sharded serve *requires* an admit-on-arrival regime and errors out if
  any shard ever queued a job (``total_queued != 0``).

The proof artifacts — golden-trace digest and fired-event digest — come
from the shared :class:`~repro.shard.sequencer.GlobalSequencer`; the
serial comparator is a ``ServeRuntime(record_trace=True)`` with
``env.sim.attach_digest()``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..collectives import SchemeSpec, resolve_scheme
from ..metrics import summarize_slo
from ..serve.runtime import (
    DATAPLANE,
    ServeReport,
    ServeRuntime,
    resolve_serving_scheme,
)
from .errors import ShardError
from .partition import ShardPlan, plan_partition
from .record import RecordingSimulator, ShardTraceRecorder
from .runner import LocalShard, LockstepDriver, ProcessShard
from .sequencer import GlobalSequencer

__all__ = [
    "SHARDABLE_SERVE_SCHEMES",
    "ServeShardSpec",
    "ShardedServe",
    "ShardedServeResult",
    "serve_sharded",
]

#: Serving schemes whose dataplane declares ``shardable = True`` (RNG-free
#: planning and launch; cf. ``repro.shard.runner.shardable_schemes`` for
#: the rationale — ip-multicast launches the ``optimal`` dataplane, and
#: the source-routed schemes encode their trees without shared RNG draws).
SHARDABLE_SERVE_SCHEMES = tuple(
    name
    for name, dataplane in DATAPLANE.items()
    if resolve_scheme(SchemeSpec.parse(dataplane)).shardable
)


@dataclass(frozen=True)
class ServeShardSpec:
    """Frozen description of one sharded serve campaign (fork-inherited
    by worker processes; all attached objects must be picklable)."""

    topology: object
    #: A SERVE_SCHEMES name, registry spec string, or SchemeSpec.
    scheme: object
    jobs: tuple
    shards: int
    config: object = None
    admission: object = None
    tcam_capacity: int | None = None
    max_queue: int = 4096
    check_invariants: bool = False
    record_trace: bool = False
    protection: int = 0
    event_digest: bool = False
    #: Per-shard plan-cache capacity.  Size it so the campaign never
    #: evicts: LRU eviction order depends on *global* access recency,
    #: which disjoint per-shard caches cannot reproduce, so a shard that
    #: evicts fails its finalize.  ``None`` keeps the runtime default.
    plan_cache_size: int | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "jobs", tuple(self.jobs))


class ServeShardState:
    """One shard's live serve runtime plus its submit segments."""

    def __init__(self, index: int, runtime: ServeRuntime, job_indices) -> None:
        self.index = index
        self.runtime = runtime
        self.sim: RecordingSimulator = runtime.env.sim
        #: global submit index per local record (record i of this runtime
        #: is global job ``job_indices[i]``).
        self.job_indices = list(job_indices)
        self.segments: list[tuple] = [(1, g, 1, [], None) for g in self.job_indices]
        self.territory: set[str] = set()
        self._rng_marks: tuple = ()

    def take_pauses(self) -> dict:
        return {}

    def mark_rngs(self) -> None:
        env = self.runtime.env
        self._rng_marks = (
            env.network.rng.getstate(),
            env.rng.getstate(),
            env.router.rng.getstate(),
            env.controller.rng.getstate(),
        )

    def check_rngs(self) -> None:
        env = self.runtime.env
        names = ("network", "env", "router", "controller")
        current = (
            env.network.rng.getstate(),
            env.rng.getstate(),
            env.router.rng.getstate(),
            env.controller.rng.getstate(),
        )
        for name, before, after in zip(names, self._rng_marks, current):
            if before != after:
                raise ShardError(
                    f"serve shard {self.index} drew from the {name} RNG "
                    "mid-run; the serial run would interleave those draws "
                    "globally — run this campaign serially"
                )

    def check_containment(self) -> None:
        for transfer in self.runtime.env.network.transfers:
            trees = list(transfer.static_trees)
            if transfer.refined_tree is not None:
                trees.append(transfer.refined_tree)
            for tree in trees:
                stray = tree.nodes - self.territory
                if stray:
                    raise ShardError(
                        f"transfer {transfer.name} on serve shard "
                        f"{self.index} crossed into {sorted(stray)[:4]}; "
                        "partition not traffic-closed"
                    )


def build_serve_shard(
    sspec: ServeShardSpec, plan: ShardPlan, shard_index: int
) -> ServeShardState:
    from ..serve.cache import PlanCache
    from ..state import DEFAULT_CAPACITY

    sim = RecordingSimulator()
    cache = (
        PlanCache(sspec.plan_cache_size)
        if sspec.plan_cache_size is not None
        else True
    )
    runtime = ServeRuntime(
        sspec.topology,
        sspec.scheme,
        sspec.config,
        admission=sspec.admission,
        tcam_capacity=(
            sspec.tcam_capacity
            if sspec.tcam_capacity is not None
            else DEFAULT_CAPACITY
        ),
        plan_cache=cache,
        max_queue=sspec.max_queue,
        check_invariants=sspec.check_invariants,
        record_trace=False,
        protection=sspec.protection,
        sim=sim,
        invariant_watchdog=False,
    )
    if sim._seq != 0:  # pragma: no cover - preinstall is sim-silent today
        raise ShardError(
            "runtime construction scheduled simulator events; the sharded "
            "submit interleave cannot account for them"
        )
    if sspec.record_trace:
        ShardTraceRecorder(runtime.env.network, sim.lines)
    sim.watch_transfers(runtime.env.network.transfers)
    job_indices = plan.jobs_for(shard_index)
    state = ServeShardState(shard_index, runtime, job_indices)
    for g in job_indices:
        seq0 = sim._seq
        runtime.submit(sspec.jobs[g])
        if sim._seq - seq0 != 1:  # pragma: no cover - submit is 1 schedule
            raise ShardError("submit scheduled an unexpected event count")
    state.territory = plan.nodes_for(shard_index, sspec.topology)
    state.mark_rngs()
    return state


def finalize_serve_shard(state: ServeShardState) -> dict:
    runtime = state.runtime
    if state.sim.peek_time() is not None:
        raise ShardError(f"serve shard {state.index} still has pending events")
    if runtime.total_queued:
        raise ShardError(
            f"serve shard {state.index} queued {runtime.total_queued} jobs; "
            "cross-shard FIFO order is not reproducible — raise capacity or "
            "run serially"
        )
    cache = runtime.env.plan_cache
    if cache is not None and cache.evictions:
        raise ShardError(
            f"serve shard {state.index} evicted {cache.evictions} plan-cache "
            "entries; LRU eviction order depends on global access recency, "
            "which per-shard caches cannot reproduce — raise plan_cache_size "
            "past the campaign's working set or run serially"
        )
    state.check_rngs()
    state.check_containment()
    violations = runtime.finalize_checks()
    if violations:
        raise RuntimeError(
            f"invariant violations on serve shard {state.index}: {violations}"
        )
    records = []
    for g, record in zip(state.job_indices, runtime.records):
        if record.status not in ("done", "rejected"):
            raise ShardError(
                f"job {g} on shard {state.index} ended {record.status!r}"
            )
        records.append(
            (
                g,
                record.job.tenant,
                record.status,
                record.job.arrival_s,
                record.completed_s,
                record.cct_s,
                record.queue_delay_s,
                record.delivered_bytes,
            )
        )
    cache = runtime.env.plan_cache
    return {
        "records": records,
        "cache": (
            (cache.hits, cache.misses, cache.invalidations)
            if cache is not None
            else (0, 0, 0)
        ),
        "switch_updates": runtime.state.total_updates,
        "peak_entries": runtime.state.peak_entries_per_switch,
        "overflow_events": runtime.state.overflow_events,
        "processed": state.sim.processed,
    }


@dataclass
class ShardedServeResult:
    """A sharded campaign's outcome plus its byte-identity proof artifacts."""

    report: ServeReport
    shards: int
    windows: int
    events_processed: int
    trace_digest: str | None = None
    event_digest: str | None = None
    job_rows: list = field(default_factory=list, repr=False)


class ShardedServe:
    """Serve a job campaign across ``shards`` lockstep workers."""

    def __init__(self, sspec: ServeShardSpec, processes: bool = False) -> None:
        if sspec.shards < 2:
            raise ShardError(f"sharded serve needs shards >= 2, got {sspec.shards}")
        self.scheme_name, dataplane = resolve_serving_scheme(sspec.scheme)
        if not dataplane.shardable:
            raise ShardError(
                f"serving scheme {self.scheme_name!r} is not shardable "
                "(its dataplane draws a shared RNG); shardable serve "
                f"schemes include {SHARDABLE_SERVE_SCHEMES}"
            )
        self.sspec = sspec
        self.plan = plan_partition(sspec.topology, sspec.jobs, sspec.shards)
        self.processes = processes
        self.sequencer = GlobalSequencer(
            sspec.shards,
            event_digest=sspec.event_digest,
            trace=sspec.record_trace,
        )
        if processes:
            shard_list: list = [
                ProcessShard(("serve", sspec, self.plan, s), s)
                for s in range(sspec.shards)
            ]
        else:
            shard_list = [
                LocalShard(
                    build_serve_shard(sspec, self.plan, s), finalize_serve_shard
                )
                for s in range(sspec.shards)
            ]
        self.driver = LockstepDriver(shard_list, self.sequencer)
        self.finished = False

    def run(self) -> ShardedServeResult:
        if self.finished:
            raise RuntimeError("campaign already run")
        self.finished = True
        self.driver.drain()
        payloads = self.driver.finalize_all()
        rows = sorted(row for p in payloads for row in p["records"])
        report = self._rebuild_report(rows, payloads)
        return ShardedServeResult(
            report=report,
            shards=self.sspec.shards,
            windows=self.driver.windows_run,
            events_processed=sum(p["processed"] for p in payloads),
            trace_digest=(
                self.sequencer.trace_digest() if self.sspec.record_trace else None
            ),
            event_digest=(
                self.sequencer.digest.hexdigest()
                if self.sequencer.digest is not None
                else None
            ),
            job_rows=rows,
        )

    def _rebuild_report(self, rows: list, payloads: list) -> ServeReport:
        """Serial ``ServeRuntime.report()`` over globally-ordered rows."""
        if not rows:
            raise RuntimeError("nothing submitted; cannot summarize SLOs")
        done = [r for r in rows if r[2] == "done"]
        first = min(r[3] for r in rows)
        end = max((r[4] for r in done), default=first)
        span = max(end - first, 1e-9)

        def summary(tag, records, rejected):
            return summarize_slo(
                tag,
                [r[5] for r in records],
                [r[6] for r in records],
                rejected,
                sum(r[7] for r in records),
                span,
            )

        tenants: dict[str, list] = {}
        rejects: dict[str, int] = {}
        for row in rows:
            tenant = row[1]
            tenants.setdefault(tenant, [])
            rejects.setdefault(tenant, 0)
            if row[2] == "done":
                tenants[tenant].append(row)
            else:
                rejects[tenant] += 1
        tenant_rows = [
            summary(tenant, records, rejects[tenant])
            for tenant, records in sorted(tenants.items())
        ]
        return ServeReport(
            scheme=self.scheme_name,
            tenants=tenant_rows,
            total=summary("TOTAL", done, len(rows) - len(done)),
            queued_jobs=0,  # finalize_serve_shard rejects any queueing
            cache_hits=sum(p["cache"][0] for p in payloads),
            cache_misses=sum(p["cache"][1] for p in payloads),
            cache_invalidations=sum(p["cache"][2] for p in payloads),
            switch_updates=sum(p["switch_updates"] for p in payloads),
            peak_entries_per_switch=max(p["peak_entries"] for p in payloads),
            tcam_overflow_events=sum(p["overflow_events"] for p in payloads),
        )


def serve_sharded(
    sspec: ServeShardSpec, processes: bool = False
) -> ShardedServeResult:
    """One-shot: build the sharded campaign, drain it, rebuild the report."""
    return ShardedServe(sspec, processes=processes).run()
