"""Sharded parallel simulation with byte-identical serial semantics.

``repro.shard`` partitions a scenario or serve campaign across worker
shards — each a full calendar-queue :class:`~repro.sim.engine.Simulator`
over a traffic-closed slice of the fabric — synchronized by a
conservative :class:`WindowBarrier` and re-sequenced by a
:class:`GlobalSequencer` so the merged fired-event stream, golden-trace
chain, event digest and observability exports are *byte-identical* to a
serial run of the same spec.  The differential battery in
``tests/property/test_shard_properties.py`` is the proof.

Entry points:

* ``ScenarioSpec(shards=N)`` + :func:`repro.api.run` (dispatches here);
* :func:`run_sharded` / :class:`ShardedScenarioRun` for explicit control
  (windowed stepping, sharded snapshots);
* :class:`ShardedServe` for serving campaigns.

Anything a shard cannot reproduce byte-identically is refused with a
:class:`ShardError` — up front where the spec shows it (RNG-coupled
schemes, wire loss, periodic sampling), after the fact where only the
run can (a mid-run fabric RNG draw, a tree crossing shard territory, a
queued serve job).  Sharding never silently degrades to "close enough".
"""

from .barrier import BoundaryMessage, WindowBarrier
from .errors import ShardError, ShardPartitionError
from .partition import CORE_ZONE, ShardPlan, lookahead_s, plan_partition, zone_of
from .record import RecordingSimulator, ShardTraceRecorder
from .runner import (
    SHARDABLE_SCHEMES,
    ShardedScenarioRun,
    run_sharded,
    shardable_schemes,
    validate_spec,
)
from .sequencer import GlobalSequencer
from .serve import (
    SHARDABLE_SERVE_SCHEMES,
    ServeShardSpec,
    ShardedServe,
    ShardedServeResult,
    serve_sharded,
)
from .workload import pod_local_jobs

__all__ = [
    "CORE_ZONE",
    "SHARDABLE_SCHEMES",
    "SHARDABLE_SERVE_SCHEMES",
    "BoundaryMessage",
    "GlobalSequencer",
    "RecordingSimulator",
    "ServeShardSpec",
    "ShardError",
    "ShardPartitionError",
    "ShardPlan",
    "ShardTraceRecorder",
    "ShardedScenarioRun",
    "ShardedServe",
    "ShardedServeResult",
    "WindowBarrier",
    "lookahead_s",
    "plan_partition",
    "pod_local_jobs",
    "run_sharded",
    "serve_sharded",
    "shardable_schemes",
    "validate_spec",
    "zone_of",
]
