"""Typed failures raised by the sharded simulation core."""

from __future__ import annotations


class ShardError(RuntimeError):
    """A sharded run cannot proceed (or cannot be proven byte-identical).

    Raised for unshardable specs (schemes that consume shared RNG streams,
    ``max_events`` budgets that cannot be partitioned), for runtime
    determinism violations (a shard drew from a fabric RNG, a transfer tree
    escaped its shard's territory, a serve shard queued a job), and for
    barrier-protocol violations.  Callers should treat it as "run this
    scenario serially instead", never as a result to silently degrade.
    """


class ShardPartitionError(ShardError, ValueError):
    """The fabric/workload cannot be cut into the requested shards.

    Typical causes: fewer traffic-closed components than shards (every
    job in a leaf-spine fabric shares the spine tier), or a churn event
    grafting a host outside the territory of its job's shard.
    """
