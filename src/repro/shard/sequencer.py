"""Re-sequencing merged shard streams into the serial event order.

The serial engine assigns sequence numbers in *schedule* order and fires
in global ``(time, seq)`` order; callbacks run atomically, so the k-th
schedule action of the run gets seq k.  The sequencer reproduces that
numbering without ever seeing a callback:

* **Setup segments** replay the serial setup interleave (sorted faults,
  then jobs in spec/submit order, then sorted churn) and assign global
  seqs to each segment's schedule actions.
* **Fired records** merge by ``(time, gseq)`` via a heap over per-shard
  streams.  Each shard's stream is already ``(time, local_seq)``-sorted
  and local→global relabeling is monotone, so the heap pop order *is*
  the serial fired order.  Popping a record assigns global seqs to the
  entries it scheduled (contiguous, in callback order — exactly the
  serial counter), folds ``(time, gseq)`` into the merged
  :class:`~repro.sim.engine.EventDigest`, renames any transfers the
  callback created with the global transfer counter, and chains the
  record's golden-trace lines (names rewritten) exactly as the serial
  :class:`~repro.sim.trace.TraceRecorder` would have.

Cancelled entries burn a seq on both sides and never fire on either, so
they need no handling.  The merge is associative: feeding chunks in any
window decomposition yields identical digests (a battery property).
"""

from __future__ import annotations

from collections import deque
from hashlib import blake2b
from heapq import heappop, heappush

from ..sim.engine import EventDigest
from .errors import ShardError

__all__ = ["GlobalSequencer"]


class GlobalSequencer:
    """Merges per-shard event streams back into the serial order."""

    def __init__(
        self,
        num_shards: int,
        *,
        event_digest: bool = False,
        trace: bool = False,
        keep_lines: bool = False,
    ) -> None:
        self.num_shards = num_shards
        self.digest: EventDigest | None = EventDigest() if event_digest else None
        self.trace_enabled = trace or keep_lines
        self._trace_state = b"\x00" * 16
        self.num_trace_events = 0
        self.kept_lines: list[str] | None = [] if keep_lines else None
        # local seq -> global seq for not-yet-fired entries (delete-on-fire;
        # entries for cancelled events are retained — they are few and the
        # mapping has no other way to learn of a cancellation).
        self._gseq_of: list[dict[int, int]] = [dict() for _ in range(num_shards)]
        # How many schedule actions of each shard have been relabeled; this
        # mirrors the shard engine's ``_seq`` counter exactly.
        self._lseq_cursor = [0] * num_shards
        self._next_gseq = 0
        self._records: list[deque] = [deque() for _ in range(num_shards)]
        self._lines: list[deque] = [deque() for _ in range(num_shards)]
        # shard -> {fired-record index -> [pause seconds, ...]}
        self._pauses: list[dict[int, list[float]]] = [dict() for _ in range(num_shards)]
        self._fired_idx = [0] * num_shards
        # shard-local transfer name -> global name.
        self.name_map: list[dict[str, str]] = [dict() for _ in range(num_shards)]
        self._names_assigned = 0
        #: (shard, shard-local creation index) per transfer, in global
        #: creation order — the obs merge replays per-transfer metrics in
        #: exactly this interleave.
        self.creation_order: list[tuple[int, int]] = []
        self._local_created = [0] * num_shards
        #: PFC pause durations in serial resume-event order.
        self.pause_values: list[float] = []
        self.merged_events = 0
        #: Simulated time of the last merged event (the serial run's final
        #: clock after a drain-to-empty).
        self.last_time = 0.0

    # -- numbering ---------------------------------------------------------

    def _assign_gseqs(self, shard: int, count: int) -> None:
        mapping = self._gseq_of[shard]
        cursor = self._lseq_cursor[shard]
        base = self._next_gseq
        for k in range(count):
            mapping[cursor + k] = base + k
        self._lseq_cursor[shard] = cursor + count
        self._next_gseq = base + count

    def _assign_names(self, shard: int, names: list[str]) -> None:
        mapping = self.name_map[shard]
        created = self._local_created[shard]
        for local in names:
            self._names_assigned += 1
            prefix, _, _ = local.rpartition("-")
            mapping[local] = f"{prefix}-{self._names_assigned}"
            self.creation_order.append((shard, created))
            created += 1
        self._local_created[shard] = created

    def rename(self, shard: int, name: str) -> str:
        """Global spelling of a shard-local transfer name."""
        return self.name_map[shard].get(name, name)

    # -- trace chaining ----------------------------------------------------

    def _chain_line(self, shard: int, line: str) -> None:
        mapping = self.name_map[shard]
        if mapping:
            parts = line.split(" ")
            changed = False
            for i in range(2, len(parts)):
                repl = mapping.get(parts[i])
                if repl is not None:
                    parts[i] = repl
                    changed = True
            if changed:
                line = " ".join(parts)
        h = blake2b(self._trace_state, digest_size=16)
        h.update(line.encode())
        self._trace_state = h.digest()
        self.num_trace_events += 1
        if self.kept_lines is not None:
            self.kept_lines.append(line)

    def trace_digest(self) -> str:
        return self._trace_state.hex()

    # -- setup -------------------------------------------------------------

    def push_setup(
        self, shard: int, n_sched: int, lines: list[str], names: list[str]
    ) -> None:
        """One serial-order setup action (fault install, job launch, churn
        install): relabel its schedules, name its transfers, chain its
        trace lines.  Callers must invoke this in the serial interleave."""
        if names:
            self._assign_names(shard, names)
        if n_sched:
            self._assign_gseqs(shard, n_sched)
        if self.trace_enabled:
            for line in lines:
                self._chain_line(shard, line)

    # -- run-phase merging -------------------------------------------------

    def feed(
        self,
        shard: int,
        records: list[tuple],
        lines: list[str],
        pauses: dict[int, list[float]] | None = None,
    ) -> None:
        """Queue one shard's chunk (records/lines since the last window)."""
        self._records[shard].extend(records)
        self._lines[shard].extend(lines)
        if pauses:
            self._pauses[shard].update(pauses)

    def _push_head(self, heap: list, shard: int) -> None:
        queue = self._records[shard]
        if queue:
            head = queue[0]
            try:
                gseq = self._gseq_of[shard][head[1]]
            except KeyError:  # pragma: no cover - invariant violation
                raise ShardError(
                    f"shard {shard} fired local seq {head[1]} before its "
                    "scheduling event was merged"
                ) from None
            heappush(heap, (head[0], gseq, shard))

    def merge_available(self) -> int:
        """Merge every queued record.  Correct whenever the caller has
        advanced all shards to a common barrier edge (all records at or
        before the edge are present) — the window property."""
        heap: list = []
        for shard in range(self.num_shards):
            self._push_head(heap, shard)
        merged = 0
        while heap:
            _, _, shard = heappop(heap)
            self._pop_record(shard)
            merged += 1
            self._push_head(heap, shard)
        self.merged_events += merged
        return merged

    def _pop_record(self, shard: int) -> None:
        time, lseq, n_sched, n_lines, names = self._records[shard].popleft()
        gseq = self._gseq_of[shard].pop(lseq)
        if time > self.last_time:
            self.last_time = time
        if self.digest is not None:
            self.digest.update(time, gseq)
        if names:
            self._assign_names(shard, names)
        if n_sched:
            self._assign_gseqs(shard, n_sched)
        if n_lines:
            lines = self._lines[shard]
            if self.trace_enabled:
                for _ in range(n_lines):
                    self._chain_line(shard, lines.popleft())
            else:
                for _ in range(n_lines):
                    lines.popleft()
        fired = self._fired_idx[shard]
        self._fired_idx[shard] = fired + 1
        pause = self._pauses[shard].pop(fired, None)
        if pause is not None:
            self.pause_values.extend(pause)

    def assert_drained(self) -> None:
        for shard in range(self.num_shards):
            if self._records[shard] or self._lines[shard]:
                raise ShardError(
                    f"shard {shard} left {len(self._records[shard])} records "
                    f"and {len(self._lines[shard])} trace lines unmerged"
                )
