"""Per-shard event recording: what the coordinator needs to re-sequence.

A shard runs a :class:`RecordingSimulator` — the stock calendar-queue
engine plus one record per fired event::

    (time, local_seq, n_scheduled, n_trace_lines, new_transfer_names)

``local_seq`` is the shard-local sequence number the engine assigned at
schedule time; ``n_scheduled`` is how many new entries the callback
scheduled (the coordinator relabels them with global sequence numbers in
merge order, reproducing the serial engine's counter exactly);
``n_trace_lines`` consumes that many golden-trace lines from the shard's
line stream; ``new_transfer_names`` lists transfers the callback created
(the coordinator renames them with the global counter).  Nothing about
event *execution* changes — ordering, tie-breaks, retuning and the
calendar structure are byte-for-byte the serial engine's.

:class:`ShardTraceRecorder` is a :class:`~repro.sim.trace.TraceRecorder`
that appends raw lines to the shard's stream instead of hashing them:
the digest chain is a global, order-sensitive fold, so only the
coordinator may run it.
"""

from __future__ import annotations

from ..sim.engine import _RETUNE_EVERY, Simulator
from ..sim.trace import TraceRecorder

__all__ = ["RecordingSimulator", "ShardTraceRecorder"]


class RecordingSimulator(Simulator):
    """A :class:`~repro.sim.engine.Simulator` that records fired events.

    ``records`` and ``lines`` are drained per barrier window with
    :meth:`take_chunk` (bounded memory on long campaigns);
    ``recorded_total`` never resets, so observers can tag side-channel
    data (PFC pause durations) with the index of the currently firing
    record.
    """

    __slots__ = ("records", "lines", "recorded_total", "_watched")

    def __init__(self) -> None:
        super().__init__()
        self.records: list[tuple] = []
        self.lines: list[str] = []
        self.recorded_total = 0
        self._watched: list | None = None

    def watch_transfers(self, transfers: list) -> None:
        """Report names of transfers appended to ``transfers`` (the
        network's creation-ordered registry) by each fired event."""
        self._watched = transfers

    def take_chunk(self) -> tuple[list[tuple], list[str]]:
        records, self.records = self.records, []
        # ``lines`` must drain in place: a ShardTraceRecorder aliases the
        # list as its sink for the simulator's whole lifetime.
        lines = self.lines[:]
        del self.lines[:]
        return records, lines

    def peek_time(self) -> float | None:
        """Lower bound on the next event's time (``None`` when drained).

        A tombstone at the head still gives a valid lower bound — the
        coordinator only uses this to size the next window."""
        if not self._activate():
            return None
        return self._cur[self._cur_i][0]

    def run_window(self, until: float) -> int:
        """The engine's checked loop (``run(until=...)``) plus recording.

        Kept as a verbatim copy of the hot loop rather than a callback
        hook so the *serial* engine pays nothing for sharding support;
        the differential battery pins the two loops to each other.
        """
        processed = 0
        records = self.records
        lines = self.lines
        watched = self._watched
        wlen = len(watched) if watched is not None else 0
        fired = self._fired
        retune_at = fired + _RETUNE_EVERY
        while True:
            cur = self._cur
            i = self._cur_i
            if i >= len(cur):
                if not self._activate():
                    break
                continue
            entry = cur[i]
            time = entry[0]
            if time > until:
                break
            self._cur_i = i + 1
            fn = entry[2]
            if fn is None:
                self._cancelled -= 1
                continue
            self._live -= 1
            self.now = time
            lseq = entry[1]
            seq0 = self._seq
            lines0 = len(lines)
            length = len(entry)
            if length == 4:
                fn(entry[3])
            elif length == 5:
                fn(entry[3], entry[4])
            elif length == 3:
                fn()
            else:
                entry[2] = None  # fired: handle.active goes False, refs drop
                fn(*entry[5])
            new_names = None
            if watched is not None and len(watched) > wlen:
                new_names = [t.name for t in watched[wlen:]]
                wlen = len(watched)
            records.append(
                (time, lseq, self._seq - seq0, len(lines) - lines0, new_names)
            )
            # Kept on the instance (not a loop local) because observers read
            # it *mid-window*: a PFC pause resumed during record k's callback
            # must be tagged k, and ``recorded_total`` is exactly k while k's
            # callback runs.
            self.recorded_total += 1
            processed += 1
            fired = self._fired = self._fired + 1
            if fired >= retune_at:
                self._maybe_retune()
                retune_at = fired + _RETUNE_EVERY
        self._processed += processed
        if not self._activate() or self._cur[self._cur_i][0] > until:
            self.now = max(self.now, until)
        return processed


class ShardTraceRecorder(TraceRecorder):
    """Streams raw golden-trace lines into the shard's line buffer.

    The line *format* is byte-for-byte :class:`TraceRecorder`'s; only the
    chaining moves to the coordinator (which also rewrites shard-local
    transfer names to their global spellings before hashing).
    """

    def __init__(self, network, sink: list[str]) -> None:
        self.sink = sink
        super().__init__(network)

    def _record(self, kind: str, *fields: object) -> None:
        parts = [kind, self.network.sim.now.hex()]
        parts += [str(f) for f in fields]
        self.sink.append(" ".join(parts))
        self.num_events += 1
