"""Job placement: bin-packed, locality-honouring GPU selection (§4, ref [3]).

GPU schedulers pack jobs into contiguous runs of servers within racks and
pods, which is the *job locality* PEEL's prefix aggregation relies on.  A
``fragmentation`` knob punches random holes into the contiguous run to
study the §3.4 fragmentation question.
"""

from __future__ import annotations

import math
import random

from ..collectives import Gpu, Group, locality_key
from ..topology import Topology

DEFAULT_GPUS_PER_HOST = 8


def locality_ordered_hosts(topo: Topology) -> list[str]:
    """All hosts sorted pod-major, rack-minor: adjacent hosts share racks."""
    return sorted(topo.hosts, key=locality_key)


def place_job(
    topo: Topology,
    num_gpus: int,
    gpus_per_host: int = DEFAULT_GPUS_PER_HOST,
    rng: random.Random | None = None,
    fragmentation: float = 0.0,
) -> Group:
    """Pick a bin-packed GPU group and its source.

    Chooses a contiguous run of servers at a random locality offset and
    fills them GPU by GPU; the source is the first GPU.  With
    ``fragmentation`` in (0, 1], each chosen host is displaced with that
    probability to a random host elsewhere in the fabric, modelling
    scattered placements.
    """
    if num_gpus < 1:
        raise ValueError("num_gpus must be >= 1")
    if not 0 <= fragmentation <= 1:
        raise ValueError("fragmentation must be in [0, 1]")
    rng = rng or random.Random(0)
    hosts = locality_ordered_hosts(topo)
    hosts_needed = math.ceil(num_gpus / gpus_per_host)
    if hosts_needed > len(hosts):
        raise ValueError(
            f"job needs {hosts_needed} hosts, fabric has {len(hosts)}"
        )
    start = rng.randrange(0, len(hosts) - hosts_needed + 1)
    chosen = hosts[start : start + hosts_needed]

    if fragmentation:
        outside = [h for h in hosts if h not in set(chosen)]
        rng.shuffle(outside)
        for i in range(len(chosen)):
            if outside and rng.random() < fragmentation:
                chosen[i] = outside.pop()

    gpus: list[Gpu] = []
    remaining = num_gpus
    for host in chosen:
        take = min(gpus_per_host, remaining)
        gpus.extend(Gpu(host, idx) for idx in range(take))
        remaining -= take
    return Group(source=gpus[0], members=tuple(gpus))


def place_job_racks(
    topo: Topology,
    num_racks: int,
    window_racks: int,
    rng: random.Random | None = None,
) -> Group:
    """Occupy whole racks sampled from a contiguous rack window.

    Models §3.4's fragmentation at the granularity where it hurts prefix
    aggregation: ``num_racks`` racks chosen out of a locality window of
    ``window_racks`` leaves gaps *between racks*, splintering the
    power-of-two ToR blocks.  ``window_racks == num_racks`` is perfectly
    bin-packed; larger windows are sparser placements.
    """
    if num_racks < 1:
        raise ValueError("num_racks must be >= 1")
    if window_racks < num_racks:
        raise ValueError("window_racks must be >= num_racks")
    rng = rng or random.Random(0)
    hosts = locality_ordered_hosts(topo)
    racks: list[list[str]] = []
    current_rack: str | None = None
    for host in hosts:
        rack = topo.tor_of(host)
        if rack != current_rack:
            racks.append([])
            current_rack = rack
        racks[-1].append(host)
    if window_racks > len(racks):
        raise ValueError(
            f"window of {window_racks} racks exceeds fabric's {len(racks)}"
        )
    start = rng.randrange(0, len(racks) - window_racks + 1)
    window = racks[start : start + window_racks]
    chosen = sorted(rng.sample(range(window_racks), num_racks))
    gpus = tuple(
        Gpu(host, 0) for index in chosen for host in window[index]
    )
    return Group(source=gpus[0], members=gpus)
