"""Synthetic AI-collective workloads: Poisson arrivals, bin-packed
placement, and offered-load calibration."""

from .arrivals import fixed_count_arrivals, poisson_arrival_times
from .jobs import CollectiveJob, TenantSpec, generate_jobs, generate_tenant_jobs
from .load import arrival_rate_for_load, offered_load
from .placement import (
    DEFAULT_GPUS_PER_HOST,
    locality_ordered_hosts,
    place_job,
    place_job_racks,
)

__all__ = [
    "fixed_count_arrivals",
    "poisson_arrival_times",
    "CollectiveJob",
    "TenantSpec",
    "generate_jobs",
    "generate_tenant_jobs",
    "arrival_rate_for_load",
    "offered_load",
    "DEFAULT_GPUS_PER_HOST",
    "locality_ordered_hosts",
    "place_job",
    "place_job_racks",
]
