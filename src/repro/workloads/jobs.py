"""Collective job specs: arrivals + placement combined into a workload."""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from ..collectives import Group
from ..topology import Topology
from .arrivals import fixed_count_arrivals
from .load import arrival_rate_for_load
from .placement import DEFAULT_GPUS_PER_HOST, place_job


@dataclass(frozen=True)
class CollectiveJob:
    """One Broadcast instance to run: when, who, and how much."""

    arrival_s: float
    group: Group
    message_bytes: int


def generate_jobs(
    topo: Topology,
    num_jobs: int,
    num_gpus: int,
    message_bytes: int,
    offered_load: float = 0.3,
    gpus_per_host: int = DEFAULT_GPUS_PER_HOST,
    seed: int = 0,
    fragmentation: float = 0.0,
) -> list[CollectiveJob]:
    """A Poisson workload of identical-shape Broadcasts at a target load.

    Placement, source selection and arrival times are all derived from
    ``seed`` so scenarios are reproducible and schemes can be compared on
    the exact same workload.
    """
    if num_jobs < 1:
        raise ValueError("num_jobs must be >= 1")
    rng = random.Random(seed)
    receiver_hosts = max(1, math.ceil(num_gpus / gpus_per_host) - 1)
    rate = arrival_rate_for_load(
        offered_load,
        message_bytes,
        receiver_hosts,
        len(topo.hosts),
        topo.link_bps,
    )
    times = fixed_count_arrivals(rate, num_jobs, rng)
    jobs = []
    for t in times:
        group = place_job(
            topo,
            num_gpus,
            gpus_per_host=gpus_per_host,
            rng=rng,
            fragmentation=fragmentation,
        )
        jobs.append(CollectiveJob(t, group, message_bytes))
    return jobs
