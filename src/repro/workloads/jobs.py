"""Collective job specs: arrivals + placement combined into a workload."""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from ..collectives import Group
from ..topology import Topology
from .arrivals import fixed_count_arrivals
from .load import arrival_rate_for_load
from .placement import DEFAULT_GPUS_PER_HOST, place_job


@dataclass(frozen=True)
class CollectiveJob:
    """One Broadcast instance to run: when, who, how much — and for whom
    (multi-tenant serving tags each job with its tenant)."""

    arrival_s: float
    group: Group
    message_bytes: int
    tenant: str = "default"


def generate_jobs(
    topo: Topology,
    num_jobs: int,
    num_gpus: int,
    message_bytes: int,
    offered_load: float = 0.3,
    gpus_per_host: int = DEFAULT_GPUS_PER_HOST,
    seed: int = 0,
    fragmentation: float = 0.0,
) -> list[CollectiveJob]:
    """A Poisson workload of identical-shape Broadcasts at a target load.

    Placement, source selection and arrival times are all derived from
    ``seed`` so scenarios are reproducible and schemes can be compared on
    the exact same workload.
    """
    if num_jobs < 1:
        raise ValueError("num_jobs must be >= 1")
    rng = random.Random(seed)
    receiver_hosts = max(1, math.ceil(num_gpus / gpus_per_host) - 1)
    rate = arrival_rate_for_load(
        offered_load,
        message_bytes,
        receiver_hosts,
        len(topo.hosts),
        topo.link_bps,
    )
    times = fixed_count_arrivals(rate, num_jobs, rng)
    jobs = []
    for t in times:
        group = place_job(
            topo,
            num_gpus,
            gpus_per_host=gpus_per_host,
            rng=rng,
            fragmentation=fragmentation,
        )
        jobs.append(CollectiveJob(t, group, message_bytes))
    return jobs


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's share of a multi-tenant serving workload."""

    name: str
    num_jobs: int
    num_gpus: int
    message_bytes: int
    offered_load: float = 0.1
    fragmentation: float = 0.0

    def __post_init__(self) -> None:
        if self.num_jobs < 1:
            raise ValueError("num_jobs must be >= 1")
        if self.offered_load <= 0:
            raise ValueError("offered_load must be positive")


def generate_tenant_jobs(
    topo: Topology,
    tenants: list[TenantSpec],
    gpus_per_host: int = DEFAULT_GPUS_PER_HOST,
    seed: int = 0,
) -> list[CollectiveJob]:
    """Merge independent per-tenant Poisson streams into one job timeline.

    Each tenant gets its own arrival process (calibrated to its own offered
    load) and its own placement draws, all derived from ``seed`` + the
    tenant's position so streams are reproducible and scheme comparisons
    see identical workloads.
    """
    if not tenants:
        raise ValueError("need at least one tenant")
    jobs: list[CollectiveJob] = []
    for index, spec in enumerate(tenants):
        # String seeding is deterministic (sha512-based), unlike str hash.
        rng = random.Random(f"{seed}:{index}:{spec.name}")
        receiver_hosts = max(1, math.ceil(spec.num_gpus / gpus_per_host) - 1)
        rate = arrival_rate_for_load(
            spec.offered_load,
            spec.message_bytes,
            receiver_hosts,
            len(topo.hosts),
            topo.link_bps,
        )
        for t in fixed_count_arrivals(rate, spec.num_jobs, rng):
            group = place_job(
                topo,
                spec.num_gpus,
                gpus_per_host=gpus_per_host,
                rng=rng,
                fragmentation=spec.fragmentation,
            )
            jobs.append(CollectiveJob(t, group, spec.message_bytes, spec.name))
    jobs.sort(key=lambda j: j.arrival_s)
    return jobs
