"""Offered-load calibration.

The paper sets collective arrival rates "in a way that the average network
offered load in every scenario is 30%".  We define offered load as the
rate at which collectives *deliver* bytes to receiver NICs, normalized by
the fabric's total host NIC capacity:

    load = rate * message_bytes * 8 * num_receiver_hosts
           / (num_hosts * nic_bps)

This makes the load independent of the scheme (all schemes deliver the same
payload) and lets each scenario solve for the arrival rate.
"""

from __future__ import annotations


def offered_load(
    rate_per_s: float,
    message_bytes: int,
    num_receiver_hosts: int,
    num_hosts: int,
    nic_bps: float,
) -> float:
    """Offered load produced by a given arrival rate (see module docstring)."""
    _check(message_bytes, num_receiver_hosts, num_hosts, nic_bps)
    if rate_per_s < 0:
        raise ValueError("rate_per_s must be non-negative")
    delivered_bps = rate_per_s * message_bytes * 8 * num_receiver_hosts
    return delivered_bps / (num_hosts * nic_bps)


def arrival_rate_for_load(
    load: float,
    message_bytes: int,
    num_receiver_hosts: int,
    num_hosts: int,
    nic_bps: float,
) -> float:
    """Poisson rate achieving a target offered load (inverse of above)."""
    _check(message_bytes, num_receiver_hosts, num_hosts, nic_bps)
    if load <= 0:
        raise ValueError("load must be positive")
    per_collective_bits = message_bytes * 8 * num_receiver_hosts
    return load * num_hosts * nic_bps / per_collective_bits


def _check(
    message_bytes: int, num_receiver_hosts: int, num_hosts: int, nic_bps: float
) -> None:
    if message_bytes <= 0:
        raise ValueError("message_bytes must be positive")
    if num_receiver_hosts < 1:
        raise ValueError("num_receiver_hosts must be >= 1")
    if num_hosts < 1:
        raise ValueError("num_hosts must be >= 1")
    if nic_bps <= 0:
        raise ValueError("nic_bps must be positive")
