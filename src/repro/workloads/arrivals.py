"""Collective arrival processes.

The paper's workload: "Broadcast collectives whose arrivals follow a
Poisson process (CPS)" — collectives per second — parameterized by scale
and message size (§4, ref [32])."""

from __future__ import annotations

import random


def poisson_arrival_times(
    rate_per_s: float, duration_s: float, rng: random.Random | None = None
) -> list[float]:
    """Arrival instants of a homogeneous Poisson process on [0, duration)."""
    if rate_per_s <= 0:
        raise ValueError("rate_per_s must be positive")
    if duration_s <= 0:
        raise ValueError("duration_s must be positive")
    rng = rng or random.Random(0)
    times: list[float] = []
    t = rng.expovariate(rate_per_s)
    while t < duration_s:
        times.append(t)
        t += rng.expovariate(rate_per_s)
    return times


def fixed_count_arrivals(
    rate_per_s: float, count: int, rng: random.Random | None = None
) -> list[float]:
    """Exactly ``count`` Poisson arrivals (duration open-ended).

    Experiments that need a fixed sample size use this instead of a fixed
    horizon, so every scenario measures the same number of collectives.
    """
    if rate_per_s <= 0:
        raise ValueError("rate_per_s must be positive")
    if count < 0:
        raise ValueError("count must be non-negative")
    rng = rng or random.Random(0)
    times: list[float] = []
    t = 0.0
    for _ in range(count):
        t += rng.expovariate(rate_per_s)
        times.append(t)
    return times
