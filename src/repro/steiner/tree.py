"""Rooted multicast tree representation shared by every tree builder."""

from __future__ import annotations

from collections.abc import Iterable, Mapping

import networkx as nx


class MulticastTree:
    """A multicast distribution tree rooted at the source.

    Stored as a parent map (``node -> parent``; the root has no entry).  The
    tree's *cost* is its edge count — with unit link costs this is exactly
    the number of link traversals one packet copy needs, the quantity both
    Lemma 2.1 and the Steiner formulation minimize.
    """

    #: Shared empty child list: ``children()`` misses return this instead of
    #: allocating a fresh list per call (callers never mutate the result).
    _NO_CHILDREN: list[str] = []

    def __init__(self, root: str, parent: Mapping[str, str]) -> None:
        self.root = root
        self.parent: dict[str, str] = dict(parent)
        if root in self.parent:
            raise ValueError("root must not have a parent")
        #: ``node -> sorted child list``; public so the data plane can bind
        #: it once per (tree, switch) instead of calling :meth:`children`
        #: on every segment hop (see ``SwitchNode.receive``).
        self.children_map: dict[str, list[str]] = {}
        for child, par in self.parent.items():
            self.children_map.setdefault(par, []).append(child)
        for kids in self.children_map.values():
            kids.sort()
        self._check_acyclic()

    def _check_acyclic(self) -> None:
        for start in self.parent:
            seen = {start}
            node = start
            while node in self.parent:
                node = self.parent[node]
                if node in seen:
                    raise ValueError(f"parent map contains a cycle through {node!r}")
                seen.add(node)
            if node != self.root:
                raise ValueError(f"node {start!r} is not connected to the root")

    # -- structure ----------------------------------------------------------

    @property
    def nodes(self) -> set[str]:
        return {self.root} | set(self.parent)

    @property
    def edges(self) -> list[tuple[str, str]]:
        """Directed edges, parent first."""
        return [(par, child) for child, par in self.parent.items()]

    @property
    def cost(self) -> int:
        return len(self.parent)

    def children(self, node: str) -> list[str]:
        return self.children_map.get(node, self._NO_CHILDREN)

    @property
    def leaves(self) -> set[str]:
        return {n for n in self.nodes if not self.children(n)}

    def path_from_root(self, node: str) -> list[str]:
        """Nodes from the root to ``node``, inclusive."""
        path = [node]
        while node != self.root:
            node = self.parent[node]
            path.append(node)
        return list(reversed(path))

    def depth_of(self, node: str) -> int:
        return len(self.path_from_root(node)) - 1

    @property
    def depth(self) -> int:
        return max((self.depth_of(n) for n in self.leaves), default=0)

    def subtree_nodes(self, node: str) -> set[str]:
        out = {node}
        stack = [node]
        while stack:
            for child in self.children(stack.pop()):
                out.add(child)
                stack.append(child)
        return out

    # -- construction helpers ------------------------------------------------

    @classmethod
    def from_undirected_edges(
        cls, root: str, edges: Iterable[tuple[str, str]]
    ) -> "MulticastTree":
        """Orient an undirected edge set away from ``root``."""
        graph = nx.Graph(edges)
        if root not in graph and not graph.number_of_edges():
            return cls(root, {})
        parent: dict[str, str] = {}
        for par, child in nx.bfs_edges(graph, root):
            parent[child] = par
        if len(parent) != graph.number_of_edges():
            raise ValueError("edge set is not a tree reachable from the root")
        return cls(root, parent)

    @classmethod
    def from_paths(cls, root: str, paths: Iterable[list[str]]) -> "MulticastTree":
        """Union of root-anchored paths; later paths must agree on parents."""
        parent: dict[str, str] = {}
        for path in paths:
            if path[0] != root:
                raise ValueError(f"path must start at the root, got {path[0]!r}")
            for par, child in zip(path, path[1:]):
                existing = parent.get(child)
                if existing is not None and existing != par:
                    raise ValueError(
                        f"conflicting parents for {child!r}: {existing!r} vs {par!r}"
                    )
                if child != root:
                    parent[child] = par
        return cls(root, parent)

    def to_digraph(self) -> nx.DiGraph:
        out = nx.DiGraph()
        out.add_node(self.root)
        out.add_edges_from(self.edges)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<MulticastTree root={self.root!r} cost={self.cost}>"
