"""Theorem 2.2's NP-hardness reduction, as executable code.

The paper shows minimum-cost multicast in an asymmetric Clos is NP-hard by
reducing Set-Cover: every universe element becomes a destination leaf,
every candidate set becomes a core-to-aggregation path touching exactly its
elements' leaves, and the source attaches to all such paths.  A multicast
tree then selects a family of paths whose union reaches every leaf — a set
cover — and tree cost is monotone in the number of chosen sets.

This module builds the gadget for a concrete Set-Cover instance, maps
multicast trees back to covers, and (for small instances) recovers the
optimal cover from the exact Steiner oracle — a machine-checked version of
the proof sketch.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from .exact import exact_steiner_tree
from .tree import MulticastTree


@dataclass(frozen=True)
class SetCoverInstance:
    """Universe elements 0..n-1 and a family of candidate subsets."""

    universe_size: int
    sets: tuple[frozenset[int], ...]

    def __post_init__(self) -> None:
        if self.universe_size < 1:
            raise ValueError("universe must be non-empty")
        covered = set().union(*self.sets) if self.sets else set()
        if covered != set(range(self.universe_size)):
            raise ValueError("the set family must cover the universe")

    def is_cover(self, chosen: set[int]) -> bool:
        got: set[int] = set()
        for index in chosen:
            got |= self.sets[index]
        return got == set(range(self.universe_size))


def element_node(e: int) -> str:
    return f"leaf:{e}"


def element_host(e: int) -> str:
    return f"host:l{e}:0"


def set_node(s: int) -> str:
    return f"spine:{s}"


SOURCE = "host:l999:0"
SOURCE_LEAF = "leaf:999"


def build_gadget(instance: SetCoverInstance) -> nx.Graph:
    """The reduction's fabric: source -> per-set core paths -> element leaves.

    Uses leaf-spine naming so the rest of the library (layering, tree
    validation) treats the gadget as a legitimate asymmetric Clos: the
    source's leaf connects to one spine per candidate set; spine ``s``
    connects exactly to the leaves of ``sets[s]``; every element leaf has a
    destination host.
    """
    graph = nx.Graph()
    graph.add_edge(SOURCE, SOURCE_LEAF)
    for e in range(instance.universe_size):
        graph.add_edge(element_node(e), element_host(e))
    for s, members in enumerate(instance.sets):
        graph.add_edge(SOURCE_LEAF, set_node(s))
        for e in members:
            graph.add_edge(set_node(s), element_node(e))
    return graph


def destinations(instance: SetCoverInstance) -> list[str]:
    return [element_host(e) for e in range(instance.universe_size)]


def tree_to_cover(instance: SetCoverInstance, tree: MulticastTree) -> set[int]:
    """The candidate sets a multicast tree selects (its spine nodes)."""
    chosen = {
        int(node.split(":")[1])
        for node in tree.nodes
        if node.startswith("spine:")
    }
    if not instance.is_cover(chosen):
        raise ValueError("tree does not span every element leaf")
    return chosen


def tree_cost_for_cover_size(instance: SetCoverInstance, num_sets: int) -> int:
    """Cost of any gadget tree using ``num_sets`` sets: fixed edges (source
    link, per-element leaf-host and spine-leaf edges) plus one source-leaf
    to spine edge per chosen set."""
    return 1 + 2 * instance.universe_size + num_sets


def optimal_cover_via_steiner(instance: SetCoverInstance) -> set[int]:
    """Solve Set-Cover by running the exact Steiner oracle on the gadget
    (exponential in the universe size — for validating the reduction only)."""
    graph = build_gadget(instance)
    tree = exact_steiner_tree(graph, SOURCE, destinations(instance))
    return tree_to_cover(instance, tree)
