"""Metric-closure Steiner approximation (classical 2-approx).

Used as a topology-agnostic fallback and as a quality yardstick for the
layer-peeling heuristic on graphs where the exact DP is too slow.
"""

from __future__ import annotations

from collections.abc import Iterable

import networkx as nx
from networkx.algorithms.approximation import steiner_tree as _nx_steiner

from .tree import MulticastTree
from .validate import prune_tree


def metric_closure_tree(
    graph: nx.Graph, source: str, destinations: Iterable[str]
) -> MulticastTree:
    """2-approximate Steiner tree rooted at ``source``.

    Wraps networkx's Mehlhorn construction and orients/prunes the result
    into a :class:`MulticastTree`.
    """
    terminals = {source, *destinations}
    if len(terminals) == 1:
        return MulticastTree(source, {})
    sub = _nx_steiner(graph, list(terminals), method="mehlhorn")
    tree = MulticastTree.from_undirected_edges(source, sub.edges)
    return prune_tree(tree, terminals)
