"""Exact minimum Steiner trees via the Dreyfus–Wagner dynamic program.

Exponential in the number of terminals (``O(3^t poly(n))``), so this is the
ground-truth oracle for small groups — used to measure how close the
layer-peeling heuristic (§2.3) lands, never in the data path.  All fabrics in
this repo have unit link costs, so hop count is the cost metric.
"""

from __future__ import annotations

import heapq
from collections.abc import Iterable
from itertools import combinations

import networkx as nx

from .tree import MulticastTree

#: Refuse terminal sets beyond this size; the DP is exponential in it.
MAX_EXACT_TERMINALS = 14


def exact_steiner_tree(
    graph: nx.Graph, source: str, destinations: Iterable[str]
) -> MulticastTree:
    """Minimum-cost tree spanning ``source`` and ``destinations``.

    Raises ``ValueError`` if a destination is unreachable or the terminal set
    exceeds :data:`MAX_EXACT_TERMINALS`.
    """
    terminals = [source] + [d for d in dict.fromkeys(destinations) if d != source]
    if len(terminals) > MAX_EXACT_TERMINALS:
        raise ValueError(
            f"{len(terminals)} terminals exceed the exact-DP limit "
            f"({MAX_EXACT_TERMINALS}); use the approximation instead"
        )
    if len(terminals) == 1:
        return MulticastTree(source, {})

    dist, pred = _all_pairs_bfs(graph)
    for t in terminals:
        if t not in dist[source]:
            raise ValueError(f"terminal {t!r} unreachable from {source!r}")

    rest = terminals[1:]
    full = (1 << len(rest)) - 1

    # cost[(mask, v)]: cheapest tree spanning {rest[i] : bit i set} plus v.
    cost: dict[tuple[int, str], float] = {}
    anchor: dict[tuple[int, str], str] = {}
    split: dict[tuple[int, str], int] = {}

    masks_by_size = sorted(range(1, full + 1), key=lambda m: m.bit_count())
    for mask in masks_by_size:
        seeds: dict[str, float] = {}
        if mask.bit_count() == 1:
            seeds[rest[mask.bit_length() - 1]] = 0.0
        else:
            sub = (mask - 1) & mask
            while sub:
                other = mask ^ sub
                if sub < other:  # each unordered split once
                    for node in graph.nodes:
                        joined = cost.get((sub, node), float("inf")) + cost.get(
                            (other, node), float("inf")
                        )
                        if joined < seeds.get(node, float("inf")):
                            seeds[node] = joined
                            split[(mask, node)] = sub
                sub = (sub - 1) & mask
        _relax(graph, mask, seeds, cost, anchor)

    parent_edges: set[tuple[str, str]] = set()
    _reconstruct(full, source, rest, anchor, split, pred, parent_edges)
    return MulticastTree.from_undirected_edges(source, parent_edges)


def exact_steiner_cost(
    graph: nx.Graph, source: str, destinations: Iterable[str]
) -> int:
    """Cost of the minimum Steiner tree (hop count, unit link costs)."""
    return exact_steiner_tree(graph, source, destinations).cost


def _all_pairs_bfs(
    graph: nx.Graph,
) -> tuple[dict[str, dict[str, int]], dict[str, dict[str, str]]]:
    """BFS from every node: hop distances and deterministic predecessors."""
    dist: dict[str, dict[str, int]] = {}
    pred: dict[str, dict[str, str]] = {}
    for src in graph.nodes:
        d = {src: 0}
        p: dict[str, str] = {}
        frontier = [src]
        while frontier:
            nxt = []
            for u in frontier:
                for v in sorted(graph.neighbors(u)):
                    if v not in d:
                        d[v] = d[u] + 1
                        p[v] = u
                        nxt.append(v)
            frontier = nxt
        dist[src] = d
        pred[src] = p
    return dist, pred


def _relax(
    graph: nx.Graph,
    mask: int,
    seeds: dict[str, float],
    cost: dict[tuple[int, str], float],
    anchor: dict[tuple[int, str], str],
) -> None:
    """Multi-source Dijkstra: cost[mask, v] = min_u seeds[u] + dist(u, v)."""
    best: dict[str, float] = {}
    best_anchor: dict[str, str] = {}
    heap: list[tuple[float, str, str]] = []
    for node, value in seeds.items():
        if value < float("inf"):
            heapq.heappush(heap, (value, node, node))
    while heap:
        value, node, origin = heapq.heappop(heap)
        if node in best:
            continue
        best[node] = value
        best_anchor[node] = origin
        for neighbor in graph.neighbors(node):
            if neighbor not in best:
                heapq.heappush(heap, (value + 1, neighbor, origin))
    for node, value in best.items():
        cost[(mask, node)] = value
        anchor[(mask, node)] = best_anchor[node]


def _reconstruct(
    mask: int,
    node: str,
    rest: list[str],
    anchor: dict[tuple[int, str], str],
    split: dict[tuple[int, str], int],
    pred: dict[str, dict[str, str]],
    edges: set[tuple[str, str]],
) -> None:
    origin = anchor[(mask, node)]
    # Walk the BFS-deterministic shortest path origin -> node.
    step = node
    while step != origin:
        prev = pred[origin][step]
        edges.add((prev, step))
        step = prev
    if mask.bit_count() > 1:
        sub = split[(mask, origin)]
        _reconstruct(sub, origin, rest, anchor, split, pred, edges)
        _reconstruct(mask ^ sub, origin, rest, anchor, split, pred, edges)


def brute_force_steiner_cost(
    graph: nx.Graph, source: str, destinations: Iterable[str], max_extra: int = 4
) -> int:
    """Steiner cost by trying every Steiner-node subset (tiny graphs only).

    An independent oracle used in tests to cross-check the DP.  Considers all
    subsets of non-terminal nodes up to ``max_extra`` additions and returns
    the best spanning-tree cost found.
    """
    terminals = {source, *destinations}
    others = [n for n in graph.nodes if n not in terminals]
    best = float("inf")
    for extra in range(min(max_extra, len(others)) + 1):
        for added in combinations(others, extra):
            nodes = terminals | set(added)
            sub = graph.subgraph(nodes)
            # A connected node set admits a spanning tree of |nodes| - 1
            # edges, which is the cheapest tree over exactly those nodes.
            if nx.number_connected_components(sub) == 1:
                best = min(best, len(nodes) - 1)
    if best == float("inf"):
        raise ValueError("no connected Steiner subgraph found")
    return int(best)
