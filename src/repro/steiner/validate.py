"""Multicast tree validation: every builder's output goes through these."""

from __future__ import annotations

from collections.abc import Iterable

import networkx as nx

from .tree import MulticastTree


class InvalidTreeError(ValueError):
    """Raised when a multicast tree violates a structural invariant."""


def validate_tree(
    tree: MulticastTree,
    graph: nx.Graph,
    source: str,
    destinations: Iterable[str],
) -> None:
    """Check that ``tree`` is a valid multicast tree for the group.

    Invariants:
    * rooted at ``source``;
    * every edge exists in the physical ``graph`` (no teleporting over
      failed links);
    * spans every destination;
    * acyclic and connected (enforced by :class:`MulticastTree` itself).

    Raises :class:`InvalidTreeError` on any violation.
    """
    if tree.root != source:
        raise InvalidTreeError(f"tree rooted at {tree.root!r}, expected {source!r}")
    for u, v in tree.edges:
        if not graph.has_edge(u, v):
            raise InvalidTreeError(f"tree uses non-existent link {u!r} -- {v!r}")
    nodes = tree.nodes
    missing = [d for d in destinations if d not in nodes]
    if missing:
        raise InvalidTreeError(f"tree misses destinations: {missing}")


def is_valid_tree(
    tree: MulticastTree,
    graph: nx.Graph,
    source: str,
    destinations: Iterable[str],
) -> bool:
    """Boolean form of :func:`validate_tree`."""
    try:
        validate_tree(tree, graph, source, destinations)
    except InvalidTreeError:
        return False
    return True


def prune_tree(tree: MulticastTree, keep: Iterable[str]) -> MulticastTree:
    """Drop branches that serve none of ``keep`` (the root always stays).

    Useful after a builder over-approximates: the result is the minimal
    subtree of ``tree`` spanning the root and ``keep``.
    """
    keep_set = set(keep)
    needed: set[str] = set()
    for node in keep_set:
        if node not in tree.nodes:
            raise InvalidTreeError(f"cannot keep {node!r}: not in tree")
        for step in tree.path_from_root(node):
            needed.add(step)
    parent = {n: p for n, p in tree.parent.items() if n in needed}
    return MulticastTree(tree.root, parent)
