"""Steiner-tree substrate: tree representation, exact DP oracle,
metric-closure approximation, and structural validation."""

from .approx import metric_closure_tree
from .exact import (
    MAX_EXACT_TERMINALS,
    brute_force_steiner_cost,
    exact_steiner_cost,
    exact_steiner_tree,
)
from .tree import MulticastTree
from .validate import InvalidTreeError, is_valid_tree, prune_tree, validate_tree

__all__ = [
    "MulticastTree",
    "metric_closure_tree",
    "exact_steiner_tree",
    "exact_steiner_cost",
    "brute_force_steiner_cost",
    "MAX_EXACT_TERMINALS",
    "InvalidTreeError",
    "validate_tree",
    "is_valid_tree",
    "prune_tree",
]
