"""Deterministic checkpoint/replay for the simulator (see DESIGN.md).

The simulator is deterministic and — after the groundwork of keeping every
scheduled callable picklable — its entire live object graph serializes at
any safe point (between ``run()`` calls).  This package turns that into
three tools:

* :class:`Snapshot` — a versioned, checksummed container around one
  pickled :class:`repro.api.ScenarioRun` (or :class:`repro.serve.ServeRuntime`),
  restorable in the same or a fresh process;
* :func:`verify_scenario_replay` / :func:`verify_cut_points` — run a
  scenario straight through, then again with a mid-run checkpoint+restore,
  and prove the two byte-identical (event digests, golden-trace digests,
  CCTs); on mismatch, locate the first diverging fabric event;
* :class:`SoakRunner` — a long-haul harness cycling randomized scenarios
  through checkpoint/restore epochs in bounded memory, with a resumable
  on-disk manifest (``repro soak`` / ``scripts/soak.py``).
"""

from .snapshot import SNAPSHOT_VERSION, Snapshot, SnapshotError
from .soak import SoakConfig, SoakRunner, format_manifest
from .verify import (
    ReplayReport,
    verify_cut_points,
    verify_scenario_replay,
    verify_serve_replay,
)

__all__ = [
    "SNAPSHOT_VERSION",
    "Snapshot",
    "SnapshotError",
    "ReplayReport",
    "verify_cut_points",
    "verify_scenario_replay",
    "verify_serve_replay",
    "SoakConfig",
    "SoakRunner",
    "format_manifest",
]
