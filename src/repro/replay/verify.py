"""Replay verification: prove a resumed run equals an uninterrupted one.

:func:`verify_scenario_replay` runs a :class:`~repro.api.ScenarioSpec`
twice — once straight through, once checkpointed at a cut time, serialized
through the full :class:`~repro.replay.snapshot.Snapshot` byte format and
restored — and compares everything that could possibly differ: the CCT
list, fired-event digest, golden-trace digest, byte/PFC/drop accounting,
and the re-peel log.  Any mismatch is reported field-by-field, and because
both runs keep their readable fabric-event logs, the report pinpoints the
*first* diverging event (:func:`repro.sim.trace.diff_traces`) rather than
just saying "digest differs".

The spec's ``obs`` is deliberately dropped for verification: a shared
``Observability`` would accumulate across both runs and fake a divergence.
Trace recording, kept event logs and the event digest are forced on.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, Sequence

from ..api import ScenarioResult, ScenarioRun, ScenarioSpec
from ..sim import diff_traces
from .snapshot import Snapshot


@dataclass(frozen=True)
class ReplayReport:
    """Outcome of one checkpoint-at-``cut_at_s`` replay verification."""

    cut_at_s: float
    identical: bool
    mismatches: tuple[str, ...]
    first_divergence: tuple[str, ...]  # readable event diff, empty if clean
    event_digest: str | None  # the (shared) digest when identical
    trace_digest: str | None
    events_at_cut: int
    events_total: int
    snapshot_bytes: int

    def describe(self) -> str:
        """One human line per fact; multi-line on failure."""
        if self.identical:
            return (
                f"cut at {self.cut_at_s * 1e6:.1f} us "
                f"({self.events_at_cut}/{self.events_total} events, "
                f"{self.snapshot_bytes} snapshot bytes): resumed run "
                f"identical (digest {self.event_digest})"
            )
        lines = [f"cut at {self.cut_at_s * 1e6:.1f} us: REPLAY DIVERGED"]
        lines += [f"  {m}" for m in self.mismatches]
        lines += [f"  {d}" for d in self.first_divergence]
        return "\n".join(lines)


def _instrumented(spec: ScenarioSpec) -> ScenarioSpec:
    """The spec with every comparison channel on and shared state off."""
    return replace(
        spec,
        record_trace=True,
        keep_trace_events=True,
        event_digest=True,
        obs=None,
    )


def _compare(
    baseline: ScenarioResult, resumed: ScenarioResult
) -> list[str]:
    """Field-by-field result comparison; empty list means identical."""
    out: list[str] = []

    def check(name: str, a: object, b: object) -> None:
        if a != b:
            out.append(f"{name}: straight-through {a!r} != resumed {b!r}")

    check("ccts", baseline.ccts, resumed.ccts)
    check("total_bytes", baseline.total_bytes, resumed.total_bytes)
    check("wasted_bytes", baseline.wasted_bytes, resumed.wasted_bytes)
    check(
        "pfc_pause_events",
        baseline.pfc_pause_events,
        resumed.pfc_pause_events,
    )
    check("failure_drops", baseline.failure_drops, resumed.failure_drops)
    check("repeels", baseline.repeels, resumed.repeels)
    check("failovers", baseline.failovers, resumed.failovers)
    check("trace_digest", baseline.trace_digest, resumed.trace_digest)
    check(
        "event_digest",
        baseline.replay.event_digest,
        resumed.replay.event_digest,
    )
    check(
        "events_processed",
        baseline.replay.events_processed,
        resumed.replay.events_processed,
    )
    return out


def verify_scenario_replay(
    spec: ScenarioSpec,
    cut_at_s: float,
    baseline: tuple[ScenarioRun, ScenarioResult] | None = None,
    divergence_limit: int = 5,
) -> ReplayReport:
    """Checkpoint ``spec`` at ``cut_at_s``, resume from the serialized
    snapshot, and compare against an uninterrupted run.

    ``baseline`` lets callers verifying several cut points reuse one
    straight-through run (see :func:`verify_cut_points`).
    """
    ispec = _instrumented(spec)
    if baseline is None:
        base_run = ScenarioRun(ispec)
        base_result = base_run.finish()
    else:
        base_run, base_result = baseline

    cut_run = ScenarioRun(ispec)
    cut_run.run_until(cut_at_s)
    events_at_cut = cut_run.env.sim.processed
    blob = cut_run.snapshot().to_bytes()  # full wire format round-trip
    resumed_run = Snapshot.from_bytes(blob).restore()
    resumed_result = resumed_run.finish()

    mismatches = _compare(base_result, resumed_result)
    divergence: tuple[str, ...] = ()
    if mismatches:
        divergence = tuple(
            diff_traces(
                base_run.env.trace, resumed_run.env.trace, divergence_limit
            )
        )
    return ReplayReport(
        cut_at_s=cut_at_s,
        identical=not mismatches,
        mismatches=tuple(mismatches),
        first_divergence=divergence,
        event_digest=base_result.replay.event_digest,
        trace_digest=base_result.trace_digest,
        events_at_cut=events_at_cut,
        events_total=base_result.replay.events_processed,
        snapshot_bytes=len(blob),
    )


def verify_cut_points(
    spec: ScenarioSpec, cuts: Sequence[float] | Iterable[float]
) -> list[ReplayReport]:
    """One :class:`ReplayReport` per cut time, sharing a single baseline."""
    ispec = _instrumented(spec)
    base_run = ScenarioRun(ispec)
    base_result = base_run.finish()
    return [
        verify_scenario_replay(
            spec, cut, baseline=(base_run, base_result)
        )
        for cut in cuts
    ]


def verify_serve_replay(runtime_factory, cut_at_s: float) -> ReplayReport:
    """Replay verification for a :class:`~repro.serve.ServeRuntime` stream.

    ``runtime_factory`` must build a *fresh*, fully-submitted runtime each
    call (see :func:`repro.experiments.scenarios.serve_runtime`): one copy
    runs straight through, the other is checkpointed at ``cut_at_s``,
    round-tripped through snapshot bytes, and resumed.  Compares the
    per-tenant report, golden-trace digest and fired-event digest.
    """
    base = runtime_factory()
    base.env.sim.attach_digest()
    base.run()
    base_report = base.report()
    base_trace = base.env.trace.digest() if base.env.trace is not None else None
    base_digest = base.env.sim.event_digest.hexdigest()

    cut = runtime_factory()
    cut.env.sim.attach_digest()
    cut.run(until=cut_at_s)
    events_at_cut = cut.env.sim.processed
    blob = cut.snapshot().to_bytes()
    resumed = Snapshot.from_bytes(blob).restore()
    resumed.run()
    res_report = resumed.report()
    res_trace = (
        resumed.env.trace.digest() if resumed.env.trace is not None else None
    )
    res_digest = resumed.env.sim.event_digest.hexdigest()

    mismatches: list[str] = []
    if base_report != res_report:
        mismatches.append(
            f"report: straight-through {base_report!r} != resumed "
            f"{res_report!r}"
        )
    if base_trace != res_trace:
        mismatches.append(
            f"trace_digest: straight-through {base_trace!r} != resumed "
            f"{res_trace!r}"
        )
    if base_digest != res_digest:
        mismatches.append(
            f"event_digest: straight-through {base_digest!r} != resumed "
            f"{res_digest!r}"
        )
    return ReplayReport(
        cut_at_s=cut_at_s,
        identical=not mismatches,
        mismatches=tuple(mismatches),
        first_divergence=(),
        event_digest=base_digest,
        trace_digest=base_trace,
        events_at_cut=events_at_cut,
        events_total=base.env.sim.processed,
        snapshot_bytes=len(blob),
    )
