"""Versioned, checksummed simulator checkpoints.

A :class:`Snapshot` wraps one pickled run object — everything reachable
from its :class:`~repro.sim.engine.Simulator` at a safe point: the event
heap (tombstones and seq counter included), ports and queues, DCQCN
senders, in-flight segments, TCAM tables, RNG streams, fault-schedule
state, trace/observability recorders — plus enough metadata to refuse a
stale or corrupt blob instead of resuming garbage:

* ``version`` — bumped whenever the pickled object graph changes shape
  incompatibly; restore refuses a mismatch (:class:`SnapshotError`);
* ``checksum`` — BLAKE2b over the payload; a truncated or bit-flipped
  file fails loudly;
* ``at_s`` / ``events_processed`` — where in simulated time the run was
  frozen, so reports and manifests can say so without unpickling.

Snapshots survive process boundaries: :meth:`Snapshot.save` writes
atomically (temp file + rename, so a SIGKILL mid-write leaves the old
file intact) and :meth:`Snapshot.load` + :meth:`Snapshot.restore` bring
the run back in a fresh interpreter.
"""

from __future__ import annotations

import os
import pickle
from dataclasses import dataclass
from hashlib import blake2b
from typing import Any

#: Bump when the pickled object graph changes incompatibly.
SNAPSHOT_VERSION = 1

_FIELDS = ("version", "kind", "at_s", "events_processed", "checksum", "payload")


class SnapshotError(RuntimeError):
    """A snapshot failed validation (version skew or corruption)."""


def _checksum(payload: bytes) -> str:
    return blake2b(payload, digest_size=16).hexdigest()


@dataclass(frozen=True)
class Snapshot:
    """One frozen run: metadata + the pickled object graph."""

    version: int
    kind: str  # e.g. "ScenarioRun", "ServeRuntime"
    at_s: float
    events_processed: int
    checksum: str
    payload: bytes

    # -- capture ----------------------------------------------------------------

    @classmethod
    def capture(cls, state: Any, sim: Any = None, kind: str | None = None) -> "Snapshot":
        """Freeze ``state`` (a ScenarioRun, ServeRuntime, or anything whose
        object graph pickles) at the current safe point.

        ``sim`` supplies the clock/event metadata; by default it is found
        at ``state.env.sim``.  Must only be called between ``run()`` calls
        — never from inside a simulator callback.
        """
        if sim is None:
            sim = state.env.sim
        payload = pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
        return cls(
            version=SNAPSHOT_VERSION,
            kind=kind or type(state).__name__,
            at_s=sim.now,
            events_processed=sim.processed,
            checksum=_checksum(payload),
            payload=payload,
        )

    # -- restore ----------------------------------------------------------------

    def validate(self) -> None:
        """Raise :class:`SnapshotError` on version skew or corruption."""
        if self.version != SNAPSHOT_VERSION:
            raise SnapshotError(
                f"snapshot version {self.version} != supported "
                f"{SNAPSHOT_VERSION}; re-capture with this code"
            )
        if _checksum(self.payload) != self.checksum:
            raise SnapshotError(
                f"snapshot payload corrupt (checksum mismatch, "
                f"{len(self.payload)} bytes)"
            )

    def restore(self) -> Any:
        """Rehydrate the frozen run; resuming it continues the exact event
        sequence the original would have produced."""
        self.validate()
        state = pickle.loads(self.payload)
        mark = getattr(state, "mark_resumed", None)
        if mark is not None:
            mark(self.at_s)
        return state

    # -- wire/disk format -------------------------------------------------------

    def to_bytes(self) -> bytes:
        """Self-describing byte serialization (header dict + payload)."""
        return pickle.dumps(
            {name: getattr(self, name) for name in _FIELDS},
            protocol=pickle.HIGHEST_PROTOCOL,
        )

    @classmethod
    def from_bytes(cls, blob: bytes) -> "Snapshot":
        try:
            raw = pickle.loads(blob)
        except Exception as exc:
            raise SnapshotError(f"unreadable snapshot blob: {exc}") from exc
        if not isinstance(raw, dict) or set(raw) != set(_FIELDS):
            raise SnapshotError("blob is not a snapshot header")
        snap = cls(**raw)
        snap.validate()
        return snap

    def save(self, path) -> None:
        """Atomic write: a kill mid-save never corrupts an existing file."""
        path = os.fspath(path)
        tmp = f"{path}.tmp"
        with open(tmp, "wb") as fh:
            fh.write(self.to_bytes())
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)

    @classmethod
    def load(cls, path) -> "Snapshot":
        with open(path, "rb") as fh:
            return cls.from_bytes(fh.read())
