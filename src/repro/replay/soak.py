"""Soak harness: randomized checkpoint/replay epochs in bounded memory.

Each *epoch* builds a fresh randomized scenario (topology size, scheme,
job mix, optional mid-run link flap — all derived from ``seed`` + the
epoch index, so every epoch is reproducible), runs it to a random cut
point, snapshots it to disk, restores the snapshot, and finishes **both**
copies: the straight-through continuation and the restored one.  The two
must agree byte-for-byte (CCTs, golden-trace digest, fired-event digest)
and the invariant checker must stay clean — any disagreement aborts the
soak with the offending epoch's seed in hand.

State rotates: the env, both run copies and the snapshot are dropped at
epoch end, so a thousand-epoch soak holds one epoch's worth of memory.

Progress persists: after every epoch the manifest (``soak.json`` in the
state directory) is rewritten atomically.  Kill the process at any point
— even SIGKILL mid-epoch — and rerunning with the same arguments resumes
at the first unfinished epoch (a half-run epoch simply replays from its
seed).
"""

from __future__ import annotations

import json
import os
import random
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

from ..api import ScenarioRun, ScenarioSpec, segment_bytes_for
from ..faults import FaultSchedule
from ..sim import SimConfig
from ..topology import LeafSpine
from ..workloads import generate_jobs
from .snapshot import Snapshot

MANIFEST_VERSION = 1

KB = 1024

#: Schemes the soak draws from.  Orca is excluded on purpose: its
#: rack-local relay legs are not fault-recoverable (by design — see
#: repro.faults), so a random flap can legitimately strand a collective.
SOAK_SCHEMES = ("peel", "peel+cores", "optimal")


@dataclass(frozen=True)
class SoakConfig:
    """Knobs for one soak campaign (all deterministic given ``seed``)."""

    epochs: int = 3
    seed: int = 0
    state_dir: str | Path = "soak-state"
    spines: int = 2
    leaves: int = 4
    hosts_per_leaf: int = 2
    max_jobs_per_epoch: int = 3
    message_kb_choices: tuple[int, ...] = (128, 256, 512)
    fault_probability: float = 0.6
    keep_snapshots: int = 2

    def __post_init__(self) -> None:
        if self.epochs < 1:
            raise ValueError("epochs must be >= 1")
        if not 0.0 <= self.fault_probability <= 1.0:
            raise ValueError("fault_probability must be in [0, 1]")


class SoakRunner:
    """Drives a resumable soak campaign (see module docstring)."""

    def __init__(
        self,
        config: SoakConfig,
        progress: Callable[[str], None] | None = None,
    ) -> None:
        self.config = config
        self.state_dir = Path(config.state_dir)
        self.manifest_path = self.state_dir / "soak.json"
        self._progress = progress or (lambda line: None)

    # -- scenario generation ----------------------------------------------------

    def epoch_spec(self, epoch: int) -> tuple[ScenarioSpec, float]:
        """The (spec, cut_time) for one epoch — pure function of config
        seed + epoch index, so a killed epoch replays identically."""
        cfg = self.config
        # String seeding is deterministic (sha512-based), unlike str hash.
        rng = random.Random(f"soak:{cfg.seed}:{epoch}")
        topo = LeafSpine(cfg.spines, cfg.leaves, cfg.hosts_per_leaf)
        scheme = rng.choice(SOAK_SCHEMES)
        message_bytes = rng.choice(cfg.message_kb_choices) * KB
        num_jobs = rng.randint(1, cfg.max_jobs_per_epoch)
        num_gpus = rng.choice((4, 6, 8))
        jobs = generate_jobs(
            topo,
            num_jobs,
            num_gpus,
            message_bytes,
            offered_load=0.4,
            gpus_per_host=1,
            seed=rng.randrange(2**31),
        )
        first_arrival = min(job.arrival_s for job in jobs)

        schedule = None
        if rng.random() < cfg.fault_probability:
            from ..experiments.faults_demo import pick_loaded_link

            job = jobs[0]
            link = pick_loaded_link(
                topo, scheme, job.group.source.host, job.group.receiver_hosts
            )
            down_at = job.arrival_s + rng.uniform(10e-6, 30e-6)
            up_at = down_at + rng.uniform(50e-6, 200e-6)
            schedule = FaultSchedule().link_flap(*link, down_at, up_at)

        spec = ScenarioSpec(
            topology=topo,
            scheme=scheme,
            jobs=tuple(jobs),
            config=SimConfig(
                segment_bytes=segment_bytes_for(message_bytes),
                seed=rng.randrange(2**31),
            ),
            check_invariants=True,
            fault_schedule=schedule,
            record_trace=True,
            event_digest=True,
        )
        cut_at_s = first_arrival + rng.uniform(5e-6, 40e-6)
        return spec, cut_at_s

    # -- one epoch --------------------------------------------------------------

    def run_epoch(self, epoch: int) -> dict:
        """Run, checkpoint, restore and cross-verify one epoch."""
        spec, cut_at_s = self.epoch_spec(epoch)
        straight = ScenarioRun(spec)
        straight.run_until(cut_at_s)

        snap_path = self.state_dir / f"epoch-{epoch:04d}.snap"
        snapshot = straight.snapshot()
        snapshot.save(snap_path)
        resumed = Snapshot.load(snap_path).restore()

        resumed_result = resumed.finish()
        straight_result = straight.finish()

        mismatches = [
            name
            for name, a, b in (
                ("ccts", straight_result.ccts, resumed_result.ccts),
                (
                    "trace_digest",
                    straight_result.trace_digest,
                    resumed_result.trace_digest,
                ),
                (
                    "event_digest",
                    straight_result.replay.event_digest,
                    resumed_result.replay.event_digest,
                ),
                ("repeels", straight_result.repeels, resumed_result.repeels),
            )
            if a != b
        ]
        if mismatches:
            raise RuntimeError(
                f"soak epoch {epoch} (seed {self.config.seed}): restored run "
                f"diverged from straight-through run in {mismatches}"
            )
        violations = len(straight_result.invariant_violations) + len(
            resumed_result.invariant_violations
        )
        if violations:
            raise RuntimeError(
                f"soak epoch {epoch} (seed {self.config.seed}): "
                f"{violations} invariant violations"
            )
        return {
            "epoch": epoch,
            "scheme": straight_result.scheme,
            "num_jobs": len(spec.jobs),
            "faulted": spec.fault_schedule is not None,
            "repeels": len(straight_result.repeels),
            "cut_at_s": cut_at_s,
            "events": straight_result.replay.events_processed,
            "snapshot_bytes": len(snapshot.payload),
            "trace_digest": straight_result.trace_digest,
            "event_digest": straight_result.replay.event_digest,
            "violations": 0,
            "resumed_identical": True,
        }

    # -- manifest ---------------------------------------------------------------

    def _load_manifest(self) -> dict:
        if not self.manifest_path.exists():
            return {
                "version": MANIFEST_VERSION,
                "seed": self.config.seed,
                "epochs_total": self.config.epochs,
                "epochs": [],
            }
        with open(self.manifest_path, encoding="utf-8") as fh:
            manifest = json.load(fh)
        if manifest.get("version") != MANIFEST_VERSION:
            raise RuntimeError(
                f"soak manifest {self.manifest_path} has version "
                f"{manifest.get('version')}, expected {MANIFEST_VERSION}"
            )
        if manifest.get("seed") != self.config.seed:
            raise RuntimeError(
                f"soak manifest {self.manifest_path} was produced with seed "
                f"{manifest.get('seed')}; rerun with that seed or point "
                f"--state-dir elsewhere"
            )
        manifest["epochs_total"] = max(
            manifest.get("epochs_total", 0), self.config.epochs
        )
        return manifest

    def _save_manifest(self, manifest: dict) -> None:
        tmp = self.manifest_path.with_suffix(".json.tmp")
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(manifest, fh, indent=2, sort_keys=True)
            fh.write("\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.manifest_path)

    def _rotate_snapshots(self, epoch: int) -> None:
        stale = epoch - self.config.keep_snapshots
        if stale >= 0:
            path = self.state_dir / f"epoch-{stale:04d}.snap"
            if path.exists():
                path.unlink()

    # -- campaign ---------------------------------------------------------------

    def run(self) -> dict:
        """Run (or resume) the campaign; returns the final manifest."""
        self.state_dir.mkdir(parents=True, exist_ok=True)
        manifest = self._load_manifest()
        done = len(manifest["epochs"])
        if done:
            self._progress(
                f"resuming soak at epoch {done} "
                f"({done}/{manifest['epochs_total']} already verified)"
            )
        for epoch in range(done, manifest["epochs_total"]):
            record = self.run_epoch(epoch)
            manifest["epochs"].append(record)
            self._save_manifest(manifest)
            self._rotate_snapshots(epoch)
            self._progress(
                f"epoch {epoch}: {record['scheme']}"
                f"{' +fault' if record['faulted'] else ''}, "
                f"{record['events']} events, "
                f"{record['repeels']} re-peels, replay identical, "
                f"invariants clean"
            )
        return manifest


def format_manifest(manifest: dict) -> str:
    """Human summary of a (possibly partial) soak manifest."""
    epochs = manifest["epochs"]
    lines = [
        f"soak: {len(epochs)}/{manifest['epochs_total']} epochs verified "
        f"(seed {manifest['seed']})"
    ]
    for rec in epochs:
        lines.append(
            f"  epoch {rec['epoch']}: {rec['scheme']:<10} "
            f"{'fault' if rec['faulted'] else 'clean':<6} "
            f"events={rec['events']:<7} re-peels={rec['repeels']} "
            f"digest={rec['event_digest'][:16]}"
        )
    return "\n".join(lines)
