"""Command-line interface: run any reproduced experiment from a shell.

    python -m repro fig1
    python -m repro fig5 --sizes 2 8 32 --num-jobs 8 --check-invariants
    python -m repro fig5 --workers 4         # sweep on 4 worker processes
    python -m repro faults --scheme peel --trace /tmp/golden.trace
    python -m repro faults --schedule my_faults.json
    python -m repro churn --num-jobs 1000
    python -m repro replay --scenario fault
    python -m repro soak --epochs 5 --state-dir /tmp/soak
    python -m repro list

Flag conventions: ``--num-jobs`` is always *simulated collectives per
scenario point*; ``-j``/``--workers`` is always *worker processes* for a
sweep (default: one per CPU; 1 = serial in-process, byte-identical
results).  ``--jobs`` survives as a hidden alias of ``--workers`` for
old scripts.
"""

from __future__ import annotations

import argparse
import sys
import warnings

from .experiments import (
    control_churn,
    deployment,
    failover,
    faults_demo,
    fig1_bandwidth,
    fig3_frontier,
    fig3_rsbf,
    fig4_orca,
    fig5_message_size,
    fig6_scale,
    fig7_failures,
    fig_serving,
    format_cct_table,
    fragmentation,
    guard_timer,
    headline,
    obs_demo,
    state_churn,
    tree_quality,
)
from .experiments.parallel import resolve_jobs, stderr_progress

EXPERIMENTS = {
    "fig1": "unicast vs multicast bandwidth (analytic)",
    "fig3": "RSBF Bloom header size sweep (analytic)",
    "frontier": "header bytes vs switch state frontier, all schemes "
                "(simulation)",
    "fig4": "Orca controller setup delay (simulation)",
    "fig5": "CCT vs message size, all schemes (simulation)",
    "fig6": "CCT vs scale at 64 MB (simulation)",
    "fig7": "CCT vs failure rate (simulation)",
    "faults": "mid-Broadcast link failure + re-peel demo (simulation)",
    "failover": "proactive fast-failover vs reactive re-peel (simulation)",
    "headline": "state table + aggregate-bandwidth headline",
    "trees": "layer-peeling quality vs exact Steiner",
    "guard": "DCQCN guard-timer ablation",
    "frag": "fragmentation / adaptive prefix packing",
    "deploy": "incremental deployment stages",
    "churn": "switch state under group churn",
    "control": "control-plane service: membership churn + congestion replans",
    "serve": "multi-tenant serving sweep: admission, queueing, plan cache",
    "obs": "instrumented run: metrics registry + Chrome-trace timeline",
    "replay": "checkpoint/replay determinism smoke on a golden scenario",
    "soak": "randomized checkpoint/replay soak epochs (resumable)",
    "shard": "sharded parallel run, proven byte-identical to serial",
}


class _JobsAliasAction(argparse.Action):
    """The hidden ``--jobs`` alias of ``-j``/``--workers``: same effect,
    plus exactly one :class:`DeprecationWarning` per use."""

    def __call__(self, parser, namespace, values, option_string=None):
        warnings.warn(
            "--jobs is deprecated; use -j/--workers",
            DeprecationWarning,
            stacklevel=2,
        )
        setattr(namespace, self.dest, values)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the PEEL paper's experiments.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")

    for name in ("fig1", "fig3", "headline", "trees"):
        sub.add_parser(name, help=EXPERIMENTS[name])

    def add_workers_flag(parser_: argparse.ArgumentParser) -> None:
        parser_.add_argument(
            "-j", "--workers", dest="workers", type=int, default=None,
            metavar="N",
            help="worker processes for the sweep (default: one per CPU; "
                 "1 = serial in-process)")
        # Old spelling, kept working but out of --help (it collided with
        # --num-jobs in every head: workers != simulated collectives).
        parser_.add_argument(
            "--jobs", dest="workers", type=int, action=_JobsAliasAction,
            help=argparse.SUPPRESS)

    p = sub.add_parser("frontier", help=EXPERIMENTS["frontier"])
    p.add_argument("--sizes", type=int, nargs="+",
                   default=list(fig3_frontier.DEFAULT_SIZES),
                   help="group sizes (hosts per group) to sweep")
    p.add_argument("--fanouts", type=int, nargs="+",
                   default=list(fig3_frontier.DEFAULT_FANOUTS),
                   help="rack fanouts (racks per group) to sweep")
    p.add_argument("--schemes", nargs="+",
                   default=list(fig3_frontier.DEFAULT_SCHEMES),
                   help="registry schemes to sweep (name or name:param=value)")
    p.add_argument("--message-kb", type=int, default=64,
                   help="message size per collective (KB)")
    p.add_argument("--shards", type=int, default=1,
                   help="simulation shards per point (byte-identical to 1)")
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--check-invariants", action="store_true",
                   help="assert fabric invariants throughout (slower)")
    add_workers_flag(p)

    p = sub.add_parser("fig4", help=EXPERIMENTS["fig4"])
    p.add_argument("--sizes", type=int, nargs="+", default=[2, 8, 32])
    p.add_argument("--num-jobs", type=int, default=8,
                   help="concurrent collectives per scenario point")
    add_workers_flag(p)

    p = sub.add_parser("fig5", help=EXPERIMENTS["fig5"])
    p.add_argument("--sizes", type=int, nargs="+", default=[2, 16, 64])
    p.add_argument("--num-jobs", type=int, default=8,
                   help="concurrent collectives per scenario point")
    p.add_argument("--gpus", type=int, default=512)
    p.add_argument("--check-invariants", action="store_true",
                   help="assert fabric invariants throughout (slower)")
    add_workers_flag(p)

    p = sub.add_parser("fig6", help=EXPERIMENTS["fig6"])
    p.add_argument("--scales", type=int, nargs="+", default=[64, 256])
    p.add_argument("--num-jobs", type=int, default=6,
                   help="concurrent collectives per scenario point")
    p.add_argument("--check-invariants", action="store_true",
                   help="assert fabric invariants throughout (slower)")
    add_workers_flag(p)

    p = sub.add_parser("fig7", help=EXPERIMENTS["fig7"])
    p.add_argument("--failures", type=int, nargs="+", default=[1, 4, 10])
    p.add_argument("--num-jobs", type=int, default=20,
                   help="concurrent collectives per scenario point")
    p.add_argument("--check-invariants", action="store_true",
                   help="assert fabric invariants throughout (slower)")
    add_workers_flag(p)

    p = sub.add_parser("faults", help=EXPERIMENTS["faults"])
    p.add_argument("--scheme", default="peel",
                   choices=faults_demo.RECOVERABLE_SCHEMES)
    p.add_argument("--gpus", type=int, default=32)
    p.add_argument("--message-mb", type=int, default=8)
    p.add_argument("--schedule", metavar="PATH",
                   help="JSON fault schedule (see repro.faults); default "
                        "flaps a loaded spine link mid-Broadcast")
    p.add_argument("--no-restore", action="store_true",
                   help="leave the default failed link down for good")
    p.add_argument("--trace", metavar="PATH",
                   help="save the run's golden-trace digest to PATH")
    p.add_argument("--seed", type=int, default=3)

    p = sub.add_parser("failover", help=EXPERIMENTS["failover"])
    p.add_argument("--protection", type=int, nargs="+", default=[0, 1],
                   metavar="F",
                   help="resilience levels to sweep (0 = reactive re-peel "
                        "only; F >= 1 pre-installs F backup subtrees per "
                        "protected link)")
    add_workers_flag(p)

    p = sub.add_parser("guard", help=EXPERIMENTS["guard"])
    p.add_argument("--num-jobs", type=int, default=12,
                   help="concurrent collectives in the ablation")

    sub.add_parser("frag", help=EXPERIMENTS["frag"])

    p = sub.add_parser("deploy", help=EXPERIMENTS["deploy"])
    p.add_argument("--num-jobs", type=int, default=6,
                   help="concurrent collectives per deployment stage")

    p = sub.add_parser("churn", help=EXPERIMENTS["churn"])
    p.add_argument("--num-jobs", type=int, default=1500)

    p = sub.add_parser("control", help=EXPERIMENTS["control"])
    p.add_argument("--num-jobs", type=int,
                   default=control_churn.DEFAULT_NUM_JOBS,
                   help="collectives submitted through the service")
    p.add_argument("--seed", type=int, default=control_churn.DEFAULT_SEED)
    p.add_argument("--admit-mb", type=int, default=None, metavar="MB",
                   help="cap outstanding admitted bytes per link "
                        "(LinkLoadAdmission): bounded fabric occupancy, "
                        "head-of-line queueing in the tail")
    p.add_argument("--gap-scale", type=float, default=1.0, metavar="X",
                   help="stretch interarrival gaps; 1.0 offers ~3x fabric "
                        "capacity (replanner headline), 8.0 keeps even "
                        "fully shared spine links subcritical for "
                        "thousand-job campaigns")
    add_workers_flag(p)

    p = sub.add_parser("serve", help=EXPERIMENTS["serve"])
    p.add_argument("--loads", type=float, nargs="+",
                   default=list(fig_serving.DEFAULT_LOADS))
    p.add_argument("--schemes", nargs="+",
                   default=list(fig_serving.DEFAULT_SCHEMES),
                   choices=fig_serving.DEFAULT_SCHEMES)
    p.add_argument("--num-jobs", type=int, default=150,
                   help="submitted jobs per (load, scheme) point")
    p.add_argument("--gpus", type=int, default=16)
    add_workers_flag(p)
    p.add_argument("--tcam", type=int, default=24,
                   help="per-switch TCAM entries available to multicast")
    p.add_argument("--failures", action="store_true",
                   help="replay the highest load with a mid-stream link flap")
    p.add_argument("--check-invariants", action="store_true",
                   help="assert fabric invariants throughout (slower)")
    p.add_argument("--seed", type=int, default=11)

    p = sub.add_parser("obs", help=EXPERIMENTS["obs"])
    p.add_argument("--scenario", default="headline",
                   choices=obs_demo.SCENARIOS,
                   help="which instrumented reference run to execute")
    p.add_argument("--trace-out", metavar="PATH",
                   help="write the Chrome-trace JSON timeline here "
                        "(open in chrome://tracing or ui.perfetto.dev)")
    p.add_argument("--metrics-out", metavar="PATH",
                   help="write the metrics-registry snapshot JSON here")
    p.add_argument("--sample-interval", type=float, default=None,
                   metavar="SECONDS",
                   help="periodic sampler cadence in simulated seconds "
                        "(default: per-scenario, 50-200 us)")
    p.add_argument("--detail", default=None,
                   choices=("transfer", "segment"),
                   help="span granularity: per transfer (default) or down "
                        "to per-receiver segment spans")

    p = sub.add_parser("replay", help=EXPERIMENTS["replay"])
    p.add_argument("--scenario", default="headline",
                   choices=("headline", "fault", "serve", "all"),
                   help="golden scenario to checkpoint+resume (default: "
                        "headline; 'all' runs every one)")

    p = sub.add_parser("soak", help=EXPERIMENTS["soak"])
    p.add_argument("--epochs", type=int, default=3,
                   help="randomized epochs to verify (resumes where a "
                        "killed run left off)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--state-dir", default="soak-state", metavar="DIR",
                   help="manifest + snapshot directory (survives kills)")
    p.add_argument("--fault-probability", type=float, default=0.6,
                   help="chance an epoch includes a mid-run link flap")

    p = sub.add_parser("shard", help=EXPERIMENTS["shard"])
    p.add_argument("--shards", type=int, default=4,
                   help="worker shards (each a full simulator)")
    p.add_argument("--pods", type=int, default=4,
                   help="fat-tree arity k = pod count (even)")
    p.add_argument("--jobs-per-pod", type=int, default=8,
                   help="pod-local broadcasts per pod")
    p.add_argument("--message-kb", type=int, default=128)
    p.add_argument("--seed", type=int, default=11)
    p.add_argument("--serve", action="store_true",
                   help="run a sharded *serving* campaign (ServeRuntime "
                        "per shard) instead of a scenario batch")
    p.add_argument("--in-process", action="store_true",
                   help="lockstep windows in one process (debugging; "
                        "default forks one worker per shard)")
    return parser


def _sweep_kwargs(args: argparse.Namespace) -> dict:
    """Worker-pool arguments for a sweep subcommand's ``--workers`` flag."""
    workers = resolve_jobs(args.workers)
    return {
        "jobs": workers,
        "progress": stderr_progress() if workers > 1 else None,
    }


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        width = max(len(n) for n in EXPERIMENTS)
        for name, blurb in EXPERIMENTS.items():
            print(f"{name:<{width}}  {blurb}")
    elif args.command == "fig1":
        print(fig1_bandwidth.format_table(fig1_bandwidth.run()))
    elif args.command == "fig3":
        print(fig3_rsbf.format_table(fig3_rsbf.run()))
    elif args.command == "frontier":
        rows = fig3_frontier.run(
            sizes=tuple(args.sizes), fanouts=tuple(args.fanouts),
            schemes=tuple(args.schemes),
            message_bytes=args.message_kb * 1024, seed=args.seed,
            shards=args.shards, check_invariants=args.check_invariants,
            **_sweep_kwargs(args),
        )
        print(fig3_frontier.format_table(rows))
    elif args.command == "fig4":
        rows = fig4_orca.run(
            sizes_mb=tuple(args.sizes), num_jobs=args.num_jobs,
            **_sweep_kwargs(args),
        )
        print(format_cct_table(rows, "msg (MB)"))
        for size in args.sizes:
            print(f"p99 inflation at {size} MB: "
                  f"{fig4_orca.tail_inflation(rows, size):.1f}x")
    elif args.command == "fig5":
        rows = fig5_message_size.run(
            sizes_mb=tuple(args.sizes), num_jobs=args.num_jobs,
            num_gpus=args.gpus, check_invariants=args.check_invariants,
            **_sweep_kwargs(args),
        )
        print(format_cct_table(rows, "msg (MB)"))
    elif args.command == "fig6":
        rows = fig6_scale.run(
            scales=tuple(args.scales), num_jobs=args.num_jobs,
            check_invariants=args.check_invariants,
            **_sweep_kwargs(args),
        )
        print(format_cct_table(rows, "GPUs"))
    elif args.command == "fig7":
        rows = fig7_failures.run(
            failure_pcts=tuple(args.failures), num_jobs=args.num_jobs,
            check_invariants=args.check_invariants,
            **_sweep_kwargs(args),
        )
        print(format_cct_table(rows, "failed %"))
    elif args.command == "faults":
        from .faults import FaultSchedule

        schedule = FaultSchedule.load(args.schedule) if args.schedule else None
        result = faults_demo.run(
            scheme=args.scheme,
            num_gpus=args.gpus,
            message_mb=args.message_mb,
            schedule=schedule,
            restore=not args.no_restore,
            seed=args.seed,
            record_trace=args.trace is not None,
        )
        print(faults_demo.format_result(result))
        if args.trace:
            with open(args.trace, "w", encoding="utf-8") as fh:
                fh.write(result.trace_digest + "\n")
            print(f"trace digest written to {args.trace}")
    elif args.command == "failover":
        rows = failover.run(
            protection_levels=tuple(args.protection),
            **_sweep_kwargs(args),
        )
        print(failover.format_table(rows))
    elif args.command == "headline":
        print(headline.format_state_table(headline.state_table()))
        bw = headline.bandwidth_headline()
        print(f"\nPEEL saves {bw.peel_saving_vs_ring:.1%} of ring bytes; "
              f"{bw.peel_overhead_vs_optimal:.1%} above optimal")
    elif args.command == "trees":
        print(tree_quality.format_table(tree_quality.run()))
    elif args.command == "guard":
        rows = guard_timer.run(num_jobs=args.num_jobs)
        for r in rows:
            print(f"{r.variant:<12} mean={r.mean_s * 1e3:8.2f}ms "
                  f"p99={r.p99_s * 1e3:8.2f}ms")
        print(f"tail improvement: {guard_timer.tail_improvement(rows):.1f}x")
    elif args.command == "frag":
        print(fragmentation.format_table(fragmentation.run()))
    elif args.command == "deploy":
        print(deployment.format_table(deployment.run(num_jobs=args.num_jobs)))
    elif args.command == "churn":
        print(state_churn.format_table(state_churn.run(num_jobs=args.num_jobs)))
    elif args.command == "control":
        rows = control_churn.run(
            num_jobs=args.num_jobs, seed=args.seed,
            admit_mb=args.admit_mb, gap_scale=args.gap_scale,
            **_sweep_kwargs(args),
        )
        print(control_churn.format_table(rows))
    elif args.command == "serve":
        rows = fig_serving.run(
            loads=tuple(args.loads),
            schemes=tuple(args.schemes),
            num_jobs=args.num_jobs,
            num_gpus=args.gpus,
            tcam_capacity=args.tcam,
            check_invariants=args.check_invariants,
            with_failures=args.failures,
            seed=args.seed,
            **_sweep_kwargs(args),
        )
        print(fig_serving.format_table(rows))
    elif args.command == "obs":
        kwargs = {}
        if args.sample_interval is not None:
            kwargs["sample_interval_s"] = args.sample_interval
        if args.detail is not None:
            kwargs["detail"] = args.detail
        result = obs_demo.run(args.scenario, **kwargs)
        print(f"scenario {args.scenario}: {result.summary}")
        if args.trace_out:
            with open(args.trace_out, "w", encoding="utf-8") as fh:
                fh.write(result.trace_json)
            print(f"trace timeline written to {args.trace_out}")
        if args.metrics_out:
            with open(args.metrics_out, "w", encoding="utf-8") as fh:
                fh.write(result.metrics_json)
            print(f"metrics snapshot written to {args.metrics_out}")
    elif args.command == "replay":
        return _replay_smoke(args.scenario)
    elif args.command == "soak":
        from .replay import SoakConfig, SoakRunner, format_manifest

        runner = SoakRunner(
            SoakConfig(
                epochs=args.epochs,
                seed=args.seed,
                state_dir=args.state_dir,
                fault_probability=args.fault_probability,
            ),
            progress=_stderr_line,
        )
        print(format_manifest(runner.run()))
    elif args.command == "shard":
        return _shard_demo(args)
    return 0


def _stderr_line(line: str) -> None:
    print(line, file=sys.stderr)


def _replay_smoke(scenario: str) -> int:
    """Checkpoint each requested golden scenario at its canonical cut
    points, resume from serialized snapshots, and compare digests."""
    from .experiments import scenarios
    from .replay import verify_cut_points, verify_serve_replay

    names = scenarios.REPLAY_SCENARIOS if scenario == "all" else (scenario,)
    failed = 0
    for name in names:
        if name == "serve":
            _, cuts = scenarios.serve_runtime()
            reports = [
                verify_serve_replay(lambda: scenarios.serve_runtime()[0], cut)
                for cut in cuts
            ]
        else:
            builder = (
                scenarios.headline_scenario
                if name == "headline"
                else scenarios.fault_scenario
            )
            spec, cuts = builder()
            reports = verify_cut_points(spec, cuts)
        for report in reports:
            print(f"{name}: {report.describe()}")
            failed += not report.identical
    if failed:
        print(f"{failed} replay verification(s) DIVERGED", file=sys.stderr)
        return 1
    return 0


def _shard_demo(args: argparse.Namespace) -> int:
    """Run a pod-local workload serially and sharded; prove them equal.

    Scenario mode times both runs and reports the speedup alongside the
    shared digests; ``--serve`` mode compares a sharded serving campaign's
    rebuilt report (and both digests) against a serial ``ServeRuntime``
    over the same submit stream.  Exit 1 on any byte difference.
    """
    from .api import ScenarioSpec
    from .experiments.common import sim_config
    from .shard import pod_local_jobs
    from .topology import FatTree

    topo = FatTree(args.pods)
    message_bytes = args.message_kb * 1024
    processes = not args.in_process

    if args.serve:
        from .metrics import format_slo_table
        from .serve import ServeRuntime
        from .shard import ServeShardSpec, serve_sharded

        jobs = pod_local_jobs(
            topo, args.jobs_per_pod, 3, message_bytes,
            seed=args.seed, tenants=("train", "infer"),
        )
        config = sim_config(message_bytes, seed=args.seed)
        sspec = ServeShardSpec(
            topology=topo, scheme="peel", jobs=tuple(jobs),
            shards=args.shards, config=config,
            record_trace=True, event_digest=True,
        )
        sharded = serve_sharded(sspec, processes=processes)
        serial = ServeRuntime(topo, "peel", config, record_trace=True)
        serial.env.sim.attach_digest()
        serial.submit_all(jobs)
        serial.run()
        identical = (
            serial.report() == sharded.report
            and serial.env.trace.digest() == sharded.trace_digest
            and serial.env.sim.event_digest.hexdigest() == sharded.event_digest
        )
        print(format_slo_table(sharded.report.tenants + [sharded.report.total]))
        print(
            f"{len(jobs)} jobs on {sharded.shards} shards, "
            f"{sharded.windows} windows, {sharded.events_processed} events"
        )
    else:
        from .experiments.parallel import shard_speedup

        jobs = pod_local_jobs(
            topo, args.jobs_per_pod, 3, message_bytes, seed=args.seed
        )
        spec = ScenarioSpec(
            topology=topo, scheme="peel", jobs=tuple(jobs),
            config=sim_config(message_bytes, seed=args.seed),
            shards=args.shards,
        )
        result = shard_speedup(spec, processes=processes)
        identical = result.byte_identical
        print(
            f"{len(jobs)} jobs, {result.events} events: serial "
            f"{result.serial_wall_s:.3f}s, {result.shards} shards "
            f"{result.sharded_wall_s:.3f}s ({result.speedup:.2f}x)"
        )
    verdict = "byte-identical" if identical else "DIVERGED"
    print(f"serial vs sharded: {verdict}")
    return 0 if identical else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
