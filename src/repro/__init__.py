"""PEEL: scalable datacenter multicast for AI collectives.

A from-scratch reproduction of "One to Many: Closing the Bandwidth Gap in
AI Datacenters with Scalable Multicast" (HotNets '25): near-optimal
multicast trees in polynomial time (layer peeling, §2), power-of-two prefix
state/header co-design (§3), and a discrete-event RDMA-fabric simulator
that regenerates the paper's evaluation (§4).

Typical entry points:

>>> from repro import FatTree, Peel
>>> fabric = FatTree(8, hosts_per_tor=4)
>>> plan = Peel(fabric).plan("host:p0:t0:0", ["host:p1:t0:0"])
>>> plan.num_prefixes
1

Scenarios run through one facade: build a
:class:`~repro.api.ScenarioSpec`, call :func:`repro.api.run`:

>>> from repro import ScenarioSpec, run
>>> result = run(ScenarioSpec(topology=fabric, scheme="peel", jobs=jobs))

Subpackages: :mod:`repro.topology` (fabrics), :mod:`repro.steiner`
(tree oracles), :mod:`repro.core` (PEEL itself), :mod:`repro.state`
(switch-state models), :mod:`repro.sim` (event simulator),
:mod:`repro.collectives` (broadcast schemes), :mod:`repro.workloads`,
:mod:`repro.metrics`, :mod:`repro.api` (scenario facade),
:mod:`repro.replay` (checkpoint/replay + soak), :mod:`repro.serve`
(multi-tenant serving), :mod:`repro.obs` (metrics registry + span
tracing/timeline export) and :mod:`repro.experiments` (paper figures).
"""

from .api import (
    ReplayInfo,
    ScenarioResult,
    ScenarioRun,
    ScenarioSpec,
    run,
)
from .collectives import (
    BroadcastScheme,
    CollectiveEnv,
    Gpu,
    Group,
    scheme_by_name,
)
from .core import (
    Peel,
    PeelPlan,
    layer_peeling_tree,
    optimal_symmetric_tree,
)
from .faults import FaultEvent, FaultInjector, FaultSchedule, Repeel
from .obs import MetricsRegistry, Observability, SpanTracer
from .replay import (
    Snapshot,
    SnapshotError,
    SoakConfig,
    SoakRunner,
    verify_scenario_replay,
)
from .serve import ServeReport, ServeRuntime
from .sim import (
    FabricObserver,
    InvariantChecker,
    InvariantViolation,
    Network,
    SimConfig,
    Simulator,
    TraceRecorder,
    Transfer,
)
from .steiner import MulticastTree, exact_steiner_tree, metric_closure_tree
from .topology import FatTree, LeafSpine, Topology, asymmetric

__version__ = "1.0.0"

__all__ = [
    "ScenarioSpec",
    "ScenarioResult",
    "ScenarioRun",
    "ReplayInfo",
    "run",
    "BroadcastScheme",
    "CollectiveEnv",
    "Gpu",
    "Group",
    "scheme_by_name",
    "Peel",
    "PeelPlan",
    "layer_peeling_tree",
    "optimal_symmetric_tree",
    "FaultEvent",
    "FaultInjector",
    "FaultSchedule",
    "Repeel",
    "Snapshot",
    "SnapshotError",
    "SoakConfig",
    "SoakRunner",
    "verify_scenario_replay",
    "ServeReport",
    "ServeRuntime",
    "MetricsRegistry",
    "Observability",
    "SpanTracer",
    "FabricObserver",
    "InvariantChecker",
    "InvariantViolation",
    "Network",
    "SimConfig",
    "Simulator",
    "TraceRecorder",
    "Transfer",
    "MulticastTree",
    "exact_steiner_tree",
    "metric_closure_tree",
    "FatTree",
    "LeafSpine",
    "Topology",
    "asymmetric",
    "__version__",
]
