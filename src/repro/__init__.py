"""PEEL: scalable datacenter multicast for AI collectives.

A from-scratch reproduction of "One to Many: Closing the Bandwidth Gap in
AI Datacenters with Scalable Multicast" (HotNets '25): near-optimal
multicast trees in polynomial time (layer peeling, §2), power-of-two prefix
state/header co-design (§3), and a discrete-event RDMA-fabric simulator
that regenerates the paper's evaluation (§4).

Typical entry points:

>>> from repro import FatTree, Peel
>>> fabric = FatTree(8, hosts_per_tor=4)
>>> plan = Peel(fabric).plan("host:p0:t0:0", ["host:p1:t0:0"])
>>> plan.num_prefixes
1

Subpackages: :mod:`repro.topology` (fabrics), :mod:`repro.steiner`
(tree oracles), :mod:`repro.core` (PEEL itself), :mod:`repro.state`
(switch-state models), :mod:`repro.sim` (event simulator),
:mod:`repro.collectives` (broadcast schemes), :mod:`repro.workloads`,
:mod:`repro.metrics`, :mod:`repro.obs` (metrics registry + span
tracing/timeline export) and :mod:`repro.experiments` (paper figures).
"""

from .collectives import (
    BroadcastScheme,
    CollectiveEnv,
    Gpu,
    Group,
    scheme_by_name,
)
from .core import (
    Peel,
    PeelPlan,
    layer_peeling_tree,
    optimal_symmetric_tree,
)
from .faults import FaultEvent, FaultInjector, FaultSchedule
from .obs import MetricsRegistry, Observability, SpanTracer
from .sim import (
    FabricObserver,
    InvariantChecker,
    InvariantViolation,
    Network,
    SimConfig,
    Simulator,
    TraceRecorder,
    Transfer,
)
from .steiner import MulticastTree, exact_steiner_tree, metric_closure_tree
from .topology import FatTree, LeafSpine, Topology, asymmetric

__version__ = "1.0.0"

__all__ = [
    "BroadcastScheme",
    "CollectiveEnv",
    "Gpu",
    "Group",
    "scheme_by_name",
    "Peel",
    "PeelPlan",
    "layer_peeling_tree",
    "optimal_symmetric_tree",
    "FaultEvent",
    "FaultInjector",
    "FaultSchedule",
    "MetricsRegistry",
    "Observability",
    "SpanTracer",
    "FabricObserver",
    "InvariantChecker",
    "InvariantViolation",
    "Network",
    "SimConfig",
    "Simulator",
    "TraceRecorder",
    "Transfer",
    "MulticastTree",
    "exact_steiner_tree",
    "metric_closure_tree",
    "FatTree",
    "LeafSpine",
    "Topology",
    "asymmetric",
    "__version__",
]
