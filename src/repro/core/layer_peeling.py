"""The layer-peeling greedy Steiner heuristic for asymmetric Clos (§2.3).

Hop layers are peeled from the outside in.  On each layer the algorithm
greedily adds the switch that attaches the most still-unconnected tree nodes
of the layer above — mimicking the classical set-cover heuristic while
preserving a layered, loop-free structure.  Approximation factor:
``O(min(F, |D|))`` where ``F`` is the farthest destination's hop distance
(Theorem 2.5).
"""

from __future__ import annotations

from collections.abc import Iterable

import networkx as nx

from ..steiner import MulticastTree, validate_tree
from ..topology import Topology, hop_layers
from ..topology.addressing import NodeKind, kind_of


def layer_peeling_tree(
    topo: Topology | nx.Graph, source: str, destinations: Iterable[str]
) -> MulticastTree:
    """Build an approximate multicast tree from ``source`` to the group.

    Works on any connected graph, symmetric or not; destinations must be
    reachable.  Hosts never act as transit nodes (only the source, the
    destinations, and switches may join the tree).
    """
    graph = topo.graph if isinstance(topo, Topology) else topo
    dests = [d for d in dict.fromkeys(destinations) if d != source]
    if not dests:
        return MulticastTree(source, {})

    layers = hop_layers(graph, source)
    depth = {node: j for j, layer in enumerate(layers) for node in layer}
    for d in dests:
        if d not in depth:
            raise ValueError(f"destination {d!r} unreachable from {source!r}")
    farthest = max(depth[d] for d in dests)

    in_tree: set[str] = {source, *dests}
    parent: dict[str, str] = {}

    for level in range(farthest - 1, -1, -1):
        upper = [n for n in layers[level + 1] if n in in_tree]
        uncovered: set[str] = set()
        for node in upper:
            existing = _neighbor_in(graph, node, layers[level], in_tree)
            if existing is not None:
                if node not in parent:
                    parent[node] = existing
            else:
                uncovered.add(node)
        while uncovered:
            best = _best_cover(graph, layers[level], uncovered)
            in_tree.add(best)
            for node in sorted(uncovered & set(graph.neighbors(best))):
                parent[node] = best
                uncovered.discard(node)

    tree = MulticastTree(source, parent)
    validate_tree(tree, graph, source, dests)
    return tree


def _neighbor_in(
    graph: nx.Graph, node: str, layer: set[str], in_tree: set[str]
) -> str | None:
    """Deterministically pick an already-in-tree neighbor on ``layer``."""
    candidates = [v for v in graph.neighbors(node) if v in layer and v in in_tree]
    return min(candidates) if candidates else None


def _best_cover(graph: nx.Graph, layer: set[str], uncovered: set[str]) -> str:
    """Switch on ``layer`` adjacent to the most uncovered nodes (§2.3 step 4a).

    Ties break lexicographically for determinism.  Every uncovered node has a
    BFS parent on ``layer``, so a positive-coverage switch always exists.
    """
    best_node: str | None = None
    best_cover = 0
    for node in sorted(layer):
        if kind_of(node) is NodeKind.HOST:
            continue
        cover = sum(1 for v in graph.neighbors(node) if v in uncovered)
        if cover > best_cover:
            best_node = node
            best_cover = cover
    if best_node is None:
        # Uncovered nodes whose only lower-layer neighbors are hosts can only
        # happen for the source's own layer-1 neighbors; the source covers
        # them, but it sits on layer 0 and is not a switch.  Fall back to any
        # host neighbor present in the layer (the source itself).
        for node in sorted(layer):
            if any(v in uncovered for v in graph.neighbors(node)):
                return node
        raise ValueError("no covering node found; layering invariant violated")
    return best_node


def peeled_tree_bound(tree: MulticastTree, destinations: Iterable[str]) -> int:
    """Lemma 2.3's upper bound ``|D| * F`` on the peeled tree size."""
    dests = list(dict.fromkeys(destinations))
    farthest = max((tree.depth_of(d) for d in dests if d in tree.nodes), default=0)
    return len(dests) * max(farthest, 1)
