"""Pre-installed power-of-two forwarding rules (§3.2).

For an ``m``-bit ToR identifier space, an aggregation switch holds one entry
per prefix length ``l`` per block, i.e. ``1 + 2 + ... + 2^m = 2^(m+1) - 1 =
k - 1`` entries total — *linear* in port count, installed once, never
touched again ("deploy-once, touch-never").
"""

from __future__ import annotations

from dataclasses import dataclass

from .header import PeelHeader, tor_id_bits
from .prefix import Prefix


@dataclass(frozen=True)
class ForwardingRule:
    """One TCAM entry: a prefix and the downlink ports (ToR indices) it fans
    out to."""

    prefix: Prefix
    out_ports: tuple[int, ...]


def preinstalled_rules(k: int) -> list[ForwardingRule]:
    """The full static rule set of one aggregation switch in a k-ary fat-tree."""
    width = tor_id_bits(k)
    rules = []
    for length in range(width + 1):
        for value in range(1 << length):
            prefix = Prefix(value, length)
            rules.append(ForwardingRule(prefix, tuple(prefix.block(width))))
    return rules


def rule_count(k: int) -> int:
    """Closed form ``k - 1`` (checked against the enumeration in tests)."""
    return (1 << (tor_id_bits(k) + 1)) - 1


class PrefixRuleTable:
    """The data-plane lookup an aggregation switch performs on a PEEL packet.

    Indexed by ``(value, length)``; a miss on a well-formed header is
    impossible because every power-of-two block is pre-installed.
    """

    def __init__(self, k: int) -> None:
        self.k = k
        self.width = tor_id_bits(k)
        self._table = {
            (rule.prefix.value, rule.prefix.length): rule
            for rule in preinstalled_rules(k)
        }

    def __len__(self) -> int:
        return len(self._table)

    def match(self, header: PeelHeader) -> ForwardingRule:
        if header.width != self.width:
            raise ValueError(
                f"header width {header.width} does not match fabric width {self.width}"
            )
        key = (header.prefix.value, header.prefix.length)
        try:
            return self._table[key]
        except KeyError:  # pragma: no cover - unreachable for valid headers
            raise LookupError(f"no rule for prefix {header.prefix}") from None

    def lookup(self, raw_header: int) -> tuple[int, ...]:
        """Decode a raw header and return the out-port set."""
        return self.match(PeelHeader.decode(raw_header, self.width)).out_ports
