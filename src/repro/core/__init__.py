"""PEEL — the paper's primary contribution.

Tree construction (§2): :func:`optimal_symmetric_tree` for failure-free Clos
and :func:`layer_peeling_tree` for asymmetric fabrics.  State/header
co-design (§3): power-of-two prefix covers, the ``⟨prefix, length⟩`` header,
pre-installed rule tables, and the :class:`Peel` planner tying it together.
"""

from .header import (
    PeelHeader,
    header_bits,
    header_bytes,
    hierarchical_header_bits,
    hierarchical_header_bytes,
    tor_id_bits,
)
from .layer_peeling import layer_peeling_tree, peeled_tree_bound
from .multipath import diverse_trees, tree_overlap
from .peel import Peel, PeelPlan, PrefixPacket
from .prefix import (
    Prefix,
    bounded_cover,
    cover_waste,
    covered_ids,
    exact_cover,
)
from .protection import BackupEntry, ProtectionPlan, build_protection
from .refinement import ControllerModel, RefinementSchedule, core_rules_needed
from .rules import ForwardingRule, PrefixRuleTable, preinstalled_rules, rule_count
from .service import GroupClosedError, MulticastGroup, MulticastService
from .symmetric import SymmetryError, optimal_symmetric_cost, optimal_symmetric_tree

__all__ = [
    "Peel",
    "PeelPlan",
    "PrefixPacket",
    "Prefix",
    "PeelHeader",
    "exact_cover",
    "bounded_cover",
    "cover_waste",
    "covered_ids",
    "header_bits",
    "header_bytes",
    "hierarchical_header_bits",
    "hierarchical_header_bytes",
    "tor_id_bits",
    "layer_peeling_tree",
    "peeled_tree_bound",
    "diverse_trees",
    "tree_overlap",
    "BackupEntry",
    "ProtectionPlan",
    "build_protection",
    "optimal_symmetric_tree",
    "optimal_symmetric_cost",
    "SymmetryError",
    "ForwardingRule",
    "PrefixRuleTable",
    "preinstalled_rules",
    "rule_count",
    "MulticastService",
    "MulticastGroup",
    "GroupClosedError",
    "ControllerModel",
    "RefinementSchedule",
    "core_rules_needed",
]
