"""Power-of-two prefix cover sets (§3.2) — CIDR-style aggregation of ToR ids.

Every ToR in a pod gets an ``m = log2(k/2)``-bit identifier.  A *prefix*
``value/length`` names the aligned block of ``2^(m - length)`` identifiers
sharing the top ``length`` bits — exactly the blocks for which rules are
pre-installed in every aggregation switch.

Two cover policies are provided:

* :func:`exact_cover` — the unique minimal set of aligned blocks covering a
  target set exactly (the paper's trie-of-complete-subtrees construction);
* :func:`bounded_cover` — at most ``max_prefixes`` blocks, minimally
  over-covering; this implements the "adaptive prefix packing" direction the
  paper raises for fragmented placements (§3.4).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache


@dataclass(frozen=True, order=True)
class Prefix:
    """An aligned identifier block: top ``length`` bits equal ``value``.

    ``length == 0`` covers every identifier; ``length == width`` covers one.
    """

    value: int
    length: int

    def __post_init__(self) -> None:
        if self.length < 0:
            raise ValueError(f"negative prefix length: {self.length}")
        if not 0 <= self.value < (1 << self.length):
            raise ValueError(f"prefix value {self.value} too wide for /{self.length}")

    def block(self, width: int) -> range:
        """The identifiers this prefix covers in a ``width``-bit space."""
        if self.length > width:
            raise ValueError(f"/{self.length} prefix in a {width}-bit space")
        span = 1 << (width - self.length)
        return range(self.value * span, (self.value + 1) * span)

    def covers(self, ident: int, width: int) -> bool:
        return ident >> (width - self.length) == self.value

    def bitstring(self, width: int) -> str:
        """Human-readable form, e.g. ``01*`` for value=0b01/len 2, width 3."""
        bits = format(self.value, f"0{self.length}b") if self.length else ""
        return bits + "*" * (width - self.length)


def exact_cover(ids: set[int], width: int) -> list[Prefix]:
    """Minimal set of aligned power-of-two blocks covering ``ids`` exactly.

    Classic trie decomposition: a trie node whose whole span is in ``ids``
    becomes one prefix; otherwise recurse into halves.  Result is sorted by
    block start.
    """
    _check_ids(ids, width)
    out: list[Prefix] = []

    def descend(value: int, length: int) -> None:
        span = range(value << (width - length), (value + 1) << (width - length))
        hit = sum(1 for i in span if i in ids)
        if not hit:
            return
        if hit == len(span):
            out.append(Prefix(value, length))
            return
        descend(value << 1, length + 1)
        descend((value << 1) | 1, length + 1)

    descend(0, 0)
    return out


def bounded_cover(ids: set[int], width: int, max_prefixes: int) -> list[Prefix]:
    """Cover ``ids`` with at most ``max_prefixes`` blocks, minimum waste.

    *Waste* is the number of covered identifiers outside ``ids`` (packets
    ToRs will discard, §3.3).  Solved by dynamic programming on the trie:
    ``best(node, p)`` = minimum waste covering the node's targets with at
    most ``p`` prefixes, choosing between one block for the whole node or a
    budget split across the two children.
    """
    _check_ids(ids, width)
    if max_prefixes < 1:
        raise ValueError(f"max_prefixes must be >= 1, got {max_prefixes}")
    if not ids:
        return []

    infinity = float("inf")

    @lru_cache(maxsize=None)
    def best(value: int, length: int, budget: int) -> tuple[float, tuple[Prefix, ...]]:
        span = range(value << (width - length), (value + 1) << (width - length))
        hit = sum(1 for i in span if i in ids)
        if not hit:
            return 0, ()
        if budget == 0:
            return infinity, ()
        whole = (len(span) - hit, (Prefix(value, length),))
        if length == width:
            return whole
        options = [whole]
        # A child with no targets consumes no budget, so the sibling may
        # take the whole allowance (left_budget 0 or `budget` included).
        for left_budget in range(0, budget + 1):
            lw, lp = best(value << 1, length + 1, left_budget)
            rw, rp = best((value << 1) | 1, length + 1, budget - left_budget)
            if lw + rw < infinity:
                options.append((lw + rw, lp + rp))
        return min(options, key=lambda item: (item[0], len(item[1])))

    waste, prefixes = best(0, 0, max_prefixes)
    del waste
    return sorted(prefixes)


def cover_waste(prefixes: list[Prefix], ids: set[int], width: int) -> int:
    """Identifiers covered by ``prefixes`` but not in ``ids``."""
    covered: set[int] = set()
    for p in prefixes:
        covered.update(p.block(width))
    if not ids <= covered:
        raise ValueError("prefixes do not cover the target set")
    return len(covered - ids)


def covered_ids(prefixes: list[Prefix], width: int) -> set[int]:
    """All identifiers covered by a prefix set."""
    out: set[int] = set()
    for p in prefixes:
        out.update(p.block(width))
    return out


def _check_ids(ids: set[int], width: int) -> None:
    if width < 0:
        raise ValueError(f"negative identifier width: {width}")
    bad = [i for i in ids if not 0 <= i < (1 << width)]
    if bad:
        raise ValueError(f"identifiers out of {width}-bit range: {sorted(bad)}")
