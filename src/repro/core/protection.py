"""Proactive F-resilient protection: pre-computed backup subtrees per link.

The reactive recovery story (:mod:`repro.faults`) detects a failure ~100 µs
after the fact and re-peels; this module moves the work to *plan time*, in
the style of OpenFlow Fast-Failover group tables.  For every protected link
of a primary peel tree the planner computes up to ``F`` mutually
edge-disjoint backup subtrees (the same scratch-topology construction
:func:`repro.core.multipath.diverse_trees` uses) and records the extra
per-switch entries they cost.  When a protected link dies, the affected
transfer flips to the first healthy backup *at the cut event itself* — no
detection delay, no controller round trip — while unprotected cuts keep
falling back to the reactive re-peel.

A *protected link* is a switch-to-switch link of the primary tree: host
attachments are single-homed, so no backup subtree can route around them.
Backup computation is best effort — a fabric without enough residual
diversity simply leaves that link unprotected (reactive recovery still
covers it).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..steiner import MulticastTree
from ..topology import Topology
from ..topology.addressing import NodeKind, kind_of
from .layer_peeling import layer_peeling_tree

#: Entry demand of one protection plan: switch -> entry keys (mirrors
#: :data:`repro.serve.state.Demand` without importing the serving layer).
Demand = dict[str, list[object]]


def _is_core_link(u: str, v: str) -> bool:
    return kind_of(u) is not NodeKind.HOST and kind_of(v) is not NodeKind.HOST


def _link_key(u: str, v: str) -> tuple[str, str]:
    """Canonical (sorted) undirected identity of a link."""
    return (u, v) if u <= v else (v, u)


@dataclass(frozen=True)
class BackupEntry:
    """Pre-installed fast-failover alternatives for one protected link.

    ``backups`` are ordered like the buckets of an OpenFlow Fast-Failover
    group: on a cut, the first alternative whose links are all healthy
    wins.  Alternatives are mutually edge-disjoint on switch-to-switch
    links and never use the protected link itself.
    """

    tree_index: int
    link: tuple[str, str]  # canonical (sorted) endpoints
    backups: tuple[MulticastTree, ...]


@dataclass
class ProtectionPlan:
    """Every backup subtree one peel plan pre-installs, plus its TCAM cost."""

    resilience: int
    #: ``(tree index, canonical link) -> BackupEntry``
    entries: dict[tuple[int, tuple[str, str]], BackupEntry] = field(
        default_factory=dict
    )

    def entry_for(self, tree_index: int, u: str, v: str) -> BackupEntry | None:
        return self.entries.get((tree_index, _link_key(u, v)))

    @property
    def protected_links(self) -> set[tuple[str, str]]:
        return {link for _idx, link in self.entries}

    def protects(self, u: str, v: str) -> bool:
        key = _link_key(u, v)
        return any(link == key for _idx, link in self.entries)

    # -- TCAM accounting -------------------------------------------------------

    def tcam_demand(self, group_id: object) -> Demand:
        """Per-switch fast-failover entries this plan pre-installs.

        One entry per replication point of every backup alternative, keyed
        by (group, protected link, tree, alternative) — the granularity a
        fast-failover group table needs to flip one watched link without
        touching any other group's state.
        """
        demand: Demand = {}
        for (tree_index, link), entry in sorted(self.entries.items()):
            for alt, backup in enumerate(entry.backups):
                for switch in sorted(backup.children_map):
                    if kind_of(switch) is NodeKind.HOST:
                        continue
                    demand.setdefault(switch, []).append(
                        ("ff", group_id, link, tree_index, alt)
                    )
        return demand

    def total_entries(self) -> int:
        return sum(len(keys) for keys in self.tcam_demand(None).values())

    def peak_entries_per_switch(self) -> int:
        return max(
            (len(keys) for keys in self.tcam_demand(None).values()), default=0
        )


def build_protection(
    topo: Topology,
    trees: list[MulticastTree],
    source: str,
    resilience: int,
) -> ProtectionPlan:
    """Backup subtrees for every protectable link of the primary trees.

    For alternative ``j`` of a protected link the scratch topology drops
    the protected link plus the switch-to-switch links of alternatives
    ``0..j-1``, then re-runs the layer-peeling greedy toward the tree's
    own receivers — so alternatives are mutually edge-disjoint and each
    avoids the link it protects.  Links whose removal disconnects some
    receiver get no (or fewer) backups.
    """
    if resilience < 1:
        raise ValueError(f"resilience must be >= 1, got {resilience}")
    plan = ProtectionPlan(resilience=resilience)
    for index, tree in enumerate(trees):
        hosts = sorted(
            n for n in tree.nodes if kind_of(n) is NodeKind.HOST and n != source
        )
        if not hosts:
            continue
        for parent_node, child in sorted(tree.edges):
            if not _is_core_link(parent_node, child):
                continue
            key = (index, _link_key(parent_node, child))
            if key in plan.entries:
                continue
            backups = _backup_alternatives(
                topo, source, hosts, (parent_node, child), resilience
            )
            if backups:
                plan.entries[key] = BackupEntry(
                    tree_index=index, link=key[1], backups=tuple(backups)
                )
    return plan


def _backup_alternatives(
    topo: Topology,
    source: str,
    hosts: list[str],
    protected: tuple[str, str],
    resilience: int,
) -> list[MulticastTree]:
    scratch = topo.copy()
    if scratch.graph.has_edge(*protected):
        scratch.graph.remove_edge(*protected)
    backups: list[MulticastTree] = []
    for _ in range(resilience):
        try:
            backup = layer_peeling_tree(scratch, source, hosts)
        except ValueError:
            break  # residual diversity exhausted; keep what we have
        backups.append(backup)
        for u, v in backup.edges:
            if _is_core_link(u, v) and scratch.graph.has_edge(u, v):
                scratch.graph.remove_edge(u, v)
    return backups
