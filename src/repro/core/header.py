"""PEEL packet-header encoding and size math (§3.2).

Each packet carries a single ``⟨prefix value, prefix length⟩`` tuple:

    header bits = log2(k/2)  +  ceil(log2(log2(k/2) + 1))
                  `-- value --'  `------ length field ------'

which is ``O(log k)`` — under 8 bytes even for k = 128 (500K+ hosts).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .prefix import Prefix


def tor_id_bits(k: int) -> int:
    """Bits in a ToR identifier: ``log2(k/2)`` for a k-ary fat-tree."""
    if k < 2 or k % 2:
        raise ValueError(f"fat-tree arity must be even and >= 2, got {k}")
    half = k // 2
    if half & (half - 1):
        raise ValueError(f"k/2 must be a power of two for prefix addressing, got {half}")
    return half.bit_length() - 1


def header_bits(k: int) -> int:
    """Exact header size in bits for a k-ary fat-tree."""
    m = tor_id_bits(k)
    length_field = math.ceil(math.log2(m + 1)) if m else 0
    return m + length_field


def header_bytes(k: int) -> int:
    """Header size rounded up to whole bytes (what the wire carries)."""
    return math.ceil(header_bits(k) / 8) if header_bits(k) else 0


def hierarchical_header_bits(k: int) -> int:
    """Header bits when every downward tier carries a prefix tuple (§3.2's
    "the same principles apply to other downward segments"): a pod-level
    tuple for the core tier plus the ToR-level tuple for the agg tier."""
    pod_bits = max((k - 1).bit_length(), 1)
    pod_length_field = math.ceil(math.log2(pod_bits + 1))
    return pod_bits + pod_length_field + header_bits(k)


def hierarchical_header_bytes(k: int) -> int:
    """Hierarchical header size rounded up to whole bytes."""
    return math.ceil(hierarchical_header_bits(k) / 8)


@dataclass(frozen=True)
class PeelHeader:
    """A concrete encoded header for one prefix packet."""

    prefix: Prefix
    width: int  # identifier width m = log2(k/2)

    def encode(self) -> int:
        """Pack into an integer: value in the top field, length below."""
        length_field = math.ceil(math.log2(self.width + 1)) if self.width else 0
        value = self.prefix.value << (self.width - self.prefix.length)
        return (value << length_field) | self.prefix.length

    @classmethod
    def decode(cls, raw: int, width: int) -> "PeelHeader":
        length_field = math.ceil(math.log2(width + 1)) if width else 0
        length = raw & ((1 << length_field) - 1) if length_field else 0
        if length > width:
            raise ValueError(f"decoded prefix length {length} exceeds width {width}")
        padded = raw >> length_field
        value = padded >> (width - length)
        return cls(Prefix(value, length), width)

    @property
    def bits(self) -> int:
        length_field = math.ceil(math.log2(self.width + 1)) if self.width else 0
        return self.width + length_field

    @property
    def nbytes(self) -> int:
        return math.ceil(self.bits / 8) if self.bits else 0
