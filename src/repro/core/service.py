"""MulticastService: the library-facing group manager.

What a collective library (an NCCL plugin, say) would actually link
against: create groups, mutate membership as jobs elastically grow and
shrink, and get a fresh :class:`PeelPlan` after every change — all without
a single switch update, because the data plane is the pre-installed
power-of-two rule set ("deploy-once, touch-never", §3.2).

>>> from repro.topology import FatTree
>>> from repro.core import MulticastService
>>> service = MulticastService(FatTree(8, hosts_per_tor=4))
>>> g = service.create_group("host:p0:t0:0", ["host:p1:t0:0"])
>>> g.plan.num_prefixes
1
>>> service.switch_rule_updates
0
"""

from __future__ import annotations

from collections.abc import Iterable

from ..topology import FatTree, Topology
from .peel import Peel, PeelPlan
from .rules import PrefixRuleTable


class GroupClosedError(RuntimeError):
    """Raised when a closed group handle is used."""


class MulticastGroup:
    """Handle for one active multicast group; replans on membership change."""

    def __init__(
        self, service: "MulticastService", group_id: int, source: str,
        members: Iterable[str],
    ) -> None:
        self._service = service
        self.group_id = group_id
        self.source = source
        self._members: set[str] = set(members)
        self._plan: PeelPlan | None = None
        self._closed = False

    # -- membership -----------------------------------------------------------

    @property
    def members(self) -> frozenset[str]:
        return frozenset(self._members)

    def add_members(self, hosts: Iterable[str]) -> None:
        self._check_open()
        added = set(hosts) - self._members
        if added:
            self._members |= added
            self._plan = None  # replanning is a source-local operation

    def remove_members(self, hosts: Iterable[str]) -> None:
        self._check_open()
        removing = set(hosts)
        if self.source in removing:
            raise ValueError("the source cannot leave its own group")
        if removing & self._members:
            self._members -= removing
            self._plan = None

    # -- planning ---------------------------------------------------------------

    @property
    def plan(self) -> PeelPlan:
        """Current plan; recomputed lazily after membership changes."""
        self._check_open()
        if self._plan is None:
            self._plan = self._service.planner.plan(
                self.source, sorted(self._members)
            )
            self._service.replans += 1
        return self._plan

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._service._forget(self.group_id)

    @property
    def closed(self) -> bool:
        return self._closed

    def _check_open(self) -> None:
        if self._closed:
            raise GroupClosedError(f"group {self.group_id} is closed")


class MulticastService:
    """Manage many concurrent groups over one fabric's static data plane."""

    def __init__(
        self, topo: Topology, max_prefixes_per_fanout: int | None = None
    ) -> None:
        self.topo = topo
        self.planner = Peel(topo, max_prefixes_per_fanout)
        #: The one-time static rule set (per aggregation switch); on
        #: fat-trees this is materialized so callers can inspect it.
        self.rule_table = (
            PrefixRuleTable(topo.k) if isinstance(topo, FatTree) else None
        )
        #: Switch rule installations after deployment.  Stays zero by
        #: construction; exists so audits can assert the §3.2 property.
        self.switch_rule_updates = 0
        self.replans = 0
        self._groups: dict[int, MulticastGroup] = {}
        self._next_id = 0

    def create_group(self, source: str, members: Iterable[str]) -> MulticastGroup:
        if source not in self.topo.graph:
            raise ValueError(f"unknown source {source!r}")
        group = MulticastGroup(self, self._next_id, source, members)
        self._groups[self._next_id] = group
        self._next_id += 1
        return group

    def _forget(self, group_id: int) -> None:
        self._groups.pop(group_id, None)

    @property
    def active_groups(self) -> int:
        return len(self._groups)

    @property
    def static_rules_per_switch(self) -> int:
        return len(self.rule_table) if self.rule_table is not None else 0

    def group(self, group_id: int) -> MulticastGroup:
        try:
            return self._groups[group_id]
        except KeyError:
            raise LookupError(f"no active group {group_id}") from None

    # -- failure handling --------------------------------------------------------

    def handle_link_failure(self, u: str, v: str) -> list[MulticastGroup]:
        """React to a link failure: fail it in the fabric and replan exactly
        the groups whose current trees rode it.

        The fabric becomes asymmetric, so affected groups transparently fall
        back to §2.3's layer-peeling trees.  Still zero switch updates: the
        static prefix rules keep working; only sources change what they
        emit.  Returns the groups that were replanned.
        """
        self.topo.fail_link(u, v)
        affected = []
        edge = {u, v}
        for group in list(self._groups.values()):
            plan = group._plan
            if plan is None:
                continue  # will replan lazily anyway
            uses_link = any(
                {a, b} == edge for tree in plan.static_trees for a, b in tree.edges
            )
            if uses_link:
                group._plan = None
                _ = group.plan  # replan eagerly so traffic can resume
                affected.append(group)
        return affected
