"""Optimal multicast trees in symmetric Clos fabrics (§2.1, Lemma 2.1).

In a failure-free fabric every edge switch reaches every upper-tier switch
with identical cost, so the upper tiers collapse into logical super-nodes
and the Steiner problem becomes multicast on a tree — solved by attaching
each destination edge switch to the super-node, in ``O(|D|)`` time.

For a two-tier leaf-spine the super-node is any single spine.  For a k-ary
fat-tree the same argument applies recursively: one aggregation switch per
pod and one core switch suffice, which is the paper's announced extension to
deeper fabrics.
"""

from __future__ import annotations

import zlib
from collections.abc import Iterable

from ..steiner import MulticastTree, validate_tree
from ..topology import FatTree, LeafSpine, Topology
from ..topology import addressing as addr


def _spread(source: str, buckets: int) -> int:
    """Deterministic per-source bucket choice (crc32, not the salted builtin
    ``hash``), so concurrent groups spread across equivalent aggs/cores/
    spines instead of funnelling through index 0."""
    if buckets <= 1:
        return 0
    return zlib.crc32(source.encode()) % buckets


class SymmetryError(ValueError):
    """Raised when an optimal-symmetric builder hits a failed link."""


def optimal_symmetric_tree(
    topo: Topology, source: str, destinations: Iterable[str]
) -> MulticastTree:
    """Dispatch to the right constructive builder for ``topo``.

    Only valid on symmetric (failure-free) fabrics: raises
    :class:`SymmetryError` if any link the construction needs is missing.
    """
    dests = [d for d in dict.fromkeys(destinations) if d != source]
    if isinstance(topo, LeafSpine):
        tree = _leafspine_tree(topo, source, dests)
    elif isinstance(topo, FatTree):
        tree = _fattree_tree(topo, source, dests)
    else:
        raise TypeError(f"unsupported topology type: {type(topo).__name__}")
    validate_tree(tree, topo.graph, source, dests)
    return tree


def _require_edge(topo: Topology, u: str, v: str) -> None:
    if not topo.graph.has_edge(u, v):
        raise SymmetryError(
            f"link {u!r} -- {v!r} missing; fabric is asymmetric, "
            "use the layer-peeling builder instead"
        )


def _pick_spine(topo: LeafSpine, leaves: set[str], source: str) -> str:
    """A spine with intact links to all needed leaves, chosen per-source so
    concurrent groups spread over the spine tier."""
    spines = topo.spines
    start = _spread(source, len(spines))
    for offset in range(len(spines)):
        spine = spines[(start + offset) % len(spines)]
        if all(topo.graph.has_edge(spine, leaf) for leaf in leaves):
            return spine
    raise SymmetryError("no spine reaches all destination leaves; asymmetric fabric")


def _leafspine_tree(
    topo: LeafSpine, source: str, dests: list[str]
) -> MulticastTree:
    src_leaf = topo.tor_of(source)
    parent: dict[str, str] = {}
    remote_leaves: set[str] = set()
    for dest in dests:
        leaf = topo.tor_of(dest)
        if leaf == src_leaf:
            parent[dest] = src_leaf
        else:
            remote_leaves.add(leaf)
            parent[dest] = leaf
    if source not in topo.graph:
        raise ValueError(f"unknown source {source!r}")
    parent[src_leaf] = source
    if remote_leaves:
        spine = _pick_spine(topo, remote_leaves | {src_leaf}, source)
        parent[spine] = src_leaf
        for leaf in remote_leaves:
            _require_edge(topo, spine, leaf)
            parent[leaf] = spine
    return MulticastTree(source, parent)


def _fattree_tree(topo: FatTree, source: str, dests: list[str]) -> MulticastTree:
    src = addr.parse(source)
    src_tor = addr.tor_name(src.pod, src.tor)
    parent: dict[str, str] = {src_tor: source}

    # Group destinations by pod and ToR.
    same_tor: list[str] = []
    pod_tors: dict[int, set[str]] = {}
    for dest in dests:
        info = addr.parse(dest)
        tor = addr.tor_name(info.pod, info.tor)
        if tor == src_tor:
            same_tor.append(dest)
        else:
            pod_tors.setdefault(info.pod, set()).add(tor)
        parent[dest] = tor

    remote_pods = [p for p in pod_tors if p != src.pod]
    local_tors = pod_tors.get(src.pod, set())

    # One aggregation group serves the whole tree: ToR -> agg g of the
    # source pod, core (g, j) across pods, agg g down in each pod.  In a
    # symmetric fabric every (g, j) choice is equivalent (Lemma 2.1's
    # super-node), so pick per source to spread concurrent groups.
    half = topo.k // 2
    group = _spread(source, half)
    if local_tors or remote_pods:
        src_agg = addr.agg_name(src.pod, group)
        _require_edge(topo, src_tor, src_agg)
        parent[src_agg] = src_tor
        for tor in sorted(local_tors):
            _require_edge(topo, src_agg, tor)
            parent[tor] = src_agg
        if remote_pods:
            core = addr.core_name(group, _spread(source + "#core", half))
            _require_edge(topo, core, src_agg)
            parent[core] = src_agg
            for pod in sorted(remote_pods):
                agg = addr.agg_name(pod, group)
                _require_edge(topo, core, agg)
                parent[agg] = core
                for tor in sorted(pod_tors[pod]):
                    _require_edge(topo, agg, tor)
                    parent[tor] = agg
    return MulticastTree(source, parent)


def optimal_symmetric_cost(
    topo: Topology, source: str, destinations: Iterable[str]
) -> int:
    """Cost (link count) of the optimal symmetric tree."""
    return optimal_symmetric_tree(topo, source, destinations).cost
