"""Two-stage refinement with programmable cores (§3.3) and the SDN
controller-latency model the paper uses for Orca and PEEL+cores (§3.1, §4).

Flow-setup delay is drawn from ``N(10 ms, 5 ms)`` truncated at zero
(refs [16, 17] in the paper).
"""

from __future__ import annotations

import random
from dataclasses import dataclass


@dataclass
class ControllerModel:
    """Centralized controller whose only observable is its setup latency."""

    mean_s: float = 10e-3
    std_s: float = 5e-3
    rng: random.Random | None = None

    def __post_init__(self) -> None:
        if self.rng is None:
            self.rng = random.Random(0)
        if self.mean_s < 0 or self.std_s < 0:
            raise ValueError("controller delay parameters must be non-negative")

    def setup_delay(self) -> float:
        """One flow-setup latency sample in seconds (never negative)."""
        return max(0.0, self.rng.gauss(self.mean_s, self.std_s))


@dataclass(frozen=True)
class RefinementSchedule:
    """When a collective may switch from static prefixes to the refined tree.

    ``ready_at`` is absolute simulation time; segments injected before it use
    the static per-prefix trees, segments at or after it use the single-copy
    refined tree (the programmable cores replicate).
    """

    ready_at: float

    def mode_at(self, now: float) -> str:
        return "refined" if now >= self.ready_at else "static"


def core_rules_needed(num_destination_pods: int) -> int:
    """Per-group replication rules the refinement installs at the core —
    "typically one rule per destination pod" (§3.3)."""
    return max(0, num_destination_pods)
