"""Multicast vs multipath (§2.3's open question).

A single Steiner tree funnels the whole transfer onto one set of links,
while load balancers want bytes striped across many paths.  This module
explores the reconciliation the paper proposes: build several near-optimal
trees that overlap as little as possible and stripe segments across them.

On a symmetric fabric the trees are exact optima that differ in their
upper-tier choices (different aggregation group / core / spine per tree) —
same cost, disjoint trunks.  On asymmetric fabrics the greedy is re-run
with already-used links de-prioritized.
"""

from __future__ import annotations

from ..steiner import MulticastTree, validate_tree
from ..topology import FatTree, LeafSpine, Topology
from ..topology import addressing as addr
from .layer_peeling import layer_peeling_tree


def diverse_trees(
    topo: Topology, source: str, destinations: list[str], count: int
) -> list[MulticastTree]:
    """Up to ``count`` near-optimal multicast trees with diverse cores.

    Always returns at least one tree; fewer than ``count`` when the fabric
    has less upper-tier diversity than requested.
    """
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    dests = [d for d in dict.fromkeys(destinations) if d != source]
    if not dests:
        return [MulticastTree(source, {})]
    if not topo.is_symmetric:
        return _peeled_diverse(topo, source, dests, count)
    if isinstance(topo, LeafSpine):
        trees = _leafspine_variants(topo, source, dests, count)
    elif isinstance(topo, FatTree):
        trees = _fattree_variants(topo, source, dests, count)
    else:
        raise TypeError(f"unsupported topology: {type(topo).__name__}")
    for tree in trees:
        validate_tree(tree, topo.graph, source, dests)
    return trees


def tree_overlap(trees: list[MulticastTree]) -> float:
    """Fraction of (undirected) links used by more than one tree."""
    seen: dict[frozenset, int] = {}
    for tree in trees:
        for u, v in tree.edges:
            key = frozenset((u, v))
            seen[key] = seen.get(key, 0) + 1
    if not seen:
        return 0.0
    shared = sum(1 for n in seen.values() if n > 1)
    return shared / len(seen)


def _leafspine_variants(
    topo: LeafSpine, source: str, dests: list[str], count: int
) -> list[MulticastTree]:
    src_leaf = topo.tor_of(source)
    remote_leaves = sorted(
        {topo.tor_of(d) for d in dests if topo.tor_of(d) != src_leaf}
    )
    trees = []
    for spine in topo.spines[: max(1, count)]:
        parent: dict[str, str] = {src_leaf: source}
        for dest in dests:
            leaf = topo.tor_of(dest)
            parent[dest] = leaf
        if remote_leaves:
            if not all(topo.graph.has_edge(spine, l) for l in remote_leaves):
                continue
            if not topo.graph.has_edge(spine, src_leaf):
                continue
            parent[spine] = src_leaf
            for leaf in remote_leaves:
                parent[leaf] = spine
        trees.append(MulticastTree(source, parent))
        if len(trees) == count:
            break
    return trees or [MulticastTree(source, {})]


def _fattree_variants(
    topo: FatTree, source: str, dests: list[str], count: int
) -> list[MulticastTree]:
    """Vary the aggregation group (and the core within it) per tree."""
    src = addr.parse(source)
    src_tor = addr.tor_name(src.pod, src.tor)

    same_tor: list[str] = []
    pod_tors: dict[int, set[str]] = {}
    parent_base: dict[str, str] = {}
    for dest in dests:
        info = addr.parse(dest)
        tor = addr.tor_name(info.pod, info.tor)
        parent_base[dest] = tor
        if tor == src_tor:
            same_tor.append(dest)
        else:
            pod_tors.setdefault(info.pod, set()).add(tor)

    half = topo.k // 2
    trees = []
    for variant in range(min(count, half * half)):
        group, core_idx = divmod(variant, half)
        parent = dict(parent_base)
        parent[src_tor] = source
        remote_pods = [p for p in pod_tors if p != src.pod]
        local_tors = pod_tors.get(src.pod, set())
        if local_tors or remote_pods:
            src_agg = addr.agg_name(src.pod, group)
            parent[src_agg] = src_tor
            for tor in sorted(local_tors):
                parent[tor] = src_agg
            if remote_pods:
                core = addr.core_name(group, core_idx)
                parent[core] = src_agg
                for pod in sorted(remote_pods):
                    agg = addr.agg_name(pod, group)
                    parent[agg] = core
                    for tor in sorted(pod_tors[pod]):
                        parent[tor] = agg
        trees.append(MulticastTree(source, parent))
    return trees


def _peeled_diverse(
    topo: Topology, source: str, dests: list[str], count: int
) -> list[MulticastTree]:
    """Asymmetric fabrics: re-run the greedy on a copy with the previous
    tree's switch-to-switch links removed (when connectivity allows)."""
    trees = [layer_peeling_tree(topo, source, dests)]
    scratch = topo.copy()
    for _ in range(count - 1):
        removed = []
        for u, v in trees[-1].edges:
            is_core_link = (
                addr.kind_of(u) is not addr.NodeKind.HOST
                and addr.kind_of(v) is not addr.NodeKind.HOST
            )
            if is_core_link and scratch.graph.has_edge(u, v):
                scratch.graph.remove_edge(u, v)
                removed.append((u, v))
        try:
            tree = layer_peeling_tree(scratch, source, dests)
        except ValueError:
            # Not enough diversity left; restore and stop.
            for u, v in removed:
                scratch.graph.add_edge(u, v, capacity_bps=topo.link_bps)
            break
        trees.append(tree)
        if len(trees) == count:
            break
    return trees
