"""PEEL planner: turn a multicast group into prefix packets and trees.

A :class:`PeelPlan` has two operating modes mirroring §3.2/§3.3:

* **static** — the sender emits one copy of the message per selected cover
  prefix; pre-installed power-of-two rules at every *downward* branch tier
  (§3.2: "the same principles apply to other downward segments") steer and
  replicate it.  On a fat-tree that means cores match a pod-prefix and
  aggregation switches match a ToR-prefix, so a bin-packed job spanning
  aligned pods needs a single packet.  Fragmented or unaligned placements
  need several packets (one per cover prefix) and may over-cover when the
  per-fanout packet budget is bounded.  Zero control-plane latency.
* **refined** — once a (modelled) controller programs the cores with
  per-group rules ("typically one rule per destination pod", §3.3), a
  single copy crosses the core regardless of alignment; this is simply
  multicast on the underlying tree.

The underlying tree is the §2.1 optimal construction on symmetric fabrics
and the §2.3 layer-peeling greedy on asymmetric ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..steiner import MulticastTree
from ..topology import FatTree, LeafSpine, Topology
from ..topology import addressing as addr
from .header import PeelHeader
from .layer_peeling import layer_peeling_tree
from .prefix import Prefix, bounded_cover, exact_cover
from .protection import ProtectionPlan, build_protection
from .symmetric import optimal_symmetric_tree

_EDGE_KINDS = {addr.NodeKind.TOR, addr.NodeKind.LEAF}
_UPPER_KINDS = {addr.NodeKind.AGG, addr.NodeKind.SPINE, addr.NodeKind.CORE}


@dataclass(frozen=True)
class PrefixPacket:
    """One packet class the sender emits in static mode.

    ``pod_prefix`` is the core-tier cover block on fat-trees (``None`` on
    single-tier fabrics such as a leaf-spine, and in asymmetric mode where
    packets are planned per fan-out switch).
    """

    prefix: Prefix
    width: int
    tree: MulticastTree
    covered_edge_switches: tuple[str, ...]
    wasted_edge_switches: tuple[str, ...]  # over-covered; ToRs discard
    pod_prefix: Prefix | None = None
    pods: tuple[int, ...] = ()
    fanout_switch: str | None = None

    @property
    def header(self) -> PeelHeader:
        return PeelHeader(self.prefix, self.width)


@dataclass
class PeelPlan:
    """Everything needed to run one multicast group under PEEL."""

    source: str
    destinations: tuple[str, ...]
    base_tree: MulticastTree
    packets: list[PrefixPacket]
    local_tree: MulticastTree | None  # only when no prefix packet exists
    header_bytes: int
    #: Pre-computed fast-failover backup subtrees (``resilience >= 1`` only).
    protection: ProtectionPlan | None = None

    @property
    def static_trees(self) -> list[MulticastTree]:
        """One distribution tree per copy the sender emits in static mode."""
        trees = [p.tree for p in self.packets]
        if self.local_tree is not None:
            trees.append(self.local_tree)
        return trees

    @property
    def refined_tree(self) -> MulticastTree:
        return self.base_tree

    @property
    def num_prefixes(self) -> int:
        return len(self.packets)

    @property
    def wasted_edge_switches(self) -> set[str]:
        return {t for p in self.packets for t in p.wasted_edge_switches}

    def static_cost(self) -> int:
        """Total link traversals per message byte in static mode."""
        return sum(t.cost for t in self.static_trees)

    def refined_cost(self) -> int:
        return self.base_tree.cost

    def link_loads(self, mode: str = "static") -> dict[tuple[str, str], int]:
        """Copies of the message crossing each directed link."""
        if mode not in ("static", "refined"):
            raise ValueError(f"unknown mode {mode!r}")
        trees = self.static_trees if mode == "static" else [self.base_tree]
        loads: dict[tuple[str, str], int] = {}
        for tree in trees:
            for edge in tree.edges:
                loads[edge] = loads.get(edge, 0) + 1
        return loads


@dataclass
class Peel:
    """PEEL planner bound to one fabric.

    ``max_prefixes_per_fanout`` bounds the ToR-level packet count per pod
    (``None`` = exact cover, no redundant traffic); bounding it trades
    up-funnel copies for over-covered ToRs (§3.4's fragmentation knob).

    ``resilience`` (``F``) switches on proactive protection: every plan
    additionally carries up to ``F`` mutually edge-disjoint backup subtrees
    per protected (switch-to-switch) link of its static trees, ready for
    local fast-failover (see :mod:`repro.core.protection`).
    """

    topo: Topology
    max_prefixes_per_fanout: int | None = None
    resilience: int = 0
    _width: int = field(init=False)
    _pod_width: int = field(init=False)

    def __post_init__(self) -> None:
        if isinstance(self.topo, FatTree):
            half = self.topo.k // 2
            if half & (half - 1):
                raise ValueError("fat-tree k/2 must be a power of two for PEEL")
            self._width = half.bit_length() - 1
            self._pod_width = max((self.topo.k - 1).bit_length(), 1)
        elif isinstance(self.topo, LeafSpine):
            leaves = self.topo.num_leaves
            self._width = max((leaves - 1).bit_length(), 1)
            self._pod_width = 0
        else:
            raise TypeError(f"unsupported topology: {type(self.topo).__name__}")
        if self.max_prefixes_per_fanout is not None and self.max_prefixes_per_fanout < 1:
            raise ValueError("max_prefixes_per_fanout must be >= 1")
        if self.resilience < 0:
            raise ValueError("resilience must be >= 0")

    @property
    def identifier_width(self) -> int:
        return self._width

    @property
    def pod_identifier_width(self) -> int:
        return self._pod_width

    def plan(self, source: str, destinations: list[str]) -> PeelPlan:
        dests = tuple(d for d in dict.fromkeys(destinations) if d != source)
        if self.topo.is_symmetric:
            tree = optimal_symmetric_tree(self.topo, source, dests)
        else:
            tree = layer_peeling_tree(self.topo, source, dests)
        if isinstance(self.topo, FatTree) and self.topo.is_symmetric:
            drafts = self._fattree_hierarchical_drafts(tree, source)
        else:
            drafts = self._per_fanout_drafts(tree, source)
        packets, local = self._finalize(tree, source, drafts)
        header_nbytes = packets[0].header.nbytes if packets else 0
        plan = PeelPlan(
            source=source,
            destinations=dests,
            base_tree=tree,
            packets=packets,
            local_tree=local,
            header_bytes=header_nbytes,
        )
        if self.resilience:
            plan.protection = build_protection(
                self.topo, plan.static_trees, source, self.resilience
            )
        return plan

    # -- shared internals ------------------------------------------------------

    def _edge_switch_id(self, node: str) -> int:
        if isinstance(self.topo, FatTree):
            return self.topo.tor_identifier(node)
        return self.topo.leaf_identifier(node)

    def _existing_edge_switch(self, fanout: str, ident: int) -> str | None:
        """The edge switch named ``ident`` in ``fanout``'s scope, if both it
        and the connecting link exist (a rule port to a failed link carries
        no traffic)."""
        if isinstance(self.topo, FatTree):
            pod = addr.parse(fanout).pod
            if ident >= self.topo.tors_per_pod:
                return None
            name = addr.tor_name(pod, ident)
        else:
            if ident >= self.topo.num_leaves:
                return None
            name = addr.leaf_name(ident)
        return name if self.topo.graph.has_edge(fanout, name) else None

    def _cover(self, ids: set[int]) -> list[Prefix]:
        if self.max_prefixes_per_fanout is None:
            return exact_cover(ids, self._width)
        return bounded_cover(ids, self._width, self.max_prefixes_per_fanout)

    def _finalize(
        self, tree: MulticastTree, source: str, drafts: list[dict]
    ) -> tuple[list[PrefixPacket], MulticastTree | None]:
        local_parent = self._attach_trunk_hosts(tree, drafts)
        packets = [
            PrefixPacket(
                prefix=d["prefix"],
                width=self._width,
                tree=MulticastTree(source, d["parent"]),
                covered_edge_switches=tuple(d["covered"]),
                wasted_edge_switches=tuple(d["wasted"]),
                pod_prefix=d.get("pod_prefix"),
                pods=tuple(d.get("pods", ())),
                fanout_switch=d.get("fanout"),
            )
            for d in drafts
        ]
        local = MulticastTree(source, local_parent) if local_parent else None
        return packets, local

    # -- symmetric fat-tree: hierarchical (pod x ToR) covers --------------------

    def _fattree_hierarchical_drafts(
        self, tree: MulticastTree, source: str
    ) -> list[dict]:
        assert isinstance(self.topo, FatTree)
        src = addr.parse(source)
        src_tor = addr.tor_name(src.pod, src.tor)

        # Needed ToR ids per pod, read off the optimal tree's agg fan-outs.
        needed: dict[int, dict[int, str]] = {}
        for node in tree.nodes:
            if addr.kind_of(node) is not addr.NodeKind.AGG:
                continue
            pod = addr.parse(node).pod
            for child in tree.children(node):
                if addr.kind_of(child) is addr.NodeKind.TOR:
                    needed.setdefault(pod, {})[self._edge_switch_id(child)] = child

        # The source's own ToR sits on the up-funnel and already sees every
        # packet, so its id may be folded into the source pod's needed set
        # for free.  Do so when it lets the source pod share a ToR prefix
        # (hence a packet) with other pods; both variants are exact covers.
        variants = [needed]
        if src.pod in needed and src.tor not in needed[src.pod]:
            folded = {pod: dict(by_id) for pod, by_id in needed.items()}
            folded[src.pod][src.tor] = src_tor
            variants.append(folded)

        best_drafts: list[dict] | None = None
        for variant in variants:
            drafts = self._drafts_for_needed(tree, source, src_tor, src.pod, variant)
            if best_drafts is None or len(drafts) < len(best_drafts):
                best_drafts = drafts
        assert best_drafts is not None
        return best_drafts

    def _tree_upper_nodes(
        self, tree: MulticastTree
    ) -> tuple[dict[int, str], str | None]:
        """The agg switch the base tree uses in each pod, plus its core."""
        agg_by_pod: dict[int, str] = {}
        core = None
        for node in tree.nodes:
            kind = addr.kind_of(node)
            if kind is addr.NodeKind.AGG:
                agg_by_pod[addr.parse(node).pod] = node
            elif kind is addr.NodeKind.CORE:
                core = node
        return agg_by_pod, core

    def _drafts_for_needed(
        self,
        tree: MulticastTree,
        source: str,
        src_tor: str,
        src_pod: int,
        needed: dict[int, dict[int, str]],
    ) -> list[dict]:
        # Per-pod ToR covers, then group pods sharing a ToR prefix and cover
        # the pod sets with power-of-two pod blocks (core-tier rules).
        prefix_pods: dict[Prefix, list[int]] = {}
        pod_waste: dict[tuple[int, Prefix], list[int]] = {}
        for pod, by_id in sorted(needed.items()):
            for prefix in self._cover(set(by_id)):
                prefix_pods.setdefault(prefix, []).append(pod)
                waste_ids = [
                    i for i in prefix.block(self._width) if i not in by_id
                ]
                if waste_ids:
                    pod_waste[pod, prefix] = waste_ids

        drafts: list[dict] = []
        for tor_prefix in sorted(prefix_pods):
            pods = set(prefix_pods[tor_prefix])
            for pod_prefix in exact_cover(pods, self._pod_width):
                block_pods = [
                    p for p in pod_prefix.block(self._pod_width) if p in pods
                ]
                drafts.append(
                    self._hierarchical_draft(
                        tree, source, src_tor, src_pod,
                        tor_prefix, pod_prefix, block_pods, needed, pod_waste,
                    )
                )
        return drafts

    def _hierarchical_draft(
        self,
        tree: MulticastTree,
        source: str,
        src_tor: str,
        src_pod: int,
        tor_prefix: Prefix,
        pod_prefix: Prefix,
        block_pods: list[int],
        needed: dict[int, dict[int, str]],
        pod_waste: dict[tuple[int, Prefix], list[int]],
    ) -> dict:
        # Ride exactly the agg group / core the base tree chose (the
        # symmetric builder spreads those per source).
        agg_by_pod, core = self._tree_upper_nodes(tree)
        src_agg = agg_by_pod.get(src_pod)
        if src_agg is None:
            # Source pod has no fan-out of its own: reuse the tree's agg
            # group for the trunk hop toward the core.
            group = addr.parse(next(iter(agg_by_pod.values()))).index
            src_agg = addr.agg_name(src_pod, group)
        parent: dict[str, str] = {src_tor: source, src_agg: src_tor}
        covered: list[str] = []
        wasted: list[str] = []

        remote = [p for p in block_pods if p != src_pod]
        if remote:
            assert core is not None, "multi-pod group without a core in tree"
            parent[core] = src_agg
            for pod in remote:
                parent[agg_by_pod[pod]] = core

        for pod in block_pods:
            agg = src_agg if pod == src_pod else agg_by_pod[pod]
            by_id = needed[pod]
            for ident in sorted(tor_prefix.block(self._width)):
                tor = by_id.get(ident)
                if tor == src_tor:
                    # Already on the trunk (the fold-in variant); the agg's
                    # duplicate copy back to it is discarded, no new edge.
                    continue
                if tor is not None:
                    covered.append(tor)
                    parent[tor] = agg
                    for host in tree.children(tor):
                        if addr.kind_of(host) is addr.NodeKind.HOST:
                            parent[host] = tor
                elif ident in pod_waste.get((pod, tor_prefix), ()):
                    extra = self._existing_edge_switch(agg, ident)
                    # The source's own ToR sits on the trunk; a duplicate
                    # copy to it is physically possible but structurally a
                    # parent conflict, so we skip that one edge.
                    if extra is not None and extra not in parent:
                        wasted.append(extra)
                        parent[extra] = agg
        return {
            "prefix": tor_prefix,
            "pod_prefix": pod_prefix,
            "pods": block_pods,
            "parent": parent,
            "covered": covered,
            "wasted": wasted,
        }

    # -- generic decomposition (leaf-spine, asymmetric fabrics) -----------------

    def _per_fanout_drafts(self, tree: MulticastTree, source: str) -> list[dict]:
        """One packet per (fan-out switch, ToR-prefix).

        Used whenever hierarchical core rules do not apply: leaf-spine
        fabrics (one downward tier) and asymmetric fabrics, where the
        layer-peeling tree dictates structure.
        """
        drafts: list[dict] = []
        for node in sorted(tree.nodes):
            if addr.kind_of(node) not in _UPPER_KINDS:
                continue
            edge_children = [
                c for c in tree.children(node) if addr.kind_of(c) in _EDGE_KINDS
            ]
            if not edge_children:
                continue
            by_id = {self._edge_switch_id(c): c for c in edge_children}
            for prefix in self._cover(set(by_id)):
                covered: list[str] = []
                wasted: list[str] = []
                parent: dict[str, str] = {}
                trunk = tree.path_from_root(node)
                for par, child in zip(trunk, trunk[1:]):
                    parent[child] = par
                for ident in sorted(prefix.block(self._width)):
                    if ident in by_id:
                        edge_sw = by_id[ident]
                        covered.append(edge_sw)
                        parent[edge_sw] = node
                        for host in tree.children(edge_sw):
                            if addr.kind_of(host) is addr.NodeKind.HOST:
                                parent[host] = edge_sw
                    else:
                        extra = self._existing_edge_switch(node, ident)
                        if extra is not None and extra not in parent:
                            wasted.append(extra)
                            parent[extra] = node
                drafts.append(
                    {
                        "fanout": node,
                        "prefix": prefix,
                        "parent": parent,
                        "covered": covered,
                        "wasted": wasted,
                    }
                )
        return drafts

    def _attach_trunk_hosts(
        self, tree: MulticastTree, drafts: list[dict]
    ) -> dict[str, str]:
        """Attach hosts not yet served by any packet; returns a standalone
        local parent map only when no packet can carry them.

        Hosts hanging off edge switches on a packet's trunk (e.g. receivers
        under the source's own ToR) ride whichever packet already traverses
        that switch — no extra copy is emitted for them.
        """
        served: set[str] = set()
        for d in drafts:
            for edge_sw in d["covered"]:
                served.update(
                    h
                    for h in tree.children(edge_sw)
                    if addr.kind_of(h) is addr.NodeKind.HOST
                )
        local_parent: dict[str, str] = {}
        for node in sorted(tree.nodes):
            if addr.kind_of(node) not in _EDGE_KINDS:
                continue
            hosts = [
                c
                for c in tree.children(node)
                if addr.kind_of(c) is addr.NodeKind.HOST and c not in served
            ]
            if not hosts:
                continue
            # A wasted ToR discards the packet, so it cannot carry hosts;
            # the switch must sit on the trunk or be genuinely covered.
            carrier = next(
                (
                    d
                    for d in drafts
                    if node in d["parent"] and node not in d["wasted"]
                ),
                None,
            )
            if carrier is not None:
                for host in hosts:
                    carrier["parent"][host] = node
                continue
            trunk = tree.path_from_root(node)
            for par, child in zip(trunk, trunk[1:]):
                local_parent.setdefault(child, par)
            for host in hosts:
                local_parent[host] = node
        return local_parent
