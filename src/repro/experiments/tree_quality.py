"""Tree quality: layer-peeling greedy vs the Steiner optimum.

The paper claims the greedy stays near-optimal (within 1.4% of the Steiner
optimum in their fat-tree prototype).  We measure the cost ratio on
randomized asymmetric fabrics against the exact Dreyfus-Wagner oracle
(small groups) and the metric-closure 2-approximation (larger ones).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..core import layer_peeling_tree
from ..steiner import exact_steiner_cost, metric_closure_tree
from ..topology import LeafSpine, asymmetric


@dataclass(frozen=True)
class QualityRow:
    failure_fraction: float
    trials: int
    mean_ratio_vs_exact: float
    worst_ratio_vs_exact: float
    mean_ratio_vs_metric_closure: float


def run(
    failure_fractions: tuple[float, ...] = (0.05, 0.1, 0.2),
    trials: int = 10,
    num_dests: int = 5,
    seed: int = 0,
) -> list[QualityRow]:
    rng = random.Random(seed)
    rows = []
    for fraction in failure_fractions:
        exact_ratios = []
        mc_ratios = []
        for trial in range(trials):
            topo, _ = asymmetric(
                LeafSpine(4, 8, 2), fraction, seed=rng.randrange(2**31)
            )
            hosts = topo.hosts
            src = hosts[rng.randrange(len(hosts))]
            dests = rng.sample([h for h in hosts if h != src], num_dests)
            greedy = layer_peeling_tree(topo, src, dests).cost
            exact = exact_steiner_cost(topo.graph, src, dests)
            approx = metric_closure_tree(topo.graph, src, dests).cost
            exact_ratios.append(greedy / exact)
            mc_ratios.append(greedy / approx)
        rows.append(
            QualityRow(
                failure_fraction=fraction,
                trials=trials,
                mean_ratio_vs_exact=sum(exact_ratios) / trials,
                worst_ratio_vs_exact=max(exact_ratios),
                mean_ratio_vs_metric_closure=sum(mc_ratios) / trials,
            )
        )
    return rows


def format_table(rows: list[QualityRow]) -> str:
    header = (
        f"{'fail %':>8}{'trials':>8}{'mean vs OPT':>13}"
        f"{'worst vs OPT':>14}{'mean vs 2-apx':>15}"
    )
    lines = [header, "-" * len(header)]
    for r in rows:
        lines.append(
            f"{r.failure_fraction:>8.0%}{r.trials:>8}"
            f"{r.mean_ratio_vs_exact:>13.3f}{r.worst_ratio_vs_exact:>14.3f}"
            f"{r.mean_ratio_vs_metric_closure:>15.3f}"
        )
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover
    print(format_table(run()))
