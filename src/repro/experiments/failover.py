"""Fig 7 extension: proactive fast-failover vs reactive re-peel.

The golden fault scenario (a loaded spine link cut mid-collective, inside
the 100 µs detection window) is run at each protection level F.  F = 0 is
the paper's reactive story — wait out detection, re-peel, re-multicast —
while F >= 1 pre-installs edge-disjoint backup subtrees and flips to them
locally at the cut event.  The sweep reports the CCT each recovery mode
pays next to its switch-state price: backup fast-failover TCAM entries
against the paper's per-switch static-rule budget (the k−1 bound).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..api import run as run_scenario
from .parallel import ProgressFn, SweepPoint, run_sweep

DEFAULT_PROTECTION_LEVELS = (0, 1, 2)


@dataclass(frozen=True)
class FailoverRow:
    """One protection level on the golden fault scenario."""

    protection: int
    cct_s: float
    repeels: int
    failovers: int
    backup_tcam_entries: int
    backup_tcam_peak_per_switch: int
    static_rule_budget: int

    @property
    def recovery(self) -> str:
        if self.failovers:
            return "local failover"
        if self.repeels:
            return "reactive re-peel"
        return "none needed"


def _point(protection: int) -> FailoverRow:
    """The golden fault scenario at one protection level.

    Same workload, fabric, cut link and cut time at every level — only the
    recovery machinery differs, so CCT deltas are pure recovery latency.
    """
    from .scenarios import protected_fault_scenario

    spec, _cuts = protected_fault_scenario(protection)
    result = run_scenario(spec)
    return FailoverRow(
        protection=protection,
        cct_s=result.stats.mean_s,
        repeels=len(result.repeels),
        failovers=len(result.failovers),
        backup_tcam_entries=result.backup_tcam_entries,
        backup_tcam_peak_per_switch=result.backup_tcam_peak_per_switch,
        static_rule_budget=result.static_rule_budget,
    )


def grid(
    protection_levels: tuple[int, ...] = DEFAULT_PROTECTION_LEVELS,
) -> list[SweepPoint]:
    return [
        SweepPoint(
            _point,
            dict(protection=protection),
            label=f"failover F={protection}",
        )
        for protection in protection_levels
    ]


def run(
    protection_levels: tuple[int, ...] = DEFAULT_PROTECTION_LEVELS,
    jobs: int | None = 1,
    progress: ProgressFn | None = None,
) -> list[FailoverRow]:
    return run_sweep(grid(protection_levels), jobs=jobs, progress=progress)


def format_table(rows: list[FailoverRow]) -> str:
    """Protection level vs recovery latency and switch-state price."""
    lines = [
        f"{'F':>3} {'cct_us':>10} {'recovery':>16} {'repeels':>8} "
        f"{'failovers':>10} {'ff_entries':>11} {'peak/switch':>12} "
        f"{'budget/switch':>14}",
    ]
    for row in rows:
        lines.append(
            f"{row.protection:>3} {row.cct_s * 1e6:>10.2f} {row.recovery:>16} "
            f"{row.repeels:>8} {row.failovers:>10} "
            f"{row.backup_tcam_entries:>11} "
            f"{row.backup_tcam_peak_per_switch:>12} "
            f"{row.static_rule_budget:>14}"
        )
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover
    print(format_table(run()))
