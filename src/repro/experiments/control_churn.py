"""Control-plane churn campaign: membership elasticity + congestion replans.

A multi-tenant serving campaign driven *through the control-plane service*
(`repro.control`): two tenants share four long-lived groups on a two-spine
leaf-spine fabric, submit a stream of collectives against them, and churn
membership the whole time — joins graft mid-flight receivers onto the
installed peel trees (with segment backfill), leaves prune them.  The
sweep runs the identical campaign with the congestion replanner off and
on: with every group's static trees initially sharing spine links, the
replanner's windowed utilization/ECN watch moves running groups onto cold
spines, which is where the p99 CCT delta comes from.

Rows carry a blake2b digest over the exact obs metrics+trace bytes; the
parallel-sweep test compares serial vs ``jobs=4`` digests byte-for-byte
(the campaign is a pure function of ``(replan, num_jobs, seed)``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from hashlib import blake2b

from ..control import CongestionReplanner, ControlPlane, LocalClient
from ..obs import Observability
from ..serve import LinkLoadAdmission
from ..sim import SimConfig
from ..topology import LeafSpine
from .parallel import ProgressFn, SweepPoint, run_sweep

DEFAULT_NUM_JOBS = 60
DEFAULT_SEED = 11

#: Tenant workload shapes: (message_bytes, mean interarrival seconds).
#: Messages are sized so transfers span many replanner scan windows —
#: sub-millisecond collectives finish before congestion is even measurable,
#: leaving the replanner nothing to improve.
TENANTS = {
    "train": (4 << 20, 120e-6),
    "infer": (1 << 19, 60e-6),
}

#: One membership op (join or leave alternating per group) every N submits.
CHURN_EVERY = 4


@dataclass(frozen=True)
class ControlChurnRow:
    """One (replan on/off) campaign outcome."""

    replan: bool
    num_jobs: int
    completed: int
    rejected: int
    mean_cct_s: float
    p50_cct_s: float
    p99_cct_s: float
    joins: int
    leaves: int
    grafts: int
    prunes: int
    full_repeels: int
    graft_rejects: int
    replans: int
    cache_invalidations: int
    violations: int
    #: blake2b over the exact metrics+trace export bytes.
    digest: str


def _build_campaign(num_jobs: int, seed: int, gap_scale: float = 1.0):
    """The deterministic op script: groups, submits, joins, leaves.

    The generator tracks each group's membership itself so every join
    targets a current non-member and every leave a removable member —
    no-op churn would understate the elasticity being measured.

    ``gap_scale`` stretches every interarrival gap.  At 1.0 the offered
    load is ~3x fabric capacity — deliberately supercritical so the
    congestion replanner has a tail to cut, but the backlog (and
    simulation cost) then grows superlinearly in ``num_jobs``.  The
    replanner-*off* baseline keeps static trees sharing spine links, so
    long campaigns must pace until even a fully shared spine stays below
    line rate: 8.0 puts the worst-case shared load at ~0.87 (thousands
    of jobs run in linear time there); 4.0 is only subcritical per
    uplink and still melts shared spines.
    """
    topo = LeafSpine(2, 4, 2)
    hosts = topo.hosts
    rng = random.Random(f"control-churn:{seed}")
    groups = [
        ("train", hosts[0], {hosts[1], hosts[2], hosts[4]}),
        ("train", hosts[3], {hosts[2], hosts[5], hosts[6]}),
        ("infer", hosts[7], {hosts[0], hosts[5]}),
        ("infer", hosts[4], {hosts[1], hosts[6], hosts[7]}),
    ]
    ops = []
    members = {gid: set(m) for gid, (_, _, m) in enumerate(groups)}
    sources = {gid: src for gid, (_, src, _) in enumerate(groups)}
    clocks = dict.fromkeys(TENANTS, 0.0)
    for index in range(num_jobs):
        gid = index % len(groups)
        tenant = groups[gid][0]
        message_bytes, mean_gap = TENANTS[tenant]
        clocks[tenant] += rng.expovariate(1.0 / (mean_gap * gap_scale))
        at = clocks[tenant]
        ops.append(("submit", gid, message_bytes, at))
        if index % CHURN_EVERY != CHURN_EVERY - 1:
            continue
        churn_at = at + rng.uniform(10e-6, 80e-6)
        candidates = sorted(set(hosts) - members[gid] - {sources[gid]})
        if (index // CHURN_EVERY) % 2 == 0 and candidates:
            host = rng.choice(candidates)
            members[gid].add(host)
            ops.append(("join", gid, host, churn_at))
        elif len(members[gid]) > 2:
            host = rng.choice(sorted(members[gid]))
            members[gid].discard(host)
            ops.append(("leave", gid, host, churn_at))
    return topo, groups, ops


def _point(
    replan: bool,
    num_jobs: int,
    seed: int,
    admit_mb: int | None = None,
    gap_scale: float = 1.0,
) -> ControlChurnRow:
    """Run one full campaign through the service (module-level and pure so
    the process-pool sweep can pickle it and digests stay byte-stable).

    ``admit_mb`` caps outstanding admitted bytes per link
    (:class:`LinkLoadAdmission`) — the service's admission gate, traded
    tail latency (head-of-line queueing) for bounded fabric occupancy.
    ``gap_scale`` paces the arrival clocks (see :func:`_build_campaign`);
    large campaigns should pace to a subcritical load.
    """
    topo, groups, ops = _build_campaign(num_jobs, seed, gap_scale)
    obs = Observability(sample_interval_s=100e-6)
    replanner = CongestionReplanner() if replan else None
    admission = (
        LinkLoadAdmission(admit_mb << 20) if admit_mb is not None else None
    )
    control = ControlPlane(
        topo,
        "peel",
        SimConfig(segment_bytes=65536, seed=seed),
        admission=admission,
        check_invariants=True,
        obs=obs,
        replanner=replanner,
    )
    client = LocalClient(control)
    gids = [
        client.create_group(tenant, source, members)
        for tenant, source, members in groups
    ]
    for op in ops:
        if op[0] == "submit":
            _, gid, message_bytes, at = op
            client.submit(gids[gid], message_bytes, at_s=at)
        elif op[0] == "join":
            _, gid, host, at = op
            client.join(gids[gid], host, at_s=at)
        else:
            _, gid, host, at = op
            client.leave(gids[gid], host, at_s=at)
    client.run()
    violations = control.finalize_checks()
    report = control.report()
    counters = control.counters
    digest = blake2b(digest_size=16)
    digest.update(obs.metrics_json().encode("utf-8"))
    digest.update(obs.trace_json().encode("utf-8"))
    cache = control.env.plan_cache
    return ControlChurnRow(
        replan=replan,
        num_jobs=num_jobs,
        completed=report.total.completed,
        rejected=report.total.rejected,
        mean_cct_s=report.total.cct.mean_s,
        p50_cct_s=report.total.cct.p50_s,
        p99_cct_s=report.total.cct.p99_s,
        joins=counters["joins"],
        leaves=counters["leaves"],
        grafts=counters["grafts"],
        prunes=counters["prunes"],
        full_repeels=counters["full_repeels"],
        graft_rejects=counters["graft_rejects"],
        replans=replanner.replans if replanner is not None else 0,
        cache_invalidations=cache.invalidations if cache is not None else 0,
        violations=len(violations),
        digest=digest.hexdigest(),
    )


def grid(
    num_jobs: int = DEFAULT_NUM_JOBS,
    seed: int = DEFAULT_SEED,
    replan_levels: tuple[bool, ...] = (False, True),
    admit_mb: int | None = None,
    gap_scale: float = 1.0,
) -> list[SweepPoint]:
    return [
        SweepPoint(
            _point,
            dict(replan=replan, num_jobs=num_jobs, seed=seed,
                 admit_mb=admit_mb, gap_scale=gap_scale),
            label=f"control replan={'on' if replan else 'off'}",
        )
        for replan in replan_levels
    ]


def run(
    num_jobs: int = DEFAULT_NUM_JOBS,
    seed: int = DEFAULT_SEED,
    jobs: int | None = 1,
    progress: ProgressFn | None = None,
    admit_mb: int | None = None,
    gap_scale: float = 1.0,
) -> list[ControlChurnRow]:
    return run_sweep(
        grid(num_jobs, seed, admit_mb=admit_mb, gap_scale=gap_scale),
        jobs=jobs,
        progress=progress,
    )


def format_table(rows: list[ControlChurnRow]) -> str:
    """Replanner off vs on: tail CCT next to churn/replan accounting."""
    lines = [
        f"{'replan':>7} {'jobs':>5} {'done':>5} {'p50_us':>8} {'p99_us':>8} "
        f"{'joins':>6} {'leaves':>7} {'grafts':>7} {'prunes':>7} "
        f"{'repeels':>8} {'replans':>8} {'viol':>5}",
    ]
    for row in rows:
        lines.append(
            f"{'on' if row.replan else 'off':>7} {row.num_jobs:>5} "
            f"{row.completed:>5} {row.p50_cct_s * 1e6:>8.1f} "
            f"{row.p99_cct_s * 1e6:>8.1f} {row.joins:>6} {row.leaves:>7} "
            f"{row.grafts:>7} {row.prunes:>7} {row.full_repeels:>8} "
            f"{row.replans:>8} {row.violations:>5}"
        )
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover
    print(format_table(run()))
