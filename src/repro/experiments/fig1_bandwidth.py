"""Figure 1: unicast Ring/Tree vs multicast-optimal bandwidth.

The paper's example: a two-tier leaf-spine with 2 spines, 2 leaves and 4
GPUs per leaf.  Logical rings and binary trees schedule unicasts but do not
reduce total bytes; they traverse core links up to ~80% more often than the
multicast optimum.  This module recomputes those link loads analytically.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..collectives import locality_key
from ..core import optimal_symmetric_tree
from ..metrics import BandwidthSummary, chain_link_loads, summarize_loads, tree_link_loads
from ..sim import UnicastRouter
from ..topology import LeafSpine
from .parallel import ProgressFn, SweepPoint, run_sweep

SCHEMES = ("ring", "tree", "optimal")


@dataclass(frozen=True)
class Fig1Row:
    scheme: str
    total_traversals: int
    core_traversals: int
    overshoot_vs_optimal: float  # fraction of extra total bytes, 0 == optimal


def fig1_fabric() -> LeafSpine:
    return LeafSpine(2, 2, 4)


def _binary_tree_loads(topo: LeafSpine, order: list[str], router: UnicastRouter):
    loads: dict[tuple[str, str], int] = {}
    for parent in range(len(order)):
        for child in (2 * parent + 1, 2 * parent + 2):
            if child >= len(order):
                continue
            path = router.path(order[parent], order[child])
            for edge in zip(path, path[1:]):
                loads[edge] = loads.get(edge, 0) + 1
    return loads


def _point(scheme: str) -> BandwidthSummary:
    """Link-load summary for one scheme on the canonical fig1 fabric."""
    topo = fig1_fabric()
    hosts = sorted(topo.hosts, key=locality_key)
    src, dests = hosts[0], hosts[1:]
    if scheme == "optimal":
        return summarize_loads(
            tree_link_loads([optimal_symmetric_tree(topo, src, dests)])
        )
    router = UnicastRouter(topo)
    if scheme == "ring":
        return summarize_loads(chain_link_loads(topo, hosts, router))
    if scheme == "tree":
        return summarize_loads(_binary_tree_loads(topo, hosts, router))
    raise ValueError(f"unknown fig1 scheme: {scheme!r}")


def grid() -> list[SweepPoint]:
    return [
        SweepPoint(_point, dict(scheme=scheme), label=f"fig1 scheme={scheme}")
        for scheme in SCHEMES
    ]


def run(
    topo: LeafSpine | None = None,
    jobs: int | None = 1,
    progress: ProgressFn | None = None,
) -> list[Fig1Row]:
    if topo is not None:
        # Non-canonical fabric: compute in-process (the picklable grid is
        # fixed to the paper's fig1 fabric).
        hosts = sorted(topo.hosts, key=locality_key)
        src, dests = hosts[0], hosts[1:]
        router = UnicastRouter(topo)
        summaries = {
            "optimal": summarize_loads(
                tree_link_loads([optimal_symmetric_tree(topo, src, dests)])
            ),
            "ring": summarize_loads(chain_link_loads(topo, hosts, router)),
            "tree": summarize_loads(_binary_tree_loads(topo, hosts, router)),
        }
    else:
        results = run_sweep(grid(), jobs=jobs, progress=progress)
        summaries = dict(zip(SCHEMES, results))

    optimal = summaries["optimal"]

    def row(name: str) -> Fig1Row:
        summary = summaries[name]
        overshoot = summary.total_traversals / optimal.total_traversals - 1
        return Fig1Row(
            name, summary.total_traversals, summary.core_traversals, overshoot
        )

    return [row("ring"), row("tree"), row("optimal")]


def format_table(rows: list[Fig1Row]) -> str:
    header = f"{'scheme':<10}{'total':>8}{'core':>8}{'overshoot':>11}"
    lines = [header, "-" * len(header)]
    for r in rows:
        lines.append(
            f"{r.scheme:<10}{r.total_traversals:>8}{r.core_traversals:>8}"
            f"{r.overshoot_vs_optimal:>10.0%}"
        )
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover
    print(format_table(run()))
