"""Experiment reproductions: one module per paper figure/table.

Each module exposes ``run(...) -> rows`` with quick defaults (suitable for
CI and pytest-benchmark) and a ``__main__`` entry printing the table; pass
larger parameters for paper-scale sweeps.  See DESIGN.md for the
experiment-to-module index and EXPERIMENTS.md for measured results.
"""

from .common import CctRow, format_cct_table, mean_ratio, rows_for
from .parallel import (
    ShardSpeedup,
    SweepPoint,
    flatten,
    resolve_jobs,
    run_scenario_sharded,
    run_sweep,
    shard_speedup,
    stderr_progress,
)
from .runner import ScenarioResult, run_broadcast_scenario, segment_bytes_for

__all__ = [
    "CctRow",
    "format_cct_table",
    "mean_ratio",
    "rows_for",
    "ScenarioResult",
    "run_broadcast_scenario",
    "segment_bytes_for",
    "ShardSpeedup",
    "SweepPoint",
    "flatten",
    "resolve_jobs",
    "run_scenario_sharded",
    "run_sweep",
    "shard_speedup",
    "stderr_progress",
]
