"""Figure 6: scale independence — CCT vs Broadcast scale at fixed 64 MB.

The paper varies the group from 32 to 1024 GPUs on the 8-ary fat-tree and
reports PEEL below Ring/Tree/Orca across the whole range (at 256 GPUs:
5x vs Ring, 13x vs Tree, 2.5x vs Orca in mean CCT).
"""

from __future__ import annotations

from ..api import ScenarioSpec
from ..api import run as run_scenario
from ..workloads import generate_jobs
from .common import MB, CctRow, paper_fattree, sim_config
from .parallel import ProgressFn, SweepPoint, run_sweep

DEFAULT_SCALES = (32, 128, 256, 1024)
DEFAULT_SCHEMES = ("ring", "tree", "optimal", "orca", "peel", "peel+cores")


def _point(
    scale: int,
    scheme: str,
    message_mb: int,
    num_jobs: int,
    offered_load: float,
    seed: int,
    check_invariants: bool,
) -> CctRow:
    """One (group scale, scheme) grid point on a fresh fabric."""
    topo = paper_fattree()
    msg = message_mb * MB
    jobs = generate_jobs(
        topo, num_jobs, scale, msg, offered_load=offered_load,
        gpus_per_host=1, seed=seed,
    )
    result = run_scenario(
        ScenarioSpec(
            topology=topo, scheme=scheme, jobs=tuple(jobs),
            config=sim_config(msg), check_invariants=check_invariants,
        )
    )
    return CctRow(scheme, scale, result.stats.mean_s, result.stats.p99_s)


def grid(
    scales: tuple[int, ...] = DEFAULT_SCALES,
    schemes: tuple[str, ...] = DEFAULT_SCHEMES,
    message_mb: int = 64,
    num_jobs: int = 12,
    offered_load: float = 0.3,
    seed: int = 7,
    check_invariants: bool = False,
) -> list[SweepPoint]:
    return [
        SweepPoint(
            _point,
            dict(
                scale=scale, scheme=scheme, message_mb=message_mb,
                num_jobs=num_jobs, offered_load=offered_load, seed=seed,
                check_invariants=check_invariants,
            ),
            label=f"fig6 scale={scale} scheme={scheme}",
        )
        for scale in scales
        for scheme in schemes
    ]


def run(
    scales: tuple[int, ...] = DEFAULT_SCALES,
    schemes: tuple[str, ...] = DEFAULT_SCHEMES,
    message_mb: int = 64,
    num_jobs: int = 12,
    offered_load: float = 0.3,
    seed: int = 7,
    check_invariants: bool = False,
    jobs: int | None = 1,
    progress: ProgressFn | None = None,
) -> list[CctRow]:
    return run_sweep(
        grid(
            scales, schemes, message_mb, num_jobs, offered_load, seed,
            check_invariants,
        ),
        jobs=jobs,
        progress=progress,
    )


if __name__ == "__main__":  # pragma: no cover
    from .common import format_cct_table

    print(format_cct_table(run(), "GPUs"))
