"""Figure 6: scale independence — CCT vs Broadcast scale at fixed 64 MB.

The paper varies the group from 32 to 1024 GPUs on the 8-ary fat-tree and
reports PEEL below Ring/Tree/Orca across the whole range (at 256 GPUs:
5x vs Ring, 13x vs Tree, 2.5x vs Orca in mean CCT).
"""

from __future__ import annotations

from ..workloads import generate_jobs
from .common import MB, CctRow, paper_fattree, sim_config
from .runner import run_broadcast_scenario

DEFAULT_SCALES = (32, 128, 256, 1024)
DEFAULT_SCHEMES = ("ring", "tree", "optimal", "orca", "peel", "peel+cores")


def run(
    scales: tuple[int, ...] = DEFAULT_SCALES,
    schemes: tuple[str, ...] = DEFAULT_SCHEMES,
    message_mb: int = 64,
    num_jobs: int = 12,
    offered_load: float = 0.3,
    seed: int = 7,
    check_invariants: bool = False,
) -> list[CctRow]:
    topo = paper_fattree()
    msg = message_mb * MB
    cfg = sim_config(msg)
    rows: list[CctRow] = []
    for scale in scales:
        jobs = generate_jobs(
            topo, num_jobs, scale, msg, offered_load=offered_load,
            gpus_per_host=1, seed=seed,
        )
        for scheme in schemes:
            result = run_broadcast_scenario(
                topo, scheme, jobs, cfg, check_invariants=check_invariants
            )
            rows.append(CctRow(scheme, scale, result.stats.mean_s, result.stats.p99_s))
    return rows


if __name__ == "__main__":  # pragma: no cover
    from .common import format_cct_table

    print(format_cct_table(run(), "GPUs"))
