"""Figure 3 frontier: header bytes vs switch state across multicast schemes.

The paper's Figure 3 argues multicast dataplanes trade two scarce
resources against each other: *packet header bytes* (source-routed
schemes — Elmo bitmaps, Bert label stacks, Bloom filters — carry the tree
in every packet) and *per-group switch state* (IP multicast and Orca
install TCAM entries per group; PEEL deploys a fixed prefix-rule budget
once).  This experiment measures both axes from actual simulated runs:
every scheme broadcasts the same shaped groups on the same fat-tree, and
each point reports the total header overhead the fabric carried
(``ScenarioResult.header_overhead_bytes`` — headers are charged per
segment, so retransmissions pay too) against the peak per-switch entry
count the scheme needed (``per_group_tcam_peak``, plus PEEL's static
prefix budget so deploy-once state is visible on the same axis).

Group shape is swept on two dimensions: ``size`` (hosts per group) and
``fanout`` (racks the group spans) — Elmo's bitmap cost grows with the
number of forwarding switches, Bert's label stack with branching, RSBF's
Bloom filter with tree edges, while PEEL and IP multicast pay nothing in
headers regardless of shape.  Each point runs two pod-local jobs in
distinct pods so the scenario is shardable; pass ``shards=2`` and the
rows are byte-identical to the serial sweep.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..api import ScenarioSpec
from ..api import run as run_scenario
from ..collectives import Gpu, Group, resolve_scheme
from ..core.peel import Peel
from ..topology import FatTree
from ..workloads import CollectiveJob
from .common import sim_config
from .parallel import ProgressFn, SweepPoint, run_sweep

KB = 1024

DEFAULT_SIZES = (2, 4, 8)
DEFAULT_FANOUTS = (1, 2, 4)
DEFAULT_SCHEMES = ("peel", "rsbf", "lipsin", "ip-multicast", "elmo", "bert")
#: The sweep fabric: 8-ary fat-tree, 2 hosts/ToR (light enough that 64 KB
#: messages never cross the ECN marking ramp, which would make sharded
#: runs refuse — see the differential battery's workload choices).
FABRIC_K = 8
FABRIC_HOSTS_PER_TOR = 2


@dataclass(frozen=True)
class FrontierRow:
    """One (scheme, group shape) point of the frontier."""

    scheme: str
    size: int  # hosts per group (source included)
    fanout: int  # racks the group spans
    header_bytes: int  # total header overhead carried by the fabric
    switch_entries: int  # peak per-switch entries (static budget included)
    mean_cct_ms: float


def _frontier_fabric() -> FatTree:
    return FatTree(FABRIC_K, hosts_per_tor=FABRIC_HOSTS_PER_TOR)


def shaped_group(topo: FatTree, pod: int, size: int, fanout: int) -> Group:
    """A ``size``-host group spanning exactly ``fanout`` racks of one pod.

    Placement is deterministic (first ``fanout`` ToRs of the pod, hosts
    round-robin across them in sorted order) so every scheme sees the
    byte-identical workload and the sweep needs no RNG.
    """
    from ..shard.partition import zone_of

    by_tor: dict[str, list[str]] = {}
    for host in sorted(topo.hosts):
        if zone_of(host) == ("pod", pod):
            by_tor.setdefault(topo.tor_of(host), []).append(host)
    pod_tors = sorted(by_tor)
    if not pod_tors:
        raise ValueError(f"pod {pod} has no ToRs on {topo!r}")
    if fanout > len(pod_tors):
        raise ValueError(
            f"fanout {fanout} exceeds the pod's {len(pod_tors)} racks"
        )
    racks = [by_tor[t] for t in pod_tors[:fanout]]
    capacity = sum(len(r) for r in racks)
    if size > capacity:
        raise ValueError(
            f"size {size} exceeds {capacity} hosts across {fanout} racks"
        )
    hosts: list[str] = []
    depth = 0
    while len(hosts) < size:
        for rack in racks:
            if depth < len(rack) and len(hosts) < size:
                hosts.append(rack[depth])
        depth += 1
    members = tuple(Gpu(host, 0) for host in hosts)
    return Group(members[0], members)


def feasible(size: int, fanout: int) -> bool:
    """Whether a (size, fanout) shape fits the sweep fabric's pods."""
    return fanout <= size and size <= fanout * FABRIC_HOSTS_PER_TOR


def _point(
    size: int,
    fanout: int,
    scheme: str,
    message_bytes: int,
    seed: int,
    shards: int,
    check_invariants: bool,
) -> FrontierRow:
    """One (scheme, shape) grid point: two pod-local jobs, fresh fabric."""
    topo = _frontier_fabric()
    jobs = tuple(
        CollectiveJob(0.0, shaped_group(topo, pod, size, fanout), message_bytes)
        for pod in (0, 1)
    )
    result = run_scenario(
        ScenarioSpec(
            topology=topo,
            scheme=scheme,
            jobs=jobs,
            config=sim_config(message_bytes, seed=seed),
            check_invariants=check_invariants,
            invariant_watchdog=False,
            shards=shards,
        )
    )
    entries = result.per_group_tcam_peak
    name = resolve_scheme(scheme).name
    if name.startswith("peel"):
        # PEEL's deploy-once prefix budget: one rule per identifier prefix
        # of every length up to the fabric's identifier width.  Charged
        # here so "zero per-group entries" is not mistaken for "zero
        # switch state" on the frontier.
        width = Peel(topo).identifier_width
        entries += (1 << (width + 1)) - 1
    return FrontierRow(
        scheme=str(scheme),
        size=size,
        fanout=fanout,
        header_bytes=result.header_overhead_bytes,
        switch_entries=entries,
        mean_cct_ms=result.stats.mean_s * 1e3,
    )


def grid(
    sizes: tuple[int, ...] = DEFAULT_SIZES,
    fanouts: tuple[int, ...] = DEFAULT_FANOUTS,
    schemes: tuple[str, ...] = DEFAULT_SCHEMES,
    message_bytes: int = 64 * KB,
    seed: int = 7,
    shards: int = 1,
    check_invariants: bool = False,
) -> list[SweepPoint]:
    return [
        SweepPoint(
            _point,
            dict(
                size=size, fanout=fanout, scheme=scheme,
                message_bytes=message_bytes, seed=seed, shards=shards,
                check_invariants=check_invariants,
            ),
            label=f"frontier size={size} fanout={fanout} scheme={scheme}",
        )
        for size in sizes
        for fanout in fanouts
        if feasible(size, fanout)
        for scheme in schemes
    ]


def run(
    sizes: tuple[int, ...] = DEFAULT_SIZES,
    fanouts: tuple[int, ...] = DEFAULT_FANOUTS,
    schemes: tuple[str, ...] = DEFAULT_SCHEMES,
    message_bytes: int = 64 * KB,
    seed: int = 7,
    shards: int = 1,
    check_invariants: bool = False,
    jobs: int | None = 1,
    progress: ProgressFn | None = None,
) -> list[FrontierRow]:
    return run_sweep(
        grid(sizes, fanouts, schemes, message_bytes, seed, shards,
             check_invariants),
        jobs=jobs,
        progress=progress,
    )


def format_table(rows: list[FrontierRow]) -> str:
    header = (
        f"{'scheme':<22}{'size':>6}{'fanout':>8}{'header (B)':>12}"
        f"{'switch entries':>16}{'mean CCT (ms)':>15}"
    )
    lines = [header, "-" * len(header)]
    for r in rows:
        lines.append(
            f"{r.scheme:<22}{r.size:>6}{r.fanout:>8}{r.header_bytes:>12}"
            f"{r.switch_entries:>16}{r.mean_cct_ms:>15.3f}"
        )
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover
    print(format_table(run()))
