"""Figure 3: RSBF's Bloom-filter header vs fat-tree degree.

Per-packet overhead (bytes) as the fabric degree grows, for false-positive
ratios from 1% to 20%.  The headline: the header exceeds one full 1500 B
MTU once k > 32 even at a generous 20% FPR.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core import hierarchical_header_bytes
from ..state import MTU_BYTES, rsbf_header_bytes

DEFAULT_KS = (4, 8, 16, 32, 64)
DEFAULT_FPRS = (0.01, 0.05, 0.10, 0.15, 0.20)


@dataclass(frozen=True)
class Fig3Row:
    k: int
    fpr: float
    rsbf_header_bytes: int
    peel_header_bytes: int
    exceeds_mtu: bool


def run(
    ks: tuple[int, ...] = DEFAULT_KS, fprs: tuple[float, ...] = DEFAULT_FPRS
) -> list[Fig3Row]:
    rows = []
    for k in ks:
        peel = hierarchical_header_bytes(k)
        for fpr in fprs:
            size = rsbf_header_bytes(k, fpr)
            rows.append(Fig3Row(k, fpr, size, peel, size > MTU_BYTES))
    return rows


def format_table(rows: list[Fig3Row]) -> str:
    header = (
        f"{'k':>4}{'FPR':>7}{'RSBF hdr (B)':>14}{'PEEL hdr (B)':>14}{'>MTU?':>8}"
    )
    lines = [header, "-" * len(header)]
    for r in rows:
        lines.append(
            f"{r.k:>4}{r.fpr:>7.0%}{r.rsbf_header_bytes:>14}"
            f"{r.peel_header_bytes:>14}{'yes' if r.exceeds_mtu else 'no':>8}"
        )
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover
    print(format_table(run()))
