"""Figure 4: Orca's SDN flow-setup delay inflates collective completion time.

The paper models the controller's flow setup as N(10 ms, 5 ms) on an 8-ary
fat-tree with 1024 GPUs and shows the 99th-percentile CCT of a 32 MB
Broadcast rising ~8x with controller overhead versus without.
"""

from __future__ import annotations

from ..api import ScenarioSpec
from ..api import run as run_scenario
from ..workloads import generate_jobs
from .common import MB, CctRow, paper_fattree, sim_config
from .parallel import ProgressFn, SweepPoint, run_sweep

DEFAULT_SIZES_MB = (2, 8, 32, 128)
SCHEMES = ("orca", "orca-nosetup")


def _point(
    size_mb: int,
    scheme: str,
    num_jobs: int,
    num_gpus: int,
    offered_load: float,
    seed: int,
) -> CctRow:
    """One (message size, orca variant) grid point on a fresh fabric."""
    topo = paper_fattree()
    msg = size_mb * MB
    jobs = generate_jobs(
        topo, num_jobs, num_gpus, msg, offered_load=offered_load,
        gpus_per_host=1, seed=seed,
    )
    result = run_scenario(
        ScenarioSpec(
            topology=topo, scheme=scheme, jobs=tuple(jobs),
            config=sim_config(msg),
        )
    )
    return CctRow(scheme, size_mb, result.stats.mean_s, result.stats.p99_s)


def grid(
    sizes_mb: tuple[int, ...] = DEFAULT_SIZES_MB,
    num_jobs: int = 12,
    num_gpus: int = 1024,
    offered_load: float = 0.3,
    seed: int = 7,
) -> list[SweepPoint]:
    return [
        SweepPoint(
            _point,
            dict(
                size_mb=size_mb, scheme=scheme, num_jobs=num_jobs,
                num_gpus=num_gpus, offered_load=offered_load, seed=seed,
            ),
            label=f"fig4 size={size_mb}MB scheme={scheme}",
        )
        for size_mb in sizes_mb
        for scheme in SCHEMES
    ]


def run(
    sizes_mb: tuple[int, ...] = DEFAULT_SIZES_MB,
    num_jobs: int = 12,
    num_gpus: int = 1024,
    offered_load: float = 0.3,
    seed: int = 7,
    jobs: int | None = 1,
    progress: ProgressFn | None = None,
) -> list[CctRow]:
    return run_sweep(
        grid(sizes_mb, num_jobs, num_gpus, offered_load, seed),
        jobs=jobs,
        progress=progress,
    )


def tail_inflation(rows: list[CctRow], size_mb: int) -> float:
    """p99 CCT with controller overhead over p99 without, at one size."""
    with_ctrl = next(r for r in rows if r.scheme == "orca" and r.x == size_mb)
    without = next(
        r for r in rows if r.scheme == "orca-nosetup" and r.x == size_mb
    )
    return with_ctrl.p99_s / without.p99_s


if __name__ == "__main__":  # pragma: no cover
    from .common import format_cct_table

    rows = run()
    print(format_cct_table(rows, "msg (MB)"))
    print(f"\np99 inflation at 32 MB: {tail_inflation(rows, 32):.1f}x")
