"""Figure 7: robustness to failures in an asymmetric leaf-spine.

The paper's fabric: 16 spines, 48 leaves, 2 servers/leaf, 8 GPUs/server.
A 64-GPU Broadcast of 8 MB messages repeats while 1-10% of spine-leaf links
are randomly failed; PEEL's greedy trees stay ahead of Ring, which stays
ahead of Tree.
"""

from __future__ import annotations

from ..topology import fail_random_uplinks
from ..workloads import generate_jobs
from .common import MB, CctRow, paper_leafspine, sim_config
from .runner import run_broadcast_scenario

DEFAULT_FAILURE_PCTS = (1, 2, 4, 8, 10)
DEFAULT_SCHEMES = ("tree", "ring", "peel")


def run(
    failure_pcts: tuple[int, ...] = DEFAULT_FAILURE_PCTS,
    schemes: tuple[str, ...] = DEFAULT_SCHEMES,
    message_mb: int = 8,
    num_gpus: int = 64,
    num_jobs: int = 40,
    offered_load: float = 0.9,
    seed: int = 11,
    check_invariants: bool = False,
) -> list[CctRow]:
    msg = message_mb * MB
    cfg = sim_config(msg)
    rows: list[CctRow] = []
    for pct in failure_pcts:
        topo = paper_leafspine()
        fail_random_uplinks(topo, pct / 100, seed=seed)
        jobs = generate_jobs(
            topo, num_jobs, num_gpus, msg, offered_load=offered_load,
            gpus_per_host=1, seed=seed,
        )
        for scheme in schemes:
            result = run_broadcast_scenario(
                topo, scheme, jobs, cfg, check_invariants=check_invariants
            )
            rows.append(CctRow(scheme, pct, result.stats.mean_s, result.stats.p99_s))
    return rows


if __name__ == "__main__":  # pragma: no cover
    from .common import format_cct_table

    print(format_cct_table(run(), "failed %"))
