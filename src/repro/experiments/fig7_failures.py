"""Figure 7: robustness to failures in an asymmetric leaf-spine.

The paper's fabric: 16 spines, 48 leaves, 2 servers/leaf, 8 GPUs/server.
A 64-GPU Broadcast of 8 MB messages repeats while 1-10% of spine-leaf links
are randomly failed; PEEL's greedy trees stay ahead of Ring, which stays
ahead of Tree.
"""

from __future__ import annotations

from ..api import ScenarioSpec
from ..api import run as run_scenario
from ..topology import fail_random_uplinks
from ..workloads import generate_jobs
from .common import MB, CctRow, paper_leafspine, sim_config
from .parallel import ProgressFn, SweepPoint, run_sweep

DEFAULT_FAILURE_PCTS = (1, 2, 4, 8, 10)
DEFAULT_SCHEMES = ("tree", "ring", "peel")


def _point(
    pct: int,
    scheme: str,
    message_mb: int,
    num_gpus: int,
    num_jobs: int,
    offered_load: float,
    seed: int,
    check_invariants: bool,
) -> CctRow:
    """One (failure rate, scheme) point; links failed deterministically."""
    msg = message_mb * MB
    topo = paper_leafspine()
    fail_random_uplinks(topo, pct / 100, seed=seed)
    jobs = generate_jobs(
        topo, num_jobs, num_gpus, msg, offered_load=offered_load,
        gpus_per_host=1, seed=seed,
    )
    result = run_scenario(
        ScenarioSpec(
            topology=topo, scheme=scheme, jobs=tuple(jobs),
            config=sim_config(msg), check_invariants=check_invariants,
        )
    )
    return CctRow(scheme, pct, result.stats.mean_s, result.stats.p99_s)


def grid(
    failure_pcts: tuple[int, ...] = DEFAULT_FAILURE_PCTS,
    schemes: tuple[str, ...] = DEFAULT_SCHEMES,
    message_mb: int = 8,
    num_gpus: int = 64,
    num_jobs: int = 40,
    offered_load: float = 0.9,
    seed: int = 11,
    check_invariants: bool = False,
) -> list[SweepPoint]:
    return [
        SweepPoint(
            _point,
            dict(
                pct=pct, scheme=scheme, message_mb=message_mb,
                num_gpus=num_gpus, num_jobs=num_jobs,
                offered_load=offered_load, seed=seed,
                check_invariants=check_invariants,
            ),
            label=f"fig7 failed={pct}% scheme={scheme}",
        )
        for pct in failure_pcts
        for scheme in schemes
    ]


def run(
    failure_pcts: tuple[int, ...] = DEFAULT_FAILURE_PCTS,
    schemes: tuple[str, ...] = DEFAULT_SCHEMES,
    message_mb: int = 8,
    num_gpus: int = 64,
    num_jobs: int = 40,
    offered_load: float = 0.9,
    seed: int = 11,
    check_invariants: bool = False,
    jobs: int | None = 1,
    progress: ProgressFn | None = None,
) -> list[CctRow]:
    return run_sweep(
        grid(
            failure_pcts, schemes, message_mb, num_gpus, num_jobs,
            offered_load, seed, check_invariants,
        ),
        jobs=jobs,
        progress=progress,
    )


if __name__ == "__main__":  # pragma: no cover
    from .common import format_cct_table

    print(format_cct_table(run(), "failed %"))
