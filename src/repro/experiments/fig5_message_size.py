"""Figure 5: mean and tail CCT vs message size, 512-GPU Broadcasts at 30%
offered load on the paper's 8-ary fat-tree.

The paper's claims at this figure: PEEL tracks the bandwidth-optimal
baseline across sizes, beats Ring/Tree/Orca, and PEEL+programmable-cores
closes most of the remaining gap for large messages.
"""

from __future__ import annotations

from ..api import ScenarioSpec
from ..api import run as run_scenario
from ..workloads import generate_jobs
from .common import MB, CctRow, paper_fattree, sim_config
from .parallel import ProgressFn, SweepPoint, run_sweep

DEFAULT_SIZES_MB = (2, 8, 32, 128, 512)
DEFAULT_SCHEMES = ("ring", "tree", "optimal", "orca", "peel", "peel+cores")


def _point(
    size_mb: int,
    scheme: str,
    num_jobs: int,
    num_gpus: int,
    offered_load: float,
    seed: int,
    check_invariants: bool,
) -> CctRow:
    """One (message size, scheme) grid point on a fresh fabric."""
    topo = paper_fattree()
    msg = size_mb * MB
    jobs = generate_jobs(
        topo, num_jobs, num_gpus, msg, offered_load=offered_load,
        gpus_per_host=1, seed=seed,
    )
    result = run_scenario(
        ScenarioSpec(
            topology=topo, scheme=scheme, jobs=tuple(jobs),
            config=sim_config(msg), check_invariants=check_invariants,
        )
    )
    return CctRow(scheme, size_mb, result.stats.mean_s, result.stats.p99_s)


def grid(
    sizes_mb: tuple[int, ...] = DEFAULT_SIZES_MB,
    schemes: tuple[str, ...] = DEFAULT_SCHEMES,
    num_jobs: int = 12,
    num_gpus: int = 512,
    offered_load: float = 0.3,
    seed: int = 7,
    check_invariants: bool = False,
) -> list[SweepPoint]:
    return [
        SweepPoint(
            _point,
            dict(
                size_mb=size_mb, scheme=scheme, num_jobs=num_jobs,
                num_gpus=num_gpus, offered_load=offered_load, seed=seed,
                check_invariants=check_invariants,
            ),
            label=f"fig5 size={size_mb}MB scheme={scheme}",
        )
        for size_mb in sizes_mb
        for scheme in schemes
    ]


def run(
    sizes_mb: tuple[int, ...] = DEFAULT_SIZES_MB,
    schemes: tuple[str, ...] = DEFAULT_SCHEMES,
    num_jobs: int = 12,
    num_gpus: int = 512,
    offered_load: float = 0.3,
    seed: int = 7,
    check_invariants: bool = False,
    jobs: int | None = 1,
    progress: ProgressFn | None = None,
) -> list[CctRow]:
    return run_sweep(
        grid(
            sizes_mb, schemes, num_jobs, num_gpus, offered_load, seed,
            check_invariants,
        ),
        jobs=jobs,
        progress=progress,
    )


if __name__ == "__main__":  # pragma: no cover
    from .common import format_cct_table

    print(format_cct_table(run(), "msg (MB)"))
