"""Figure 5: mean and tail CCT vs message size, 512-GPU Broadcasts at 30%
offered load on the paper's 8-ary fat-tree.

The paper's claims at this figure: PEEL tracks the bandwidth-optimal
baseline across sizes, beats Ring/Tree/Orca, and PEEL+programmable-cores
closes most of the remaining gap for large messages.
"""

from __future__ import annotations

from ..workloads import generate_jobs
from .common import MB, CctRow, paper_fattree, sim_config
from .runner import run_broadcast_scenario

DEFAULT_SIZES_MB = (2, 8, 32, 128, 512)
DEFAULT_SCHEMES = ("ring", "tree", "optimal", "orca", "peel", "peel+cores")


def run(
    sizes_mb: tuple[int, ...] = DEFAULT_SIZES_MB,
    schemes: tuple[str, ...] = DEFAULT_SCHEMES,
    num_jobs: int = 12,
    num_gpus: int = 512,
    offered_load: float = 0.3,
    seed: int = 7,
    check_invariants: bool = False,
) -> list[CctRow]:
    topo = paper_fattree()
    rows: list[CctRow] = []
    for size_mb in sizes_mb:
        msg = size_mb * MB
        jobs = generate_jobs(
            topo, num_jobs, num_gpus, msg, offered_load=offered_load,
            gpus_per_host=1, seed=seed,
        )
        cfg = sim_config(msg)
        for scheme in schemes:
            result = run_broadcast_scenario(
                topo, scheme, jobs, cfg, check_invariants=check_invariants
            )
            rows.append(
                CctRow(scheme, size_mb, result.stats.mean_s, result.stats.p99_s)
            )
    return rows


if __name__ == "__main__":  # pragma: no cover
    from .common import format_cct_table

    print(format_cct_table(run(), "msg (MB)"))
