"""Scenario runner: a workload + a scheme + a fabric -> CCT samples."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..collectives import BroadcastScheme, CollectiveEnv, scheme_by_name
from ..metrics import CctStats, summarize_ccts
from ..sim import SimConfig
from ..topology import Topology
from ..workloads import CollectiveJob

#: Below one MTU the simulator cannot segment (store-and-forward floor).
MIN_SEGMENT_BYTES = 1500


@dataclass
class ScenarioResult:
    scheme: str
    ccts: list[float]
    total_bytes: int
    wasted_bytes: int
    pfc_pause_events: int
    invariant_violations: list = field(default_factory=list)
    trace_digest: str | None = None
    failure_drops: int = 0
    repeels: list = field(default_factory=list)
    stats: CctStats = field(init=False)

    def __post_init__(self) -> None:
        self.stats = summarize_ccts(self.ccts)


def run_broadcast_scenario(
    topo: Topology,
    scheme: BroadcastScheme | str,
    jobs: list[CollectiveJob],
    config: SimConfig | None = None,
    max_events: int | None = None,
    check_invariants: bool = False,
    fault_schedule=None,
    record_trace: bool = False,
    obs=None,
) -> ScenarioResult:
    """Run every job under one scheme on a fresh fabric; returns all CCTs.

    All jobs share the fabric, so concurrent collectives contend — this is
    how the Poisson-load experiments produce queueing and tail effects.

    ``check_invariants`` attaches an
    :class:`~repro.sim.invariants.InvariantChecker` (raising on the first
    violation); ``fault_schedule`` injects dynamic mid-run faults (the
    caller's topology is copied first, since faults mutate it);
    ``record_trace`` computes a deterministic golden-trace digest;
    ``obs`` attaches a :class:`repro.obs.Observability` — the scenario's
    collectives are span-tracked and the registry/trace finalized on
    return, ready for export.
    """
    if isinstance(scheme, str):
        scheme = scheme_by_name(scheme)
    if fault_schedule is not None:
        topo = topo.copy()  # dynamic faults mutate the planning topology
    env = CollectiveEnv(
        topo,
        config,
        fault_schedule=fault_schedule,
        check_invariants=check_invariants,
        record_trace=record_trace,
    )
    if obs is not None:
        obs.attach(env.network)
    handles = [
        scheme.launch(env, job.group, job.message_bytes, job.arrival_s)
        for job in jobs
    ]
    if obs is not None:
        for handle in handles:
            obs.track_collective(handle)
    env.run(max_events=max_events)
    if obs is not None:
        obs.observe_plan_cache(env.plan_cache)
        obs.finalize()
    violations = env.finalize_checks()
    unfinished = [h for h in handles if not h.complete]
    if unfinished:
        raise RuntimeError(
            f"{len(unfinished)} of {len(handles)} collectives never completed "
            f"({scheme.name}); simulation stalled or max_events too low"
        )
    return ScenarioResult(
        scheme=scheme.name,
        ccts=[h.cct_s for h in handles],
        total_bytes=env.network.total_bytes_sent(),
        wasted_bytes=env.network.wasted_bytes,
        pfc_pause_events=env.network.pfc_pause_events,
        invariant_violations=list(violations),
        trace_digest=env.trace.digest() if env.trace is not None else None,
        failure_drops=env.network.failure_drops,
        repeels=(
            list(env.fault_injector.repeels)
            if env.fault_injector is not None
            else []
        ),
    )


def segment_bytes_for(message_bytes: int, target_segments: int = 64) -> int:
    """Pick a store-and-forward granularity bounding event counts.

    Mid-sized messages use 64 KiB segments; large ones are split into about
    ``target_segments`` pieces so simulated event counts stay flat across
    the paper's 2 MB - 512 MB sweep (see DESIGN.md on granularity).  The
    granularity never exceeds the message itself (a 1 KiB message is one
    1 KiB segment, not a 64 KiB one) except for the one-MTU floor
    :class:`~repro.sim.config.SimConfig` requires — sub-MTU messages still
    travel as a single short segment.
    """
    if message_bytes <= 0:
        raise ValueError("message_bytes must be positive")
    granularity = max(65536, message_bytes // target_segments)
    return max(MIN_SEGMENT_BYTES, min(granularity, message_bytes))
