"""Scenario runner: a workload + a scheme + a fabric -> CCT samples."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..collectives import BroadcastScheme, CollectiveEnv, scheme_by_name
from ..metrics import CctStats, summarize_ccts
from ..sim import SimConfig
from ..topology import Topology
from ..workloads import CollectiveJob


@dataclass
class ScenarioResult:
    scheme: str
    ccts: list[float]
    total_bytes: int
    wasted_bytes: int
    pfc_pause_events: int
    stats: CctStats = field(init=False)

    def __post_init__(self) -> None:
        self.stats = summarize_ccts(self.ccts)


def run_broadcast_scenario(
    topo: Topology,
    scheme: BroadcastScheme | str,
    jobs: list[CollectiveJob],
    config: SimConfig | None = None,
    max_events: int | None = None,
) -> ScenarioResult:
    """Run every job under one scheme on a fresh fabric; returns all CCTs.

    All jobs share the fabric, so concurrent collectives contend — this is
    how the Poisson-load experiments produce queueing and tail effects.
    """
    if isinstance(scheme, str):
        scheme = scheme_by_name(scheme)
    env = CollectiveEnv(topo, config)
    handles = [
        scheme.launch(env, job.group, job.message_bytes, job.arrival_s)
        for job in jobs
    ]
    env.run(max_events=max_events)
    unfinished = [h for h in handles if not h.complete]
    if unfinished:
        raise RuntimeError(
            f"{len(unfinished)} of {len(handles)} collectives never completed "
            f"({scheme.name}); simulation stalled or max_events too low"
        )
    return ScenarioResult(
        scheme=scheme.name,
        ccts=[h.cct_s for h in handles],
        total_bytes=env.network.total_bytes_sent(),
        wasted_bytes=env.network.wasted_bytes,
        pfc_pause_events=env.network.pfc_pause_events,
    )


def segment_bytes_for(message_bytes: int, target_segments: int = 64) -> int:
    """Pick a store-and-forward granularity bounding event counts.

    Small messages use 64 KiB segments; large ones are split into about
    ``target_segments`` pieces so simulated event counts stay flat across
    the paper's 2 MB - 512 MB sweep (see DESIGN.md on granularity).
    """
    if message_bytes <= 0:
        raise ValueError("message_bytes must be positive")
    return max(65536, message_bytes // target_segments)
