"""Legacy scenario runner: a thin deprecation shim over :mod:`repro.api`.

``run_broadcast_scenario(...)`` predates the :class:`repro.api.ScenarioSpec`
facade; it survives for one release as an alias that builds a spec and
calls :func:`repro.api.run` — byte-identical results, plus one
``DeprecationWarning`` per call.  ``ScenarioResult`` and
``segment_bytes_for`` are re-exported from their new home unchanged.
"""

from __future__ import annotations

import warnings

from ..api import (
    MIN_SEGMENT_BYTES,
    ScenarioResult,
    ScenarioSpec,
    segment_bytes_for,
)
from ..api import run as _run
from ..collectives import BroadcastScheme
from ..sim import SimConfig
from ..topology import Topology
from ..workloads import CollectiveJob

__all__ = [
    "MIN_SEGMENT_BYTES",
    "ScenarioResult",
    "run_broadcast_scenario",
    "segment_bytes_for",
]


def run_broadcast_scenario(
    topo: Topology,
    scheme: BroadcastScheme | str,
    jobs: list[CollectiveJob],
    config: SimConfig | None = None,
    max_events: int | None = None,
    check_invariants: bool = False,
    fault_schedule=None,
    record_trace: bool = False,
    obs=None,
) -> ScenarioResult:
    """Deprecated: build a :class:`repro.api.ScenarioSpec` and call
    :func:`repro.api.run` instead.

    Same semantics, same result bytes — this shim only assembles the spec.
    """
    warnings.warn(
        "run_broadcast_scenario() is deprecated; build a "
        "repro.api.ScenarioSpec and call repro.api.run(spec)",
        DeprecationWarning,
        stacklevel=2,
    )
    return _run(
        ScenarioSpec(
            topology=topo,
            scheme=scheme,
            jobs=tuple(jobs),
            config=config,
            max_events=max_events,
            check_invariants=check_invariants,
            fault_schedule=fault_schedule,
            record_trace=record_trace,
            obs=obs,
        )
    )
