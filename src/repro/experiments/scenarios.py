"""The three golden scenarios as replayable specs (``repro replay``).

Same shapes as :mod:`repro.experiments.obs_demo` — a PEEL broadcast batch,
a mid-collective link flap, and a two-tenant serving stream — but exposed
as :class:`repro.api.ScenarioSpec` values (plus a ServeRuntime factory)
with suggested checkpoint cut times, so the replay-determinism smoke
(:func:`repro.replay.verify_cut_points`, ``scripts/replay_smoke.py``, CI)
and the replay test-suite all exercise identical workloads.

Cut times are chosen to land somewhere interesting: right after launch,
mid-contention, and — for the fault scenario — *inside* the re-peel
window (link already down, detection timer still pending in the heap).
"""

from __future__ import annotations

import dataclasses

from ..api import ScenarioSpec
from ..faults import FaultSchedule
from ..serve import ServeRuntime, TcamAdmission
from ..shard import pod_local_jobs
from ..topology import FatTree, LeafSpine
from ..workloads import TenantSpec, generate_jobs, generate_tenant_jobs
from .common import sim_config

KB = 1024

REPLAY_SCENARIOS = ("headline", "fault", "serve")


def headline_scenario() -> tuple[ScenarioSpec, tuple[float, ...]]:
    """Three concurrent PEEL broadcasts on a 2x4 leaf-spine."""
    topo = LeafSpine(2, 4, 2)
    message_bytes = 256 * KB
    jobs = generate_jobs(
        topo, 3, 6, message_bytes, offered_load=0.4, gpus_per_host=1, seed=1
    )
    spec = ScenarioSpec(
        topology=topo,
        scheme="peel",
        jobs=tuple(jobs),
        config=sim_config(message_bytes, seed=1),
        record_trace=True,
    )
    first = jobs[0].arrival_s
    last = jobs[-1].arrival_s
    return spec, (first + 5e-6, first + 20e-6, last + 10e-6)


def fault_scenario() -> tuple[ScenarioSpec, tuple[float, ...]]:
    """One broadcast with a loaded spine link flapping mid-collective.

    The middle cut time falls between the link going down and the
    injector's detection delay expiring, so the checkpoint carries a
    pending re-peel — the hardest state to get byte-identical on resume.
    """
    from .faults_demo import pick_loaded_link

    topo = LeafSpine(2, 4, 2)
    message_bytes = 512 * KB
    job = generate_jobs(
        topo, 1, 8, message_bytes, gpus_per_host=1, seed=5
    )[0]
    link = pick_loaded_link(
        topo, "peel", job.group.source.host, job.group.receiver_hosts
    )
    down_at = job.arrival_s + 15e-6
    schedule = FaultSchedule().link_flap(
        *link, down_at, job.arrival_s + 120e-6
    )
    spec = ScenarioSpec(
        topology=topo,
        scheme="peel",
        jobs=(job,),
        config=sim_config(message_bytes, seed=5),
        check_invariants=True,
        fault_schedule=schedule,
        record_trace=True,
    )
    # Detection fires 100 us after down_at: cut inside that window.
    cuts = (job.arrival_s + 5e-6, down_at + 50e-6, down_at + 110e-6)
    return spec, cuts


def protected_fault_scenario(
    protection: int = 1,
) -> tuple[ScenarioSpec, tuple[float, ...]]:
    """The golden fault scenario with proactive protection switched on.

    Identical workload, fabric, cut link and cut times as
    :func:`fault_scenario` — only ``protection`` differs — so a pair of
    runs isolates local fast-failover against the reactive re-peel.
    """
    spec, cuts = fault_scenario()
    return dataclasses.replace(spec, protection=protection), cuts


def shard_scenario(shards: int = 2) -> tuple[ScenarioSpec, tuple[float, ...]]:
    """The golden *sharded* scenario: pod-local broadcasts on a fat-tree.

    A k=4 fat-tree with three 3-host broadcasts per pod — every group (and
    so every PEEL tree) pod-local, which is exactly the traffic-closure
    :func:`repro.shard.plan_partition` needs.  Running the returned spec
    with ``shards`` rewound to 1 gives the serial comparator; CI's
    shard-smoke job and the unit suite pin the two byte-identical.  Cut
    times land mid-stream for sharded snapshot/resume checks.
    """
    topo = FatTree(4)
    message_bytes = 128 * KB
    jobs = pod_local_jobs(
        topo, jobs_per_pod=3, group_hosts=3, message_bytes=message_bytes,
        offered_load=0.4, seed=11,
    )
    spec = ScenarioSpec(
        topology=topo,
        scheme="peel",
        jobs=tuple(jobs),
        config=sim_config(message_bytes, seed=11),
        record_trace=True,
        event_digest=True,
        shards=shards,
    )
    arrivals = sorted(job.arrival_s for job in jobs)
    mid = arrivals[len(arrivals) // 2]
    return spec, (arrivals[0] + 5e-6, mid, arrivals[-1] + 10e-6)


def serve_runtime(record_trace: bool = True) -> tuple[ServeRuntime, tuple[float, ...]]:
    """The two-tenant serving stream, submitted but not yet run.

    Serving runs live in a :class:`~repro.serve.ServeRuntime`, not a
    ScenarioSpec; callers drive ``runtime.run(until=...)`` /
    ``runtime.snapshot()`` themselves.  Returns the loaded runtime plus
    suggested cut times (mid-stream, while jobs are queued and running).
    """
    topo = LeafSpine(2, 4, 2)
    tenants = [
        TenantSpec("train", num_jobs=6, num_gpus=6, message_bytes=128 * KB,
                   offered_load=0.5),
        TenantSpec("infer", num_jobs=8, num_gpus=4, message_bytes=64 * KB,
                   offered_load=0.5),
    ]
    jobs = generate_tenant_jobs(topo, tenants, gpus_per_host=1, seed=9)
    runtime = ServeRuntime(
        topo,
        "ip-multicast",
        sim_config(128 * KB, seed=9),
        admission=TcamAdmission(),
        tcam_capacity=16,
        record_trace=record_trace,
    )
    runtime.submit_all(jobs)
    arrivals = sorted(job.arrival_s for job in jobs)
    mid = arrivals[len(arrivals) // 2]
    return runtime, (arrivals[0] + 5e-6, mid, arrivals[-1] + 5e-6)
