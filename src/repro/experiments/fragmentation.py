"""§3.4 "Resource fragmentation": how prefix aggregation degrades as job
placement scatters, and what adaptive packing buys back.

Fragmentation is modelled where it hurts prefix aggregation: at rack
granularity.  A job occupies ``num_racks`` whole racks sampled from a
locality window; a window equal to the rack count is perfectly bin-packed,
wider windows leave gaps that splinter the power-of-two ToR blocks.  For
each sparsity level we report, for exact covers and for budget-bounded
("adaptive packing") covers: packet count, over-covered (wasted) ToRs and
static bandwidth cost.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..core import Peel
from ..topology import FatTree
from ..workloads import place_job_racks


@dataclass(frozen=True)
class FragmentationRow:
    window_racks: int
    policy: str  # "exact" | "budget-N"
    mean_packets: float
    mean_wasted_tors: float
    mean_static_cost: float
    mean_refined_cost: float


def run(
    num_racks: int = 8,
    windows: tuple[int, ...] = (8, 12, 16, 24),
    budgets: tuple[int | None, ...] = (None, 1),
    trials: int = 10,
    seed: int = 5,
) -> list[FragmentationRow]:
    topo = FatTree(8, hosts_per_tor=4)
    rows: list[FragmentationRow] = []
    for window in windows:
        rng = random.Random(seed)
        groups = [
            place_job_racks(topo, num_racks, window, rng) for _ in range(trials)
        ]
        for budget in budgets:
            peel = Peel(topo, max_prefixes_per_fanout=budget)
            packets = wasted = static = refined = 0
            for group in groups:
                plan = peel.plan(group.source.host, group.receiver_hosts)
                packets += plan.num_prefixes
                wasted += len(plan.wasted_edge_switches)
                static += plan.static_cost()
                refined += plan.refined_cost()
            rows.append(
                FragmentationRow(
                    window_racks=window,
                    policy="exact" if budget is None else f"budget-{budget}",
                    mean_packets=packets / trials,
                    mean_wasted_tors=wasted / trials,
                    mean_static_cost=static / trials,
                    mean_refined_cost=refined / trials,
                )
            )
    return rows


def format_table(rows: list[FragmentationRow]) -> str:
    header = (
        f"{'window':>8}{'policy':>10}{'packets':>9}{'wasted':>8}"
        f"{'static':>9}{'refined':>9}"
    )
    lines = [header, "-" * len(header)]
    for r in rows:
        lines.append(
            f"{r.window_racks:>8}{r.policy:>10}{r.mean_packets:>9.1f}"
            f"{r.mean_wasted_tors:>8.1f}{r.mean_static_cost:>9.1f}"
            f"{r.mean_refined_cost:>9.1f}"
        )
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover
    print(format_table(run()))
