"""Serving sweep: PEEL vs Orca vs IP multicast under offered load 0.1-0.9.

The figure experiments launch a fixed batch of jobs; this experiment runs
the :mod:`repro.serve` runtime instead — jobs are *admitted* (TCAM- and
link-load-aware), queue when the fabric or switch budgets are full, and
overlap freely on the shared fabric.  The sweep varies offered load and
reports the serving SLOs the paper's §3 argument predicts: PEEL holds its
tail with zero switch updates and a warming plan cache, while the
per-group schemes pay controller churn (Orca also pays per-collective
setup latency) and start queueing when a small commodity TCAM fills.

A second mode replays the highest-load point with mid-stream link failures
(``with_failures=True``): the fault flaps a loaded spine link, the plan
cache invalidates through the observer layer, and re-peeling carries the
affected collectives to completion.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..faults import FaultSchedule
from ..serve import CompositeAdmission, LinkLoadAdmission, ServeRuntime, TcamAdmission
from ..sim import SimConfig
from ..topology import FatTree
from ..workloads import generate_jobs
from .parallel import ProgressFn, SweepPoint, run_sweep
from .runner import segment_bytes_for

KB = 1024
DEFAULT_LOADS = (0.1, 0.3, 0.5, 0.7, 0.9)
DEFAULT_SCHEMES = ("peel", "orca", "ip-multicast", "elmo", "bert")


@dataclass(frozen=True)
class ServingRow:
    """One (scheme, offered load) point of the serving sweep."""

    scheme: str
    load: float
    p50_ms: float
    p99_ms: float
    mean_queue_ms: float
    reject_rate: float
    cache_hit_rate: float
    switch_updates: int
    peak_entries: int
    queued_jobs: int
    repeels: int = 0


def serving_fattree() -> FatTree:
    """A k=8 fat-tree small enough to sweep many loads quickly."""
    return FatTree(8, hosts_per_tor=4)


def _serve_one(
    topo: FatTree,
    scheme: str,
    jobs,
    config: SimConfig,
    tcam_capacity: int,
    max_link_outstanding: int,
    check_invariants: bool,
    fault_schedule=None,
) -> tuple:
    runtime = ServeRuntime(
        topo,
        scheme,
        config,
        admission=CompositeAdmission(
            TcamAdmission(), LinkLoadAdmission(max_link_outstanding)
        ),
        tcam_capacity=tcam_capacity,
        check_invariants=check_invariants,
        fault_schedule=fault_schedule,
    )
    runtime.submit_all(jobs)
    runtime.run()
    violations = runtime.finalize_checks()
    if violations:
        raise RuntimeError(f"invariant violations: {violations}")
    return runtime.report(), runtime


def _flap_schedule(topo: FatTree, jobs) -> FaultSchedule:
    """The deterministic mid-stream core-link flap for the failure replay."""
    midpoint = jobs[len(jobs) // 2].arrival_s
    span = jobs[-1].arrival_s
    core = sorted(n for n in topo.graph.nodes if n.startswith("core"))[0]
    agg = sorted(topo.graph.neighbors(core))[0]
    return FaultSchedule().link_flap(
        core, agg, down_at_s=midpoint, up_at_s=span * 2 + 1.0
    )


def _point(
    load: float,
    scheme: str,
    num_jobs: int,
    num_gpus: int,
    message_bytes: int,
    tcam_capacity: int,
    check_invariants: bool,
    seed: int,
    with_failure: bool = False,
) -> ServingRow:
    """One (offered load, scheme) serving point; everything rebuilt from
    the seed so the point reproduces identically in any process."""
    topo = serving_fattree()
    config = SimConfig(segment_bytes=segment_bytes_for(message_bytes))
    jobs = generate_jobs(
        topo, num_jobs, num_gpus, message_bytes,
        offered_load=load, gpus_per_host=1, seed=seed,
    )
    schedule = _flap_schedule(topo, jobs) if with_failure else None
    report, runtime = _serve_one(
        topo, scheme, jobs, config, tcam_capacity,
        8 * message_bytes, check_invariants, fault_schedule=schedule,
    )
    repeels = 0
    if with_failure and runtime.env.fault_injector is not None:
        repeels = len(runtime.env.fault_injector.repeels)
    return _row(
        scheme, -1.0 if with_failure else load, report, runtime,
        repeels=repeels,
    )


def grid(
    loads: tuple[float, ...] = DEFAULT_LOADS,
    schemes: tuple[str, ...] = DEFAULT_SCHEMES,
    num_jobs: int = 150,
    num_gpus: int = 16,
    message_bytes: int = 256 * KB,
    tcam_capacity: int = 24,
    check_invariants: bool = False,
    with_failures: bool = False,
    seed: int = 11,
) -> list[SweepPoint]:
    shared = dict(
        num_jobs=num_jobs, num_gpus=num_gpus, message_bytes=message_bytes,
        tcam_capacity=tcam_capacity, check_invariants=check_invariants,
        seed=seed,
    )
    points = [
        SweepPoint(
            _point,
            dict(load=load, scheme=scheme, **shared),
            label=f"serve load={load:.2f} scheme={scheme}",
        )
        for load in loads
        for scheme in schemes
    ]
    if with_failures:
        points.extend(
            SweepPoint(
                _point,
                dict(load=max(loads), scheme=scheme, with_failure=True,
                     **shared),
                label=f"serve load=fault scheme={scheme}",
            )
            for scheme in schemes
        )
    return points


def run(
    loads: tuple[float, ...] = DEFAULT_LOADS,
    schemes: tuple[str, ...] = DEFAULT_SCHEMES,
    num_jobs: int = 150,
    num_gpus: int = 16,
    message_bytes: int = 256 * KB,
    tcam_capacity: int = 24,
    check_invariants: bool = False,
    with_failures: bool = False,
    seed: int = 11,
    jobs: int | None = 1,
    progress: ProgressFn | None = None,
) -> list[ServingRow]:
    """The serving sweep; one row per (scheme, load) point.

    ``tcam_capacity`` is deliberately small (a slice of a shared commodity
    TCAM): Orca's per-group entries hit it at moderate load while PEEL's
    seven prefix rules never come close.  ``with_failures`` appends rows
    (load tagged ``-1``) replaying the highest load with a mid-stream
    spine-link flap.
    """
    return run_sweep(
        grid(
            loads, schemes, num_jobs, num_gpus, message_bytes,
            tcam_capacity, check_invariants, with_failures, seed,
        ),
        jobs=jobs,
        progress=progress,
    )


def run_with_failures(
    schemes: tuple[str, ...] = DEFAULT_SCHEMES,
    num_jobs: int = 150,
    num_gpus: int = 16,
    message_bytes: int = 256 * KB,
    tcam_capacity: int = 24,
    load: float = 0.9,
    check_invariants: bool = False,
    seed: int = 11,
    jobs: int | None = 1,
    progress: ProgressFn | None = None,
) -> list[ServingRow]:
    """The highest-load point with a mid-stream core-link flap.

    Rows carry ``load = -1`` so tables can mark them as the failure run.
    """
    points = [
        SweepPoint(
            _point,
            dict(
                load=load, scheme=scheme, num_jobs=num_jobs,
                num_gpus=num_gpus, message_bytes=message_bytes,
                tcam_capacity=tcam_capacity,
                check_invariants=check_invariants, seed=seed,
                with_failure=True,
            ),
            label=f"serve load=fault scheme={scheme}",
        )
        for scheme in schemes
    ]
    return run_sweep(points, jobs=jobs, progress=progress)


def _row(scheme, load, report, runtime, repeels: int = 0) -> ServingRow:
    return ServingRow(
        scheme=scheme,
        load=load,
        p50_ms=report.total.cct.p50_s * 1e3,
        p99_ms=report.total.cct.p99_s * 1e3,
        mean_queue_ms=report.total.mean_queue_s * 1e3,
        reject_rate=report.total.reject_rate,
        cache_hit_rate=report.cache_hit_rate,
        switch_updates=report.switch_updates,
        peak_entries=report.peak_entries_per_switch,
        queued_jobs=report.queued_jobs,
        repeels=repeels,
    )


def format_table(rows: list[ServingRow]) -> str:
    header = (
        f"{'scheme':<14}{'load':>6}{'p50(ms)':>9}{'p99(ms)':>9}"
        f"{'queue(ms)':>11}{'rej%':>6}{'hit%':>6}{'updates':>9}"
        f"{'peak':>6}{'queued':>8}{'repeels':>9}"
    )
    lines = [header, "-" * len(header)]
    for r in rows:
        load = "fault" if r.load < 0 else f"{r.load:.2f}"
        lines.append(
            f"{r.scheme:<14}{load:>6}{r.p50_ms:>9.3f}{r.p99_ms:>9.3f}"
            f"{r.mean_queue_ms:>11.3f}{r.reject_rate * 100:>6.1f}"
            f"{r.cache_hit_rate * 100:>6.1f}{r.switch_updates:>9}"
            f"{r.peak_entries:>6}{r.queued_jobs:>8}{r.repeels:>9}"
        )
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover
    print(format_table(run(with_failures=True)))
