"""Instrumented reference runs for the observability layer (``repro obs``).

Three tiny, fully deterministic scenarios — a PEEL broadcast batch, a
mid-collective link flap, and a two-tenant serving stream — each run with
:class:`repro.obs.Observability` attached and exported as a metrics JSON
plus a Chrome-trace timeline.  The exact serialized bytes of each scenario
are committed as golden fixtures under ``tests/golden/`` and re-generated
on every test run (serially and through the process-pool sweep executor),
so any behavioural drift in serialization, queueing, ECN/PFC/DCQCN
dynamics or span structure fails loudly instead of silently moving a
figure.

The point functions are module-level and picklable on purpose: the golden
suite pushes them through :func:`repro.experiments.parallel.run_sweep`
with ``--jobs 1`` and ``--jobs 4`` and asserts byte-identical output.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..api import ScenarioSpec
from ..api import run as run_scenario
from ..faults import FaultSchedule
from ..obs import Observability
from ..serve import ServeRuntime, TcamAdmission
from ..topology import LeafSpine
from ..workloads import TenantSpec, generate_jobs, generate_tenant_jobs
from .common import sim_config

KB = 1024

SCENARIOS = ("headline", "fault", "serve", "elmo", "bert")


@dataclass(frozen=True)
class ObsResult:
    """One instrumented run: serialized artifacts plus headline numbers."""

    scenario: str
    metrics_json: str
    trace_json: str
    summary: str
    num_spans: int


def _observability(sample_interval_s: float, detail: str) -> Observability:
    return Observability(sample_interval_s=sample_interval_s, detail=detail)


def run_headline(
    sample_interval_s: float = 50e-6, detail: str = "segment"
) -> ObsResult:
    """Tiny PEEL broadcast batch (the headline bench, shrunk to fixture
    size): 3 concurrent collectives on a 2x4 leaf-spine."""
    topo = LeafSpine(2, 4, 2)
    message_bytes = 256 * KB
    cfg = sim_config(message_bytes, seed=1)
    jobs = generate_jobs(
        topo, 3, 6, message_bytes, offered_load=0.4, gpus_per_host=1, seed=1
    )
    obs = _observability(sample_interval_s, detail)
    run_scenario(
        ScenarioSpec(
            topology=topo, scheme="peel", jobs=tuple(jobs), config=cfg,
            obs=obs,
        )
    )
    return _result("headline", obs)


def run_fault(
    sample_interval_s: float = 50e-6, detail: str = "transfer"
) -> ObsResult:
    """One broadcast with a spine link flapping mid-collective: the trace
    shows the re-peel instant and the repair traffic it triggers."""
    from .faults_demo import pick_loaded_link

    topo = LeafSpine(2, 4, 2)
    message_bytes = 512 * KB
    cfg = sim_config(message_bytes, seed=5)
    jobs = generate_jobs(topo, 1, 8, message_bytes, gpus_per_host=1, seed=5)
    job = jobs[0]
    link = pick_loaded_link(
        topo, "peel", job.group.source.host, job.group.receiver_hosts
    )
    schedule = (
        FaultSchedule()
        .link_down(*link, at_s=job.arrival_s + 15e-6)
        .link_up(*link, at_s=job.arrival_s + 120e-6)
    )
    obs = _observability(sample_interval_s, detail)
    run_scenario(
        ScenarioSpec(
            topology=topo, scheme="peel", jobs=(job,), config=cfg,
            fault_schedule=schedule, obs=obs,
        )
    )
    return _result("fault", obs)


def run_serve(
    sample_interval_s: float = 50e-6, detail: str = "transfer"
) -> ObsResult:
    """Two-tenant serving stream under a TCAM admission budget: per-tenant
    SLO histograms plus periodic queue/TCAM snapshots on the timeline."""
    topo = LeafSpine(2, 4, 2)
    tenants = [
        TenantSpec("train", num_jobs=6, num_gpus=6, message_bytes=128 * KB,
                   offered_load=0.5),
        TenantSpec("infer", num_jobs=8, num_gpus=4, message_bytes=64 * KB,
                   offered_load=0.5),
    ]
    jobs = generate_tenant_jobs(topo, tenants, gpus_per_host=1, seed=9)
    cfg = sim_config(128 * KB, seed=9)
    obs = _observability(sample_interval_s, detail)
    runtime = ServeRuntime(
        topo, "ip-multicast", cfg, admission=TcamAdmission(),
        tcam_capacity=16, obs=obs,
    )
    runtime.submit_all(jobs)
    runtime.run()
    runtime.report()  # folds cache/TCAM counters into the registry
    return _result("serve", obs)


def _run_sourcerouted(
    scenario: str, scheme: str, sample_interval_s: float, detail: str
) -> ObsResult:
    """A source-routed broadcast batch: headers charged per segment show
    up in the byte counters, per-group switch state stays (near) zero."""
    topo = LeafSpine(2, 4, 2)
    message_bytes = 256 * KB
    cfg = sim_config(message_bytes, seed=3)
    jobs = generate_jobs(
        topo, 3, 6, message_bytes, offered_load=0.4, gpus_per_host=1, seed=3
    )
    obs = _observability(sample_interval_s, detail)
    run_scenario(
        ScenarioSpec(
            topology=topo, scheme=scheme, jobs=tuple(jobs), config=cfg,
            obs=obs,
        )
    )
    return _result(scenario, obs)


def run_elmo(
    sample_interval_s: float = 50e-6, detail: str = "segment"
) -> ObsResult:
    """Elmo bitmap headers under a budget tight enough that some trees
    spill into default-to-spine s-rules."""
    return _run_sourcerouted(
        "elmo", "elmo:header_bytes=8", sample_interval_s, detail
    )


def run_bert(
    sample_interval_s: float = 50e-6, detail: str = "segment"
) -> ObsResult:
    """Bert label stacks: every hop strips its own label, zero TCAM."""
    return _run_sourcerouted("bert", "bert", sample_interval_s, detail)


def _result(scenario: str, obs: Observability) -> ObsResult:
    obs.finalize()
    return ObsResult(
        scenario=scenario,
        metrics_json=obs.metrics_json(),
        trace_json=obs.trace_json(),
        summary=obs.summary(),
        num_spans=len(obs.tracer.spans),
    )


RUNNERS = {
    "headline": run_headline,
    "fault": run_fault,
    "serve": run_serve,
    "elmo": run_elmo,
    "bert": run_bert,
}


def run(scenario: str = "headline", **kwargs) -> ObsResult:
    """Run one named scenario with observability attached."""
    try:
        runner = RUNNERS[scenario]
    except KeyError:
        raise ValueError(
            f"unknown obs scenario {scenario!r}; choose from {SCENARIOS}"
        ) from None
    return runner(**kwargs)
