"""Shared experiment plumbing: canonical fabrics, sweeps, and table output."""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from ..sim import SimConfig
from ..topology import FatTree, LeafSpine
from .runner import segment_bytes_for

MB = 2**20

#: The paper's §4 fat-tree: 8-ary, 4 servers/ToR, 8 GPUs each with its own
#: NIC = 32 endpoints per ToR (8:1 oversubscribed), 1024 GPU NICs total.
def paper_fattree() -> FatTree:
    return FatTree(8, hosts_per_tor=32)


#: The paper's §4 failure fabric: 16 spines, 48 leaves, 2 servers x 8 GPU
#: NICs per leaf (768 endpoints; leaf radix is balanced 16 up / 16 down).
def paper_leafspine() -> LeafSpine:
    return LeafSpine(16, 48, 16)


def sim_config(message_bytes: int, **overrides) -> SimConfig:
    """Simulation config with granularity matched to the message size."""
    params = dict(segment_bytes=segment_bytes_for(message_bytes))
    params.update(overrides)
    return SimConfig(**params)


@dataclass(frozen=True)
class CctRow:
    """One point of a CCT figure."""

    scheme: str
    x: float  # message MB, GPU count, or failure %
    mean_s: float
    p99_s: float


def format_cct_table(rows: Sequence[CctRow], x_label: str) -> str:
    header = f"{'scheme':<14}{x_label:>12}{'mean CCT (ms)':>16}{'p99 CCT (ms)':>16}"
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row.scheme:<14}{row.x:>12g}{row.mean_s * 1e3:>16.3f}"
            f"{row.p99_s * 1e3:>16.3f}"
        )
    return "\n".join(lines)


def rows_for(rows: Iterable[CctRow], scheme: str) -> list[CctRow]:
    return [r for r in rows if r.scheme == scheme]


def mean_ratio(rows: Sequence[CctRow], a: str, b: str) -> float:
    """Average of scheme-a mean CCT over scheme-b mean CCT across x values."""
    a_rows = {r.x: r for r in rows_for(rows, a)}
    b_rows = {r.x: r for r in rows_for(rows, b)}
    shared = sorted(set(a_rows) & set(b_rows))
    if not shared:
        raise ValueError(f"no shared x values between {a!r} and {b!r}")
    ratios = [a_rows[x].mean_s / b_rows[x].mean_s for x in shared]
    return sum(ratios) / len(ratios)
