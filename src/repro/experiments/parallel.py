"""Process-pool sweep executor for the figure experiments.

Every §4 figure replays dozens of independent (scheme × x-value) scenario
points, each a self-contained simulation on its own fabric.  This module
fans those points out over a pool of worker processes:

* a :class:`SweepPoint` is a picklable work item — a module-level function
  plus keyword arguments, including every seed the point needs, so a
  worker process reproduces the point bit-for-bit with no shared state;
* :func:`run_sweep` executes a list of points with ``jobs`` workers,
  **preserving point order** in the returned results regardless of
  completion order, and reporting progress as points finish;
* ``jobs=1`` (the library default) runs the points in-process with no
  executor at all, so serial and parallel sweeps of the same grid are
  byte-identical — the parallel path only changes *where* a point runs,
  never *what* it computes.

Worker processes are plain ``ProcessPoolExecutor`` children; a point that
raises propagates its exception to the caller after the pool shuts down.
"""

from __future__ import annotations

import os
import sys
import time
from collections.abc import Iterable, Sequence
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import Any, Callable

ProgressFn = Callable[[int, int, "SweepPoint"], None]


@dataclass(frozen=True)
class SweepPoint:
    """One picklable grid point: ``fn(**kwargs)`` in some process.

    ``fn`` must be importable at module level (pickling sends a reference,
    not code) and ``kwargs`` must carry everything the point depends on —
    in particular its deterministic seed.  ``label`` is only for progress
    reporting.
    """

    fn: Callable[..., Any]
    kwargs: dict = field(default_factory=dict)
    label: str = ""

    def __call__(self) -> Any:
        return self.fn(**self.kwargs)


def resolve_jobs(jobs: int | None) -> int:
    """Worker count for a sweep: ``None`` means one per CPU."""
    if jobs is None:
        return os.cpu_count() or 1
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    return jobs


def stderr_progress(prefix: str = "") -> ProgressFn:
    """A progress reporter printing one line per finished point."""
    started = time.perf_counter()

    def report(done: int, total: int, point: SweepPoint) -> None:
        elapsed = time.perf_counter() - started
        label = f" {point.label}" if point.label else ""
        print(
            f"{prefix}[{done}/{total}]{label} ({elapsed:.1f}s elapsed)",
            file=sys.stderr,
            flush=True,
        )

    return report


def _run_point(point: SweepPoint) -> Any:
    return point()


def run_sweep(
    points: Iterable[SweepPoint],
    jobs: int | None = 1,
    progress: ProgressFn | None = None,
) -> list[Any]:
    """Execute every point; results come back in point order.

    ``jobs=1`` runs in-process (no pool, no pickling — the byte-identical
    serial path); ``jobs=None`` uses one worker per CPU.  Exceptions from
    worker points propagate to the caller.
    """
    points = list(points)
    jobs = resolve_jobs(jobs)
    total = len(points)
    if jobs == 1 or total <= 1:
        results = []
        for i, point in enumerate(points):
            results.append(point())
            if progress is not None:
                progress(i + 1, total, point)
        return results

    results: list[Any] = [None] * total
    with ProcessPoolExecutor(max_workers=min(jobs, total)) as pool:
        futures = {
            pool.submit(_run_point, point): i for i, point in enumerate(points)
        }
        done = 0
        for future in as_completed(futures):
            index = futures[future]
            results[index] = future.result()  # re-raises worker exceptions
            done += 1
            if progress is not None:
                progress(done, total, points[index])
    return results


def run_scenario_sharded(spec: Any, shards: int | None = None,
                         processes: bool = True) -> Any:
    """A :class:`SweepPoint`-compatible sharded scenario run.

    Module-level (picklable) so a sweep can mix sharded and serial points;
    ``processes=True`` gives each shard a worker process — the intra-point
    parallelism the sharded core exists for — while ``processes=False``
    keeps the lockstep windows in-process for debugging.
    """
    import dataclasses

    from ..shard import run_sharded

    if shards is not None:
        spec = dataclasses.replace(spec, shards=shards)
    return run_sharded(spec, processes=processes)


@dataclass(frozen=True)
class ShardSpeedup:
    """One serial-vs-sharded measurement: walls, and the identity proof."""

    shards: int
    serial_wall_s: float
    sharded_wall_s: float
    byte_identical: bool
    events: int
    trace_digest: str | None

    @property
    def speedup(self) -> float:
        return self.serial_wall_s / max(self.sharded_wall_s, 1e-9)


def shard_speedup(spec: Any, processes: bool = True) -> ShardSpeedup:
    """Run ``spec`` serially and sharded, compare byte-for-byte, time both.

    The byte-identity flag covers the golden-trace digest, the fired-event
    digest and the CCT list — the same artifacts the differential battery
    pins — so a bench run that reports a speedup also *proves* the sharded
    result is the serial result.
    """
    import dataclasses

    from ..api import run

    spec = dataclasses.replace(spec, record_trace=True, event_digest=True)
    t0 = time.perf_counter()
    serial = run(dataclasses.replace(spec, shards=1))
    serial_wall = time.perf_counter() - t0
    t0 = time.perf_counter()
    sharded = run_scenario_sharded(spec, processes=processes)
    sharded_wall = time.perf_counter() - t0
    identical = (
        serial.trace_digest == sharded.trace_digest
        and serial.replay.event_digest == sharded.replay.event_digest
        and serial.ccts == sharded.ccts
    )
    return ShardSpeedup(
        shards=spec.shards,
        serial_wall_s=serial_wall,
        sharded_wall_s=sharded_wall,
        byte_identical=identical,
        events=serial.replay.events_processed,
        trace_digest=serial.trace_digest,
    )


def flatten(results: Sequence[Any]) -> list[Any]:
    """Concatenate per-point results that are themselves lists of rows."""
    out: list[Any] = []
    for result in results:
        if isinstance(result, list):
            out.extend(result)
        else:
            out.append(result)
    return out
