"""Process-pool sweep executor for the figure experiments.

Every §4 figure replays dozens of independent (scheme × x-value) scenario
points, each a self-contained simulation on its own fabric.  This module
fans those points out over a pool of worker processes:

* a :class:`SweepPoint` is a picklable work item — a module-level function
  plus keyword arguments, including every seed the point needs, so a
  worker process reproduces the point bit-for-bit with no shared state;
* :func:`run_sweep` executes a list of points with ``jobs`` workers,
  **preserving point order** in the returned results regardless of
  completion order, and reporting progress as points finish;
* ``jobs=1`` (the library default) runs the points in-process with no
  executor at all, so serial and parallel sweeps of the same grid are
  byte-identical — the parallel path only changes *where* a point runs,
  never *what* it computes.

Worker processes are plain ``ProcessPoolExecutor`` children; a point that
raises propagates its exception to the caller after the pool shuts down.
"""

from __future__ import annotations

import os
import sys
import time
from collections.abc import Iterable, Sequence
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import Any, Callable

ProgressFn = Callable[[int, int, "SweepPoint"], None]


@dataclass(frozen=True)
class SweepPoint:
    """One picklable grid point: ``fn(**kwargs)`` in some process.

    ``fn`` must be importable at module level (pickling sends a reference,
    not code) and ``kwargs`` must carry everything the point depends on —
    in particular its deterministic seed.  ``label`` is only for progress
    reporting.
    """

    fn: Callable[..., Any]
    kwargs: dict = field(default_factory=dict)
    label: str = ""

    def __call__(self) -> Any:
        return self.fn(**self.kwargs)


def resolve_jobs(jobs: int | None) -> int:
    """Worker count for a sweep: ``None`` means one per CPU."""
    if jobs is None:
        return os.cpu_count() or 1
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    return jobs


def stderr_progress(prefix: str = "") -> ProgressFn:
    """A progress reporter printing one line per finished point."""
    started = time.perf_counter()

    def report(done: int, total: int, point: SweepPoint) -> None:
        elapsed = time.perf_counter() - started
        label = f" {point.label}" if point.label else ""
        print(
            f"{prefix}[{done}/{total}]{label} ({elapsed:.1f}s elapsed)",
            file=sys.stderr,
            flush=True,
        )

    return report


def _run_point(point: SweepPoint) -> Any:
    return point()


def run_sweep(
    points: Iterable[SweepPoint],
    jobs: int | None = 1,
    progress: ProgressFn | None = None,
) -> list[Any]:
    """Execute every point; results come back in point order.

    ``jobs=1`` runs in-process (no pool, no pickling — the byte-identical
    serial path); ``jobs=None`` uses one worker per CPU.  Exceptions from
    worker points propagate to the caller.
    """
    points = list(points)
    jobs = resolve_jobs(jobs)
    total = len(points)
    if jobs == 1 or total <= 1:
        results = []
        for i, point in enumerate(points):
            results.append(point())
            if progress is not None:
                progress(i + 1, total, point)
        return results

    results: list[Any] = [None] * total
    with ProcessPoolExecutor(max_workers=min(jobs, total)) as pool:
        futures = {
            pool.submit(_run_point, point): i for i, point in enumerate(points)
        }
        done = 0
        for future in as_completed(futures):
            index = futures[future]
            results[index] = future.result()  # re-raises worker exceptions
            done += 1
            if progress is not None:
                progress(done, total, points[index])
    return results


def flatten(results: Sequence[Any]) -> list[Any]:
    """Concatenate per-point results that are themselves lists of rows."""
    out: list[Any] = []
    for result in results:
        if isinstance(result, list):
            out.extend(result)
        else:
            out.append(result)
    return out
