"""Switch-state under churn: thousands of concurrent collectives (§1, §3).

Simulates a stream of training jobs arriving and departing on the paper's
fat-tree and tracks, per aggregation switch, the multicast entries each
scheme needs over time:

* **ip-multicast** — one entry per *distinct* active receiver-ToR subset;
* **orca** — one entry per active group at each switch on its tree
  (installed by the controller at start, removed at completion);
* **peel** — the k-1 pre-installed prefix rules, independent of load
  ("deploy-once, touch-never": zero control-plane updates).

Reports the peak per-switch entry count, whether it overflows a commodity
TCAM, and the number of control-plane rule updates each scheme performed.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass

from ..core import optimal_symmetric_tree, rule_count
from ..state import DEFAULT_CAPACITY
from ..topology import FatTree
from ..topology import addressing as addr
from ..workloads import place_job


@dataclass(frozen=True)
class ChurnRow:
    scheme: str
    peak_entries_per_switch: int
    rule_updates: int
    overflows_tcam: bool


def _fanout_subsets(topo: FatTree, tree) -> list[tuple[str, frozenset[int]]]:
    """(agg switch, receiver-ToR-id subset) pairs a tree needs served."""
    out = []
    for node in tree.nodes:
        if addr.kind_of(node) is not addr.NodeKind.AGG:
            continue
        tors = frozenset(
            topo.tor_identifier(c)
            for c in tree.children(node)
            if addr.kind_of(c) is addr.NodeKind.TOR
        )
        if tors:
            out.append((node, tors))
    return out


def run(
    num_jobs: int = 4000,
    gpu_choices: tuple[int, ...] = (16, 32, 64, 128, 256),
    mean_duration_s: float = 2.0,
    arrival_rate_per_s: float = 2000.0,
    tcam_capacity: int = DEFAULT_CAPACITY,
    seed: int = 0,
) -> list[ChurnRow]:
    topo = FatTree(8, hosts_per_tor=32)
    rng = random.Random(seed)

    # Generate the job timeline once; reuse it for every scheme.
    events: list[tuple[float, int, int]] = []  # (time, +1/-1, job id)
    jobs = []
    t = 0.0
    for job_id in range(num_jobs):
        t += rng.expovariate(arrival_rate_per_s)
        duration = rng.expovariate(1 / mean_duration_s)
        group = place_job(topo, rng.choice(gpu_choices), gpus_per_host=1, rng=rng)
        fanouts = _fanout_subsets(
            topo, optimal_symmetric_tree(topo, group.source.host, group.receiver_hosts)
        )
        jobs.append(fanouts)
        heapq.heappush(events, (t, +1, job_id))
        heapq.heappush(events, (t + duration, -1, job_id))

    # ip-multicast: per switch, refcount per distinct subset.
    # orca: per switch, one entry per active group.
    ip_entries: dict[str, dict[frozenset[int], int]] = {}
    orca_entries: dict[str, int] = {}
    ip_peak = orca_peak = 0
    ip_updates = orca_updates = 0

    ordered = sorted(events)
    for _, delta, job_id in ordered:
        for switch, subset in jobs[job_id]:
            table = ip_entries.setdefault(switch, {})
            if delta > 0:
                count = table.get(subset, 0)
                if count == 0:
                    ip_updates += 1
                table[subset] = count + 1
                orca_entries[switch] = orca_entries.get(switch, 0) + 1
                orca_updates += 1
            else:
                table[subset] -= 1
                if table[subset] == 0:
                    del table[subset]
                    ip_updates += 1
                orca_entries[switch] -= 1
                orca_updates += 1
        ip_peak = max(ip_peak, max((len(t) for t in ip_entries.values()), default=0))
        orca_peak = max(orca_peak, max(orca_entries.values(), default=0))

    peel_rules = rule_count(topo.k)
    return [
        ChurnRow("ip-multicast", ip_peak, ip_updates, ip_peak > tcam_capacity),
        ChurnRow("orca", orca_peak, orca_updates, orca_peak > tcam_capacity),
        ChurnRow("peel", peel_rules, 0, peel_rules > tcam_capacity),
    ]


def format_table(rows: list[ChurnRow]) -> str:
    header = (
        f"{'scheme':<14}{'peak entries/switch':>21}{'rule updates':>14}"
        f"{'TCAM':>12}"
    )
    lines = [header, "-" * len(header)]
    for r in rows:
        lines.append(
            f"{r.scheme:<14}{r.peak_entries_per_switch:>21}"
            f"{r.rule_updates:>14}{'OVERFLOW' if r.overflows_tcam else 'fits':>12}"
        )
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover
    print(format_table(run()))
