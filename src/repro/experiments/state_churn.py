"""Switch-state under churn: thousands of concurrent collectives (§1, §3).

Simulates a stream of training jobs arriving and departing on the paper's
fat-tree and tracks, per aggregation switch, the multicast entries each
scheme needs over time:

* **ip-multicast** — one entry per *distinct* active receiver-ToR subset;
* **orca** — one entry per active group at each switch on its tree
  (installed by the controller at start, removed at completion);
* **peel** — the k-1 pre-installed prefix rules, independent of load
  ("deploy-once, touch-never": zero control-plane updates).

Capacity, churn and overflow accounting run through the serving layer's
:class:`~repro.serve.state.FabricState` (per-switch
:class:`~repro.state.tcam.TcamTable` models), so this experiment and the
:mod:`repro.serve` runtime measure control-plane churn identically.

Reports the peak per-switch entry count, whether it overflows a commodity
TCAM, and the number of control-plane rule updates each scheme performed.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass

from ..core import optimal_symmetric_tree, rule_count
from ..serve.state import FabricState, IpMulticastStatePolicy, OrcaStatePolicy
from ..state import DEFAULT_CAPACITY
from ..topology import FatTree
from ..topology import addressing as addr
from ..workloads import place_job


@dataclass(frozen=True)
class ChurnRow:
    scheme: str
    peak_entries_per_switch: int
    rule_updates: int
    overflows_tcam: bool


def _fanout_subsets(topo: FatTree, tree) -> list[tuple[str, frozenset[int]]]:
    """(agg switch, receiver-ToR-id subset) pairs a tree needs served."""
    out = []
    for node in tree.nodes:
        if addr.kind_of(node) is not addr.NodeKind.AGG:
            continue
        tors = frozenset(
            topo.tor_identifier(c)
            for c in tree.children(node)
            if addr.kind_of(c) is addr.NodeKind.TOR
        )
        if tors:
            out.append((node, tors))
    return out


def run(
    num_jobs: int = 4000,
    gpu_choices: tuple[int, ...] = (16, 32, 64, 128, 256),
    mean_duration_s: float = 2.0,
    arrival_rate_per_s: float = 2000.0,
    tcam_capacity: int = DEFAULT_CAPACITY,
    seed: int = 0,
) -> list[ChurnRow]:
    topo = FatTree(8, hosts_per_tor=32)
    rng = random.Random(seed)

    # Generate the job timeline once; reuse it for every scheme.
    events: list[tuple[float, int, int]] = []  # (time, +1/-1, job id)
    jobs = []
    t = 0.0
    for job_id in range(num_jobs):
        t += rng.expovariate(arrival_rate_per_s)
        duration = rng.expovariate(1 / mean_duration_s)
        group = place_job(topo, rng.choice(gpu_choices), gpus_per_host=1, rng=rng)
        fanouts = _fanout_subsets(
            topo, optimal_symmetric_tree(topo, group.source.host, group.receiver_hosts)
        )
        jobs.append(fanouts)
        heapq.heappush(events, (t, +1, job_id))
        heapq.heappush(events, (t + duration, -1, job_id))

    # Both per-group schemes account through the same TcamTable-backed
    # fabric state the serving runtime uses: ip-multicast refcounts shared
    # per-subset entries, orca installs/removes one entry per group per
    # tree switch.
    ip_policy, orca_policy = IpMulticastStatePolicy(), OrcaStatePolicy()
    ip_state = FabricState(capacity=tcam_capacity, strict=False)
    orca_state = FabricState(capacity=tcam_capacity, strict=False)

    for _, delta, job_id in sorted(events):
        if delta > 0:
            ip_state.install_group(job_id, ip_policy.demand(job_id, jobs[job_id]))
            orca_state.install_group(
                job_id, orca_policy.demand(job_id, jobs[job_id])
            )
        else:
            ip_state.remove_group(job_id)
            orca_state.remove_group(job_id)

    peel_rules = rule_count(topo.k)
    return [
        ChurnRow(
            "ip-multicast",
            ip_state.peak_entries_per_switch,
            ip_state.total_updates,
            ip_state.overflowed,
        ),
        ChurnRow(
            "orca",
            orca_state.peak_entries_per_switch,
            orca_state.total_updates,
            orca_state.overflowed,
        ),
        ChurnRow("peel", peel_rules, 0, peel_rules > tcam_capacity),
    ]


def format_table(rows: list[ChurnRow]) -> str:
    header = (
        f"{'scheme':<14}{'peak entries/switch':>21}{'rule updates':>14}"
        f"{'TCAM':>12}"
    )
    lines = [header, "-" * len(header)]
    for r in rows:
        lines.append(
            f"{r.scheme:<14}{r.peak_entries_per_switch:>21}"
            f"{r.rule_updates:>14}{'OVERFLOW' if r.overflows_tcam else 'fits':>12}"
        )
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover
    print(format_table(run()))
