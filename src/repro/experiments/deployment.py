"""§3.4 "Incremental deployment": which tier is worth upgrading?

Frames the schemes as deployment stages on the same workload:

* ``unicast``  — no multicast support anywhere (Ring, today's baseline);
* ``static``   — PEEL prefix rules at aggregation switches only (§3.2);
* ``cores``    — plus programmable cores doing two-stage refinement (§3.3);
* ``full``     — per-group state everywhere (the Steiner-optimal ideal).

Reports mean/p99 CCT and total fabric bytes per stage, i.e. the return on
each additional investment.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..api import ScenarioSpec
from ..api import run as run_scenario
from ..workloads import generate_jobs
from .common import MB, paper_fattree, sim_config

STAGES = (
    ("unicast", "ring"),
    ("static", "peel"),
    ("cores", "peel+cores"),
    ("full", "optimal"),
)


@dataclass(frozen=True)
class DeploymentRow:
    stage: str
    scheme: str
    mean_s: float
    p99_s: float
    fabric_bytes: int


def run(
    message_mb: int = 64,
    num_gpus: int = 256,
    num_jobs: int = 8,
    offered_load: float = 0.3,
    seed: int = 7,
) -> list[DeploymentRow]:
    topo = paper_fattree()
    msg = message_mb * MB
    jobs = generate_jobs(
        topo, num_jobs, num_gpus, msg, offered_load=offered_load,
        gpus_per_host=1, seed=seed,
    )
    cfg = sim_config(msg)
    rows = []
    for stage, scheme in STAGES:
        result = run_scenario(
            ScenarioSpec(
                topology=topo, scheme=scheme, jobs=tuple(jobs), config=cfg
            )
        )
        rows.append(
            DeploymentRow(
                stage, scheme, result.stats.mean_s, result.stats.p99_s,
                result.total_bytes,
            )
        )
    return rows


def format_table(rows: list[DeploymentRow]) -> str:
    header = (
        f"{'stage':<10}{'scheme':<12}{'mean (ms)':>11}{'p99 (ms)':>10}"
        f"{'fabric GiB':>12}"
    )
    lines = [header, "-" * len(header)]
    for r in rows:
        lines.append(
            f"{r.stage:<10}{r.scheme:<12}{r.mean_s * 1e3:>11.2f}"
            f"{r.p99_s * 1e3:>10.2f}{r.fabric_bytes / 2**30:>12.1f}"
        )
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover
    print(format_table(run()))
