"""Dynamic-fault demo: fail a loaded spine link mid-Broadcast and watch
PEEL re-peel around it (§2.3) with the invariant checker attached.

Unlike :mod:`.fig7_failures` — which fails links *before* planning — this
scenario injects the fault while bytes are in flight: queued and in-flight
copies on the dead link are blackholed, the fault injector re-plans the
multicast trees for the still-unfinished receivers on the degraded
topology, and selective-repeat repair re-multicasts whatever was lost.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..api import ScenarioSpec
from ..api import run as run_scenario
from ..collectives import scheme_by_name
from ..core import Peel
from ..faults import FaultSchedule
from ..steiner import metric_closure_tree
from ..topology import LeafSpine
from ..workloads import generate_jobs
from .common import MB, sim_config

#: Schemes that register a replanner with the fault injector.  Orca's
#: controller re-installs the trunk tree; its rack-local relay legs (like
#: ring/tree relay chains) are not fault-recoverable.
RECOVERABLE_SCHEMES = (
    "peel", "peel+cores", "optimal", "orca",
    "elmo", "bert", "rsbf", "lipsin", "ip-multicast",
)


@dataclass(frozen=True)
class FaultDemoResult:
    scheme: str
    link: tuple[str, str] | None  # None when an explicit schedule was given
    down_at_s: float | None
    up_at_s: float | None
    num_events: int
    clean_cct_s: float
    faulted_cct_s: float
    repeels: list  # (time_s, transfer_name, link) tuples
    failure_drops: int
    violations: list
    trace_digest: str | None


def _orca_trunk(topo, source: str, receivers: list[str]):
    """Replicates :class:`~repro.collectives.orca.OrcaBroadcast`'s
    controller trunk — the optimal tree from the source to one agent NIC
    per remote rack — so the demo fails a link the trunk actually uses."""
    from ..collectives import locality_key
    from ..collectives.orca import server_of

    racks: dict[str, dict[tuple, list[str]]] = {}
    for endpoint in sorted({source, *receivers}, key=locality_key):
        rack = topo.tor_of(endpoint)
        racks.setdefault(rack, {}).setdefault(server_of(endpoint), []).append(endpoint)
    src_rack = topo.tor_of(source)
    agents = [
        servers[min(servers)][0]
        for rack, servers in sorted(racks.items())
        if rack != src_rack
    ]
    if topo.is_symmetric:
        from ..core import optimal_symmetric_tree

        return optimal_symmetric_tree(topo, source, agents)
    return metric_closure_tree(topo.graph, source, agents)


def pick_loaded_link(topo, scheme_name: str, source: str, receivers: list[str]):
    """A spine-leaf link the scheme's plan actually uses (so failing it
    mid-run forces a re-plan rather than a no-op)."""
    if scheme_name.startswith("peel"):
        trees = Peel(topo).plan(source, receivers).static_trees
    elif scheme_name == "orca":
        trees = [_orca_trunk(topo, source, receivers)]
    elif topo.is_symmetric:
        # Single-tree schemes (optimal, the source-routed family) plan
        # the optimal symmetric tree on symmetric fabrics.
        from ..core import optimal_symmetric_tree

        trees = [optimal_symmetric_tree(topo, source, receivers)]
    else:
        trees = [metric_closure_tree(topo.graph, source, receivers)]
    for tree in trees:
        for child, parent in tree.parent.items():
            if parent is not None and parent.startswith("spine"):
                return (parent, child)
    raise RuntimeError("plan uses no spine links; group too local for the demo")


def run(
    scheme: str = "peel",
    num_gpus: int = 32,
    message_mb: int = 8,
    schedule: FaultSchedule | None = None,
    restore: bool = True,
    seed: int = 3,
    spines: int = 4,
    leaves: int = 8,
    hosts_per_leaf: int = 4,
    record_trace: bool = False,
) -> FaultDemoResult:
    """Run the same Broadcast clean and faulted; invariants are always on.

    Without an explicit ``schedule``, a spine-leaf link carrying the
    collective goes down at 40% of the clean CCT (and comes back after the
    clean CCT would have elapsed, unless ``restore=False``).
    """
    if scheme not in RECOVERABLE_SCHEMES:
        raise ValueError(
            f"scheme {scheme!r} does not re-plan on faults; "
            f"pick one of {RECOVERABLE_SCHEMES}"
        )
    scheme_obj = scheme_by_name(scheme)
    topo = LeafSpine(spines, leaves, hosts_per_leaf)
    msg = message_mb * MB
    cfg = sim_config(msg, seed=seed)
    jobs = generate_jobs(topo, 1, num_gpus, msg, gpus_per_host=1, seed=seed)
    job = jobs[0]

    clean = run_scenario(
        ScenarioSpec(
            topology=topo, scheme=scheme_obj, jobs=(job,), config=cfg,
            check_invariants=True,
        )
    )
    clean_cct = clean.stats.mean_s

    down_at = up_at = link = None
    if schedule is None:
        source = job.group.source.host
        link = pick_loaded_link(topo, scheme, source, job.group.receiver_hosts)
        down_at = job.arrival_s + 0.4 * clean_cct
        schedule = FaultSchedule().link_down(*link, at_s=down_at)
        if restore:
            up_at = job.arrival_s + 2.0 * clean_cct
            schedule.link_up(*link, at_s=up_at)

    faulted = run_scenario(
        ScenarioSpec(
            topology=topo,
            scheme=scheme_obj,
            jobs=(job,),
            config=cfg,
            check_invariants=True,
            fault_schedule=schedule,
            record_trace=record_trace,
        )
    )
    return FaultDemoResult(
        scheme=scheme,
        link=link,
        down_at_s=down_at,
        up_at_s=up_at,
        num_events=len(schedule),
        clean_cct_s=clean_cct,
        faulted_cct_s=faulted.stats.mean_s,
        repeels=list(faulted.repeels),
        failure_drops=faulted.failure_drops,
        violations=list(faulted.invariant_violations),
        trace_digest=faulted.trace_digest,
    )


def format_result(r: FaultDemoResult) -> str:
    lines = [f"scheme            {r.scheme}"]
    if r.link is not None:
        lines.append(
            f"failed link       {r.link[0]} -- {r.link[1]} "
            f"(down at {r.down_at_s * 1e3:.3f} ms)"
        )
    else:
        lines.append(f"fault schedule    {r.num_events} explicit event(s)")
    lines += [
        f"clean CCT         {r.clean_cct_s * 1e3:.3f} ms",
        f"faulted CCT       {r.faulted_cct_s * 1e3:.3f} ms "
        f"({r.faulted_cct_s / r.clean_cct_s:.2f}x)",
        f"copies blackholed {r.failure_drops}",
        f"re-plans          {len(r.repeels)}",
    ]
    for t, name, link in r.repeels:
        lines.append(f"  {t * 1e3:9.3f} ms  {name} re-planned around "
                     f"{link[0]} -- {link[1]}")
    lines.append(
        f"invariants        "
        f"{'OK (0 violations)' if not r.violations else r.violations}"
    )
    if r.trace_digest:
        lines.append(f"trace digest      {r.trace_digest}")
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover
    print(format_result(run()))
