"""§4 ablation: PEEL's sender-side DCQCN guard timer.

Multicast turns one ECN mark into a CNP per receiver; reacting to each CNP
collapses the sender's rate.  The paper reports that replacing the
receiver-side rate limiter with a 50 us sender-side guard timer cuts the
99th-percentile CCT of a 64-GPU, 32 MB Broadcast by ~12x.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..api import ScenarioSpec
from ..api import run as run_scenario
from ..sim import DcqcnConfig
from ..workloads import generate_jobs
from .common import MB, paper_fattree, sim_config


@dataclass(frozen=True)
class GuardRow:
    variant: str  # "guard-timer" | "per-cnp"
    mean_s: float
    p99_s: float
    rate_reactions: str  # qualitative note


def run(
    message_mb: int = 32,
    num_gpus: int = 64,
    num_jobs: int = 16,
    offered_load: float = 0.8,
    seed: int = 3,
) -> list[GuardRow]:
    topo = paper_fattree()
    msg = message_mb * MB
    jobs = generate_jobs(
        topo, num_jobs, num_gpus, msg, offered_load=offered_load,
        gpus_per_host=1, seed=seed,
    )
    rows = []
    for variant, per_cnp in (("guard-timer", False), ("per-cnp", True)):
        cfg = sim_config(msg)
        cfg.dcqcn = replace(DcqcnConfig(), per_cnp_reaction=per_cnp)
        result = run_scenario(
            ScenarioSpec(
                topology=topo, scheme="peel", jobs=tuple(jobs), config=cfg
            )
        )
        rows.append(
            GuardRow(
                variant,
                result.stats.mean_s,
                result.stats.p99_s,
                "1 per 50us window" if not per_cnp else "every CNP",
            )
        )
    return rows


def tail_improvement(rows: list[GuardRow]) -> float:
    """p99 of the naive variant over p99 with the guard timer."""
    guard = next(r for r in rows if r.variant == "guard-timer")
    naive = next(r for r in rows if r.variant == "per-cnp")
    return naive.p99_s / guard.p99_s


if __name__ == "__main__":  # pragma: no cover
    rows = run()
    for r in rows:
        print(f"{r.variant:<12} mean={r.mean_s * 1e3:.2f}ms p99={r.p99_s * 1e3:.2f}ms")
    print(f"tail improvement: {tail_improvement(rows):.1f}x")
