"""The paper's §1 headline numbers, recomputed.

* switch state: 63 static rules at k=64 vs >4x10^9 per-group entries;
* header: <8 B per packet up to k=128;
* bandwidth: PEEL uses substantially less aggregate bandwidth than a
  unicast ring (the paper reports 23% for 8 MB Broadcasts);
* tree quality: PEEL's trees within a few percent of the Steiner optimum.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..collectives import locality_key
from ..core import (
    Peel,
    hierarchical_header_bytes,
    optimal_symmetric_tree,
    rule_count,
)
from ..metrics import chain_link_loads, summarize_loads
from ..state import worst_case_group_entries
from ..topology import FatTree
from ..workloads import place_job


@dataclass(frozen=True)
class StateRow:
    k: int
    hosts: int
    peel_rules: int
    ip_multicast_entries: int
    header_bytes: int


def state_table(ks: tuple[int, ...] = (8, 16, 32, 64, 128)) -> list[StateRow]:
    rows = []
    for k in ks:
        rows.append(
            StateRow(
                k=k,
                hosts=k**3 // 4,
                peel_rules=rule_count(k),
                ip_multicast_entries=worst_case_group_entries(k),
                header_bytes=hierarchical_header_bytes(k),
            )
        )
    return rows


@dataclass(frozen=True)
class BandwidthHeadline:
    ring_traversals: int
    peel_static_traversals: int
    optimal_traversals: int
    peel_saving_vs_ring: float  # fraction of ring bytes saved
    peel_overhead_vs_optimal: float  # fraction above optimal


def bandwidth_headline(
    num_gpus: int = 64, trials: int = 20, seed: int = 0
) -> BandwidthHeadline:
    """Average link-traversal accounting over random bin-packed groups."""
    topo = FatTree(8, hosts_per_tor=32)
    rng = random.Random(seed)
    peel = Peel(topo)
    ring_total = peel_total = optimal_total = 0
    for _ in range(trials):
        group = place_job(topo, num_gpus, gpus_per_host=1, rng=rng)
        src = group.source.host
        dests = group.receiver_hosts
        if not dests:
            continue
        chain = [src] + sorted(dests, key=locality_key)
        ring_total += summarize_loads(chain_link_loads(topo, chain)).total_traversals
        plan = peel.plan(src, dests)
        peel_total += plan.static_cost()
        optimal_total += optimal_symmetric_tree(topo, src, dests).cost
    return BandwidthHeadline(
        ring_traversals=ring_total,
        peel_static_traversals=peel_total,
        optimal_traversals=optimal_total,
        peel_saving_vs_ring=1 - peel_total / ring_total,
        peel_overhead_vs_optimal=peel_total / optimal_total - 1,
    )


def format_state_table(rows: list[StateRow]) -> str:
    header = (
        f"{'k':>5}{'hosts':>9}{'PEEL rules':>12}"
        f"{'IP mcast entries':>19}{'header B':>10}"
    )
    lines = [header, "-" * len(header)]
    for r in rows:
        lines.append(
            f"{r.k:>5}{r.hosts:>9}{r.peel_rules:>12}"
            f"{r.ip_multicast_entries:>19.3g}{r.header_bytes:>10}"
        )
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover
    print(format_state_table(state_table()))
    bw = bandwidth_headline()
    print(
        f"\nPEEL saves {bw.peel_saving_vs_ring:.0%} of ring bytes; "
        f"{bw.peel_overhead_vs_optimal:.1%} above optimal"
    )
