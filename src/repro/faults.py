"""Dynamic fault injection: failing the fabric *while* collectives run.

:mod:`repro.topology.failures` removes links before a scenario starts; this
module breaks things mid-collective, which is where multicast dataplanes
actually earn their keep (§2.3, Fig. 7).  A :class:`FaultSchedule` is a
timeline of :class:`FaultEvent` actions — link down/up flaps, whole-switch
drains (DoR maintenance), transient segment drops — and a
:class:`FaultInjector` installs it on a
:class:`~repro.collectives.env.CollectiveEnv`:

* at each event time the runtime network is updated (downed ports blackhole
  traffic; queued and on-the-wire copies die) and the planning topology is
  kept in sync, so any tree built after the event routes around the damage;
* transfers registered for recovery (the multicast schemes register
  automatically) are *re-peeled*: after a detection delay the scheme's
  planner rebuilds trees for the still-unfinished receivers on the degraded
  topology, and :meth:`repro.sim.transfer.Transfer.reroute` re-multicasts
  whatever the failure ate;
* transient drops are repaired by the transfers' selective-repeat machinery
  (tracking is forced on for every transfer while an injector is
  installed).

Ring and binary-tree relay chains are *not* registered — a broken relay
pipeline is exactly the fragility the paper's multicast argument is about —
so a schedule that severs a relay path will surface as an unfinished
collective rather than being silently papered over.

Schedules serialize to/from JSON (see :meth:`FaultSchedule.from_json`)::

    [{"at_ms": 2.0, "action": "link_down", "link": ["spine:0", "leaf:3"]},
     {"at_ms": 5.0, "action": "link_up",   "link": ["spine:0", "leaf:3"]},
     {"at_ms": 1.0, "action": "switch_down", "switch": "spine:1"},
     {"at_ms": 3.0, "action": "drop", "link": ["leaf:0", "spine:1"], "count": 2}]
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, NamedTuple

if TYPE_CHECKING:  # pragma: no cover
    from .collectives.env import CollectiveEnv
    from .core.protection import ProtectionPlan
    from .sim.transfer import Transfer
    from .steiner import MulticastTree

LINK_DOWN = "link_down"
LINK_UP = "link_up"
SWITCH_DOWN = "switch_down"
SWITCH_UP = "switch_up"
DROP = "drop"

ACTIONS = frozenset({LINK_DOWN, LINK_UP, SWITCH_DOWN, SWITCH_UP, DROP})

#: Replans routes to the still-unfinished receivers on the (already
#: degraded) topology; returns the new route trees.
ReplanFn = Callable[[list[str]], "list[MulticastTree]"]


class Repeel(NamedTuple):
    """One successful mid-run re-peel.

    Tuple-compatible with the historical ``(time_s, transfer, link)``
    entries — existing unpacking code keeps working — but with named,
    typed fields for :class:`repro.api.ScenarioResult`.
    """

    time_s: float
    transfer: str
    link: tuple[str, str]


class Failover(NamedTuple):
    """One successful *local* fast-failover: a protected link died and the
    affected transfer flipped to its pre-installed backup subtree at the cut
    event itself — zero detection delay, no re-plan (cf. :class:`Repeel`,
    the reactive path)."""

    time_s: float
    transfer: str
    link: tuple[str, str]


class _ProtectedTransfer:
    """Fast-failover group state for one transfer (picklable, no closures —
    this lives in the fault injector, which must survive replay snapshots).

    One *slot* per static tree of the transfer's plan: ``[tree,
    primary_index, entry_key]`` where ``entry_key`` is ``None`` while the
    slot still runs its primary tree and the owning
    ``(tree_index, protected_link)`` key once it switched to a backup.
    """

    __slots__ = ("transfer", "plan", "slots")

    def __init__(self, transfer: "Transfer", plan: "ProtectionPlan") -> None:
        self.transfer = transfer
        self.plan = plan
        self.slots: list[list] = [
            [tree, index, None]
            for index, tree in enumerate(transfer.static_trees)
        ]

    @staticmethod
    def _uses(tree: "MulticastTree", u: str, v: str) -> bool:
        return tree.parent.get(v) == u or tree.parent.get(u) == v

    def try_failover(self, u: str, v: str, ports) -> "list[MulticastTree] | None":
        """The transfer's new tree list if *every* slot crossing the dead
        link has a healthy pre-installed backup; ``None`` hands the cut to
        the reactive re-peel path."""
        if self.transfer.complete:
            return None
        affected = [s for s in self.slots if self._uses(s[0], u, v)]
        if not affected:
            return None
        flips: list[tuple[list, tuple, "MulticastTree"]] = []
        for slot in affected:
            _tree, primary, entry_key = slot
            if entry_key is None:
                entry = self.plan.entry_for(primary, u, v)
                key = None if entry is None else (primary, entry.link)
            else:
                # Already on a backup: the same fast-failover group's next
                # live bucket takes over (no new watch entry for backups).
                entry = self.plan.entries.get(entry_key)
                key = entry_key
            backup = None
            if entry is not None:
                for candidate in entry.backups:
                    if all(not ports[edge].down for edge in candidate.edges):
                        backup = candidate
                        break
            if backup is None:
                return None  # some slot is unprotected: reactive fallback
            flips.append((slot, key, backup))
        for slot, key, backup in flips:
            slot[0] = backup
            slot[2] = key
        return [slot[0] for slot in self.slots]


@dataclass(frozen=True, order=True)
class FaultEvent:
    """One scheduled fabric fault (times are simulated seconds)."""

    at_s: float
    action: str
    target: tuple[str, ...]  # (u, v) for link actions, (switch,) for drains
    count: int = 1  # DROP only: how many copies to kill

    def __post_init__(self) -> None:
        if self.at_s < 0:
            raise ValueError(f"fault time must be >= 0, got {self.at_s}")
        if self.action not in ACTIONS:
            raise ValueError(
                f"unknown fault action {self.action!r}; choose from "
                f"{sorted(ACTIONS)}"
            )
        want = 1 if self.action in (SWITCH_DOWN, SWITCH_UP) else 2
        if len(self.target) != want:
            raise ValueError(
                f"{self.action} needs {want} target node(s), got {self.target}"
            )
        if self.count < 1:
            raise ValueError("count must be >= 1")

    def to_dict(self) -> dict:
        out: dict = {"at_ms": self.at_s * 1e3, "action": self.action}
        if self.action in (SWITCH_DOWN, SWITCH_UP):
            out["switch"] = self.target[0]
        else:
            out["link"] = list(self.target)
        if self.action == DROP and self.count != 1:
            out["count"] = self.count
        return out

    @classmethod
    def from_dict(cls, raw: dict) -> "FaultEvent":
        if "at_s" in raw:
            at_s = float(raw["at_s"])
        elif "at_ms" in raw:
            at_s = float(raw["at_ms"]) / 1e3
        else:
            raise ValueError(f"fault event needs at_s or at_ms: {raw!r}")
        action = raw.get("action")
        if action in (SWITCH_DOWN, SWITCH_UP):
            target = (str(raw["switch"]),)
        else:
            link = raw.get("link")
            if not link or len(link) != 2:
                raise ValueError(f"fault event needs a 2-node link: {raw!r}")
            target = (str(link[0]), str(link[1]))
        return cls(at_s, str(action), target, int(raw.get("count", 1)))


@dataclass
class FaultSchedule:
    """An ordered timeline of fabric faults."""

    events: list[FaultEvent] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.events = sorted(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    # -- builders -------------------------------------------------------------

    def add(self, event: FaultEvent) -> "FaultSchedule":
        self.events.append(event)
        self.events.sort()
        return self

    def link_down(self, u: str, v: str, at_s: float) -> "FaultSchedule":
        return self.add(FaultEvent(at_s, LINK_DOWN, (u, v)))

    def link_up(self, u: str, v: str, at_s: float) -> "FaultSchedule":
        return self.add(FaultEvent(at_s, LINK_UP, (u, v)))

    def link_flap(
        self, u: str, v: str, down_at_s: float, up_at_s: float
    ) -> "FaultSchedule":
        """Down at ``down_at_s``, back up at ``up_at_s``."""
        if up_at_s <= down_at_s:
            raise ValueError("link must come back up after it goes down")
        return self.link_down(u, v, down_at_s).link_up(u, v, up_at_s)

    def switch_drain(self, switch: str, at_s: float) -> "FaultSchedule":
        """DoR-style maintenance: every link of ``switch`` goes down."""
        return self.add(FaultEvent(at_s, SWITCH_DOWN, (switch,)))

    def switch_restore(self, switch: str, at_s: float) -> "FaultSchedule":
        return self.add(FaultEvent(at_s, SWITCH_UP, (switch,)))

    def drop_segments(
        self, u: str, v: str, at_s: float, count: int = 1
    ) -> "FaultSchedule":
        """Transient fault: the next ``count`` copies on ``u -> v`` die."""
        return self.add(FaultEvent(at_s, DROP, (u, v), count))

    # -- (de)serialization ----------------------------------------------------

    def to_json(self) -> str:
        return json.dumps([e.to_dict() for e in self.events], indent=2)

    @classmethod
    def from_json(cls, text: str) -> "FaultSchedule":
        raw = json.loads(text)
        if not isinstance(raw, list):
            raise ValueError("fault schedule JSON must be a list of events")
        return cls([FaultEvent.from_dict(item) for item in raw])

    @classmethod
    def load(cls, path) -> "FaultSchedule":
        with open(path, encoding="utf-8") as fh:
            return cls.from_json(fh.read())

    def save(self, path) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json())
            fh.write("\n")


class FaultInjector:
    """Binds a :class:`FaultSchedule` to a running collective environment.

    Created by :class:`~repro.collectives.env.CollectiveEnv` when a schedule
    is supplied; not normally constructed directly.  ``detection_delay_s``
    models the gap between a link dying and the control plane reacting
    (BFD/LLDP-scale, default 100 µs).
    """

    def __init__(
        self,
        env: "CollectiveEnv",
        schedule: FaultSchedule,
        detection_delay_s: float = 100e-6,
    ) -> None:
        if detection_delay_s < 0:
            raise ValueError("detection_delay_s must be >= 0")
        self.env = env
        self.schedule = schedule
        self.detection_delay_s = detection_delay_s
        self._recovery: list[tuple["Transfer", ReplanFn]] = []
        self._protection: list[_ProtectedTransfer] = []
        #: One :class:`Repeel` per successful re-peel.
        self.repeels: list[Repeel] = []
        #: One :class:`Failover` per successful local fast-failover.
        self.failovers: list[Failover] = []
        self.events_fired = 0
        # Transfers must track per-receiver segments from birth so a
        # mid-stream loss is repairable.
        env.network.fault_tolerant = True
        self._validate()
        for event in schedule:
            env.sim.schedule_at(event.at_s, self._fire, event)

    def _validate(self) -> None:
        ports = self.env.network.ports
        graph_nodes = set(self.env.topo.graph.nodes)
        for event in self.schedule:
            if event.action in (SWITCH_DOWN, SWITCH_UP):
                if event.target[0] not in graph_nodes:
                    raise ValueError(f"unknown switch {event.target[0]!r}")
            else:
                u, v = event.target
                if (u, v) not in ports:
                    raise ValueError(f"no such link: {u!r} -- {v!r}")

    # -- recovery registry -----------------------------------------------------

    def register(self, transfer: "Transfer", replan: ReplanFn) -> None:
        """Arrange for ``transfer`` to be re-peeled when a fault hits its
        route trees; ``replan`` maps unfinished receivers to fresh trees."""
        self._recovery.append((transfer, replan))

    def protect(self, transfer: "Transfer", plan: "ProtectionPlan | None") -> None:
        """Arm ``transfer`` with pre-installed backup subtrees: cuts hitting
        a protected link of its trees flip to the backup locally, at the cut
        event, instead of waiting out the detection delay."""
        if plan is None or not plan.entries:
            return
        self._protection.append(_ProtectedTransfer(transfer, plan))

    # -- event firing ----------------------------------------------------------

    def _fire(self, event: FaultEvent) -> None:
        self.events_fired += 1
        if event.action == LINK_DOWN:
            self._link_down(*event.target)
        elif event.action == LINK_UP:
            self._link_up(*event.target)
        elif event.action == SWITCH_DOWN:
            for nbr in self._switch_links(event.target[0]):
                self._link_down(event.target[0], nbr)
        elif event.action == SWITCH_UP:
            for nbr in self._switch_links(event.target[0]):
                self._link_up(event.target[0], nbr)
        elif event.action == DROP:
            self.env.network.drop_next_segments(*event.target, count=event.count)

    def _switch_links(self, switch: str) -> list[str]:
        """All physical neighbors of a switch (from the static port map)."""
        return sorted(
            dst for (src, dst) in self.env.network.ports if src == switch
        )

    def _link_down(self, u: str, v: str) -> None:
        network = self.env.network
        if network.ports[u, v].down:
            return
        network.set_link_down(u, v)
        topo = self.env.topo
        if topo.graph.has_edge(u, v):
            topo.fail_link(u, v)
        self._local_failover(u, v)
        self.env.sim.schedule(self.detection_delay_s, self._replan_around, (u, v))

    def _local_failover(self, u: str, v: str) -> None:
        """Fast-failover at the cut event itself: protected transfers whose
        trees cross the dead link flip to pre-installed backups with zero
        replan latency.  The detection-delayed :meth:`_replan_around` still
        fires but skips them (their new trees avoid the link), so protected
        cuts never show up as re-peels."""
        network = self.env.network
        for prot in self._protection:
            trees = prot.try_failover(u, v, network.ports)
            if trees is None:
                continue
            prot.transfer.reroute(trees)
            self.failovers.append(
                Failover(self.env.sim.now, prot.transfer.name, (u, v))
            )
            if network.observers:
                for ob in network.observers:
                    ob.on_failover(prot.transfer, (u, v))

    def _link_up(self, u: str, v: str) -> None:
        network = self.env.network
        if not network.ports[u, v].down:
            return
        network.set_link_up(u, v)
        if not self.env.topo.graph.has_edge(u, v):
            self.env.topo.restore_link(u, v)
        for transfer, _replan in self._recovery:
            transfer.nudge()

    def _replan_around(self, link: tuple[str, str]) -> None:
        u, v = link
        if not self.env.network.ports[u, v].down:
            return  # flapped back up before detection
        for transfer, replan in self._recovery:
            if transfer.complete or not self._routes_use(transfer, u, v):
                continue
            remaining = sorted(transfer.receivers - transfer.finished_hosts)
            if not remaining:
                continue
            transfer.reroute(replan(remaining))
            self.repeels.append(Repeel(self.env.sim.now, transfer.name, (u, v)))

    @staticmethod
    def _routes_use(transfer: "Transfer", u: str, v: str) -> bool:
        trees = list(transfer.static_trees)
        if transfer.refined_tree is not None:
            trees.append(transfer.refined_tree)
        return any(
            tree.parent.get(v) == u or tree.parent.get(u) == v for tree in trees
        )
