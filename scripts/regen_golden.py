#!/usr/bin/env python
"""Regenerate the observability golden fixtures under tests/golden/fixtures/.

The fixtures are the exact serialized metrics/trace bytes of the three
``repro.experiments.obs_demo`` scenarios.  ``tests/golden/test_golden_obs.py``
re-runs the scenarios (serially and through the process-pool executor) and
compares against these files byte-for-byte, so run this script — and commit
the diff — only when an intentional behaviour change moves the numbers::

    python scripts/regen_golden.py
"""

from __future__ import annotations

import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.experiments import obs_demo  # noqa: E402

FIXTURE_DIR = os.path.join(REPO_ROOT, "tests", "golden", "fixtures")


def main() -> None:
    os.makedirs(FIXTURE_DIR, exist_ok=True)
    summaries = []
    for scenario in obs_demo.SCENARIOS:
        result = obs_demo.run(scenario)
        for kind, payload in (
            ("metrics", result.metrics_json),
            ("trace", result.trace_json),
        ):
            path = os.path.join(FIXTURE_DIR, f"{scenario}_{kind}.json")
            with open(path, "w", encoding="utf-8", newline="") as fh:
                fh.write(payload)
            print(f"wrote {os.path.relpath(path, REPO_ROOT)}"
                  f" ({len(payload)} bytes)")
        summaries.append(result.summary + "\n")
    path = os.path.join(FIXTURE_DIR, "summaries.txt")
    with open(path, "w", encoding="utf-8", newline="") as fh:
        fh.writelines(summaries)
    print(f"wrote {os.path.relpath(path, REPO_ROOT)}")


if __name__ == "__main__":
    main()
