#!/usr/bin/env python3
"""Perf regression gate for CI's bench-smoke job.

Compares a freshly produced BENCH json (``scripts/bench_report.py``)
against the committed baseline and fails when a gated quantity regressed
past its threshold.  Two quantities are gated:

* ``headline.events_per_sec`` — the within-run throughput rate of the
  headline scenario (the fresh json may come from a ``--quick`` run and
  the baseline from a full one; the rate is the machine-comparable
  quantity, absolute wall times are not);
* ``obs.enabled_over_disabled`` — the observability cost ratio (enabled
  events/sec over disabled events/sec).  Being a same-run ratio it is
  box-speed independent; a relative drop past ``--obs-threshold`` fails.
  Skipped with a note when either json lacks the ``obs`` scenario (e.g.
  a ``--only headline`` run);
* ``shard_scaleup.byte_identical`` — the sharded-vs-serial identity flag
  from the fresh run must be ``true`` (sharding is only allowed to change
  wall time, never results).  Skipped with a note when the fresh json
  lacks the scenario (pre-shard checkouts).

Every failure message names the gated scenario key it fired on.

    python scripts/bench_gate.py BENCH_ci-smoke.json BENCH_8.json
    python scripts/bench_gate.py fresh.json base.json --threshold 0.25
"""

from __future__ import annotations

import argparse
import json
import sys


def load(path: str) -> dict:
    with open(path, encoding="utf-8") as fh:
        return json.load(fh)


def scenario_value(data: dict, path: str, scenario: str, key: str) -> float:
    """Fetch ``scenarios[scenario][key]``, failing loudly with the gated
    scenario key in the message."""
    try:
        value = data["scenarios"][scenario][key]
    except KeyError as exc:
        raise SystemExit(
            f"{path}: no {key} for scenario {scenario!r} "
            f"(gated key {scenario}.{key}; missing {exc})"
        )
    if not isinstance(value, (int, float)) or value <= 0:
        raise SystemExit(f"{path}: bad {scenario}.{key} value {value!r}")
    return float(value)


def has_scenario(data: dict, scenario: str) -> bool:
    return scenario in data.get("scenarios", {})


def check_drop(
    name: str, fresh: float, base: float, threshold: float
) -> bool:
    """One relative-drop check; returns True when it passes."""
    floor = base * (1 - threshold)
    ratio = fresh / base
    print(
        f"{name}: fresh {fresh:,.4g} vs baseline {base:,.4g} "
        f"({ratio:.2%}); floor {floor:,.4g} (-{threshold:.0%})"
    )
    if fresh < floor:
        print(
            f"REGRESSION[{name}]: dropped {1 - ratio:.1%} "
            f"(> {threshold:.0%} allowed)",
            file=sys.stderr,
        )
        return False
    return True


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("fresh", help="BENCH json from this run")
    parser.add_argument("baseline", help="committed baseline BENCH json")
    parser.add_argument(
        "--threshold", type=float, default=0.10, metavar="FRACTION",
        help="maximum tolerated events/sec drop (default: 0.10 = 10%%)",
    )
    parser.add_argument(
        "--obs-threshold", type=float, default=0.10, metavar="FRACTION",
        help="maximum tolerated relative drop of the obs "
        "enabled_over_disabled ratio (default: 0.10 = 10%%)",
    )
    parser.add_argument(
        "--scenario", default="headline",
        help="BENCH scenario whose events_per_sec is gated "
        "(default: headline)",
    )
    args = parser.parse_args(argv)
    for flag, value in (("--threshold", args.threshold),
                        ("--obs-threshold", args.obs_threshold)):
        if not 0 <= value < 1:
            parser.error(f"{flag} must be in [0, 1)")

    fresh_data = load(args.fresh)
    base_data = load(args.baseline)

    ok = check_drop(
        f"{args.scenario}.events_per_sec",
        scenario_value(fresh_data, args.fresh, args.scenario, "events_per_sec"),
        scenario_value(base_data, args.baseline, args.scenario, "events_per_sec"),
        args.threshold,
    )

    if has_scenario(fresh_data, "obs") and has_scenario(base_data, "obs"):
        ok &= check_drop(
            "obs.enabled_over_disabled",
            scenario_value(fresh_data, args.fresh, "obs", "enabled_over_disabled"),
            scenario_value(base_data, args.baseline, "obs", "enabled_over_disabled"),
            args.obs_threshold,
        )
    else:
        print("obs.enabled_over_disabled: scenario absent, gate skipped")

    if has_scenario(fresh_data, "shard_scaleup"):
        identical = fresh_data["scenarios"]["shard_scaleup"].get(
            "byte_identical"
        )
        print(f"shard_scaleup.byte_identical: {identical}")
        if identical is not True:
            print(
                "REGRESSION[shard_scaleup.byte_identical]: sharded run "
                "no longer byte-identical to serial",
                file=sys.stderr,
            )
            ok = False
    else:
        print("shard_scaleup.byte_identical: scenario absent, gate skipped")

    if not ok:
        return 1
    print("bench gate OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
