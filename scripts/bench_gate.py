#!/usr/bin/env python3
"""Events/sec regression gate for CI's bench-smoke job.

Compares a freshly produced BENCH json (``scripts/bench_report.py``)
against the committed baseline and fails when the headline scenario's
``events_per_sec`` dropped by more than the threshold.  Only the
within-run throughput rate is compared — the fresh json may come from a
``--quick`` run and the baseline from a full one; the rate is the
machine-comparable quantity, absolute wall times are not.

    python scripts/bench_gate.py BENCH_ci-smoke.json BENCH_4.json
    python scripts/bench_gate.py fresh.json base.json --threshold 0.25
"""

from __future__ import annotations

import argparse
import json
import sys


def events_per_sec(path: str, scenario: str) -> float:
    with open(path, encoding="utf-8") as fh:
        data = json.load(fh)
    try:
        rate = data["scenarios"][scenario]["events_per_sec"]
    except KeyError as exc:
        raise SystemExit(
            f"{path}: no events_per_sec for scenario {scenario!r} "
            f"(missing key {exc})"
        )
    if not isinstance(rate, (int, float)) or rate <= 0:
        raise SystemExit(f"{path}: bad events_per_sec {rate!r}")
    return float(rate)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("fresh", help="BENCH json from this run")
    parser.add_argument("baseline", help="committed baseline BENCH json")
    parser.add_argument(
        "--threshold", type=float, default=0.10, metavar="FRACTION",
        help="maximum tolerated events/sec drop (default: 0.10 = 10%%)",
    )
    parser.add_argument(
        "--scenario", default="headline",
        help="BENCH scenario to compare (default: headline)",
    )
    args = parser.parse_args(argv)
    if not 0 <= args.threshold < 1:
        parser.error("--threshold must be in [0, 1)")

    fresh = events_per_sec(args.fresh, args.scenario)
    base = events_per_sec(args.baseline, args.scenario)
    floor = base * (1 - args.threshold)
    ratio = fresh / base
    print(
        f"{args.scenario}: fresh {fresh:,.0f} ev/s vs baseline "
        f"{base:,.0f} ev/s ({ratio:.2%}); floor {floor:,.0f} "
        f"(-{args.threshold:.0%})"
    )
    if fresh < floor:
        print(
            f"REGRESSION: {args.scenario} events/sec dropped "
            f"{1 - ratio:.1%} (> {args.threshold:.0%} allowed)",
            file=sys.stderr,
        )
        return 1
    print("bench gate OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
