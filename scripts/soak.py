#!/usr/bin/env python
"""Run the checkpoint/replay soak harness (wrapper over ``repro soak``).

Each epoch runs a randomized scenario to a random cut point, snapshots it
to disk, restores the snapshot, and requires the resumed run to match the
uninterrupted one byte-for-byte with invariants clean.  Progress persists
to ``--state-dir/soak.json`` after every epoch, so a killed run — SIGKILL
included — resumes where it left off::

    python scripts/soak.py --epochs 5 --state-dir /tmp/soak
    kill -9 %1 && python scripts/soak.py --epochs 5 --state-dir /tmp/soak
"""

from __future__ import annotations

import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.cli import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main(["soak", *sys.argv[1:]]))
