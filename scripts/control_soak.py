#!/usr/bin/env python
"""SIGKILL-resume soak for the control-plane service.

Each epoch scripts a deterministic churn campaign (the same generator the
``repro control`` experiment uses), runs it uninterrupted for a reference
digest, then re-runs it to a mid-campaign cut point, freezes the whole
service with :meth:`ControlPlane.snapshot`, and *resumes from the on-disk
snapshot* to completion.  The resumed run must match the uninterrupted one
byte-for-byte (obs metrics + trace digest) with invariants clean.

The snapshot is written atomically before the resume leg, so killing the
process at any point — SIGKILL included — and re-running picks up from the
frozen service instead of starting over::

    python scripts/control_soak.py --epochs 3 --state-dir /tmp/ctl-soak
    kill -9 %1 && python scripts/control_soak.py --epochs 3 --state-dir /tmp/ctl-soak
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from hashlib import blake2b

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.control import ControlPlane, LocalClient  # noqa: E402
from repro.experiments.control_churn import _build_campaign  # noqa: E402
from repro.obs import Observability  # noqa: E402
from repro.replay import Snapshot  # noqa: E402
from repro.sim import SimConfig  # noqa: E402

CUT_FRACTION = 0.4  # freeze after ~40% of simulated campaign time


def build_loaded_control(num_jobs: int, seed: int) -> ControlPlane:
    """The full campaign, submitted up-front: every submit/join/leave is a
    pending simulator event, so the pickled service carries the future."""
    topo, groups, ops = _build_campaign(num_jobs, seed)
    control = ControlPlane(
        topo,
        "peel",
        SimConfig(segment_bytes=65536, seed=seed),
        check_invariants=True,
        obs=Observability(sample_interval_s=100e-6),
    )
    client = LocalClient(control)
    gids = [
        client.create_group(tenant, source, members)
        for tenant, source, members in groups
    ]
    for op in ops:
        if op[0] == "submit":
            _, gid, message_bytes, at = op
            client.submit(gids[gid], message_bytes, at_s=at)
        elif op[0] == "join":
            _, gid, host, at = op
            client.join(gids[gid], host, at_s=at)
        else:
            _, gid, host, at = op
            client.leave(gids[gid], host, at_s=at)
    return control


def finish_and_digest(control: ControlPlane) -> dict:
    control.run()
    violations = control.finalize_checks()
    digest = blake2b(digest_size=16)
    digest.update(control.runtime.obs.metrics_json().encode("utf-8"))
    digest.update(control.runtime.obs.trace_json().encode("utf-8"))
    return {
        "digest": digest.hexdigest(),
        "completed": control.report().total.completed,
        "violations": [str(v) for v in violations],
        "counters": dict(control.counters),
        "t_s": control.now,
    }


def last_op_time(num_jobs: int, seed: int) -> float:
    _, _, ops = _build_campaign(num_jobs, seed)
    return max(op[-1] for op in ops)


def run_epoch(epoch: int, num_jobs: int, seed: int, snap_path: str) -> bool:
    epoch_seed = seed + epoch
    if os.path.exists(snap_path):
        print(f"epoch {epoch}: found {snap_path}, resuming from snapshot")
        control = Snapshot.load(snap_path).restore()
    else:
        reference = finish_and_digest(build_loaded_control(num_jobs, epoch_seed))
        control = build_loaded_control(num_jobs, epoch_seed)
        cut = CUT_FRACTION * last_op_time(num_jobs, epoch_seed)
        control.advance(until=cut)
        control.snapshot().save(snap_path)
        print(
            f"epoch {epoch}: snapshot at t={control.now * 1e6:.1f}us "
            f"({control.runtime.running} running) -> {snap_path}"
        )
        # From here on a SIGKILL replays the resume leg from disk.
        control = Snapshot.load(snap_path).restore()
        resumed = finish_and_digest(control)
        os.remove(snap_path)
        ok = (
            resumed["digest"] == reference["digest"]
            and not resumed["violations"]
            and resumed["completed"] == num_jobs
        )
        print(
            f"epoch {epoch}: resumed digest {resumed['digest']} "
            f"{'==' if ok else '!='} reference {reference['digest']}, "
            f"{resumed['completed']}/{num_jobs} done, "
            f"{len(resumed['violations'])} violations"
        )
        return ok
    # Killed-and-restarted path: no in-process reference; recompute it.
    resumed = finish_and_digest(control)
    reference = finish_and_digest(build_loaded_control(num_jobs, epoch_seed))
    os.remove(snap_path)
    ok = (
        resumed["digest"] == reference["digest"]
        and not resumed["violations"]
        and resumed["completed"] == num_jobs
    )
    print(
        f"epoch {epoch}: post-kill resume digest {resumed['digest']} "
        f"{'==' if ok else '!='} reference, "
        f"{len(resumed['violations'])} violations"
    )
    return ok


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--epochs", type=int, default=2)
    parser.add_argument("--num-jobs", type=int, default=24)
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--state-dir", default="/tmp/control-soak")
    args = parser.parse_args(argv)
    os.makedirs(args.state_dir, exist_ok=True)
    progress_path = os.path.join(args.state_dir, "soak.json")
    start = 0
    if os.path.exists(progress_path):
        with open(progress_path) as fh:
            start = json.load(fh).get("next_epoch", 0)
    for epoch in range(start, args.epochs):
        snap_path = os.path.join(args.state_dir, f"epoch{epoch}.snap")
        if not run_epoch(epoch, args.num_jobs, args.seed, snap_path):
            print(f"epoch {epoch}: FAILED")
            return 1
        with open(progress_path, "w") as fh:
            json.dump({"next_epoch": epoch + 1}, fh)
    print(f"soak clean: {args.epochs} epochs, "
          f"{args.num_jobs} jobs each, byte-identical resumes")
    return 0


if __name__ == "__main__":
    sys.exit(main())
