#!/usr/bin/env python
"""Replay-determinism smoke (wrapper over ``repro replay --scenario all``).

For each golden scenario (headline broadcast batch, mid-collective link
flap, two-tenant serving stream): run it straight through, then checkpoint
it at three cut points, resume each checkpoint from serialized snapshot
bytes, and require CCTs, golden-trace digests and fired-event digests to
match exactly.  Exits non-zero — printing the first diverging fabric
event — if any resumed run drifts.  CI runs this on every push::

    python scripts/replay_smoke.py
"""

from __future__ import annotations

import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.cli import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main(["replay", "--scenario", "all"]))
