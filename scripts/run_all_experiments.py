"""Run every experiment at paper-representative scale and dump the tables.

Used to regenerate EXPERIMENTS.md's measured numbers:
    python scripts/run_all_experiments.py > experiments_results.txt
    python scripts/run_all_experiments.py --workers 8   # parallel sweeps

``-j/--workers N`` fans each simulation sweep's grid out over N worker
processes (default: one per CPU; ``--jobs`` is a hidden alias); tables
are byte-identical to a serial ``--workers 1`` run.
"""

import argparse
import time

from repro.experiments import (
    deployment,
    fig1_bandwidth,
    fig3_rsbf,
    fig4_orca,
    fig5_message_size,
    fig6_scale,
    fig7_failures,
    format_cct_table,
    fragmentation,
    guard_timer,
    headline,
    state_churn,
    tree_quality,
)
from repro.experiments.parallel import resolve_jobs, stderr_progress


def section(title):
    print(f"\n{'=' * 70}\n{title}\n{'=' * 70}", flush=True)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "-j", "--workers", type=int, default=None, metavar="N",
        help="worker processes per sweep (default: one per CPU; 1 = serial)")
    parser.add_argument(
        "--jobs", type=int, dest="workers", help=argparse.SUPPRESS)
    args = parser.parse_args()
    workers = resolve_jobs(args.workers)
    sweep = dict(
        jobs=workers,
        progress=stderr_progress() if workers > 1 else None,
    )
    t0 = time.time()

    section("Fig 1: bandwidth accounting (leaf-spine 2x2x4)")
    print(fig1_bandwidth.format_table(fig1_bandwidth.run()))

    section("Fig 3: RSBF header size vs k")
    print(fig3_rsbf.format_table(fig3_rsbf.run()))

    section("Headline: state table + bandwidth")
    print(headline.format_state_table(headline.state_table()))
    bw = headline.bandwidth_headline(num_gpus=64, trials=30)
    print(f"\nring={bw.ring_traversals} peel={bw.peel_static_traversals} "
          f"optimal={bw.optimal_traversals}")
    print(f"PEEL saves {bw.peel_saving_vs_ring:.1%} vs ring; "
          f"{bw.peel_overhead_vs_optimal:.1%} above optimal")

    section("Tree quality: greedy vs exact Steiner")
    print(tree_quality.format_table(tree_quality.run(trials=20)))

    section("Fig 4: Orca controller overhead (1024 GPUs)")
    rows = fig4_orca.run(sizes_mb=(2, 8, 32, 128), num_jobs=12, **sweep)
    print(format_cct_table(rows, "msg (MB)"))
    for size in (2, 8, 32, 128):
        print(f"p99 inflation at {size} MB: "
              f"{fig4_orca.tail_inflation(rows, size):.1f}x")

    section("Fig 5: CCT vs message size (512 GPUs, 30% load)")
    rows = fig5_message_size.run(sizes_mb=(2, 8, 32, 128, 512), num_jobs=10,
                                 **sweep)
    print(format_cct_table(rows, "msg (MB)"))

    section("Fig 6: CCT vs scale (64 MB)")
    rows = fig6_scale.run(scales=(32, 64, 128, 256, 512, 1024), num_jobs=8,
                          **sweep)
    print(format_cct_table(rows, "GPUs"))

    section("Fig 7: CCT vs failure rate (leaf-spine 16x48)")
    rows = fig7_failures.run(failure_pcts=(1, 2, 4, 8, 10), num_jobs=12,
                             **sweep)
    print(format_cct_table(rows, "failed %"))

    section("Guard-timer ablation (64-GPU, 32 MB)")
    rows = guard_timer.run(num_jobs=16)
    for r in rows:
        print(f"{r.variant:<12} mean={r.mean_s * 1e3:8.2f}ms "
              f"p99={r.p99_s * 1e3:8.2f}ms")
    print(f"tail improvement: {guard_timer.tail_improvement(rows):.1f}x")

    section("Fragmentation / adaptive packing")
    print(fragmentation.format_table(fragmentation.run()))

    section("Incremental deployment")
    print(deployment.format_table(deployment.run()))

    section("State under churn")
    print(state_churn.format_table(state_churn.run()))

    print(f"\ntotal wall time: {time.time() - t0:.0f}s")


if __name__ == "__main__":
    main()
