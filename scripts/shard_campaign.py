#!/usr/bin/env python
"""Acceptance campaign for the sharded core: a million-job serve stream
across shard worker processes, proven byte-identical to a serial run.

Builds a pod-local multi-tenant workload on a fat-tree, serves it through
:class:`repro.shard.ShardedServe` (one forked worker per shard, lockstep
conservative windows), then serves the *same* submit stream through a
single serial :class:`repro.serve.ServeRuntime` and compares everything:

* the chained golden-trace digest (every fabric event, renamed to global
  transfer spellings, hashed in global order);
* the fired-event digest (time, global sequence number) chain;
* the full per-tenant :class:`ServeReport` (SLO rows, goodput, cache and
  TCAM counters).

Invariant cleanliness is enforced on both sides: every shard runs
``finalize_checks()`` and raises on any violation, as does the serial
comparator.  Exit status 1 on any byte difference.

    python scripts/shard_campaign.py --num-jobs 1000000 --shards 8
    python scripts/shard_campaign.py --quick            # CI-sized smoke
    python scripts/shard_campaign.py --skip-serial      # sharded half only
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.metrics import format_slo_table  # noqa: E402
from repro.serve import ServeRuntime  # noqa: E402
from repro.serve.cache import PlanCache  # noqa: E402
from repro.shard import ServeShardSpec, pod_local_jobs, serve_sharded  # noqa: E402
from repro.sim import SimConfig  # noqa: E402
from repro.topology import FatTree  # noqa: E402

KB = 1024

TENANTS = ("train", "infer", "eval", "batch")


def build_workload(args: argparse.Namespace):
    topo = FatTree(args.pods, hosts_per_tor=args.hosts_per_tor)
    jobs_per_pod = -(-args.num_jobs // args.pods)  # ceil
    jobs = pod_local_jobs(
        topo,
        jobs_per_pod,
        args.group_hosts,
        args.message_kb * KB,
        offered_load=args.load,
        seed=args.seed,
        tenants=TENANTS,
    )
    # The ECN marking band is pushed out of reach: probabilistic marks
    # draw from the fabric RNG, which the sharded runner refuses (see
    # repro/shard/runner.py) — the campaign runs the deterministic
    # regime sharding supports.
    config = SimConfig(
        segment_bytes=64 * KB,
        seed=args.seed,
        ecn_kmin_bytes=1 << 30,
        ecn_kmax_bytes=1 << 31,
    )
    return topo, jobs, config


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--num-jobs", type=int, default=1_000_000,
                        help="total jobs across all pods (default: 1M)")
    parser.add_argument("--shards", type=int, default=8)
    parser.add_argument("--pods", type=int, default=8,
                        help="fat-tree arity k = pod count (even)")
    parser.add_argument("--hosts-per-tor", type=int, default=4)
    parser.add_argument("--group-hosts", type=int, default=3)
    parser.add_argument("--message-kb", type=int, default=64)
    parser.add_argument("--load", type=float, default=0.25,
                        help="offered load per pod")
    parser.add_argument("--scheme", default="peel")
    parser.add_argument("--seed", type=int, default=2026)
    parser.add_argument("--plan-cache-size", type=int, default=1 << 16,
                        help="plan-cache capacity on BOTH sides; must "
                             "exceed the distinct-shape working set (LRU "
                             "eviction is not shardable, and a shard that "
                             "evicts refuses to finalize)")
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke: 2000 jobs on 2 shards")
    parser.add_argument("--skip-serial", action="store_true",
                        help="run only the sharded half (no identity proof)")
    parser.add_argument("--in-process", action="store_true",
                        help="lockstep windows in one process (debugging)")
    parser.add_argument("--summary-out", metavar="PATH",
                        help="write a JSON summary here")
    args = parser.parse_args(argv)
    if args.quick:
        args.num_jobs = min(args.num_jobs, 2000)
        args.shards = 2
        args.pods = 4

    topo, jobs, config = build_workload(args)
    print(f"workload: {len(jobs)} jobs, {len(topo.hosts)} hosts, "
          f"{args.pods} pods, scheme {args.scheme}", file=sys.stderr)

    sspec = ServeShardSpec(
        topology=topo,
        scheme=args.scheme,
        jobs=tuple(jobs),
        shards=args.shards,
        config=config,
        record_trace=True,
        event_digest=True,
        plan_cache_size=args.plan_cache_size,
    )
    t0 = time.perf_counter()
    sharded = serve_sharded(sspec, processes=not args.in_process)
    sharded_wall = time.perf_counter() - t0
    print(f"sharded: {sharded.events_processed} events over "
          f"{sharded.windows} windows in {sharded_wall:.1f}s "
          f"({args.shards} workers)", file=sys.stderr)
    print(format_slo_table(sharded.report.tenants + [sharded.report.total]))

    summary = {
        "num_jobs": len(jobs),
        "shards": args.shards,
        "windows": sharded.windows,
        "events": sharded.events_processed,
        "sharded_wall_s": round(sharded_wall, 2),
        "trace_digest": sharded.trace_digest,
        "event_digest": sharded.event_digest,
    }
    identical = None
    if not args.skip_serial:
        t0 = time.perf_counter()
        serial = ServeRuntime(
            topo, args.scheme, config, record_trace=True,
            plan_cache=PlanCache(args.plan_cache_size),
        )
        serial.env.sim.attach_digest()
        serial.submit_all(jobs)
        serial.run()
        serial_report = serial.report()
        serial_wall = time.perf_counter() - t0
        print(f"serial: {serial.env.sim.processed} events in "
              f"{serial_wall:.1f}s", file=sys.stderr)
        mismatches = []
        if serial.env.trace.digest() != sharded.trace_digest:
            mismatches.append("golden-trace digest")
        if serial.env.sim.event_digest.hexdigest() != sharded.event_digest:
            mismatches.append("event digest")
        if serial_report != sharded.report:
            mismatches.append("serve report")
        if serial.env.sim.processed != sharded.events_processed:
            mismatches.append("events processed")
        identical = not mismatches
        summary.update(
            serial_wall_s=round(serial_wall, 2),
            byte_identical=identical,
        )
        verdict = ("byte-identical" if identical
                   else f"DIVERGED ({', '.join(mismatches)})")
        print(f"serial vs {args.shards}-shard: {verdict}")
    if args.summary_out:
        with open(args.summary_out, "w", encoding="utf-8") as fh:
            json.dump(summary, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"summary written to {args.summary_out}", file=sys.stderr)
    return 0 if identical in (None, True) else 1


if __name__ == "__main__":
    sys.exit(main())
