#!/usr/bin/env python
"""Standing perf-trajectory benchmark: canonical scenarios -> BENCH_<tag>.json.

Runs the repo's headline simulation scenarios and records wall time and
simulator events/sec so every PR leaves a comparable perf sample behind:

* ``headline``  — one paper-scale Broadcast batch on the 1024-NIC 8-ary
  fat-tree (the single-sim bench the >=2x speedup target applies to);
* ``fig1_point`` — the analytic fig1 bandwidth-accounting computation;
* ``serving``   — a multi-tenant serving stream through ``repro.serve``;
* ``failure``   — a mid-Broadcast link flap with re-peel recovery;
* ``sweep``     — a small fig5-style grid run serially and with 4 workers
  through :mod:`repro.experiments.parallel` (skipped automatically when the
  executor is not available, so the script also runs on older checkouts);
* ``obs``       — the headline Broadcast batch run bare and again with the
  :mod:`repro.obs` observability layer attached, recording the
  enabled/disabled events-per-second delta (skipped on pre-obs checkouts);
* ``sched_ops`` — a pure calendar-queue microbenchmark: scheduler churn
  (schedule/post/cancel/pop) under dense, sparse, and bimodal timer-delay
  regimes, with no fabric attached;
* ``shard_scaleup`` — a pod-local batch run serially and again across
  shard worker processes (``repro.shard``), recording the wall-time ratio
  and asserting the sharded run byte-identical to serial (skipped on
  pre-shard checkouts).

Usage::

    python scripts/bench_report.py                    # full run -> BENCH_report.json
    python scripts/bench_report.py --quick            # CI smoke (seconds, not minutes)
    python scripts/bench_report.py --tag baseline     # -> BENCH_baseline.json
    python scripts/bench_report.py --compare BENCH_baseline.json

Timing numbers are best-of-N wall clock; event counts are asserted
identical across repeats (the simulator is deterministic, so any drift is
a bug worth failing loudly on).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.collectives import CollectiveEnv, scheme_by_name  # noqa: E402
from repro.faults import FaultSchedule  # noqa: E402
from repro.serve import (  # noqa: E402
    CompositeAdmission,
    LinkLoadAdmission,
    ServeRuntime,
    TcamAdmission,
)
from repro.sim import SimConfig  # noqa: E402
from repro.topology import FatTree, LeafSpine  # noqa: E402
from repro.workloads import generate_jobs  # noqa: E402

MB = 2**20
KB = 1024


def _segment_bytes_for(message_bytes: int) -> int:
    from repro.experiments.runner import segment_bytes_for

    return segment_bytes_for(message_bytes)


def _timed(fn, repeats: int) -> dict:
    """Best-of-``repeats`` wall time; event counts must not drift."""
    walls = []
    events = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        n = fn()
        walls.append(time.perf_counter() - t0)
        if events is None:
            events = n
        elif n != events:
            raise AssertionError(
                f"non-deterministic event count: {n} != {events}"
            )
    wall = min(walls)
    out = {"wall_s": round(wall, 4), "repeats": repeats}
    if events:
        out["events"] = events
        out["events_per_sec"] = round(events / wall, 1)
    return out


# -- scenarios ---------------------------------------------------------------


def bench_headline(quick: bool):
    """Single-sim Broadcast batch: the >=2x events/sec target applies here."""
    if quick:
        topo = FatTree(8, hosts_per_tor=4)
        num_jobs, num_gpus, msg = 4, 64, 8 * MB
    else:
        topo = FatTree(8, hosts_per_tor=32)  # the paper's 1024-NIC fabric
        num_jobs, num_gpus, msg = 12, 512, 32 * MB
    cfg = SimConfig(segment_bytes=_segment_bytes_for(msg))
    jobs = generate_jobs(
        topo, num_jobs, num_gpus, msg, offered_load=0.3, gpus_per_host=1, seed=7
    )
    scheme = scheme_by_name("peel")

    def once() -> int:
        env = CollectiveEnv(topo, cfg)
        handles = [
            scheme.launch(env, j.group, j.message_bytes, j.arrival_s)
            for j in jobs
        ]
        env.run()
        assert all(h.complete for h in handles)
        return env.sim.processed

    return once


def bench_fig1_point(quick: bool):
    """The analytic fig1 computation (no simulation; wall time only)."""
    del quick
    from repro.experiments import fig1_bandwidth

    def once() -> int:
        rows = fig1_bandwidth.run()
        assert len(rows) == 3
        return 0

    return once


def bench_serving(quick: bool):
    """Admission + queueing + plan cache: the repro.serve hot path."""
    topo = FatTree(8, hosts_per_tor=4)
    message_bytes = 256 * KB
    num_jobs, load = (150, 0.5) if quick else (1000, 0.7)
    cfg = SimConfig(segment_bytes=_segment_bytes_for(message_bytes))
    jobs = generate_jobs(
        topo, num_jobs, 16, message_bytes,
        offered_load=load, gpus_per_host=1, seed=11,
    )

    def once() -> int:
        runtime = ServeRuntime(
            topo, "peel", cfg,
            admission=CompositeAdmission(
                TcamAdmission(), LinkLoadAdmission(8 * message_bytes)
            ),
            tcam_capacity=24,
        )
        runtime.submit_all(jobs)
        runtime.run()
        return runtime.env.sim.processed

    return once


def bench_failure(quick: bool):
    """Mid-Broadcast link flap: fault injection + re-peel + repair loop."""
    from repro.experiments.faults_demo import pick_loaded_link

    topo = LeafSpine(4, 8, 4)
    msg = (4 if quick else 32) * MB
    cfg = SimConfig(segment_bytes=_segment_bytes_for(msg), seed=3)
    jobs = generate_jobs(topo, 1, 24, msg, gpus_per_host=1, seed=3)
    job = jobs[0]
    scheme = scheme_by_name("peel")

    # Clean run to locate a loaded link and calibrate the flap window.
    env = CollectiveEnv(topo, cfg)
    handle = scheme.launch(env, job.group, job.message_bytes, job.arrival_s)
    env.run()
    clean_cct = handle.cct_s
    link = pick_loaded_link(topo, "peel", job.group.source.host,
                            job.group.receiver_hosts)
    schedule = (
        FaultSchedule()
        .link_down(*link, at_s=job.arrival_s + 0.4 * clean_cct)
        .link_up(*link, at_s=job.arrival_s + 2.0 * clean_cct)
    )

    def once() -> int:
        env = CollectiveEnv(topo.copy(), cfg, fault_schedule=schedule)
        h = scheme.launch(env, job.group, job.message_bytes, job.arrival_s)
        env.run()
        assert h.complete
        return env.sim.processed

    return once


def bench_sweep(quick: bool) -> dict | None:
    """fig5-style grid, serial vs 4 workers; byte-identity is asserted.

    ``parallel_over_serial`` < 1 means the pool won; the <=0.4 scaling
    target only applies with >= 4 CPUs (``cpu_count`` is recorded — on a
    one-core runner the ratio is expectedly >= 1, and only the
    byte-identity assertion is meaningful).
    """
    try:
        from repro.experiments import fig5_message_size
        from repro.experiments.common import format_cct_table
        from repro.experiments.parallel import resolve_jobs  # noqa: F401
    except ImportError:
        return None  # pre-executor checkout: skip the scaling sample

    if quick:
        params = dict(sizes_mb=(2,), schemes=("optimal", "peel"),
                      num_jobs=4, num_gpus=64)
        workers = 2
    else:
        params = dict(sizes_mb=(2, 8), schemes=("ring", "tree", "optimal", "peel"),
                      num_jobs=6, num_gpus=128)
        workers = 4

    t0 = time.perf_counter()
    serial_rows = fig5_message_size.run(jobs=1, **params)
    serial_wall = time.perf_counter() - t0
    t0 = time.perf_counter()
    parallel_rows = fig5_message_size.run(jobs=workers, **params)
    parallel_wall = time.perf_counter() - t0

    serial_table = format_cct_table(serial_rows, "msg (MB)")
    parallel_table = format_cct_table(parallel_rows, "msg (MB)")
    if serial_table != parallel_table:
        raise AssertionError("parallel sweep diverged from serial results")
    return {
        "points": len(serial_rows),
        "workers": workers,
        "cpu_count": os.cpu_count(),
        "serial_wall_s": round(serial_wall, 4),
        "parallel_wall_s": round(parallel_wall, 4),
        "parallel_over_serial": round(parallel_wall / serial_wall, 4),
        "byte_identical": True,
    }


def bench_shard_scaleup(quick: bool) -> dict | None:
    """Sharded core scale-up: one pod-local batch run serially, then again
    across shard worker processes.  ``sharded_over_serial`` < 1 means the
    shards won (only expected with enough CPUs and a non-quick workload —
    ``cpu_count`` is recorded); ``byte_identical`` is asserted
    unconditionally, because a sharded run that isn't byte-identical to
    serial is a correctness bug, not a perf datum (skipped on pre-shard
    checkouts)."""
    try:
        from repro.api import ScenarioSpec
        from repro.experiments.parallel import shard_speedup
        from repro.shard import pod_local_jobs
    except ImportError:
        return None  # pre-shard checkout: skip the scale-up sample

    if quick:
        topo = FatTree(4)
        shards, jobs_per_pod, msg = 2, 6, 256 * KB
    else:
        topo = FatTree(8, hosts_per_tor=4)
        shards, jobs_per_pod, msg = 8, 32, 1 * MB
    # ECN marking band pushed out of reach: probabilistic marks draw from
    # the fabric RNG, which a sharded run refuses (per-shard draws could
    # not interleave like the serial run's).  The bench measures the
    # sharded core, so it runs the deterministic regime sharding supports.
    cfg = SimConfig(
        segment_bytes=_segment_bytes_for(msg),
        ecn_kmin_bytes=1 << 30,
        ecn_kmax_bytes=1 << 31,
    )
    jobs = pod_local_jobs(topo, jobs_per_pod, 4, msg, seed=7)
    spec = ScenarioSpec(
        topology=topo, scheme="peel", jobs=tuple(jobs), config=cfg,
        shards=shards,
    )
    result = shard_speedup(spec, processes=True)
    if not result.byte_identical:
        raise AssertionError("sharded run diverged from serial")
    return {
        "shards": result.shards,
        "cpu_count": os.cpu_count(),
        "jobs": len(jobs),
        "events": result.events,
        "serial_wall_s": round(result.serial_wall_s, 4),
        "sharded_wall_s": round(result.sharded_wall_s, 4),
        "sharded_over_serial": round(
            result.sharded_wall_s / max(result.serial_wall_s, 1e-9), 4
        ),
        "byte_identical": result.byte_identical,
    }


def bench_obs(quick: bool) -> dict | None:
    """Observability overhead on the headline scenario: the same Broadcast
    batch run bare and with ``repro.obs`` attached (metrics + spans +
    periodic sampling).  ``enabled_over_disabled`` < 1 means enabling obs
    cost wall time; the disabled run must stay within 5% of the committed
    headline events/sec (that's the acceptance bar — disabled-mode cost is
    zero by construction, since nothing registers on the observer layer).
    """
    try:
        from repro.obs import Observability
    except ImportError:
        return None  # pre-obs checkout: skip the overhead sample

    # Same workload as bench_headline, so the disabled leg is directly
    # comparable to the committed headline events/sec.
    if quick:
        topo = FatTree(8, hosts_per_tor=4)
        num_jobs, num_gpus, msg = 4, 64, 8 * MB
    else:
        topo = FatTree(8, hosts_per_tor=32)
        num_jobs, num_gpus, msg = 12, 512, 32 * MB
    cfg = SimConfig(segment_bytes=_segment_bytes_for(msg))
    jobs = generate_jobs(
        topo, num_jobs, num_gpus, msg, offered_load=0.3, gpus_per_host=1, seed=7
    )
    scheme = scheme_by_name("peel")

    def once(with_obs: bool) -> tuple[int, float]:
        import gc

        gc.collect()  # don't bill prior scenarios' garbage to this leg
        t0 = time.perf_counter()
        env = CollectiveEnv(topo, cfg)
        obs = None
        if with_obs:
            obs = Observability(sample_interval_s=100e-6)
            obs.attach(env.network)
        handles = [
            scheme.launch(env, j.group, j.message_bytes, j.arrival_s)
            for j in jobs
        ]
        if obs is not None:
            for h in handles:
                obs.track_collective(h)
        env.run()
        assert all(h.complete for h in handles)
        if obs is not None:
            obs.finalize()
        return env.sim.processed, time.perf_counter() - t0

    # Interleave the legs so box-speed drift over the scenario's wall
    # time hits both the same way (the ratio is the gated quantity).
    repeats = 1 if quick else 3
    disabled = []
    enabled = []
    for _ in range(repeats):
        disabled.append(once(False))
        enabled.append(once(True))
    dis_events = disabled[0][0]
    en_events = enabled[0][0]
    dis_wall = min(w for _, w in disabled)
    en_wall = min(w for _, w in enabled)
    dis_eps = dis_events / dis_wall
    en_eps = en_events / en_wall
    return {
        "disabled_events": dis_events,
        "enabled_events": en_events,
        "disabled_events_per_sec": round(dis_eps, 1),
        "enabled_events_per_sec": round(en_eps, 1),
        "enabled_over_disabled": round(en_eps / dis_eps, 4),
        "disabled_wall_s": round(dis_wall, 4),
        "enabled_wall_s": round(en_wall, 4),
        "repeats": repeats,
    }


def bench_sched_ops(quick: bool) -> dict:
    """Pure scheduler churn: the calendar queue with no fabric attached.

    Three timer-delay regimes stress different queue shapes:

    * ``dense``   — delays within a few bucket widths (serialization
      timers; the active-bucket insort and post fast paths dominate);
    * ``sparse``  — delays spread across half a second of mostly-empty
      buckets (timeout timers; bucket-index heap churn dominates);
    * ``bimodal`` — a near/far mix, the fabric's realistic shape
      (per-segment tx timers plus occasional protocol timeouts).

    Each regime interleaves ``schedule``/``schedule_at`` (handle-
    allocating), the ``post``/``post1``/``post2`` fast paths, cancels of
    roughly one in seven handles, and periodic budgeted partial drains
    (the checked run loop), then drains to empty (the fast run loop).
    Ops = inserts + cancels + fired events; the per-regime op totals are
    deterministic and asserted identical across repeats.
    """
    from random import Random

    from repro.sim.engine import Simulator

    n_inserts = 20_000 if quick else 200_000
    repeats = 2 if quick else 3

    def churn(mode: str) -> tuple[int, float]:
        rng = Random(0x5EED)
        rand = rng.random
        sink = [0]

        def cb() -> None:
            sink[0] += 1

        def cb1(a) -> None:
            sink[0] += a

        def cb2(a, b) -> None:
            sink[0] += a + b

        sim = Simulator()
        handles: list = []
        pop_handle = handles.pop
        push_handle = handles.append
        cancels = 0
        t0 = time.perf_counter()
        for i in range(n_inserts):
            r = rand()
            if mode == "dense":
                delay = r * 2e-5
            elif mode == "sparse":
                delay = r * 0.5
            else:  # bimodal: 3/4 near, 1/4 far
                delay = r * 2e-5 if i & 3 else 0.25 + r * 0.25
            k = i % 6
            if k == 0:
                push_handle(sim.schedule(delay, cb))
            elif k == 1:
                push_handle(sim.schedule_at(sim.now + delay, cb1, 1))
            elif k == 2:
                sim.post1(delay, cb1, 1)
            elif k == 3:
                sim.post2(delay, cb2, 1, 2)
            else:
                sim.post(delay, cb)
            if i % 7 == 0 and handles:
                # Cancelling an already-fired handle is a no-op, so this
                # exercises both live cancellation and the fired path.
                pop_handle().cancel()
                cancels += 1
            if i & 1023 == 1023:
                sim.run(max_events=256)  # budgeted partial drain
        sim.run()  # drain to empty via the fast loop
        wall = time.perf_counter() - t0
        assert sim.pending == 0
        return n_inserts + cancels + sim.processed, wall

    out: dict = {"inserts": n_inserts, "repeats": repeats}
    for mode in ("dense", "sparse", "bimodal"):
        ops = None
        best = float("inf")
        for _ in range(repeats):
            n, wall = churn(mode)
            best = min(best, wall)
            if ops is None:
                ops = n
            elif n != ops:
                raise AssertionError(
                    f"non-deterministic {mode} op count: {n} != {ops}"
                )
        out[f"{mode}_ops"] = ops
        out[f"{mode}_wall_s"] = round(best, 4)
        out[f"{mode}_ops_per_sec"] = round(ops / best, 1)
    return out


SCENARIOS = (
    "headline", "fig1_point", "serving", "failure", "sweep", "obs",
    "sched_ops", "shard_scaleup",
)


def run_report(quick: bool, repeats: int, only: list[str] | None = None) -> dict:
    scenarios: dict[str, dict] = {}
    for name in SCENARIOS:
        if only and name not in only:
            continue
        t0 = time.perf_counter()
        if name == "sweep":
            result = bench_sweep(quick)
            if result is None:
                print("  sweep: executor unavailable, skipped", file=sys.stderr)
                continue
        elif name == "obs":
            result = bench_obs(quick)
            if result is None:
                print("  obs: repro.obs unavailable, skipped", file=sys.stderr)
                continue
        elif name == "sched_ops":
            result = bench_sched_ops(quick)
        elif name == "shard_scaleup":
            result = bench_shard_scaleup(quick)
            if result is None:
                print("  shard_scaleup: repro.shard unavailable, skipped",
                      file=sys.stderr)
                continue
        else:
            builder = globals()[f"bench_{name}"]
            result = _timed(builder(quick), repeats)
        scenarios[name] = result
        print(f"  {name}: {json.dumps(result)} "
              f"[{time.perf_counter() - t0:.1f}s total]", file=sys.stderr)
    return {
        "quick": quick,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        "scenarios": scenarios,
    }


def compare(report: dict, baseline_path: str) -> None:
    with open(baseline_path, encoding="utf-8") as fh:
        base = json.load(fh)
    print(f"\nvs {baseline_path}:")
    for name, now in report["scenarios"].items():
        then = base.get("scenarios", {}).get(name)
        if not then:
            continue
        if "events_per_sec" in now and "events_per_sec" in then:
            ratio = now["events_per_sec"] / then["events_per_sec"]
            print(f"  {name:<12} {then['events_per_sec']:>12.0f} -> "
                  f"{now['events_per_sec']:>12.0f} ev/s  ({ratio:.2f}x)")
        elif "wall_s" in now and "wall_s" in then:
            ratio = then["wall_s"] / max(now["wall_s"], 1e-9)
            print(f"  {name:<12} {then['wall_s']:>8.3f}s -> "
                  f"{now['wall_s']:>8.3f}s  ({ratio:.2f}x)")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small scenarios for CI smoke (seconds)")
    parser.add_argument("--tag", default="report",
                        help="output name: BENCH_<tag>.json")
    parser.add_argument("--output", metavar="PATH",
                        help="explicit output path (overrides --tag)")
    parser.add_argument("--repeats", type=int, default=None,
                        help="wall-time repeats per scenario "
                             "(default 3, 1 with --quick)")
    parser.add_argument("--only", nargs="+", choices=SCENARIOS,
                        help="run a subset of scenarios")
    parser.add_argument("--compare", metavar="BASELINE_JSON",
                        help="print speedups vs an earlier report")
    args = parser.parse_args(argv)

    repeats = args.repeats or (1 if args.quick else 3)
    print(f"bench_report: quick={args.quick} repeats={repeats}",
          file=sys.stderr)
    report = run_report(args.quick, repeats, args.only)

    out_path = args.output or os.path.join(REPO_ROOT, f"BENCH_{args.tag}.json")
    with open(out_path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {out_path}")
    if args.compare:
        compare(report, args.compare)
    return 0


if __name__ == "__main__":
    sys.exit(main())
