#!/usr/bin/env python
"""Sharded soak: epoch after epoch of serial-vs-sharded byte-identity,
with a mid-epoch sharded snapshot, resumable across SIGKILL.

Each epoch derives a fresh pod-local workload from ``(seed, epoch)`` —
never from wall clock — runs it serially, then sharded with a snapshot
taken mid-stream and the run completed *from the restored snapshot*, and
requires the golden-trace digest, fired-event digest and CCT list to
match byte-for-byte.  Progress persists in ``<state-dir>/manifest.json``
after every step, so a killed process resumes exactly where it died: an
epoch interrupted between snapshot and verdict is completed from its
on-disk snapshot, not rerun.

CI's shard-smoke job exercises the kill path deterministically with
``--kill-after-cut``: the process SIGKILLs itself right after writing
epoch 0's snapshot, and the follow-up invocation must resume from that
snapshot and still prove byte-identity.

    python scripts/shard_soak.py --epochs 3 --state-dir /tmp/shard-soak
    python scripts/shard_soak.py --epochs 3 --state-dir /tmp/shard-soak \
        --kill-after-cut        # dies after the first un-done epoch's cut
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import signal
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.api import ScenarioSpec, run  # noqa: E402
from repro.experiments.common import sim_config  # noqa: E402
from repro.replay import Snapshot  # noqa: E402
from repro.shard import ShardedScenarioRun, pod_local_jobs  # noqa: E402
from repro.topology import FatTree  # noqa: E402

KB = 1024


def epoch_spec(seed: int, epoch: int, shards: int) -> tuple[ScenarioSpec, float]:
    """The epoch's scenario: keyed by ``(seed, epoch)`` only (no wall
    clock, no global counters), so any process at any time rebuilds the
    identical spec — that's what makes the manifest resumable."""
    topo = FatTree(4)
    message_bytes = 128 * KB
    jobs = pod_local_jobs(
        topo, jobs_per_pod=3, group_hosts=3, message_bytes=message_bytes,
        offered_load=0.4, seed=seed * 10007 + epoch,
    )
    spec = ScenarioSpec(
        topology=topo,
        scheme="peel",
        jobs=tuple(jobs),
        config=sim_config(message_bytes, seed=seed * 10007 + epoch),
        record_trace=True,
        event_digest=True,
        shards=shards,
    )
    arrivals = sorted(job.arrival_s for job in jobs)
    return spec, arrivals[len(arrivals) // 2]


class SoakState:
    """The on-disk manifest: one dict per epoch, flushed after each step."""

    def __init__(self, state_dir: str) -> None:
        self.state_dir = state_dir
        self.path = os.path.join(state_dir, "manifest.json")
        os.makedirs(state_dir, exist_ok=True)
        if os.path.exists(self.path):
            with open(self.path, encoding="utf-8") as fh:
                self.epochs: dict[str, dict] = json.load(fh)["epochs"]
        else:
            self.epochs = {}

    def get(self, epoch: int) -> dict:
        return self.epochs.setdefault(str(epoch), {"status": "new"})

    def flush(self) -> None:
        tmp = self.path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump({"epochs": self.epochs}, fh, indent=2, sort_keys=True)
            fh.write("\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.path)

    def snap_path(self, epoch: int) -> str:
        return os.path.join(self.state_dir, f"shard-epoch-{epoch:04d}.snap")


def run_epoch(state: SoakState, epoch: int, seed: int, shards: int,
              kill_after_cut: bool) -> bool:
    """One epoch to its verdict; returns True when byte-identical."""
    record = state.get(epoch)
    if record["status"] == "done":
        print(f"epoch {epoch}: already verified, skipping", file=sys.stderr)
        return record["identical"]
    spec, cut = epoch_spec(seed, epoch, shards)

    if record["status"] == "new":
        serial = run(dataclasses.replace(spec, shards=1))
        record.update(
            status="serial",
            serial_trace=serial.trace_digest,
            serial_event=serial.replay.event_digest,
            serial_ccts=serial.ccts,
        )
        state.flush()

    if record["status"] == "serial":
        sharded_run = ShardedScenarioRun(spec)
        sharded_run.run_until(cut)
        blob = sharded_run.snapshot().to_bytes()
        with open(state.snap_path(epoch), "wb") as fh:
            fh.write(blob)
            fh.flush()
            os.fsync(fh.fileno())
        record["status"] = "cut"
        state.flush()
        if kill_after_cut:
            print(f"epoch {epoch}: snapshot written, SIGKILLing self",
                  file=sys.stderr)
            os.kill(os.getpid(), signal.SIGKILL)

    # status == "cut": finish from the on-disk snapshot — both on the
    # straight-through path and after a kill, so the resumed artifact is
    # what gets verified every time.
    with open(state.snap_path(epoch), "rb") as fh:
        resumed = Snapshot.from_bytes(fh.read()).restore()
    result = resumed.finish()
    identical = (
        result.trace_digest == record["serial_trace"]
        and result.replay.event_digest == record["serial_event"]
        and list(result.ccts) == [tuple(c) if isinstance(c, list) else c
                                  for c in record["serial_ccts"]]
    )
    record.update(status="done", identical=identical,
                  trace_digest=result.trace_digest)
    state.flush()
    os.remove(state.snap_path(epoch))
    verdict = "byte-identical" if identical else "DIVERGED"
    print(f"epoch {epoch}: resumed sharded run {verdict} "
          f"(trace {result.trace_digest})")
    return identical


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--epochs", type=int, default=3)
    parser.add_argument("--shards", type=int, default=2)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--state-dir", default="shard-soak-state")
    parser.add_argument("--kill-after-cut", action="store_true",
                        help="SIGKILL self after the first un-done epoch "
                             "writes its snapshot (CI kill-path hook)")
    args = parser.parse_args(argv)

    state = SoakState(args.state_dir)
    ok = True
    for epoch in range(args.epochs):
        ok &= run_epoch(state, epoch, args.seed, args.shards,
                        args.kill_after_cut)
    if not ok:
        print("shard soak: DIVERGENCE detected", file=sys.stderr)
        return 1
    print(f"shard soak: {args.epochs} epoch(s) byte-identical")
    return 0


if __name__ == "__main__":
    sys.exit(main())
