"""Proactive F-resilient protection: planning, failover, accounting.

The reactive/proactive boundary lives on the golden fault scenario — the
same loaded-link cut inside the 100 µs detection window must re-peel when
unprotected and flip to a pre-installed backup (with a strictly lower CCT)
when protected.
"""

import pytest

from repro.api import ScenarioSpec, run
from repro.core import Peel, build_protection
from repro.experiments import failover
from repro.experiments.scenarios import fault_scenario, protected_fault_scenario
from repro.serve import PlanCache, ServeRuntime
from repro.sim import SimConfig
from repro.topology import LeafSpine
from repro.workloads import generate_jobs

KB = 1024


class TestBuildProtection:
    def topo_plan(self, resilience=1):
        topo = LeafSpine(2, 4, 2)
        hosts = topo.hosts[:6]
        plan = Peel(topo, resilience=resilience).plan(hosts[0], hosts[1:])
        return topo, plan

    def test_plan_carries_protection(self):
        _topo, plan = self.topo_plan()
        assert plan.protection is not None
        assert plan.protection.entries

    def test_unprotected_plan_has_none(self):
        topo = LeafSpine(2, 4, 2)
        hosts = topo.hosts[:6]
        plan = Peel(topo).plan(hosts[0], hosts[1:])
        assert plan.protection is None

    def test_host_links_never_protected(self):
        _topo, plan = self.topo_plan()
        for _idx, link in plan.protection.entries:
            assert not any(node.startswith("host:") for node in link)

    def test_resilience_validation(self):
        topo = LeafSpine(2, 4, 2)
        with pytest.raises(ValueError):
            Peel(topo, resilience=-1)
        with pytest.raises(ValueError):
            build_protection(topo, [], topo.hosts[0], 0)

    def test_tcam_demand_is_per_group(self):
        _topo, plan = self.topo_plan()
        demand_a = plan.protection.tcam_demand("group-a")
        demand_b = plan.protection.tcam_demand("group-b")
        assert demand_a.keys() == demand_b.keys()
        flat = {k for keys in demand_a.values() for k in keys}
        assert all(key[1] == "group-a" for key in flat)
        assert plan.protection.total_entries() == sum(
            len(keys) for keys in demand_a.values()
        )
        assert plan.protection.peak_entries_per_switch() == max(
            len(keys) for keys in demand_a.values()
        )


class TestReactiveProactiveBoundary:
    """The golden fault scenario, cut inside the detection window."""

    @pytest.fixture(scope="class")
    def reactive(self):
        spec, _cuts = fault_scenario()
        return run(spec)

    @pytest.fixture(scope="class")
    def protected(self):
        spec, _cuts = protected_fault_scenario(1)
        return run(spec)

    def test_unprotected_run_repeels(self, reactive):
        assert reactive.repeels != []
        assert reactive.failovers == []
        assert reactive.protection == 0
        assert reactive.backup_tcam_entries == 0

    def test_protected_run_takes_local_failover(self, protected):
        assert protected.repeels == []
        assert [type(f).__name__ for f in protected.failovers] == ["Failover"]
        assert protected.protection == 1

    def test_failover_cct_strictly_below_reactive(self, reactive, protected):
        assert protected.ccts[0] < reactive.ccts[0]

    def test_failover_happens_at_cut_not_detection(self, reactive, protected):
        # The re-peel pays the 100 us detection delay after the cut; the
        # local failover fires at the cut event itself.
        cut_t = protected.failovers[0].time_s
        repeel_t = reactive.repeels[0].time_s
        assert repeel_t == pytest.approx(cut_t + 100e-6)

    def test_backup_entries_reported_against_budget(self, protected):
        assert protected.backup_tcam_entries > 0
        assert protected.backup_tcam_peak_per_switch > 0
        # LeafSpine(2, 4, 2): identifier width 2 -> 2^3 - 1 static rules.
        assert protected.static_rule_budget == 7
        assert (
            protected.backup_tcam_peak_per_switch
            <= protected.backup_tcam_entries
        )

    def test_protection_zero_is_byte_identical_to_default(self, reactive):
        spec, _cuts = protected_fault_scenario(0)
        again = run(spec)
        assert again.ccts == reactive.ccts
        assert again.trace_digest == reactive.trace_digest
        assert again.repeels == reactive.repeels


class TestFailoverExperiment:
    def test_serial_matches_workers(self):
        serial = failover.run(protection_levels=(0, 1), jobs=1)
        parallel = failover.run(protection_levels=(0, 1), jobs=4)
        assert serial == parallel

    def test_rows_and_table(self):
        rows = failover.run(protection_levels=(0, 1), jobs=1)
        by_f = {row.protection: row for row in rows}
        assert by_f[0].recovery == "reactive re-peel"
        assert by_f[1].recovery == "local failover"
        assert by_f[1].cct_s < by_f[0].cct_s
        assert by_f[1].backup_tcam_entries > 0
        assert by_f[1].static_rule_budget == 7
        table = failover.format_table(rows)
        assert "local failover" in table
        assert "budget/switch" in table


class TestUnprotectedLinkFallsBack:
    def test_cut_outside_any_tree_is_harmless(self):
        # Cutting a link no primary tree crosses must neither fail over
        # nor re-peel — protection never invents work.
        topo = LeafSpine(2, 4, 2)
        message = 256 * KB
        job = generate_jobs(topo, 1, 4, message, gpus_per_host=1, seed=7)[0]
        plan = Peel(topo, resilience=1).plan(
            job.group.source.host, job.group.receiver_hosts
        )
        used = {
            tuple(sorted(e))
            for tree in plan.static_trees
            for e in tree.edges
        }
        spare = next(
            (u, v)
            for u, v in sorted(topo.graph.edges)
            if tuple(sorted((u, v))) not in used
            and not u.startswith("host:")
            and not v.startswith("host:")
        )
        from repro.faults import FaultSchedule

        schedule = FaultSchedule().link_down(*spare, at_s=10e-6)
        result = run(ScenarioSpec(
            topology=topo,
            scheme="peel",
            jobs=(job,),
            config=SimConfig(segment_bytes=64 * KB, seed=7),
            check_invariants=True,
            fault_schedule=schedule,
            protection=1,
        ))
        assert result.failovers == []
        assert result.repeels == []
        assert result.invariant_violations == []


class TestServeProtection:
    def test_ff_entries_ride_group_lifecycle(self):
        topo = LeafSpine(2, 4, 2)
        jobs = generate_jobs(
            topo, 4, 6, 128 * KB, offered_load=0.5, gpus_per_host=1, seed=3
        )
        runtime = ServeRuntime(
            topo, "peel", SimConfig(segment_bytes=64 * KB, seed=3),
            protection=1,
        )
        runtime.submit_all(jobs)
        runtime.run()
        report = runtime.report()
        # Static prefix rules alone would mean zero serving-time updates;
        # the fast-failover entries install and remove per group.
        assert report.switch_updates > 0
        baseline = 7  # static prefix rules per switch at width 2
        assert report.peak_entries_per_switch > baseline
        # All groups done: every per-group ff entry was removed again.
        for switch, table in runtime.state.tables.items():
            assert len(table) <= baseline, switch

    def test_unprotected_serve_has_no_group_state(self):
        topo = LeafSpine(2, 4, 2)
        jobs = generate_jobs(
            topo, 2, 6, 128 * KB, offered_load=0.5, gpus_per_host=1, seed=3
        )
        runtime = ServeRuntime(
            topo, "peel", SimConfig(segment_bytes=64 * KB, seed=3)
        )
        runtime.submit_all(jobs)
        runtime.run()
        assert runtime.report().switch_updates == 0

    def test_plan_cache_keys_by_resilience(self):
        topo = LeafSpine(2, 4, 2)
        cache = PlanCache()
        hosts = topo.hosts[:5]
        plain = Peel(topo)
        protected = Peel(topo, resilience=1)
        a = cache.get(plain, hosts[0], hosts[1:])
        b = cache.get(protected, hosts[0], hosts[1:])
        assert a.protection is None
        assert b.protection is not None
        assert cache.misses == 2  # same shape, different resilience: no alias
        assert cache.get(protected, hosts[0], hosts[1:]) is b
        assert cache.hits == 1
