"""Exact Steiner DP: correctness against hand results and the brute-force
oracle."""

import networkx as nx
import pytest

from repro.steiner import (
    brute_force_steiner_cost,
    exact_steiner_cost,
    exact_steiner_tree,
    validate_tree,
)
from repro.topology import FatTree, LeafSpine


class TestSmallGraphs:
    def test_single_terminal(self):
        g = nx.path_graph(3)
        tree = exact_steiner_tree(g, 0, [])
        assert tree.cost == 0

    def test_path_graph(self):
        g = nx.path_graph(5)  # 0-1-2-3-4
        assert exact_steiner_cost(g, 0, [4]) == 4

    def test_star_graph(self):
        g = nx.star_graph(4)  # hub 0
        assert exact_steiner_cost(g, 1, [2, 3]) == 3

    def test_steiner_node_needed(self):
        # Classic: three spokes meeting at a hub not in the terminal set.
        g = nx.Graph([("t1", "h"), ("t2", "h"), ("t3", "h")])
        tree = exact_steiner_tree(g, "t1", ["t2", "t3"])
        assert tree.cost == 3
        assert "h" in tree.nodes

    def test_cycle_shortcut(self):
        g = nx.cycle_graph(6)
        assert exact_steiner_cost(g, 0, [2]) == 2
        assert exact_steiner_cost(g, 0, [5]) == 1
        assert exact_steiner_cost(g, 0, [2, 4]) == 4  # both arcs

    def test_duplicate_and_source_destinations(self):
        g = nx.path_graph(4)
        assert exact_steiner_cost(g, 0, [3, 3, 0]) == 3

    def test_unreachable_raises(self):
        g = nx.Graph()
        g.add_edge("a", "b")
        g.add_node("island")
        with pytest.raises(ValueError):
            exact_steiner_tree(g, "a", ["island"])

    def test_too_many_terminals_rejected(self):
        g = nx.complete_graph(20)
        with pytest.raises(ValueError):
            exact_steiner_tree(g, 0, list(range(1, 16)))


class TestAgainstBruteForce:
    @pytest.mark.parametrize("seed", range(6))
    def test_random_graphs(self, seed):
        g = nx.gnp_random_graph(9, 0.4, seed=seed)
        if not nx.is_connected(g):
            g = g.subgraph(max(nx.connected_components(g), key=len)).copy()
        nodes = sorted(g.nodes)
        terminals = nodes[: min(4, len(nodes))]
        src, dests = terminals[0], terminals[1:]
        if not dests:
            pytest.skip("component too small")
        dp = exact_steiner_cost(g, src, dests)
        oracle = brute_force_steiner_cost(g, src, dests, max_extra=5)
        assert dp == oracle


class TestOnFabrics:
    def test_tree_is_valid_on_fattree(self):
        ft = FatTree(4)
        src = ft.hosts[0]
        dests = ft.hosts[3:7]
        tree = exact_steiner_tree(ft.graph, src, dests)
        validate_tree(tree, ft.graph, src, dests)

    def test_same_rack_cost(self):
        ls = LeafSpine(2, 2, 4)
        # Two hosts under the same leaf: host-leaf-host = 2 edges.
        assert exact_steiner_cost(ls.graph, "host:l0:0", ["host:l0:1"]) == 2

    def test_cross_rack_cost(self):
        ls = LeafSpine(2, 2, 4)
        assert exact_steiner_cost(ls.graph, "host:l0:0", ["host:l1:0"]) == 4

    def test_asymmetric_fabric(self):
        ls = LeafSpine(2, 3, 1)
        ls.fail_link("leaf:1", "spine:0")
        ls.fail_link("leaf:2", "spine:1")
        # Reaching both remote leaves now needs both spines.
        cost = exact_steiner_cost(
            ls.graph, "host:l0:0", ["host:l1:0", "host:l2:0"]
        )
        assert cost == 7  # h-l0, l0-s1, s1-l1, l1-h | l0-s0, s0-l2, l2-h

    def test_exact_at_most_symmetric_optimum(self):
        from repro.core import optimal_symmetric_tree

        ft = FatTree(4)
        src = ft.hosts[0]
        dests = [ft.hosts[2], ft.hosts[5], ft.hosts[9]]
        exact = exact_steiner_cost(ft.graph, src, dests)
        constructive = optimal_symmetric_tree(ft, src, dests).cost
        assert exact == constructive
