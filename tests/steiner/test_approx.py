"""Metric-closure approximation: validity and 2x bound vs the exact DP."""

import networkx as nx
import pytest

from repro.steiner import (
    exact_steiner_cost,
    metric_closure_tree,
    validate_tree,
)
from repro.topology import FatTree, asymmetric


class TestMetricClosure:
    def test_single_terminal(self):
        g = nx.path_graph(3)
        assert metric_closure_tree(g, 0, []).cost == 0

    def test_spans_terminals(self):
        ft = FatTree(4)
        src = ft.hosts[0]
        dests = ft.hosts[1:6]
        tree = metric_closure_tree(ft.graph, src, dests)
        validate_tree(tree, ft.graph, src, dests)

    @pytest.mark.parametrize("seed", range(5))
    def test_within_2x_of_optimal(self, seed):
        bad, _ = asymmetric(FatTree(4), 0.2, seed=seed)
        src = bad.hosts[0]
        dests = bad.hosts[4:8]
        approx = metric_closure_tree(bad.graph, src, dests).cost
        exact = exact_steiner_cost(bad.graph, src, dests)
        assert exact <= approx <= 2 * exact

    def test_no_redundant_leaves(self):
        """Pruning guarantees every tree leaf is a terminal."""
        ft = FatTree(4)
        src = ft.hosts[0]
        dests = ft.hosts[8:11]
        tree = metric_closure_tree(ft.graph, src, dests)
        for leaf in tree.leaves:
            assert leaf in {src, *dests}
