"""Tree validation and pruning."""

import networkx as nx
import pytest

from repro.steiner import (
    InvalidTreeError,
    MulticastTree,
    is_valid_tree,
    prune_tree,
    validate_tree,
)


@pytest.fixture
def graph():
    g = nx.Graph()
    g.add_edges_from([("s", "a"), ("a", "b"), ("a", "c"), ("c", "d")])
    return g


class TestValidate:
    def test_valid_tree_passes(self, graph):
        tree = MulticastTree("s", {"a": "s", "b": "a", "c": "a"})
        validate_tree(tree, graph, "s", ["b", "c"])

    def test_wrong_root(self, graph):
        tree = MulticastTree("a", {"b": "a"})
        with pytest.raises(InvalidTreeError):
            validate_tree(tree, graph, "s", ["b"])

    def test_phantom_edge(self, graph):
        tree = MulticastTree("s", {"b": "s"})  # s-b not a physical link
        with pytest.raises(InvalidTreeError):
            validate_tree(tree, graph, "s", ["b"])

    def test_missing_destination(self, graph):
        tree = MulticastTree("s", {"a": "s"})
        with pytest.raises(InvalidTreeError):
            validate_tree(tree, graph, "s", ["d"])

    def test_is_valid_tree_boolean(self, graph):
        good = MulticastTree("s", {"a": "s", "b": "a"})
        assert is_valid_tree(good, graph, "s", ["b"])
        assert not is_valid_tree(good, graph, "s", ["d"])


class TestPrune:
    def test_drops_unneeded_branch(self, graph):
        tree = MulticastTree("s", {"a": "s", "b": "a", "c": "a", "d": "c"})
        pruned = prune_tree(tree, ["b"])
        assert pruned.nodes == {"s", "a", "b"}
        validate_tree(pruned, graph, "s", ["b"])

    def test_keeps_shared_trunk(self, graph):
        tree = MulticastTree("s", {"a": "s", "b": "a", "c": "a", "d": "c"})
        pruned = prune_tree(tree, ["b", "d"])
        assert pruned.nodes == {"s", "a", "b", "c", "d"}

    def test_keep_all_is_identity(self, graph):
        tree = MulticastTree("s", {"a": "s", "b": "a"})
        assert prune_tree(tree, ["b"]).parent == tree.parent

    def test_keep_missing_node_raises(self, graph):
        tree = MulticastTree("s", {"a": "s"})
        with pytest.raises(InvalidTreeError):
            prune_tree(tree, ["zzz"])
