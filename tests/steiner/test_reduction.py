"""Machine-checked Theorem 2.2: Set-Cover <= multicast-tree construction."""

from itertools import combinations

import pytest

from repro.core import layer_peeling_tree
from repro.steiner import exact_steiner_tree
from repro.steiner.reduction import (
    SOURCE,
    SetCoverInstance,
    build_gadget,
    destinations,
    optimal_cover_via_steiner,
    tree_cost_for_cover_size,
    tree_to_cover,
)


def brute_force_cover(instance: SetCoverInstance) -> int:
    for size in range(1, len(instance.sets) + 1):
        for chosen in combinations(range(len(instance.sets)), size):
            if instance.is_cover(set(chosen)):
                return size
    raise AssertionError("family does not cover the universe")


EXAMPLES = [
    SetCoverInstance(3, (frozenset({0, 1}), frozenset({2}), frozenset({1, 2}))),
    SetCoverInstance(
        4,
        (
            frozenset({0}),
            frozenset({1}),
            frozenset({2, 3}),
            frozenset({0, 1, 2, 3}),
        ),
    ),
    SetCoverInstance(
        5,
        (
            frozenset({0, 1, 2}),
            frozenset({2, 3}),
            frozenset({3, 4}),
            frozenset({0, 4}),
        ),
    ),
]


class TestInstance:
    def test_rejects_uncovering_family(self):
        with pytest.raises(ValueError):
            SetCoverInstance(3, (frozenset({0}),))

    def test_is_cover(self):
        inst = EXAMPLES[0]
        assert inst.is_cover({0, 1})
        assert not inst.is_cover({0})


class TestGadget:
    @pytest.mark.parametrize("inst", EXAMPLES)
    def test_structure(self, inst):
        graph = build_gadget(inst)
        assert SOURCE in graph
        for s, members in enumerate(inst.sets):
            spine = f"spine:{s}"
            leaves = {
                n
                for n in graph.neighbors(spine)
                if n.startswith("leaf:") and n != "leaf:999"  # the source leaf
            }
            assert leaves == {f"leaf:{e}" for e in members}

    @pytest.mark.parametrize("inst", EXAMPLES)
    def test_cost_formula(self, inst):
        graph = build_gadget(inst)
        tree = exact_steiner_tree(graph, SOURCE, destinations(inst))
        cover = tree_to_cover(inst, tree)
        assert tree.cost == tree_cost_for_cover_size(inst, len(cover))


class TestEquivalence:
    @pytest.mark.parametrize("inst", EXAMPLES)
    def test_steiner_optimum_is_minimum_cover(self, inst):
        cover = optimal_cover_via_steiner(inst)
        assert inst.is_cover(cover)
        assert len(cover) == brute_force_cover(inst)

    @pytest.mark.parametrize("inst", EXAMPLES)
    def test_layer_peeling_yields_valid_cover(self, inst):
        """The greedy is exactly the classical set-cover heuristic on the
        gadget: it must return *a* cover (not necessarily minimum)."""
        graph = build_gadget(inst)
        tree = layer_peeling_tree(graph, SOURCE, destinations(inst))
        cover = tree_to_cover(inst, tree)
        assert inst.is_cover(cover)
        # ln(n)-style guarantee is loose; sanity-bound it.
        assert len(cover) <= 2 * brute_force_cover(inst) + 1
