"""MulticastTree structural behaviour."""

import networkx as nx
import pytest

from repro.steiner import MulticastTree


def chain_tree():
    return MulticastTree("a", {"b": "a", "c": "b", "d": "c"})


def fanout_tree():
    return MulticastTree("r", {"x": "r", "y": "r", "x1": "x", "x2": "x"})


class TestConstruction:
    def test_empty_tree(self):
        tree = MulticastTree("solo", {})
        assert tree.cost == 0
        assert tree.nodes == {"solo"}
        assert tree.leaves == {"solo"}

    def test_root_with_parent_rejected(self):
        with pytest.raises(ValueError):
            MulticastTree("a", {"a": "b"})

    def test_cycle_rejected(self):
        with pytest.raises(ValueError):
            MulticastTree("r", {"a": "b", "b": "a"})

    def test_disconnected_rejected(self):
        with pytest.raises(ValueError):
            MulticastTree("r", {"a": "ghost"})

    def test_cost_is_edge_count(self):
        assert chain_tree().cost == 3
        assert fanout_tree().cost == 4


class TestStructure:
    def test_children_sorted(self):
        tree = MulticastTree("r", {"b": "r", "a": "r"})
        assert tree.children("r") == ["a", "b"]

    def test_edges_directed_parent_first(self):
        assert ("a", "b") in chain_tree().edges

    def test_leaves(self):
        assert fanout_tree().leaves == {"y", "x1", "x2"}

    def test_path_from_root(self):
        assert chain_tree().path_from_root("d") == ["a", "b", "c", "d"]

    def test_depth(self):
        assert chain_tree().depth == 3
        assert fanout_tree().depth == 2

    def test_depth_of(self):
        assert fanout_tree().depth_of("x1") == 2
        assert fanout_tree().depth_of("r") == 0

    def test_subtree_nodes(self):
        assert fanout_tree().subtree_nodes("x") == {"x", "x1", "x2"}
        assert fanout_tree().subtree_nodes("y") == {"y"}


class TestFactories:
    def test_from_undirected_edges(self):
        tree = MulticastTree.from_undirected_edges(
            "r", [("x", "r"), ("x", "y")]
        )
        assert tree.parent == {"x": "r", "y": "x"}

    def test_from_undirected_edges_rejects_cycle(self):
        with pytest.raises(ValueError):
            MulticastTree.from_undirected_edges(
                "r", [("r", "a"), ("a", "b"), ("b", "r")]
            )

    def test_from_paths_merges(self):
        tree = MulticastTree.from_paths(
            "r", [["r", "a", "b"], ["r", "a", "c"]]
        )
        assert tree.cost == 3
        assert set(tree.children("a")) == {"b", "c"}

    def test_from_paths_conflicting_parent_rejected(self):
        with pytest.raises(ValueError):
            MulticastTree.from_paths("r", [["r", "a", "x"], ["r", "b", "x"]])

    def test_from_paths_must_start_at_root(self):
        with pytest.raises(ValueError):
            MulticastTree.from_paths("r", [["a", "r"]])

    def test_to_digraph(self):
        dg = fanout_tree().to_digraph()
        assert isinstance(dg, nx.DiGraph)
        assert dg.number_of_edges() == 4
        assert nx.is_arborescence(dg)
