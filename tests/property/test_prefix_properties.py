"""Property-based tests for power-of-two prefix covers."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    PeelHeader,
    Prefix,
    bounded_cover,
    cover_waste,
    covered_ids,
    exact_cover,
)

WIDTH = 5  # 32 identifiers, like one pod of a 64-ary fat-tree

id_sets = st.sets(st.integers(min_value=0, max_value=(1 << WIDTH) - 1), max_size=32)


class TestExactCoverProperties:
    @given(id_sets)
    def test_covers_exactly(self, ids):
        cover = exact_cover(ids, WIDTH)
        assert covered_ids(cover, WIDTH) == ids

    @given(id_sets)
    def test_blocks_disjoint(self, ids):
        cover = exact_cover(ids, WIDTH)
        seen: set[int] = set()
        for prefix in cover:
            block = set(prefix.block(WIDTH))
            assert not block & seen
            seen |= block

    @given(id_sets)
    def test_minimality_no_mergeable_pair(self, ids):
        """No two chosen blocks can be merged into one aligned block (the
        trie construction always emits maximal complete subtrees)."""
        cover = exact_cover(ids, WIDTH)
        by_key = {(p.value, p.length) for p in cover}
        for p in cover:
            if p.length == 0:
                continue
            sibling = (p.value ^ 1, p.length)
            assert sibling not in by_key, f"{p} and its sibling both chosen"

    @given(id_sets)
    def test_count_bounded_by_ids(self, ids):
        assert len(exact_cover(ids, WIDTH)) <= max(1, len(ids))


class TestBoundedCoverProperties:
    @given(id_sets.filter(bool), st.integers(min_value=1, max_value=6))
    @settings(max_examples=60, deadline=None)
    def test_budget_respected_and_covers(self, ids, budget):
        cover = bounded_cover(ids, WIDTH, budget)
        assert 1 <= len(cover) <= budget
        assert ids <= covered_ids(cover, WIDTH)

    @given(id_sets.filter(bool))
    @settings(max_examples=40, deadline=None)
    def test_full_budget_means_no_waste(self, ids):
        cover = bounded_cover(ids, WIDTH, 32)
        assert cover_waste(cover, ids, WIDTH) == 0

    @given(id_sets.filter(bool), st.integers(min_value=1, max_value=5))
    @settings(max_examples=40, deadline=None)
    def test_waste_monotone_in_budget(self, ids, budget):
        tighter = cover_waste(bounded_cover(ids, WIDTH, budget), ids, WIDTH)
        looser = cover_waste(bounded_cover(ids, WIDTH, budget + 1), ids, WIDTH)
        assert looser <= tighter


class TestHeaderProperties:
    @given(
        st.integers(min_value=0, max_value=WIDTH).flatmap(
            lambda length: st.tuples(
                st.integers(min_value=0, max_value=(1 << length) - 1 if length else 0),
                st.just(length),
            )
        )
    )
    def test_encode_decode_roundtrip(self, value_length):
        value, length = value_length
        header = PeelHeader(Prefix(value, length), WIDTH)
        assert PeelHeader.decode(header.encode(), WIDTH).prefix == header.prefix


class TestBoundedCoverOptimality:
    @given(
        st.sets(st.integers(min_value=0, max_value=15), min_size=1, max_size=16),
        st.integers(min_value=1, max_value=3),
    )
    @settings(max_examples=40, deadline=None)
    def test_dp_matches_exhaustive_minimum_waste(self, ids, budget):
        """The trie DP must find the true minimum-waste cover."""
        from itertools import combinations

        width = 4
        all_prefixes = [
            Prefix(value, length)
            for length in range(width + 1)
            for value in range(1 << length)
        ]
        best_waste = None
        for size in range(1, budget + 1):
            for combo in combinations(all_prefixes, size):
                covered = set()
                for p in combo:
                    covered.update(p.block(width))
                if ids <= covered:
                    waste = len(covered - ids)
                    if best_waste is None or waste < best_waste:
                        best_waste = waste
        dp_cover = bounded_cover(ids, width, budget)
        dp_waste = cover_waste(dp_cover, ids, width)
        assert best_waste is not None
        assert dp_waste == best_waste
