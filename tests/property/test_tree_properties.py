"""Property-based tests for tree builders on randomized fabrics."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Peel, layer_peeling_tree, optimal_symmetric_tree
from repro.steiner import exact_steiner_cost, validate_tree
from repro.topology import LeafSpine, asymmetric, hop_layers


@st.composite
def leafspine_scenarios(draw):
    spines = draw(st.integers(min_value=2, max_value=4))
    leaves = draw(st.integers(min_value=2, max_value=8))
    hosts_per_leaf = draw(st.integers(min_value=1, max_value=3))
    fraction = draw(st.sampled_from([0.0, 0.1, 0.2, 0.3]))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    topo, _ = asymmetric(LeafSpine(spines, leaves, hosts_per_leaf), fraction, seed=seed)
    rng = random.Random(seed)
    hosts = topo.hosts
    src = hosts[rng.randrange(len(hosts))]
    num = draw(st.integers(min_value=1, max_value=min(5, len(hosts) - 1)))
    dests = rng.sample([h for h in hosts if h != src], num)
    return topo, src, dests


class TestLayerPeelingProperties:
    @given(leafspine_scenarios())
    @settings(max_examples=60, deadline=None)
    def test_always_valid(self, scenario):
        topo, src, dests = scenario
        tree = layer_peeling_tree(topo, src, dests)
        validate_tree(tree, topo.graph, src, dests)

    @given(leafspine_scenarios())
    @settings(max_examples=40, deadline=None)
    def test_theorem_2_5_bound(self, scenario):
        topo, src, dests = scenario
        tree = layer_peeling_tree(topo, src, dests)
        opt = exact_steiner_cost(topo.graph, src, dests)
        layers = hop_layers(topo.graph, src)
        farthest = max(
            j for j, layer in enumerate(layers) if any(d in layer for d in dests)
        )
        assert tree.cost <= opt * min(farthest, len(dests))

    @given(leafspine_scenarios())
    @settings(max_examples=40, deadline=None)
    def test_layered_structure(self, scenario):
        """Every tree edge connects adjacent BFS layers (the invariant the
        peeling preserves)."""
        topo, src, dests = scenario
        tree = layer_peeling_tree(topo, src, dests)
        depth = {
            node: j
            for j, layer in enumerate(hop_layers(topo.graph, src))
            for node in layer
        }
        for parent, child in tree.edges:
            assert depth[child] == depth[parent] + 1

    @given(leafspine_scenarios())
    @settings(max_examples=30, deadline=None)
    def test_symmetric_matches_optimal(self, scenario):
        topo, src, dests = scenario
        if not topo.is_symmetric:
            return
        greedy = layer_peeling_tree(topo, src, dests).cost
        assert greedy == optimal_symmetric_tree(topo, src, dests).cost


class TestPeelPlanProperties:
    @given(leafspine_scenarios())
    @settings(max_examples=40, deadline=None)
    def test_plan_serves_every_destination_once(self, scenario):
        topo, src, dests = scenario
        plan = Peel(topo).plan(src, dests)
        served: list[str] = []
        for tree in plan.static_trees:
            validate_tree(tree, topo.graph, src, [])
            served.extend(
                n for n in tree.nodes if n.startswith("host") and n != src
            )
        assert sorted(served) == sorted(set(dests))

    @given(leafspine_scenarios())
    @settings(max_examples=30, deadline=None)
    def test_static_never_cheaper_than_refined(self, scenario):
        topo, src, dests = scenario
        plan = Peel(topo).plan(src, dests)
        assert plan.static_cost() >= plan.refined_cost()
