"""Property tests: proactive protection plans are sound for random fabrics.

Two families, per the protection design (DESIGN.md "Protection"):

* *structural* — for random topologies and F in {1, 2}, every protected
  link has at least one pre-installed backup subtree; each backup avoids
  the link it protects, spans the primary tree's receivers from the
  source, and distinct alternatives are mutually edge-disjoint on
  switch-to-switch links;
* *behavioural* — cutting any fully-protected link mid-broadcast with the
  InvariantChecker in raise mode still delivers exactly-once to every
  receiver, recovers by local failover (no re-peel), and never trips a
  conservation/exactly-once invariant.
"""

import random

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.api import ScenarioSpec, run
from repro.collectives import Gpu, Group
from repro.core import Peel
from repro.faults import FaultSchedule
from repro.sim import SimConfig
from repro.topology import FatTree, LeafSpine
from repro.topology.addressing import NodeKind, kind_of
from repro.workloads import CollectiveJob

KB = 1024


def build_topo(kind):
    # Small fabrics with >= 2 disjoint spine/core paths, so any single
    # switch-to-switch link has residual diversity to protect with.
    if kind == "leafspine":
        return LeafSpine(2, 4, 2)
    return FatTree(4, hosts_per_tor=2)


def core_edges(tree):
    """Canonical switch-to-switch edges of a tree."""
    return {
        tuple(sorted((u, v)))
        for u, v in tree.edges
        if kind_of(u) is not NodeKind.HOST and kind_of(v) is not NodeKind.HOST
    }


def tree_uses(tree, link):
    u, v = link
    return tree.parent.get(v) == u or tree.parent.get(u) == v


@st.composite
def protected_plans(draw):
    """A random broadcast group planned with protection F in {1, 2}."""
    kind = draw(st.sampled_from(["leafspine", "fattree"]))
    resilience = draw(st.integers(min_value=1, max_value=2))
    seed = draw(st.integers(min_value=0, max_value=499))
    topo = build_topo(kind)
    rng = random.Random(seed)
    n = rng.randint(3, min(10, len(topo.hosts)))
    hosts = rng.sample(topo.hosts, n)
    planner = Peel(topo, resilience=resilience)
    plan = planner.plan(hosts[0], hosts[1:])
    return kind, topo, hosts, plan, resilience, seed


class TestProtectionStructure:
    @given(protected_plans())
    @settings(max_examples=15, deadline=None)
    def test_backups_edge_disjoint_and_spanning(self, case):
        _kind, _topo, hosts, plan, resilience, _seed = case
        protection = plan.protection
        assert protection is not None
        assert protection.resilience == resilience
        source, receivers = hosts[0], set(hosts[1:])
        for (tree_index, link), entry in protection.entries.items():
            primary = plan.static_trees[tree_index]
            assert tree_uses(primary, link) or tree_uses(
                primary, (link[1], link[0])
            )
            assert 1 <= len(entry.backups) <= resilience
            primary_hosts = {
                n for n in primary.nodes
                if kind_of(n) is NodeKind.HOST and n != source
            }
            seen_core: set = set()
            for backup in entry.backups:
                edges = core_edges(backup)
                # Edge-disjoint with the protected link itself...
                assert tuple(sorted(link)) not in edges
                # ...and with every earlier alternative (core links only).
                assert not (edges & seen_core)
                seen_core |= edges
                # Still spans the primary tree's receivers from the source.
                assert source in backup.nodes
                assert primary_hosts <= set(backup.nodes)
                assert primary_hosts <= receivers

    @given(protected_plans())
    @settings(max_examples=15, deadline=None)
    def test_every_core_link_of_these_fabrics_is_protected(self, case):
        # These reference fabrics always leave >= 1 residual disjoint path
        # around any single switch-to-switch link, so best-effort
        # protection must cover every core link of every primary tree.
        _kind, _topo, _hosts, plan, _resilience, _seed = case
        protection = plan.protection
        for index, tree in enumerate(plan.static_trees):
            for edge in core_edges(tree):
                assert protection.entry_for(index, *edge) is not None


@st.composite
def protected_cuts(draw):
    """A protected broadcast plus one cuttable fully-protected link."""
    kind, topo, hosts, plan, resilience, seed = draw(protected_plans())
    protection = plan.protection
    assume(protection.entries)
    # A link is fully protected when every primary tree crossing it has an
    # entry — only then is the failover all-or-nothing flip guaranteed.
    fully = []
    for link in sorted(protection.protected_links):
        using = [
            i for i, t in enumerate(plan.static_trees) if tree_uses(t, link)
        ]
        if using and all(
            protection.entry_for(i, *link) is not None for i in using
        ):
            fully.append(link)
    assume(fully)
    link = fully[draw(st.integers(min_value=0, max_value=len(fully) - 1))]
    return kind, hosts, link, resilience, seed


class TestProtectedCutDelivery:
    @given(protected_cuts())
    @settings(max_examples=12, deadline=None)
    def test_single_protected_cut_delivers_exactly_once(self, case):
        kind, hosts, link, resilience, seed = case
        topo = build_topo(kind)
        message = 512 * KB
        members = tuple(Gpu(h, 0) for h in hosts)
        job = CollectiveJob(0.0, Group(members[0], members), message)
        schedule = FaultSchedule().link_down(*link, at_s=15e-6)
        result = run(ScenarioSpec(
            topology=topo,
            scheme="peel",
            jobs=(job,),
            config=SimConfig(segment_bytes=64 * KB, seed=seed),
            check_invariants=True,
            fault_schedule=schedule,
            protection=resilience,
        ))
        # run() already raises unless every receiver finished; the checker
        # (raise mode) vetoes duplicate delivery — exactly-once both ways.
        assert result.invariant_violations == []
        assert len(result.ccts) == 1
        # The cut took the local path, never the detection-delayed re-peel.
        assert result.repeels == []
        assert [f.link for f in result.failovers] == [link]
