"""Differential battery: sharded runs are byte-identical to serial.

The central claim of ``repro.shard`` is not "close" but *equal*: for any
spec the partition accepts, running it across N lockstep shards yields
the same golden-trace chain, the same fired-event digest, the same CCTs
and the same observability export as the serial engine, byte for byte.
These properties draw random pod-local workloads — topology size, shard
count in {2, 4, 8}, scheme, faults, membership churn, protection level,
seeds — and check exactly that, plus the protocol-level invariants the
equality rests on: no event fires beyond the open window, causality
violations are rejected loudly, and the stream merge is associative over
any window decomposition.
"""

import dataclasses
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import ScenarioSpec, run
from repro.control import ChurnEvent, ChurnSchedule
from repro.experiments.common import sim_config
from repro.faults import FaultSchedule
from repro.obs import Observability
from repro.shard import (
    BoundaryMessage,
    GlobalSequencer,
    ShardError,
    WindowBarrier,
    pod_local_jobs,
)
from repro.topology import FatTree

KB = 1024


def _fresh_obs() -> Observability:
    # Periodic sampling schedules wall-clock-free *sampler* events in the
    # simulator, which the shard runner refuses (they are not fabric work
    # and would differ per shard); everything else is compared.
    return Observability(periodic_sampling=False)


def _result_facts(result, obs):
    """Every comparable fact of one run, obs export included."""
    return {
        "ccts": list(result.ccts),
        "trace": result.trace_digest,
        "events": result.replay.event_digest,
        "processed": result.replay.events_processed,
        "total_bytes": result.total_bytes,
        "wasted_bytes": result.wasted_bytes,
        "pfc_pause_events": result.pfc_pause_events,
        "failure_drops": result.failure_drops,
        "repeels": list(result.repeels),
        "failovers": list(result.failovers),
        "membership": dict(result.membership),
        "backup_entries": result.backup_tcam_entries,
        "header_overhead": result.header_overhead_bytes,
        "group_tcam_peak": result.per_group_tcam_peak,
        "metrics": obs.metrics_json() if obs is not None else None,
    }


def _assert_identical(spec: ScenarioSpec, with_obs: bool) -> None:
    serial_obs = _fresh_obs() if with_obs else None
    serial = run(dataclasses.replace(spec, shards=1, obs=serial_obs))
    shard_obs = _fresh_obs() if with_obs else None
    sharded = run(dataclasses.replace(spec, obs=shard_obs))
    base = _result_facts(serial, serial_obs)
    other = _result_facts(sharded, shard_obs)
    for key, expect in base.items():
        assert other[key] == expect, f"{key} diverged on {spec.shards} shards"


@st.composite
def shard_cases(draw):
    shards = draw(st.sampled_from((2, 4, 8)))
    # A k-ary fat-tree partitions into k pod components plus the core, so
    # 8 shards need the k=8 fabric; the small fabric keeps most examples
    # fast.  hosts_per_tor=2 bounds the event count.
    k = 8 if shards == 8 else 4
    topo = FatTree(k, hosts_per_tor=2)
    seed = draw(st.integers(min_value=0, max_value=9999))
    variant = draw(st.sampled_from(("plain", "fault", "churn", "protection")))
    # Churn grafting and protection planning are PEEL mechanisms; the
    # plain and fault variants also exercise the optimal scheme, the
    # per-job-ECMP host relays (ring/tree) and the source-routed schemes
    # (header bytes + strip-at-hop accounting must merge byte-identically).
    scheme = (
        draw(st.sampled_from((
            "peel", "optimal", "ring", "tree",
            "elmo", "bert", "rsbf", "lipsin", "ip-multicast",
        )))
        if variant in ("plain", "fault")
        else "peel"
    )
    jobs_per_pod = draw(st.integers(min_value=1, max_value=1 if k == 8 else 2))
    message_bytes = draw(st.sampled_from((64 * KB, 128 * KB)))
    with_obs = draw(st.booleans())
    jobs = pod_local_jobs(
        topo, jobs_per_pod, 3, message_bytes, offered_load=0.4, seed=seed
    )
    arrivals = sorted(job.arrival_s for job in jobs)
    fault_schedule = None
    churn = None
    protection = 0
    rng = random.Random(seed + 77)
    if variant == "fault":
        pod = rng.randrange(k)
        tor = topo.tors_in_pod(pod)[0]
        agg = topo.aggs_in_pod(pod)[0]
        down_at = arrivals[0] + rng.choice((5e-6, 15e-6, 40e-6))
        fault_schedule = FaultSchedule().link_flap(
            tor, agg, down_at, down_at + 150e-6
        )
    elif variant == "churn":
        g = rng.randrange(len(jobs))
        group = jobs[g].group
        members = {gpu.host for gpu in group.members}
        pod_hosts = {
            h for h in topo.hosts
            if h.split(":")[1] == group.source.host.split(":")[1]
        }
        outside = sorted(pod_hosts - members)
        leavers = sorted(members - {group.source.host})
        events = []
        at = jobs[g].arrival_s + rng.choice((5e-6, 20e-6))
        if outside and rng.random() < 0.7:
            events.append(ChurnEvent(at, g, "join", host=outside[0]))
        if not events or rng.random() < 0.5:
            events.append(
                ChurnEvent(at + 10e-6, g, "leave", host=leavers[0])
            )
        churn = ChurnSchedule(tuple(events))
    elif variant == "protection":
        protection = 1
    spec = ScenarioSpec(
        topology=topo,
        scheme=scheme,
        jobs=tuple(jobs),
        config=sim_config(message_bytes, seed=seed),
        record_trace=True,
        event_digest=True,
        fault_schedule=fault_schedule,
        churn=churn,
        protection=protection,
        shards=shards,
    )
    return spec, with_obs


class TestShardedEqualsSerial:
    @given(shard_cases())
    @settings(max_examples=12, deadline=None)
    def test_byte_identical(self, case):
        spec, with_obs = case
        _assert_identical(spec, with_obs)


class TestWindowInvariance:
    def test_window_size_is_a_pure_pacing_knob(self, monkeypatch):
        """Any initial window width yields the same merged bytes."""
        from repro.experiments.scenarios import shard_scenario
        from repro.shard import runner

        spec, _ = shard_scenario(shards=2)
        digests = set()
        for window in (3e-6, 1e-4, 5e-3):
            monkeypatch.setattr(runner, "_INITIAL_WINDOW_S", window)
            result = run(spec)
            digests.add((result.trace_digest, result.replay.event_digest))
        assert len(digests) == 1


# -- barrier protocol properties ---------------------------------------------


@st.composite
def edge_sequences(draw):
    steps = draw(st.lists(st.floats(min_value=1e-7, max_value=1e-3,
                                    allow_nan=False), min_size=1, max_size=6))
    edges = []
    acc = 0.0
    for step in steps:
        acc += step
        edges.append(acc)
    return edges


class TestBarrierProtocol:
    @given(edge_sequences(), st.integers(min_value=1, max_value=4))
    @settings(max_examples=60, deadline=None)
    def test_no_fire_beyond_open_window(self, edges, num_shards):
        """can_fire is exactly "inside the open window": never without an
        open window, never past its edge, and never after commit."""
        barrier = WindowBarrier(num_shards)
        assert not barrier.can_fire(0.0)
        for edge in edges:
            barrier.open(edge)
            assert barrier.can_fire(edge)
            assert barrier.can_fire(barrier.committed_edge)
            assert not barrier.can_fire(edge * (1 + 1e-9) + 1e-12)
            for shard in range(num_shards):
                committed = barrier.arrive(shard)
                assert committed == (shard == num_shards - 1)
            assert barrier.committed_edge == edge
            assert not barrier.can_fire(edge)  # window gone until reopened
        assert barrier.windows_committed == len(edges)

    @given(edge_sequences())
    @settings(max_examples=40, deadline=None)
    def test_lookahead_violations_rejected(self, edges):
        """A boundary message timestamped inside its own window means a
        shard outran its lookahead; the barrier must refuse it."""
        barrier = WindowBarrier(2)
        edge = barrier.open(edges[0])
        bad = BoundaryMessage(time=edge, src_shard=0, src_seq=0, dst_shard=1)
        try:
            barrier.arrive(0, (bad,))
        except ShardError as exc:
            assert "causality" in str(exc)
        else:
            raise AssertionError("in-window message accepted")

    @given(edge_sequences(), st.data())
    @settings(max_examples=40, deadline=None)
    def test_messages_route_to_inboxes_sorted(self, edges, data):
        barrier = WindowBarrier(2)
        edge = barrier.open(edges[-1])
        times = data.draw(
            st.lists(st.floats(min_value=edge * 1.01, max_value=edge * 4 + 1.0,
                               allow_nan=False), min_size=1, max_size=5)
        )
        messages = tuple(
            BoundaryMessage(time=t, src_shard=0, src_seq=i, dst_shard=1)
            for i, t in enumerate(times)
        )
        barrier.arrive(0, messages)
        barrier.arrive(1)
        delivered = barrier.take_inbox(1)
        assert sorted(delivered) == delivered
        assert {m.src_seq for m in delivered} == set(range(len(times)))
        assert barrier.take_inbox(0) == []
        assert barrier.take_inbox(1) == []  # drained exactly once

    def test_double_arrive_rejected(self):
        barrier = WindowBarrier(3)
        barrier.open(1e-6)
        barrier.arrive(0)
        try:
            barrier.arrive(0)
        except ShardError as exc:
            assert "twice" in str(exc)
        else:
            raise AssertionError("double arrive accepted")

    def test_window_must_advance(self):
        barrier = WindowBarrier(1)
        barrier.open(1e-6)
        barrier.arrive(0)
        try:
            barrier.open(1e-6)
        except ShardError as exc:
            assert "advance" in str(exc)
        else:
            raise AssertionError("non-advancing window accepted")


# -- merge associativity ------------------------------------------------------


@st.composite
def merge_programs(draw):
    """Two shards' fired-record streams plus a random window decomposition.

    Times come from a coarse grid so cross-shard ties are common — the
    merge must break them by global seq, identically however the stream
    is chunked.
    """
    streams = []
    for _ in range(2):
        n = draw(st.integers(min_value=1, max_value=6))
        times = sorted(
            draw(st.integers(min_value=0, max_value=8)) * 1e-6
            for _ in range(n)
        )
        streams.append([(t, i, 0, 0, None) for i, t in enumerate(times)])
    cut_grid = sorted({r[0] for s in streams for r in s})
    cuts = draw(st.sets(st.sampled_from(cut_grid))) if cut_grid else set()
    edges = sorted(cuts | {cut_grid[-1]}) if cut_grid else [0.0]
    first_shard = draw(st.sampled_from((0, 1)))
    return streams, edges, first_shard


def _merged_digest(streams, edges, first_shard):
    seq = GlobalSequencer(2, event_digest=True)
    for shard, stream in enumerate(streams):
        seq.push_setup(shard, len(stream), [], None)
    cursor = [0, 0]
    order = (first_shard, 1 - first_shard)
    for edge in edges:
        for shard in order:
            stream = streams[shard]
            start = cursor[shard]
            stop = start
            while stop < len(stream) and stream[stop][0] <= edge:
                stop += 1
            seq.feed(shard, stream[start:stop], [])
            cursor[shard] = stop
        seq.merge_available()
    seq.assert_drained()
    assert seq.merged_events == sum(len(s) for s in streams)
    return seq.digest.hexdigest()


class TestMergeAssociativity:
    @given(merge_programs())
    @settings(max_examples=80, deadline=None)
    def test_any_window_decomposition_merges_identically(self, program):
        streams, edges, first_shard = program
        one_shot = _merged_digest(streams, [edges[-1]], 0)
        chunked = _merged_digest(streams, edges, first_shard)
        assert chunked == one_shot

    def test_fire_before_schedule_rejected(self):
        seq = GlobalSequencer(2)
        seq.push_setup(0, 1, [], None)
        seq.feed(0, [(1e-6, 5, 0, 0, None)], [])  # lseq 5 never scheduled
        try:
            seq.merge_available()
        except ShardError as exc:
            assert "before its" in str(exc)
        else:
            raise AssertionError("unscheduled lseq merged")
